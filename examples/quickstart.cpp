// Quickstart: plan mixed-precision pipelined serving of OPT-30b on a small
// heterogeneous cluster (3x T4 + 1x V100 — the paper's cluster 3), then
// check the plan against the discrete-event simulator and the quality
// model. This is the whole public API in ~40 lines.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;

  // 1. Describe the job: model, cluster, workload.
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& model = model_registry_get(model_name);
  Workload workload;  // 32 prompts of 512 tokens, generate 100 tokens each

  // 2. Build the cost model (profiles each GPU type, fits the phase-aware
  //    latency regressions) and run the assigner.
  CostProvider cost(model, cluster, CostMode::kFitted);
  cost.set_workload(workload);

  AssignerOptions options;
  options.theta = 1.0;  // modest weight on model quality
  const AssignerResult result = assign(cost, options);

  std::printf("%s", result.plan.to_string().c_str());
  std::printf("planner estimate: %.1f s end-to-end, %.1f tokens/s\n",
              result.estimate.e2e_latency,
              result.estimate.throughput_tokens_per_s);
  std::printf("solver: %s, %d combos, %.2f s solve time\n",
              result.stats.solver_used.c_str(), result.stats.combos_tried,
              result.stats.solve_time_s);

  // 3. Validate against the simulator and the quality model.
  const SimResult sim = simulate_plan(model, cluster, result.plan);
  if (!sim.ok) {
    std::printf("simulation failed: %s\n", sim.error.c_str());
    return 1;
  }
  std::printf("simulated: %.1f s end-to-end, %.1f tokens/s\n",
              sim.e2e_latency_s, sim.throughput_tokens_per_s);
  std::printf("perplexity: %.2f (FP16 baseline %.2f)\n",
              plan_ppl(model, result.plan.layer_bits), model.ppl_fp16);

  // 4. Compare against a baseline.
  const ExecutionPlan pe = pipeedge_plan(cost);
  const SimResult pe_sim = simulate_plan(model, cluster, pe);
  std::printf("PipeEdge baseline: %.1f tokens/s -> LLM-PQ speedup %.2fx\n",
              pe_sim.throughput_tokens_per_s,
              sim.throughput_tokens_per_s / pe_sim.throughput_tokens_per_s);
  return 0;
}
