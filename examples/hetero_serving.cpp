// Heterogeneous serving walkthrough: plan OPT-66b on a mixed V100 + A100
// cluster (the paper's cluster 6), inspect the cost models and the plan,
// then compare against every baseline under the simulator — the full
// offline-serving workflow a cluster operator would run.
#include <cstdio>

#include "baselines/baselines.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  const auto [cluster, model_name] = paper_cluster(6);
  const ModelSpec& model = model_registry_get(model_name);
  Workload workload;
  workload.global_batch = 32;
  workload.prompt_len = 512;
  workload.gen_tokens = 100;

  std::printf("serving %s on %s\n", model.name.c_str(),
              cluster.describe_devices().c_str());
  std::printf("model: %ld layers, hidden %ld, %.1fB params (%.0f GB at "
              "FP16)\n\n",
              static_cast<long>(model.layers),
              static_cast<long>(model.hidden),
              static_cast<double>(model.total_params()) / 1e9,
              2.0 * static_cast<double>(model.total_params()) / 1e9);

  // Cost model: profile once per GPU type, fit the phase-aware regression.
  CostProvider cost(model, cluster, CostMode::kFitted);
  cost.set_workload(workload);
  std::printf("profiling sweeps would cost %.1f s on hardware; fitted "
              "regression mean error %.2f%%\n\n",
              cost.build_cost_s(),
              100.0 * cost.latency_model().mean_rel_error());

  // LLM-PQ plan with a mid-range quality preference.
  AssignerOptions options;
  options.theta = 100.0;  // the paper's Table 9 setting for this cluster
  options.solver = SolverKind::kHeuristic;
  const AssignerResult result = assign(cost, options);
  std::printf("%s\n", result.plan.to_string().c_str());

  Table table({"Scheme", "PPL", "Latency (s)", "Throughput (tok/s)"});
  auto add_plan_row = [&](const std::string& name, const ExecutionPlan& plan) {
    const SimResult sim = simulate_plan(model, cluster, plan);
    if (!sim.ok) {
      table.add_row({name, "-", "-", "OOM"});
      return;
    }
    table.add_row({name, Table::fmt(plan_ppl(model, plan.layer_bits)),
                   Table::fmt(sim.e2e_latency_s),
                   Table::fmt(sim.throughput_tokens_per_s)});
  };
  add_plan_row("LLM-PQ", result.plan);
  try {
    add_plan_row("PipeEdge", pipeedge_plan(cost));
  } catch (const InfeasibleError&) {
    table.add_row({"PipeEdge", "-", "-", "OOM"});
  }
  try {
    add_plan_row("Uniform", uniform_plan(cost));
  } catch (const InfeasibleError&) {
    table.add_row({"Uniform", "-", "-", "OOM"});
  }
  for (int bits : {16, 8}) {
    const OffloadResult fg = flexgen_run(cost, bits);
    table.add_row({bits == 16 ? "FlexGen" : "FlexGen-int8",
                   Table::fmt(uniform_ppl(model, bits)),
                   fg.ok ? Table::fmt(fg.e2e_latency_s) : "-",
                   fg.ok ? Table::fmt(fg.throughput_tokens_per_s) : "-"});
  }
  std::printf("%s", table.to_string().c_str());

  // Persist the winning plan the way `llmpq-dist` consumes it.
  const std::string strat = result.plan.serialize();
  std::printf("\nserialized strategy file (%zu bytes):\n%s", strat.size(),
              strat.c_str());
  return 0;
}
