// Indicator study: how LLM-PQ decides which layers tolerate aggressive
// quantization. Computes the variance indicator (Theorem 1 / Proposition 2)
// for OPT-13b, compares it with the Hessian proxy and a random baseline,
// validates the variance bound empirically on real quantized GEMMs, and
// shows how the indicator shifts the planner's bit allocation.
#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/calibration.hpp"
#include "quant/indicator.hpp"
#include "quant/qgemm.hpp"
#include "quant/quality.hpp"

int main() {
  using namespace llmpq;
  const ModelSpec& model = model_registry_get("opt-13b");

  // 1. Per-layer omega at each candidate bitwidth.
  const IndicatorResult variance =
      compute_indicator(model, IndicatorKind::kVariance);
  const IndicatorResult hessian =
      compute_indicator(model, IndicatorKind::kHessian);
  std::printf("variance indicator for %s (build cost %.0f s vs Hessian "
              "%.0f s -> %.0fx cheaper)\n\n",
              model.name.c_str(), variance.overhead_s, hessian.overhead_s,
              hessian.overhead_s / variance.overhead_s);
  Table t({"Layer", "omega@3", "omega@4", "omega@8", "true dPPL@4"});
  for (int i = 0; i < model.layers; i += 5) {
    t.add_row({std::to_string(i), Table::fmt(variance.at(i, 3), 3),
               Table::fmt(variance.at(i, 4), 3),
               Table::fmt(variance.at(i, 8), 4),
               Table::fmt(true_layer_ppl_delta(model, i, 4), 4)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // 2. Empirical check of the Theorem-1 bound on real numerics: quantize a
  //    real weight matrix, measure the output perturbation variance.
  Rng rng(3);
  const std::size_t k = 256, n = 16, m = 512;
  std::vector<float> w(n * k), x(m * k);
  for (auto& v : w) v = 0.05f * static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::printf("Theorem 1 on real numerics (W %zux%zu, %zu samples):\n", n, k,
              m);
  for (int bits : {3, 4, 8}) {
    const QuantizedMatrix qw =
        QuantizedMatrix::quantize(w, n, k, bits, Rounding::kDeterministic, rng);
    std::vector<float> yq(m * n), yf(m * n);
    qgemm(x, m, k, qw, {}, yq);
    gemm_f32(x, m, k, w, n, {}, yf);
    RunningStats pert;
    for (std::size_t i = 0; i < yq.size(); ++i)
      pert.add(static_cast<double>(yq[i]) - static_cast<double>(yf[i]));
    double max_scale = 0.0;
    for (float s : qw.scales()) max_scale = std::max(max_scale, (double)s);
    const ActivationStats xs = collect_activation_stats(x);
    const double bound = static_cast<double>(k) * max_scale * max_scale *
                         g_of_x(xs, Rounding::kDeterministic);
    std::printf("  %2d-bit: empirical Var = %.3e, bound = %.3e (%s)\n", bits,
                pert.variance(), bound,
                pert.variance() <= bound ? "holds" : "VIOLATED");
  }

  // 3. Effect on planning: single V100, tight memory — which layers keep
  //    high precision under each indicator?
  const auto [cluster, model_name] = paper_cluster(1);
  CostProvider cost(model_registry_get(model_name), cluster,
                    CostMode::kFitted);
  std::printf("\nbit allocation on %s (theta=200):\n",
              cluster.describe_devices().c_str());
  for (IndicatorKind kind : {IndicatorKind::kVariance,
                             IndicatorKind::kRandom}) {
    AssignerOptions opt;
    opt.indicator = kind;
    opt.theta = 200.0;
    opt.solver = SolverKind::kHeuristic;
    const AssignerResult r = assign(cost, opt);
    std::printf("  %-9s -> PPL %.3f, bits:",
                indicator_kind_name(kind).c_str(),
                plan_ppl(model, r.plan.layer_bits));
    for (int b : r.plan.layer_bits) std::printf(" %d", b);
    std::printf("\n");
  }
  std::printf("\nthe variance indicator protects the layers whose "
              "perturbation bound is largest, matching the true "
              "sensitivity trend.\n");
  return 0;
}
