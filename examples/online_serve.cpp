// Online serving on the real (CPU) runtime: drive the shared serving
// scheduler — the same policy code the online simulator uses — against the
// threaded pipeline engine. Replays one trace under three configurations
// (static batching, ORCA-style iteration-level scheduling, and continuous
// batching with a KV page ledger that preempts under memory pressure),
// then demos the live path where requests are submitted from the caller's
// thread and admitted by the engine's own serving loop.
//
// Pass --trace PATH to record the whole demo — engine stage spans, the
// scheduler's dispatch passes and per-request lifecycles — as Chrome trace
// JSON (open in chrome://tracing or ui.perfetto.dev).
//
// Pass --faults PLAN.json to arm the process-wide fault injector with a
// chaos plan (see common/fault.hpp for the JSON shape) and watch the
// serving stack retry, restart and degrade its way through it; the report
// then includes the outcome/recovery counters. --deadline-s, --capacity
// and --max-retries expose the matching scheduler fault policy.
//
// Pass --metrics-out PATH (and optionally --metrics-interval-s N, default
// 1.0) to have each serving loop periodically overwrite PATH with an
// llmpq-metrics/v1 JSON snapshot of its health monitor and engine stats.
//
// Pass --tenants N to add a multi-tenant section: the burst trace is
// striped across N weighted tenants and served under virtual-time fair
// sharing (DESIGN.md "Multi-tenant serving & fair sharing"), with a
// per-tenant SLO report at the end. --slo-s S sets tenant 1's latency SLO
// (tenant i gets S*i — the heaviest tenant carries the strictest target)
// and --class-bits B routes the lowest-weight tenant's request class to a
// uniform B-bit variant of the same model (B in {3, 4, 8, 16}).
//
// The final section demos the self-healing control loop: a sustained
// straggler is injected into stage 1's workers, the health monitor trips,
// and the Replanner + MigrationController migrate layers off the slow
// stage live — mid-trace, bit-exactly.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/args.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "cost/cost_provider.hpp"
#include "hw/cluster.hpp"
#include "runtime/weights.hpp"
#include "serve/degrade.hpp"
#include "serve/migration.hpp"
#include "serve/online_engine.hpp"
#include "serve/replanner.hpp"

namespace {

std::vector<llmpq::TokenId> random_prompt(llmpq::Rng& rng, int len,
                                          int vocab) {
  std::vector<llmpq::TokenId> p;
  for (int t = 0; t < len; ++t)
    p.push_back(static_cast<llmpq::TokenId>(rng.uniform_int(0, vocab - 1)));
  return p;
}

void print_report(const char* title, const llmpq::OnlineReport& rep) {
  std::printf("%s\n", title);
  std::printf("  completed %d requests in %.2f s (%.1f tokens/s)\n",
              rep.completed, rep.makespan_s, rep.throughput_tokens_per_s);
  std::printf("  latency     %s\n",
              llmpq::format_latency_summary(rep.latency).c_str());
  std::printf("  queue delay %s\n",
              llmpq::format_latency_summary(rep.queue_delay).c_str());
  std::printf("  prefill     %s\n",
              llmpq::format_latency_summary(rep.prefill).c_str());
  std::printf("  %zu dispatches:", rep.decisions.size());
  for (const llmpq::DispatchDecision& d : rep.decisions) {
    std::printf(" %s[%zu",
                d.phase == llmpq::ServePhase::kPrefillPass ? "P" : "D",
                d.request_ids.size());
    if (d.num_join > 0 && d.phase != llmpq::ServePhase::kPrefillPass)
      std::printf("+%dj", d.num_join);  // joins riding a decode round
    std::printf("]");
  }
  std::printf("\n");
  if (rep.preemptions > 0)
    std::printf("  %d preemption(s): KV pages evicted to pending, resumed "
                "via re-prefill\n",
                rep.preemptions);
  if (rep.timed_out || rep.rejected || rep.failed || rep.retries ||
      rep.engine_restarts || rep.degrades || rep.mem_faults)
    std::printf(
        "  faults: %d timed out, %d rejected, %d failed, %d retries, "
        "%d engine restarts, %d degrades, %d mem faults\n",
        rep.timed_out, rep.rejected, rep.failed, rep.retries,
        rep.engine_restarts, rep.degrades, rep.mem_faults);
  for (const llmpq::ReplanEvent& ev : rep.replans)
    std::printf("  replan @seq %d: %s on stage %d -> %s%s\n", ev.at_seq,
                llmpq::health_status_name(ev.status), ev.bottleneck_stage,
                ev.delta.describe().c_str(),
                ev.applied ? "" : " (not applied)");
  if (rep.migrations > 0)
    std::printf("  %d live migration(s): sessions re-prefilled on the new "
                "engine, outputs bit-exact\n",
                rep.migrations);
  std::printf("\n");
}

llmpq::FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw llmpq::Error("cannot open fault plan: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return llmpq::FaultPlan::from_json(text.str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llmpq;

  const ArgParser args(argc, argv);
  const auto trace_path = args.get("trace");
  if (trace_path) TraceSession::instance().start();

  // Chaos mode: arm the process-wide injector before the engine exists so
  // every compiled-in fault site sees the plan.
  if (const auto fault_path = args.get("faults")) {
    try {
      FaultInjector::instance().arm(load_fault_plan(*fault_path));
    } catch (const Error& e) {
      std::fprintf(stderr, "online_serve: %s\n", e.what());
      return 1;
    }
  }

  // A laptop-sized decoder-only model; serving behavior is independent of
  // scale, so small sizes keep the demo instant.
  ModelSpec spec;
  spec.name = "demo-serve";
  spec.family = "opt";
  spec.hidden = 64;
  spec.ffn = 256;
  spec.heads = 4;
  spec.layers = 6;
  spec.vocab = 256;
  spec.max_pos = 128;
  const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 8);
  const ModelWeights weights = build_random_model(spec, bits, 2024);
  PipelineEngine engine(weights, {{0, 3}, {3, 6}}, /*prefill_mb=*/2,
                        /*decode_mb=*/2);

  // A burst trace: 6 requests, mixed prompt/generation lengths, all
  // arriving at t=0 — the shape the sim-vs-runtime parity test uses.
  Rng rng(7);
  std::vector<OnlineTraceRequest> trace;
  for (int i = 0; i < 6; ++i) {
    OnlineTraceRequest t;
    t.arrival_s = 0.0;
    t.prompt = random_prompt(rng, 6 + 3 * i, spec.vocab);
    t.gen_tokens = 4 + i;
    trace.push_back(std::move(t));
  }

  OnlineEngineOptions opts;
  // Fault-tolerance knobs (defaults change nothing on a fault-free run).
  opts.scheduler.deadline_s =
      args.get_double("deadline-s", opts.scheduler.deadline_s);
  opts.scheduler.admission_capacity = static_cast<int>(
      args.get_long("capacity", opts.scheduler.admission_capacity));
  opts.scheduler.max_retries =
      static_cast<int>(args.get_long("max-retries", opts.scheduler.max_retries));
  if (args.has("faults")) opts.dispatch_deadline_s = 2.0;  // bound hangs
  // Observability: every serving loop below periodically overwrites this
  // path with an llmpq-metrics/v1 snapshot (the last section wins).
  if (const auto metrics = args.get("metrics-out")) opts.metrics_out = *metrics;
  opts.metrics_interval_s =
      args.get_double("metrics-interval-s", opts.metrics_interval_s);

  opts.scheduler.policy = SchedulerPolicy::kStaticBatching;
  opts.scheduler.batch_size = 4;
  opts.scheduler.max_wait_s = 0.05;
  print_report("static batching (batch_size=4, max_wait=50ms):",
               serve_trace(engine, trace, opts));

  opts.scheduler.policy = SchedulerPolicy::kIterationLevel;
  opts.scheduler.max_batch = 4;
  if (!engine.healthy()) engine.restart();  // a chaos run may break it
  print_report("iteration-level scheduling (max_batch=4):",
               serve_trace(engine, trace, opts));

  // Continuous batching: arrivals join the running decode batch between
  // steps instead of waiting for a prefill round, and a deliberately tight
  // KV page ledger forces the capacity planner to preempt the newest
  // sequence under memory pressure (it resumes bit-exactly via re-prefill).
  OnlineEngineOptions cont = opts;
  cont.scheduler.policy = SchedulerPolicy::kIterationLevel;
  cont.scheduler.exec = DecodeExec::kContinuous;
  cont.scheduler.max_batch = 4;
  cont.scheduler.kv_page_size = 4;
  cont.scheduler.kv_pages = 8;
  if (!engine.healthy()) engine.restart();
  print_report("continuous batching (max_batch=4, kv_pages=8):",
               serve_trace(engine, trace, cont));

  // Live mode: the engine's admission thread owns the scheduler; the stale
  // timer bounds a lone request's wait at arrival + max_wait_s.
  OnlineEngineOptions live = opts;
  live.scheduler.policy = SchedulerPolicy::kIterationLevel;
  live.scheduler.max_batch = 4;
  if (!engine.healthy()) engine.restart();
  OnlineEngine server(engine, live);
  for (int i = 0; i < 4; ++i)
    server.submit(random_prompt(rng, 8 + i, spec.vocab), 3);
  server.close();
  print_report("live submissions (iteration-level):", server.wait());

  // Multi-tenant fair sharing: stripe a fresh burst across N weighted
  // tenants (tenant 1 heaviest) and serve it under the virtual-time
  // fair-share scheduler. With --class-bits the lowest-weight tenant's
  // requests carry class 1, which the engine routes to a uniform B-bit
  // variant of the same model — adaptive quantization applied per request
  // class instead of per outage.
  if (const int n_tenants = static_cast<int>(args.get_long("tenants", 0));
      n_tenants > 0) {
    const double slo_s = args.get_double("slo-s", 0.75);
    const int class_bits = static_cast<int>(args.get_long("class-bits", 0));

    OnlineEngineOptions fair = opts;
    fair.scheduler.policy = SchedulerPolicy::kIterationLevel;
    fair.scheduler.exec = DecodeExec::kContinuous;
    fair.scheduler.max_batch = 4;
    fair.scheduler.kv_page_size = 4;
    fair.scheduler.kv_pages = 16;
    for (int i = 1; i <= n_tenants; ++i) {
      TenantSpec ts;
      ts.id = i;
      ts.weight = static_cast<double>(n_tenants - i + 1);
      ts.slo_s = slo_s * i;  // heaviest tenant, strictest target
      ts.name = "tenant-" + std::to_string(i);
      if (class_bits > 0 && i == n_tenants) ts.default_class = 1;
      fair.scheduler.tenants.push_back(ts);
    }

    std::unique_ptr<DegradeLadder> ladder;
    if (class_bits > 0) {
      DegradeStep rung;
      rung.layer_bits.assign(static_cast<std::size_t>(spec.layers),
                             class_bits);
      rung.prefill_micro_batch = 2;
      rung.decode_micro_batch = 2;
      ladder = std::make_unique<DegradeLadder>(
          spec, std::vector<std::pair<int, int>>{{0, 3}, {3, 6}}, 2024,
          std::vector<DegradeStep>{rung});
      fair.class_engine = [l = ladder.get()](int cls) {
        return l->engine_for_level(cls);
      };
    }

    std::vector<OnlineTraceRequest> mt_trace;
    for (int i = 0; i < 4 * n_tenants; ++i) {
      OnlineTraceRequest t;
      t.arrival_s = 0.0;
      t.prompt = random_prompt(rng, 6 + 3 * (i % 4), spec.vocab);
      t.gen_tokens = 4 + (i % 4);
      t.tenant_id = 1 + i % n_tenants;
      t.req_class =
          fair.scheduler.tenants[static_cast<std::size_t>(t.tenant_id - 1)]
              .default_class;
      mt_trace.push_back(std::move(t));
    }
    if (!engine.healthy()) engine.restart();
    const OnlineReport rep = serve_trace(engine, mt_trace, fair);
    std::string title = "multi-tenant fair sharing (" +
                        std::to_string(n_tenants) + " tenants, slo-s " +
                        std::to_string(slo_s) + "):";
    print_report(title.c_str(), rep);
    for (const TenantSummary& ts : rep.tenants)
      std::printf("  %-10s w=%-3g slo=%5.2fs  %d/%d completed, "
                  "attainment %.2f, latency %s\n",
                  ts.name.c_str(), ts.weight, ts.slo_s, ts.completed,
                  ts.submitted, ts.slo_attainment,
                  format_latency_summary(ts.latency).c_str());
    if (class_bits > 0)
      std::printf("  class 1 (tenant-%d) served on the uniform %d-bit "
                  "variant via class_engine routing\n",
                  n_tenants, class_bits);
    std::printf("\n");
  }

  // Self-healing control loop: arm a sustained straggler on stage 1's
  // workers (delay per micro-batch per layer, so the drag scales with the
  // layers the stage owns), then serve with the health monitor and the
  // re-planner wired in. Watch the replan events migrate layers off the
  // slow stage — the drag shrinks with each move, and outputs stay
  // bit-exact because boundary moves share the same weights.
  {
    FaultPlan slow_plan;
    FaultRule slow;
    slow.site = "stage.1.layer";
    slow.kind = FaultKind::kSlow;
    slow.delay_ms = 10.0;
    slow.after = 40;  // keep the health baseline window clean
    slow_plan.rules.push_back(slow);
    FaultInjector::instance().arm(slow_plan);

    const ClusterSpec cluster = make_cluster("demo", {{"T4-16G", 2}});
    const CostProvider cost(spec, cluster, CostMode::kProfiled);
    ExecutionPlan plan;
    plan.model_name = spec.name;
    plan.cluster_name = cluster.name;
    plan.workload.global_batch = 4;
    plan.workload.prompt_len = 32;
    plan.workload.gen_tokens = 16;
    plan.device_order = {0, 1};
    plan.boundaries = {0, 3, 6};
    plan.layer_bits = bits;
    plan.prefill_micro_batch = 2;
    plan.decode_micro_batch = 2;

    const Replanner replanner(cost, nullptr, /*theta=*/0.0);
    MigrationController controller(weights, plan, 2024);
    OnlineEngineOptions heal = opts;
    heal.scheduler.policy = SchedulerPolicy::kIterationLevel;
    heal.scheduler.max_batch = 4;
    heal.health.cooldown = 3;  // re-trip quickly so several repairs land
    heal.replan = controller.hook(replanner);
    std::vector<OnlineTraceRequest> long_trace;
    for (int i = 0; i < 4; ++i) {
      OnlineTraceRequest t;
      t.prompt = random_prompt(rng, 8, spec.vocab);
      t.gen_tokens = 16;
      long_trace.push_back(std::move(t));
    }
    if (!engine.healthy()) engine.restart();
    print_report("self-healing (kSlow straggler on stage 1 + re-planner):",
                 serve_trace(engine, long_trace, heal));
    std::printf("  final plan boundaries after migration:");
    for (int b : controller.plan().boundaries) std::printf(" %d", b);
    std::printf("\n\n");
    FaultInjector::instance().disarm();
  }

  if (trace_path) {
    TraceSession::instance().stop();
    if (!TraceSession::instance().write_chrome_trace_file(*trace_path))
      return 1;
    std::printf("wrote %s\n", trace_path->c_str());
  }
  return 0;
}
