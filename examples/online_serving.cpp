// Online serving walkthrough (the Sec. 7 discussion, made concrete): plan
// once with LLM-PQ, then serve a live ShareGPT-shaped request stream on
// that plan, comparing classic static batching against ORCA-style
// iteration-level scheduling as load ramps up.
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "sim/online_sim.hpp"

int main() {
  using namespace llmpq;

  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& model = model_registry_get(model_name);
  std::printf("online serving of %s on %s\n\n", model.name.c_str(),
              cluster.describe_devices().c_str());

  // 1. Offline planning exactly as before — the plan is workload-shaped
  //    for the padded offline batch, which doubles as the KV budget online.
  CostProvider cost(model, cluster, CostMode::kFitted);
  AssignerOptions options;
  options.solver = SolverKind::kHeuristic;
  const AssignerResult planned = assign(cost, options);
  std::printf("%s\n", planned.plan.to_string().c_str());

  // 2. A burst of chat traffic: bimodal prompt lengths, Poisson arrivals.
  Rng rng(42);
  const auto requests = generate_sharegpt_workload(rng, 100, 3.0, 512, 96);
  std::printf("workload: %zu requests over %.0f s, %.0f%% prompts < 128 "
              "tokens\n\n",
              requests.size(), requests.back().arrival_s,
              100.0 * fraction_below(requests, 128));

  // 3. Serve under both schedulers.
  Table t({"Scheduler", "Completed", "Makespan (s)", "Tokens/s",
           "Mean lat (s)", "P95 lat (s)"});
  for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                 SchedulerPolicy::kIterationLevel}) {
    OnlineSimOptions opt;
    opt.policy = policy;
    const OnlineSimResult r =
        simulate_online(model, cluster, planned.plan, requests, opt);
    if (!r.ok) {
      std::printf("serving failed: %s\n", r.error.c_str());
      return 1;
    }
    t.add_row({policy == SchedulerPolicy::kStaticBatching
                   ? "static batching"
                   : "iteration-level (ORCA)",
               std::to_string(r.completed), Table::fmt(r.makespan_s),
               Table::fmt(r.throughput_tokens_per_s),
               Table::fmt(r.mean_latency_s), Table::fmt(r.p95_latency_s)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\niteration-level scheduling reuses the LLM-PQ plan "
              "unchanged — the partition/precision decision is orthogonal "
              "to the request scheduler, as the paper's discussion "
              "argues.\n");
  return 0;
}
