// Offline batch generation with the real (CPU) runtime: build a small
// decoder-only model, write its checkpoint as module-level shards, plan a
// mixed-precision pipeline, load each stage with the on-the-fly quantizer,
// and generate tokens through the threaded pipeline engine — verifying the
// output against the single-threaded reference. This exercises the entire
// runtime half of LLM-PQ end to end.
#include <cstdio>
#include <filesystem>

#include "common/rng.hpp"
#include "runtime/engine.hpp"
#include "runtime/otf_quantizer.hpp"
#include "runtime/weights_io.hpp"

int main() {
  using namespace llmpq;

  // A laptop-sized decoder-only model (the runtime's numerics are identical
  // at any size; sizes here keep the demo instant).
  ModelSpec spec;
  spec.name = "demo-350m-scale";
  spec.family = "opt";
  spec.hidden = 128;
  spec.ffn = 512;
  spec.heads = 8;
  spec.layers = 8;
  spec.vocab = 512;
  spec.max_pos = 128;

  // The "assigner output" for a 2-stage pipeline: stage 0 runs layers 0-3
  // at 8-bit, stage 1 runs layers 4-7 mixing 16- and 4-bit.
  std::vector<int> bits = {8, 8, 8, 8, 16, 16, 4, 4};
  const std::vector<std::pair<int, int>> stages = {{0, 4}, {4, 8}};

  // 1. Write the checkpoint as per-layer shards (what `llmpq-dist` ships).
  const std::string dir =
      (std::filesystem::temp_directory_path() / "llmpq_offline_demo").string();
  std::filesystem::create_directories(dir);
  const std::size_t ckpt_bytes = write_random_checkpoint(dir, spec, 2024);
  std::printf("checkpoint: %zu layer shards, %.1f MB of FP32 masters in %s\n",
              static_cast<std::size_t>(spec.layers),
              static_cast<double>(ckpt_bytes) / 1e6, dir.c_str());

  // 2. On-the-fly quantized load (streaming, bounded DRAM).
  OtfOptions otf;
  otf.seed = 2024;
  otf.prefetch_depth = 2;
  OtfLoadStats stats;
  const ModelWeights weights =
      otf_load_model(dir, spec, bits, 0, spec.layers, otf, &stats);
  std::printf("on-the-fly load: %.1f MB streamed, peak DRAM %.1f MB "
              "(%.0f%% of the checkpoint), %.0f ms\n",
              static_cast<double>(stats.total_loaded_bytes) / 1e6,
              static_cast<double>(stats.peak_master_bytes) / 1e6,
              100.0 * static_cast<double>(stats.peak_master_bytes) /
                  static_cast<double>(stats.total_loaded_bytes),
              stats.load_wall_s * 1e3);

  // 3. The offline workload: 8 prompts padded to 16 tokens, generate 24.
  Rng rng(7);
  std::vector<std::vector<TokenId>> prompts(8);
  for (auto& p : prompts)
    for (int t = 0; t < 16; ++t)
      p.push_back(static_cast<TokenId>(rng.uniform_int(0, spec.vocab - 1)));

  // 4. Generate through the threaded pipeline (prefill micro-batch 2,
  //    decode micro-batch 4 — hybrid sizing as the planner prescribes).
  PipelineEngine engine(weights, stages, /*prefill_mb=*/2, /*decode_mb=*/4);
  const auto generated = engine.generate(prompts, 24);

  // 5. Cross-check against the single-threaded reference.
  const auto reference = reference_generate(weights, prompts, 24);
  bool identical = true;
  for (std::size_t b = 0; b < prompts.size(); ++b)
    identical = identical && generated[b] == reference[b];
  std::printf("pipeline output %s the single-threaded reference\n",
              identical ? "MATCHES" : "DIFFERS FROM");

  std::printf("\nfirst sequence, generated token ids: ");
  for (TokenId t : generated.front()) std::printf("%d ", t);
  std::printf("\n");

  // 6. Per-stage runtime metrics from the persistent engine.
  std::printf("\nruntime metrics:\n%s",
              format_engine_stats(engine.stats()).c_str());
  return identical ? 0 : 1;
}
