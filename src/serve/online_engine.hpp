#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/engine.hpp"
#include "serve/health.hpp"
#include "serve/replanner.hpp"
#include "serve/scheduler.hpp"

namespace llmpq {

/// Online serving loop over the real threaded `PipelineEngine`, driven by
/// the same `ServeScheduler` the online *simulator* uses — the policy code
/// (admission, batching, stale timer, queue-delay accounting) is shared,
/// so a fix lands in both back-ends at once and the sim-vs-runtime parity
/// test can assert identical admission order and batch composition on
/// identical traces.
///
/// Execution mapping (SchedulerOptions::exec picks the decode strategy;
/// it never changes which requests are batched, only how a dispatch runs):
///   * iteration-level + DecodeExec::kSession (default) — prefill
///     decisions begin persistent engine sessions and run one ragged
///     prefill; every decode round advances the active set by exactly one
///     token via `PipelineEngine::decode_step`, reusing all cached KV.
///   * static batching + kSession — one dispatch runs over ephemeral
///     sessions: a ragged batch prefill, then one decode round per
///     outstanding token with each request leaving at its own generation
///     length (no padded-shape work).
///   * kReplay — the historical execution kept as the benchmark baseline:
///     static batching is one padded `generate()` call (prefill +
///     padded_gen tokens); iteration-level re-runs the active set's full
///     padded contexts for one token per decode round, a prefill-shaped
///     pass per round with pad positions attended to.
///
/// Mixed-length batches are exact in session mode: ragged passes carry no
/// pad tokens, so each request reproduces its unbatched greedy
/// continuation bit-for-bit (the mixed-length regression test pins this
/// against `reference_generate`). Replay mode keeps the old limitation —
/// left-padded rows attend to their pad positions, so shorter requests can
/// diverge — which is why it exists only for benchmark comparison and
/// regression coverage, not serving.
///
/// Live mode: construct, submit() from any thread (arrival time = wall
/// clock), close(), then wait() for the report. A dedicated admission
/// thread owns the scheduler; submissions wake it through a condition
/// variable, and a kWait action sleeps until the stale deadline — the
/// scheduler's fixed timer is what bounds a lone request's wait at
/// `arrival + max_wait_s`.
///
/// Trace mode (`serve_trace`): replays a timestamped trace on a virtual
/// clock — arrivals advance it per the trace, executions advance it by the
/// measured wall time of the real engine call. Deterministic in decision
/// order for burst traces, which is what the parity test uses.

struct OnlineEngineOptions {
  SchedulerOptions scheduler;

  // ---- Fault-tolerance policy. Defaults change nothing: no dispatch
  // deadline, and the recovery paths only run after a dispatch fails.

  /// Wall-clock budget for each engine dispatch. On expiry the engine
  /// aborts the call (PipelineAbortError), the serving loop restarts it,
  /// and the scheduler retries/fails the affected requests. This is what
  /// bounds the damage of a dropped mailbox message or a wedged stage.
  double dispatch_deadline_s = std::numeric_limits<double>::infinity();
  /// Engine restarts allowed before the loop gives up and surfaces the
  /// last failure through wait().
  int max_engine_restarts = 8;
  /// Memory faults (std::bad_alloc from a dispatch) tolerated before the
  /// degrade hook is consulted.
  int degrade_after_mem_faults = 2;
  /// Graceful-degradation ladder: called with level 1, 2, ... after
  /// repeated memory faults; returns a replacement engine built from a
  /// cheaper plan (next-lower bitwidth, halved micro-batch) or nullptr
  /// when out of options. The caller retains ownership and must keep the
  /// replacement alive until wait() returns. The returned engine is
  /// validated before the swap (same vocab and layer count, healthy) —
  /// see validate_replacement_engine; a mismatch is a terminal serving
  /// error, not a silent swap.
  std::function<PipelineEngine*(int level)> degrade;

  // ---- Online control loop (DESIGN.md "Online control loop & elastic
  // migration"). Off unless `replan` is set; `health` then tunes the
  // monitor that feeds it one sample per dispatch.

  /// Health-monitor knobs (baseline warmup, straggler ratio, hysteresis,
  /// cooldown). Defaults are the parity-tested configuration.
  HealthMonitorOptions health;
  /// Re-plan hook, consulted on every non-healthy verdict: returns the
  /// PlanDelta it decided on and, when it applied the delta, a validated
  /// replacement engine the loop migrates onto live (sessions are
  /// released and rebuilt by re-prefill on the new engine — bit-exact
  /// under greedy sampling for bit-preserving deltas). The caller retains
  /// engine ownership; MigrationController::hook is the canonical
  /// implementation.
  std::function<ReplanOutcome(const HealthVerdict&)> replan;

  /// When non-empty, the serving loop periodically (every
  /// `metrics_interval_s` of its clock) overwrites this path with an
  /// llmpq-metrics/v1 JSON snapshot of the health monitor + engine stats
  /// plus the request-latency summary so far; a final snapshot is written
  /// when the loop drains.
  std::string metrics_out;
  double metrics_interval_s = 1.0;

  /// Per-class engine routing (multi-tenant request classes): rows whose
  /// DispatchDecision::classes entry is > 0 execute on
  /// `class_engine(cls)` instead of the base engine — the adaptive-
  /// quantization story applied per request class, with
  /// DegradeLadder::engine_for_level as the canonical variant source
  /// (stable addresses, caller-owned). Returning nullptr falls back to
  /// the base engine. Routing never changes *which* rows are batched
  /// (scheduling stays class-blind beyond the stamp), so sim-vs-runtime
  /// decision parity is unaffected; only execution placement moves.
  std::function<PipelineEngine*(int cls)> class_engine;
};

/// Compatibility check for a replacement engine before the serving loop
/// swaps it in (degrade and replan paths both run it): same vocabulary,
/// same total layer count, and healthy. Returns an empty string when
/// compatible, else a human-readable mismatch description.
std::string validate_replacement_engine(const PipelineEngine& current,
                                        const PipelineEngine& next);

struct OnlineTraceRequest {
  double arrival_s = 0.0;
  std::vector<TokenId> prompt;
  int gen_tokens = 0;
  int tenant_id = 0;  ///< ServeRequest::tenant_id (multi-tenant runs)
  int req_class = 0;  ///< ServeRequest::req_class (class_engine routing)
};

struct OnlineReport {
  int completed = 0;  ///< requests served normally (outcome kCompleted)
  double makespan_s = 0.0;
  double throughput_tokens_per_s = 0.0;  ///< useful (unpadded) tokens
  LatencySummary latency;      ///< arrival -> last token (completed only)
  LatencySummary queue_delay;  ///< arrival -> admission (no prefill inside)
  LatencySummary prefill;      ///< prefill pass time per request
  std::vector<RequestStats> requests;       ///< completion order
  std::vector<DispatchDecision> decisions;  ///< dispatch order (parity key)
  std::vector<std::vector<TokenId>> generated;  ///< indexed by request id

  // ---- Re-plan decision log. Joins `decisions` in the sim-vs-runtime
  // parity contract: on identical traces with identical fault plans and
  // control-loop options, both back-ends must produce the same events in
  // the same order. Compared fields (ReplanEvent::same_decision): at_seq
  // (the DispatchDecision::seq the verdict tripped on), status,
  // bottleneck_stage, applied, and the structural PlanDelta fields (kind,
  // layer, from/to stage, new_bits, micro-batches). Severities and
  // objective scores are clock-dependent and deliberately excluded.
  std::vector<ReplanEvent> replans;
  int migrations = 0;  ///< applied deltas (engine swaps on the runtime)

  // ---- Fault accounting (all zero on a fault-free run).
  int timed_out = 0;        ///< requests past deadline_s
  int rejected = 0;         ///< bounced by the admission bound
  int failed = 0;           ///< exhausted max_retries
  int retries = 0;          ///< total dispatch retries consumed
  int engine_restarts = 0;  ///< PipelineEngine::restart() invocations
  int degrades = 0;         ///< degradation-ladder steps taken
  int mem_faults = 0;       ///< std::bad_alloc dispatches observed
  int preemptions = 0;      ///< capacity-planner evictions (kContinuous)
  int forced_joins = 0;     ///< starvation-bound admissions (kContinuous)

  /// Per-tenant outcome/latency/SLO summaries (one synthetic row when no
  /// tenants are configured). Same shape as OnlineSimResult::tenants.
  std::vector<TenantSummary> tenants;
};

class OnlineEngine {
 public:
  OnlineEngine(PipelineEngine& engine, const OnlineEngineOptions& options);
  ~OnlineEngine();

  OnlineEngine(const OnlineEngine&) = delete;
  OnlineEngine& operator=(const OnlineEngine&) = delete;

  /// Enqueues a request (arrival = now on the engine's wall clock) and
  /// wakes the admission thread. Returns the request id. Thread-safe.
  /// Fails fast once the serving loop has died: after the loop stores its
  /// terminal error, every submit() throws immediately (naming the
  /// original failure) instead of silently queueing work no one will run.
  /// `tenant_id`/`req_class` feed multi-tenant fair sharing and per-class
  /// engine routing; the defaults are the single-tenant legacy behavior.
  int submit(std::vector<TokenId> prompt, int gen_tokens, int tenant_id = 0,
             int req_class = 0);

  /// Declares the request stream finished; the admission thread exits once
  /// everything queued has been served.
  void close();

  /// Blocks until the admission thread drains (requires close() first) and
  /// returns the serving report. Idempotent: safe to call repeatedly and
  /// from multiple threads (the thread join happens exactly once); a
  /// failed run rethrows the same error each time.
  OnlineReport wait();

 private:
  void serve_loop();

  PipelineEngine* engine_;  ///< degradation can swap in a replacement
  OnlineEngineOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  ServeScheduler scheduler_;
  std::deque<std::pair<std::vector<TokenId>, int>> prompts_;  ///< by id
  std::deque<std::vector<TokenId>> generated_;                ///< by id
  StopwatchNs clock_;
  double makespan_s_ = 0.0;
  bool done_ = false;
  bool joined_ = false;       ///< server_ join happened (wait idempotence)
  std::exception_ptr error_;  ///< loop failure, rethrown by wait()
  std::string error_what_;    ///< its message, for submit() fail-fast
  int engine_restarts_ = 0;
  int degrades_ = 0;
  int mem_faults_ = 0;        ///< since the last degrade step
  int total_mem_faults_ = 0;
  int degrade_level_ = 0;
  std::vector<ReplanEvent> replans_;  ///< control-loop decision log
  int migrations_ = 0;
  std::thread server_;  ///< started last, joined in wait()/destructor
};

/// Replays `trace` against `engine` on a virtual clock (see above).
OnlineReport serve_trace(PipelineEngine& engine,
                         const std::vector<OnlineTraceRequest>& trace,
                         const OnlineEngineOptions& options = {});

}  // namespace llmpq
