#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/engine.hpp"
#include "serve/scheduler.hpp"

namespace llmpq {

/// Online serving loop over the real threaded `PipelineEngine`, driven by
/// the same `ServeScheduler` the online *simulator* uses — the policy code
/// (admission, batching, stale timer, queue-delay accounting) is shared,
/// so a fix lands in both back-ends at once and the sim-vs-runtime parity
/// test can assert identical admission order and batch composition on
/// identical traces.
///
/// Execution mapping:
///   * static batching — one dispatch = one padded `generate()` call
///     (prefill + padded_gen tokens), exactly classic static batching;
///   * iteration-level — prefill decisions run `generate(prompts, 1)`;
///     each decode round re-runs the active set's full contexts for one
///     token (replay decode). Without incremental KV reuse across
///     decisions this costs a prefill-shaped pass per round; a step-level
///     engine session API is the planned optimization (DESIGN.md).
///
/// Mixed-length fidelity limit: within a padded batch, shorter sequences
/// are left-padded with their own first token so the sampled last position
/// is the true last token, but `PipelineEngine::generate` applies no
/// attention masking, so those pad positions ARE attended to. Uniform-
/// length batches reproduce each request's unbatched greedy continuation
/// exactly (`ReplayDecodeMatchesReferenceGreedy` pins this); in mixed-
/// length batches shorter requests' tokens can diverge from their
/// unbatched continuation. Padding-aware masking (or length-grouped
/// dispatch) is the planned fix, alongside the step-level session API.
///
/// Live mode: construct, submit() from any thread (arrival time = wall
/// clock), close(), then wait() for the report. A dedicated admission
/// thread owns the scheduler; submissions wake it through a condition
/// variable, and a kWait action sleeps until the stale deadline — the
/// scheduler's fixed timer is what bounds a lone request's wait at
/// `arrival + max_wait_s`.
///
/// Trace mode (`serve_trace`): replays a timestamped trace on a virtual
/// clock — arrivals advance it per the trace, executions advance it by the
/// measured wall time of the real engine call. Deterministic in decision
/// order for burst traces, which is what the parity test uses.

struct OnlineEngineOptions {
  SchedulerOptions scheduler;
};

struct OnlineTraceRequest {
  double arrival_s = 0.0;
  std::vector<TokenId> prompt;
  int gen_tokens = 0;
};

struct OnlineReport {
  int completed = 0;
  double makespan_s = 0.0;
  double throughput_tokens_per_s = 0.0;  ///< useful (unpadded) tokens
  LatencySummary latency;      ///< arrival -> last token
  LatencySummary queue_delay;  ///< arrival -> admission (no prefill inside)
  LatencySummary prefill;      ///< prefill pass time per request
  std::vector<RequestStats> requests;       ///< completion order
  std::vector<DispatchDecision> decisions;  ///< dispatch order (parity key)
  std::vector<std::vector<TokenId>> generated;  ///< indexed by request id
};

class OnlineEngine {
 public:
  OnlineEngine(PipelineEngine& engine, const OnlineEngineOptions& options);
  ~OnlineEngine();

  OnlineEngine(const OnlineEngine&) = delete;
  OnlineEngine& operator=(const OnlineEngine&) = delete;

  /// Enqueues a request (arrival = now on the engine's wall clock) and
  /// wakes the admission thread. Returns the request id. Thread-safe.
  int submit(std::vector<TokenId> prompt, int gen_tokens);

  /// Declares the request stream finished; the admission thread exits once
  /// everything queued has been served.
  void close();

  /// Blocks until the admission thread drains (requires close() first) and
  /// returns the serving report.
  OnlineReport wait();

 private:
  void serve_loop();

  PipelineEngine& engine_;
  OnlineEngineOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  ServeScheduler scheduler_;
  std::deque<std::pair<std::vector<TokenId>, int>> prompts_;  ///< by id
  std::deque<std::vector<TokenId>> generated_;                ///< by id
  StopwatchNs clock_;
  double makespan_s_ = 0.0;
  bool done_ = false;
  std::exception_ptr error_;  ///< engine failure, rethrown by wait()
  std::thread server_;  ///< started last, joined in wait()/destructor
};

/// Replays `trace` against `engine` on a virtual clock (see above).
OnlineReport serve_trace(PipelineEngine& engine,
                         const std::vector<OnlineTraceRequest>& trace,
                         const OnlineEngineOptions& options = {});

}  // namespace llmpq
