#include "serve/online_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <new>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"

namespace llmpq {

namespace {

/// Left-pads each row to `len` with its own first token: the engine needs
/// one shared padded length, and left-padding keeps the sampled last
/// position the request's true last token. The engine applies no attention
/// masking, so pad tokens of shorter rows are attended to — see the
/// mixed-length fidelity note in online_engine.hpp.
std::vector<std::vector<TokenId>> pad_left(
    const std::vector<std::vector<TokenId>>& rows, std::size_t len) {
  std::vector<std::vector<TokenId>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    check_arg(!r.empty() && r.size() <= len,
              "OnlineEngine: sequence length exceeds the padded shape");
    std::vector<TokenId> padded(len - r.size(), r.front());
    padded.insert(padded.end(), r.begin(), r.end());
    out.push_back(std::move(padded));
  }
  return out;
}

struct DecisionTiming {
  double total_s = 0.0;
  double prefill_s = -1.0;  ///< prefill share of a kPrefillPass decision
};

/// Engine input for one scheduler decision, snapshotted from the request
/// tables: padded rows, the per-call generation length, and how many output
/// tokens each row contributes to its request. Built while the request
/// tables are stable — the live engine holds its lock, so concurrent
/// submit() calls cannot touch the deques mid-read.
struct DecisionInputs {
  std::vector<std::vector<TokenId>> padded;
  int gen_call = 1;
  std::vector<std::size_t> take;  ///< per-row output tokens to keep
};

DecisionInputs prepare_decision(
    SchedulerPolicy policy, const DispatchDecision& d,
    const std::deque<std::pair<std::vector<TokenId>, int>>& prompts,
    const std::deque<std::vector<TokenId>>& generated) {
  DecisionInputs in;
  std::vector<std::vector<TokenId>> rows;
  rows.reserve(d.request_ids.size());
  in.take.reserve(d.request_ids.size());
  if (d.phase == ServePhase::kPrefillPass) {
    in.gen_call = policy == SchedulerPolicy::kStaticBatching
                      ? std::max(1, d.padded_gen)
                      : 1;
    for (int id : d.request_ids) {
      const auto& p = prompts[static_cast<std::size_t>(id)];
      rows.push_back(p.first);
      const int want = policy == SchedulerPolicy::kStaticBatching
                           ? p.second
                           : std::min(1, p.second);
      in.take.push_back(static_cast<std::size_t>(std::max(0, want)));
    }
    in.padded = pad_left(rows, static_cast<std::size_t>(d.padded_prompt));
  } else {
    // Replay decode: re-run each active context for one token (see the
    // execution-mapping and fidelity notes in the header).
    for (int id : d.request_ids) {
      const std::size_t sid = static_cast<std::size_t>(id);
      std::vector<TokenId> seq = prompts[sid].first;
      seq.insert(seq.end(), generated[sid].begin(), generated[sid].end());
      rows.push_back(std::move(seq));
      in.take.push_back(1);
    }
    in.padded = pad_left(rows, static_cast<std::size_t>(d.max_context));
  }
  return in;
}

struct DecisionRun {
  std::vector<std::vector<TokenId>> out;  ///< engine output, row-aligned
  DecisionTiming timing;
};

/// Runs the engine on prepared inputs. Touches no request tables, so the
/// live engine calls it with its lock released.
DecisionRun execute_decision(PipelineEngine& engine, ServePhase phase,
                             const DecisionInputs& in,
                             const GenerateOptions& gopts) {
  // Chaos site for serving-layer faults (a throw here fails the dispatch
  // without involving the pipeline at all).
  FAULT_POINT("serve.dispatch");
  DecisionRun run;
  StopwatchNs wall;
  const double prefill_before = engine.stats().prefill.seconds;
  run.out = engine.generate(in.padded, in.gen_call, gopts);
  run.timing.total_s = wall.elapsed_s();
  if (phase == ServePhase::kPrefillPass)
    run.timing.prefill_s =
        std::max(0.0, engine.stats().prefill.seconds - prefill_before);
  return run;
}

/// Shared recovery policy for the live loop and trace replay: counts
/// memory faults, walks the degradation ladder, and restarts a broken
/// engine within the restart budget. Returns false when the budget is
/// exhausted and the caller should surface the error.
struct FailureGovernor {
  const OnlineEngineOptions& options;
  PipelineEngine* engine;
  int engine_restarts = 0;
  int degrades = 0;
  int mem_faults = 0;  ///< since the last degrade step
  int total_mem_faults = 0;
  int degrade_level = 0;

  bool handle(bool mem_fault) {
    if (mem_fault) {
      ++mem_faults;
      ++total_mem_faults;
      TRACE_INSTANT("serve", "mem-fault");
      if (options.degrade &&
          mem_faults >= options.degrade_after_mem_faults) {
        if (PipelineEngine* next = options.degrade(++degrade_level)) {
          // Step down the ladder (lower bitwidth / smaller micro-batch)
          // and give the cheaper engine a fresh fault budget.
          engine = next;
          ++degrades;
          mem_faults = 0;
          TRACE_INSTANT("serve", "degrade");
        }
      }
    }
    if (!engine->healthy()) {
      if (engine_restarts >= options.max_engine_restarts) return false;
      engine->restart();
      ++engine_restarts;
      TRACE_INSTANT("serve", "engine-restart");
    }
    return true;
  }
};

std::string describe_exception(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Appends each row's kept output tokens to its request's generated row.
/// Called with the request tables stable again (the live engine re-takes
/// its lock first).
void commit_decision(const DispatchDecision& d, const DecisionInputs& in,
                     const std::vector<std::vector<TokenId>>& out,
                     std::deque<std::vector<TokenId>>& generated) {
  for (std::size_t i = 0; i < d.request_ids.size(); ++i) {
    const std::size_t id = static_cast<std::size_t>(d.request_ids[i]);
    const std::size_t take = std::min(out[i].size(), in.take[i]);
    generated[id].insert(generated[id].end(), out[i].begin(),
                         out[i].begin() + static_cast<std::ptrdiff_t>(take));
  }
}

OnlineReport build_report(const ServeScheduler& scheduler, double makespan_s,
                          const std::deque<std::vector<TokenId>>& generated,
                          const FailureGovernor* gov = nullptr) {
  OnlineReport rep;
  rep.requests = scheduler.finished();
  rep.decisions = scheduler.decision_log();
  rep.makespan_s = makespan_s;
  // Throughput and the latency summaries cover served requests only —
  // folding rejected/timed-out requests in would make a lossy run look
  // faster, not slower.
  std::int64_t tokens_out = 0;
  std::vector<double> latencies, queue_delays, prefills;
  latencies.reserve(rep.requests.size());
  queue_delays.reserve(rep.requests.size());
  prefills.reserve(rep.requests.size());
  for (const RequestStats& r : rep.requests) {
    if (r.outcome != RequestOutcome::kCompleted) continue;
    ++rep.completed;
    tokens_out += r.gen_tokens;
    latencies.push_back(r.finish_s - r.arrival_s);
    queue_delays.push_back(r.queue_delay_s);
    prefills.push_back(r.prefill_s);
  }
  const OutcomeCounts oc = scheduler.outcomes();
  rep.timed_out = oc.timed_out;
  rep.rejected = oc.rejected;
  rep.failed = oc.failed;
  rep.retries = oc.retries;
  if (gov != nullptr) {
    rep.engine_restarts = gov->engine_restarts;
    rep.degrades = gov->degrades;
    rep.mem_faults = gov->total_mem_faults;
  }
  rep.throughput_tokens_per_s =
      makespan_s > 0.0 ? static_cast<double>(tokens_out) / makespan_s : 0.0;
  rep.latency = summarize_latency(std::move(latencies));
  rep.queue_delay = summarize_latency(std::move(queue_delays));
  rep.prefill = summarize_latency(std::move(prefills));
  rep.generated.assign(generated.begin(), generated.end());
  return rep;
}

}  // namespace

OnlineEngine::OnlineEngine(PipelineEngine& engine,
                           const OnlineEngineOptions& options)
    : engine_(&engine), options_(options), scheduler_(options.scheduler) {
  // The scheduler's clock (clock_) reads zero right now, so now_s() is the
  // offset that aligns its lifecycle events with the wall-clock spans.
  scheduler_.enable_trace(trace_pids::kServe, TraceSession::now_s());
  // Start the admission thread last so a constructor failure above never
  // leaves it running (same RAII discipline as the pipeline engine).
  server_ = std::thread([this] { serve_loop(); });
}

OnlineEngine::~OnlineEngine() {
  close();
  if (server_.joinable()) server_.join();
}

int OnlineEngine::submit(std::vector<TokenId> prompt, int gen_tokens) {
  TRACE_INSTANT("serve", "submit");
  std::unique_lock<std::mutex> lk(mu_);
  // Fail fast once the serving loop has died: queueing more work would
  // just strand it (nobody will ever dispatch), and the caller would only
  // learn about the failure at wait().
  if (error_)
    throw Error("OnlineEngine::submit: serving loop failed: " + error_what_);
  const int id = static_cast<int>(prompts_.size());
  ServeRequest r;
  r.id = id;
  r.arrival_s = clock_.elapsed_s();
  r.prompt_len = static_cast<int>(prompt.size());
  r.gen_tokens = gen_tokens;
  scheduler_.submit(r);  // validates shape and stream state
  prompts_.emplace_back(std::move(prompt), gen_tokens);
  generated_.emplace_back();
  lk.unlock();
  cv_.notify_all();
  return id;
}

void OnlineEngine::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    scheduler_.close();
  }
  cv_.notify_all();
}

OnlineReport OnlineEngine::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  check_arg(scheduler_.closed(), "OnlineEngine::wait(): close() first");
  cv_.wait(lk, [&] { return done_; });
  // Join exactly once, flagged under the lock: two threads calling wait()
  // concurrently must not both reach std::thread::join() (UB on the
  // second), and repeated waits after a failure must keep rethrowing the
  // same error instead of tripping over a dead thread.
  if (!joined_) {
    joined_ = true;
    lk.unlock();
    server_.join();
    lk.lock();
  }
  if (error_) std::rethrow_exception(error_);
  FailureGovernor gov{options_, engine_};
  gov.engine_restarts = engine_restarts_;
  gov.degrades = degrades_;
  gov.total_mem_faults = total_mem_faults_;
  return build_report(scheduler_, makespan_s_, generated_, &gov);
}

void OnlineEngine::serve_loop() {
  if (TraceSession::enabled()) TraceSession::set_thread_name("serve-loop");
  GenerateOptions gopts;
  gopts.deadline_s = options_.dispatch_deadline_s;
  FailureGovernor gov{options_, engine_};
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const double now = clock_.elapsed_s();
    SchedulerAction a = scheduler_.next(now);
    TRACE_COUNTER("serve", "pending", scheduler_.pending());
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      // Either block for new submissions (unbounded wait) or sleep until
      // the scheduler's deadline — the stale timer that bounds a lone
      // request's wait at arrival + max_wait_s, or a retry-backoff or
      // request-deadline wakeup. Submissions wake us early.
      if (std::isinf(a.wait_until))
        cv_.wait(lk);
      else
        cv_.wait_for(lk, std::chrono::duration<double>(
                             std::max(1e-4, a.wait_until - now)));
      continue;
    }
    const DispatchDecision d = std::move(a.decision);
    // Snapshot the engine inputs while still holding mu_: submit() may
    // concurrently grow prompts_/generated_, and deque growth can
    // reallocate the internal block map that operator[] traverses, so an
    // unsynchronized read during emplace_back is a data race.
    const DecisionInputs inputs =
        prepare_decision(options_.scheduler.policy, d, prompts_, generated_);
    lk.unlock();
    const double start = clock_.elapsed_s();
    DecisionRun run;
    bool mem_fault = false;
    std::exception_ptr err;
    try {
      TRACE_SPAN1("serve",
                  d.phase == ServePhase::kPrefillPass ? "execute-prefill"
                                                      : "execute-decode",
                  "batch", d.request_ids.size());
      run = execute_decision(*gov.engine, d.phase, inputs, gopts);
    } catch (const std::bad_alloc&) {
      mem_fault = true;
      err = std::current_exception();
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err) {
      // Hand the failed dispatch back to the scheduler (retry with
      // backoff, kFailed past the cap), then recover the engine: restart
      // it if the fault broke it, step down the degradation ladder after
      // repeated memory faults. Only an exhausted restart budget kills
      // the loop — that terminal error is what submit()/wait() surface.
      scheduler_.fail(d, clock_.elapsed_s());
      const bool recovered = gov.handle(mem_fault);
      engine_ = gov.engine;
      engine_restarts_ = gov.engine_restarts;
      degrades_ = gov.degrades;
      total_mem_faults_ = gov.total_mem_faults;
      if (!recovered) {
        error_ = err;
        error_what_ = describe_exception(err);
        break;
      }
      continue;
    }
    commit_decision(d, inputs, run.out, generated_);
    const double finish = clock_.elapsed_s();
    const double prefill_end =
        d.phase == ServePhase::kPrefillPass && run.timing.prefill_s >= 0.0
            ? start + run.timing.prefill_s
            : -1.0;
    scheduler_.complete(d, finish, prefill_end);
    makespan_s_ = finish;
  }
  done_ = true;
  lk.unlock();
  cv_.notify_all();
}

OnlineReport serve_trace(PipelineEngine& engine,
                         const std::vector<OnlineTraceRequest>& trace,
                         const OnlineEngineOptions& options) {
  ServeScheduler scheduler(options.scheduler);
  // Trace-replay timestamps are virtual (the trace's own clock), so no
  // offset: the serving tracks start at t=0 alongside the session.
  scheduler.enable_trace(trace_pids::kServe, 0.0);
  std::deque<std::pair<std::vector<TokenId>, int>> prompts;
  std::deque<std::vector<TokenId>> generated;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const OnlineTraceRequest& t = trace[i];
    ServeRequest r;
    r.id = static_cast<int>(i);
    r.arrival_s = t.arrival_s;
    r.prompt_len = static_cast<int>(t.prompt.size());
    r.gen_tokens = t.gen_tokens;
    scheduler.submit(r);
    prompts.emplace_back(t.prompt, t.gen_tokens);
    generated.emplace_back();
  }
  scheduler.close();

  // Virtual clock: arrivals advance it per the trace; each decision
  // advances it by the measured wall time of the real engine call.
  GenerateOptions gopts;
  gopts.deadline_s = options.dispatch_deadline_s;
  FailureGovernor gov{options, &engine};
  double t = 0.0;
  for (;;) {
    SchedulerAction a = scheduler.next(t);
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      check_arg(std::isfinite(a.wait_until),
                "serve_trace: scheduler blocked on a closed stream");
      t = std::max(t, a.wait_until);
      continue;
    }
    const DispatchDecision d = std::move(a.decision);
    const DecisionInputs inputs =
        prepare_decision(options.scheduler.policy, d, prompts, generated);
    DecisionRun run;
    bool mem_fault = false;
    std::exception_ptr err;
    StopwatchNs wall;
    try {
      run = execute_decision(*gov.engine, d.phase, inputs, gopts);
    } catch (const std::bad_alloc&) {
      mem_fault = true;
      err = std::current_exception();
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      // Same recovery policy as the live loop, on the virtual clock: the
      // failed call's wall time still advances it so retried dispatches
      // do not appear free.
      t += wall.elapsed_s();
      scheduler.fail(d, t);
      if (!gov.handle(mem_fault)) std::rethrow_exception(err);
      continue;
    }
    commit_decision(d, inputs, run.out, generated);
    const double finish = t + run.timing.total_s;
    const double prefill_end =
        d.phase == ServePhase::kPrefillPass && run.timing.prefill_s >= 0.0
            ? t + run.timing.prefill_s
            : -1.0;
    scheduler.complete(d, finish, prefill_end);
    t = finish;
  }
  return build_report(scheduler, t, generated, &gov);
}

}  // namespace llmpq
