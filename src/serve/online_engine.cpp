#include "serve/online_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <new>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/trace.hpp"

namespace llmpq {

namespace {

/// Left-pads each row to `len` with its own first token (replay execution
/// only): generate() needs one shared padded length, and left-padding
/// keeps the sampled last position the request's true last token. The
/// padded positions ARE attended to, which is the mixed-length fidelity
/// gap the session path closes — see the execution-mapping note in
/// online_engine.hpp.
std::vector<std::vector<TokenId>> pad_left(
    const std::vector<std::vector<TokenId>>& rows, std::size_t len) {
  std::vector<std::vector<TokenId>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    check_arg(!r.empty() && r.size() <= len,
              "OnlineEngine: sequence length exceeds the padded shape");
    std::vector<TokenId> padded(len - r.size(), r.front());
    padded.insert(padded.end(), r.begin(), r.end());
    out.push_back(std::move(padded));
  }
  return out;
}

struct DecisionTiming {
  double total_s = 0.0;
  double prefill_s = -1.0;  ///< prefill share of a kPrefillPass decision
};

/// Engine input for one scheduler decision, snapshotted from the request
/// tables: the unpadded per-request rows (prompt for a prefill pass, full
/// context for a replay decode round), their padded counterpart when the
/// execution mode needs one, and how many output tokens each row
/// contributes to its request. Built while the request tables are stable —
/// the live engine holds its lock, so concurrent submit() calls cannot
/// touch the deques mid-read.
struct DecisionInputs {
  std::vector<std::vector<TokenId>> rows;    ///< unpadded, row-aligned
  std::vector<std::vector<TokenId>> padded;  ///< replay execution only
  int gen_call = 1;                          ///< replay: generate() length
  std::vector<std::size_t> take;  ///< per-row output tokens to keep
};

DecisionInputs prepare_decision(
    SchedulerPolicy policy, DecodeExec exec, const DispatchDecision& d,
    const std::deque<std::pair<std::vector<TokenId>, int>>& prompts,
    const std::deque<std::vector<TokenId>>& generated) {
  DecisionInputs in;
  in.rows.reserve(d.request_ids.size());
  in.take.reserve(d.request_ids.size());
  if (exec == DecodeExec::kContinuous) {
    // Continuous rounds mix decoding rows with joining rows (fresh
    // prompts and preempt-resumes). Every row's engine input is its full
    // context so far — for a fresh join that is just its prompt — and
    // every row yields at most one kept token this iteration.
    for (int id : d.request_ids) {
      const std::size_t sid = static_cast<std::size_t>(id);
      std::vector<TokenId> seq = prompts[sid].first;
      seq.insert(seq.end(), generated[sid].begin(), generated[sid].end());
      in.rows.push_back(std::move(seq));
      const int want =
          prompts[sid].second - static_cast<int>(generated[sid].size());
      in.take.push_back(
          static_cast<std::size_t>(std::clamp(want, 0, 1)));
    }
    return in;
  }
  if (d.phase == ServePhase::kPrefillPass) {
    in.gen_call = policy == SchedulerPolicy::kStaticBatching
                      ? std::max(1, d.padded_gen)
                      : 1;
    for (int id : d.request_ids) {
      const auto& p = prompts[static_cast<std::size_t>(id)];
      in.rows.push_back(p.first);
      const int want = policy == SchedulerPolicy::kStaticBatching
                           ? p.second
                           : std::min(1, p.second);
      in.take.push_back(static_cast<std::size_t>(std::max(0, want)));
    }
    if (exec == DecodeExec::kReplay)
      in.padded = pad_left(in.rows, static_cast<std::size_t>(d.padded_prompt));
  } else {
    // Decode round: each row's full context so far. The session path needs
    // it only to rebuild a lost session; replay re-runs it wholesale.
    for (int id : d.request_ids) {
      const std::size_t sid = static_cast<std::size_t>(id);
      std::vector<TokenId> seq = prompts[sid].first;
      seq.insert(seq.end(), generated[sid].begin(), generated[sid].end());
      in.rows.push_back(std::move(seq));
      in.take.push_back(1);
    }
    if (exec == DecodeExec::kReplay)
      in.padded = pad_left(in.rows, static_cast<std::size_t>(d.max_context));
  }
  return in;
}

struct DecisionRun {
  std::vector<std::vector<TokenId>> out;  ///< engine output, row-aligned
  DecisionTiming timing;
  std::vector<double> stage_busy_s;  ///< per-stage attribution (health)
};

/// Serving-layer per-stage fault sites ("serve.stage.<p>"): evaluated
/// exactly once per dispatch per engine stage, mirroring the check the
/// online simulator runs per decision per plan stage — one fault plan
/// drives the same straggler signal through both control loops. The
/// runtime sleeps for real here and reports the injected delay so the
/// health monitor can attribute it to the stage; throw/alloc rules fail
/// the dispatch like any other serving fault.
std::vector<double> check_serve_stage_sites(int num_stages) {
  std::vector<double> delays(static_cast<std::size_t>(num_stages), 0.0);
  if (!FaultInjector::armed()) return delays;
  for (int p = 0; p < num_stages; ++p) {
    const std::string site = "serve.stage." + std::to_string(p);
    const FaultAction action = FaultInjector::check(site.c_str());
    switch (action.kind) {
      case FaultKind::kNone:
      case FaultKind::kDrop:
        break;
      case FaultKind::kDelay:
      case FaultKind::kSlow:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(action.delay_s));
        delays[static_cast<std::size_t>(p)] += action.delay_s;
        break;
      case FaultKind::kThrow:
        throw InjectedFault(site, action.rule ? action.rule->message : "");
      case FaultKind::kAllocFail:
        throw std::bad_alloc();
    }
  }
  return delays;
}

/// Maps request ids to persistent engine sessions for the iteration-level
/// session path. Prefill decisions begin sessions; every decode round
/// advances them by one token with the KV cache intact. Retries are
/// idempotent: the decision's per-request `contexts` say exactly how far
/// each session should be, so a row whose session already advanced past a
/// half-failed round reuses its sampled token instead of advancing twice,
/// and a row whose session is gone (degrade step swapped the engine) is
/// rebuilt from its full context — prefilling that context yields exactly
/// the round's greedy token.
class SessionExecutor {
 public:
  /// Per-class engine routing (OnlineEngineOptions::class_engine): rows
  /// whose decision class is > 0 execute on the router's variant; class 0
  /// (and a nullptr from the router) stays on the base engine. Variants
  /// must be address-stable for the executor's lifetime (the degrade
  /// ladder's lazily-built engines are).
  void set_router(std::function<PipelineEngine*(int)> router) {
    router_ = std::move(router);
  }

  /// Points the executor at (a possibly new) base engine. A swap releases
  /// every session — KV held on the previous base is useless to the
  /// replacement, and class-variant sessions are dropped with it so every
  /// request resumes from its authoritative context on the next decision.
  void bind(PipelineEngine* engine) {
    if (engine_ == engine) return;
    release_all();
    engine_ = engine;
  }

  /// Ends sessions of requests that reached a terminal outcome since the
  /// last call (completed, timed out, failed), returning their KV pages.
  /// `finished` is the scheduler's append-only completion log.
  void reconcile(const std::vector<RequestStats>& finished) {
    for (; finished_seen_ < finished.size(); ++finished_seen_) {
      auto it = sessions_.find(finished[finished_seen_].id);
      if (it == sessions_.end()) continue;
      if (it->second.eng->has_session(it->second.sid))
        it->second.eng->end_session(it->second.sid);
      sessions_.erase(it);
    }
  }

  void release_all() {
    for (const auto& [rid, s] : sessions_)
      if (s.eng->has_session(s.sid)) s.eng->end_session(s.sid);
    sessions_.clear();
  }

  /// Executes one decision, returning one token per row. Per engine at
  /// most two ragged calls: one prefill over rows that need their context
  /// materialized, one decode_step over rows advancing by a token (one
  /// engine total unless class routing is armed).
  std::vector<TokenId> run(const DispatchDecision& d,
                           const DecisionInputs& in,
                           const GenerateOptions& gopts) {
    // Capacity-planner evictions first: release the victims' KV pages
    // (their tokens stay on the session, so resumption is a re-prefill of
    // the full history). Idempotent across retries — a session already
    // preempted has nothing committed and preempt_session is a no-op; a
    // victim whose release never executed (the fault landed first) simply
    // decode-steps on resume, which is equally exact.
    for (int rid : d.preempted) {
      auto it = sessions_.find(rid);
      if (it != sessions_.end() && it->second.eng->has_session(it->second.sid))
        it->second.eng->preempt_session(it->second.sid);
    }
    const std::size_t n = d.request_ids.size();
    std::vector<TokenId> out(n, 0);
    // Rows group by (engine, call kind); groups keep first-seen order so
    // the call sequence is deterministic.
    struct Group {
      PipelineEngine* eng;
      std::vector<int> sids;
      std::vector<std::size_t> rows;
    };
    std::vector<Group> prefills, steps;
    const auto enlist = [](std::vector<Group>& groups, PipelineEngine* eng,
                           int sid, std::size_t row) {
      for (Group& g : groups) {
        if (g.eng != eng) continue;
        g.sids.push_back(sid);
        g.rows.push_back(row);
        return;
      }
      groups.push_back(Group{eng, {sid}, {row}});
    };
    for (std::size_t i = 0; i < n; ++i) {
      const int rid = d.request_ids[i];
      const auto ctx = static_cast<std::size_t>(d.contexts[i]);
      PipelineEngine* eng =
          engine_for(i < d.classes.size() ? d.classes[i] : 0);
      auto it = sessions_.find(rid);
      if (it != sessions_.end() &&
          (!it->second.eng->has_session(it->second.sid) ||
           it->second.eng != eng)) {
        // Lost to a restart, or the row's class routes elsewhere now (a
        // degrade swap rebound the base): drop and rebuild below.
        if (it->second.eng->has_session(it->second.sid))
          it->second.eng->end_session(it->second.sid);
        sessions_.erase(it);
        it = sessions_.end();
      }
      if (it == sessions_.end()) {
        const int sid = eng->begin_session(in.rows[i]);
        sessions_.emplace(rid, Sess{eng, sid});
        enlist(prefills, eng, sid, i);
        continue;
      }
      const int sid = it->second.sid;
      const std::size_t len = eng->session_length(sid);
      if (len == ctx + 1) {
        // This round already advanced the session (a later group of the
        // same decision failed, and the scheduler is retrying the round):
        // its token was sampled last time — reuse it.
        out[i] = eng->session_back(sid);
      } else if (len == ctx && eng->session_committed(sid) == 0) {
        enlist(prefills, eng, sid, i);  // begun, never prefilled (retry)
      } else if (len == ctx) {
        enlist(steps, eng, sid, i);
      } else {
        // Inconsistent with the scheduler's view (should not happen):
        // rebuild from the authoritative request tables.
        eng->end_session(sid);
        const int fresh = eng->begin_session(in.rows[i]);
        sessions_[rid] = Sess{eng, fresh};
        enlist(prefills, eng, fresh, i);
      }
    }
    for (const Group& g : prefills) {
      const std::vector<TokenId> toks = g.eng->prefill(g.sids, gopts);
      for (std::size_t j = 0; j < toks.size(); ++j) out[g.rows[j]] = toks[j];
    }
    for (const Group& g : steps) {
      const std::vector<TokenId> toks = g.eng->decode_step(g.sids, gopts);
      for (std::size_t j = 0; j < toks.size(); ++j) out[g.rows[j]] = toks[j];
    }
    return out;
  }

 private:
  struct Sess {
    PipelineEngine* eng;  ///< engine holding the session's KV
    int sid;
  };

  PipelineEngine* engine_for(int cls) const {
    if (cls > 0 && router_)
      if (PipelineEngine* e = router_(cls)) return e;
    return engine_;
  }

  PipelineEngine* engine_ = nullptr;
  std::function<PipelineEngine*(int)> router_;
  std::unordered_map<int, Sess> sessions_;  ///< request id -> session
  std::size_t finished_seen_ = 0;           ///< reconcile() cursor
};

/// Static batching over ephemeral sessions: one ragged prefill for the
/// whole batch, then one decode round per outstanding token with only the
/// rows that still owe output participating. Each row gets its own exact
/// (unpadded) continuation and stops at its own generation length — no
/// padded-shape decode work at all.
std::vector<std::vector<TokenId>> run_static_session(
    PipelineEngine& engine, const DecisionInputs& in,
    const GenerateOptions& gopts) {
  const std::size_t n = in.rows.size();
  std::vector<std::vector<TokenId>> out(n);
  std::vector<int> sids;
  sids.reserve(n);
  try {
    for (const auto& r : in.rows) sids.push_back(engine.begin_session(r));
    std::size_t max_take = 0;
    for (std::size_t t : in.take) max_take = std::max(max_take, t);
    if (max_take > 0) {
      const std::vector<TokenId> first = engine.prefill(sids, gopts);
      for (std::size_t i = 0; i < n; ++i) out[i].push_back(first[i]);
      for (std::size_t round = 2; round <= max_take; ++round) {
        std::vector<int> live;
        std::vector<std::size_t> live_rows;
        for (std::size_t i = 0; i < n; ++i) {
          if (in.take[i] < round) continue;
          live.push_back(sids[i]);
          live_rows.push_back(i);
        }
        const std::vector<TokenId> toks = engine.decode_step(live, gopts);
        for (std::size_t j = 0; j < toks.size(); ++j)
          out[live_rows[j]].push_back(toks[j]);
      }
    }
  } catch (...) {
    // The dispatch failed as a unit (the scheduler will retry it whole);
    // the sessions are this call's own, so tear them down — on a broken
    // engine end_session defers the page frees to restart().
    for (int sid : sids)
      if (engine.has_session(sid)) engine.end_session(sid);
    throw;
  }
  for (int sid : sids) engine.end_session(sid);
  return out;
}

/// Runs the engine on prepared inputs. `sessions` is non-null exactly for
/// the iteration-level session path. Touches no request tables, so the
/// live engine calls it with its lock released.
DecisionRun execute_decision(PipelineEngine& engine,
                             SessionExecutor* sessions, ServePhase phase,
                             const DispatchDecision& d,
                             const DecisionInputs& in,
                             const GenerateOptions& gopts) {
  // Chaos site for serving-layer faults (a throw here fails the dispatch
  // without involving the pipeline at all).
  FAULT_POINT("serve.dispatch");
  DecisionRun run;
  StopwatchNs wall;
  // Per-stage straggler sites first (inside the dispatch wall clock), then
  // a stats snapshot so the health sample can attribute this dispatch's
  // cost: measured per-stage busy delta plus the serving-level injected
  // delay per stage.
  const std::vector<double> injected =
      check_serve_stage_sites(engine.num_stages());
  const EngineStats before = engine.stats();
  const double prefill_before = before.prefill.seconds;
  if (sessions != nullptr) {
    const std::vector<TokenId> toks = sessions->run(d, in, gopts);
    run.out.reserve(toks.size());
    for (TokenId t : toks) run.out.push_back({t});
  } else if (!in.padded.empty()) {
    run.out = engine.generate(in.padded, in.gen_call, gopts);
  } else {
    run.out = run_static_session(engine, in, gopts);
  }
  run.timing.total_s = wall.elapsed_s();
  const EngineStats after = engine.stats();
  run.stage_busy_s.resize(injected.size(), 0.0);
  for (std::size_t p = 0; p < injected.size(); ++p) {
    double busy = injected[p];
    if (p < before.stages.size() && p < after.stages.size())
      busy += std::max(0.0, after.stages[p].busy_s - before.stages[p].busy_s);
    run.stage_busy_s[p] = busy;
  }
  if (phase == ServePhase::kPrefillPass || d.num_join > 0)
    run.timing.prefill_s =
        std::max(0.0, after.prefill.seconds - prefill_before);
  return run;
}

/// Shared recovery policy for the live loop and trace replay: counts
/// memory faults, walks the degradation ladder, and restarts a broken
/// engine within the restart budget. Returns false when the budget is
/// exhausted and the caller should surface the error.
struct FailureGovernor {
  const OnlineEngineOptions& options;
  PipelineEngine* engine;
  int engine_restarts = 0;
  int degrades = 0;
  int mem_faults = 0;  ///< since the last degrade step
  int total_mem_faults = 0;
  int degrade_level = 0;

  /// Set when a degrade hook returned an incompatible engine; handle()
  /// then reports no recovery and the caller surfaces this instead of the
  /// dispatch error. handle() itself never throws — it runs outside the
  /// serving loop's try block.
  std::string validation_error;

  bool handle(bool mem_fault) {
    if (mem_fault) {
      ++mem_faults;
      ++total_mem_faults;
      TRACE_INSTANT("serve", "mem-fault");
      if (options.degrade &&
          mem_faults >= options.degrade_after_mem_faults) {
        if (PipelineEngine* next = options.degrade(++degrade_level)) {
          // Don't trust the hook: a replacement serving a different model
          // would silently corrupt every in-flight request. Mismatches are
          // terminal — there is no safe engine to fall back to.
          const std::string mismatch =
              validate_replacement_engine(*engine, *next);
          if (!mismatch.empty()) {
            validation_error =
                "OnlineEngineOptions::degrade returned an incompatible "
                "engine at level " +
                std::to_string(degrade_level) + ": " + mismatch;
            return false;
          }
          // Step down the ladder (lower bitwidth / smaller micro-batch)
          // and give the cheaper engine a fresh fault budget.
          engine = next;
          ++degrades;
          mem_faults = 0;
          TRACE_INSTANT("serve", "degrade");
        }
      }
    }
    if (!engine->healthy()) {
      if (engine_restarts >= options.max_engine_restarts) return false;
      engine->restart();
      ++engine_restarts;
      TRACE_INSTANT("serve", "engine-restart");
    }
    return true;
  }
};

/// The control-loop state both serving back-ends share: one health sample
/// per successful dispatch, verdicts consulted against the replan hook,
/// and the resulting decision log. after_dispatch() returns the validated
/// replacement engine when a migration happened (the caller rebinds
/// sessions — releasing KV on the old engine and re-prefilling on the new
/// one, the KvCacheManager::preempt + re-prefill primitive) and throws
/// Error when the hook hands back an incompatible engine.
struct ControlLoop {
  const OnlineEngineOptions& options;
  HealthMonitor monitor;
  std::vector<ReplanEvent> replans;
  int migrations = 0;

  explicit ControlLoop(const OnlineEngineOptions& opts)
      : options(opts), monitor(opts.health) {}

  bool active() const {
    return static_cast<bool>(options.replan) || !options.metrics_out.empty();
  }

  PipelineEngine* after_dispatch(const DispatchDecision& d,
                                 const DecisionRun& run, int queue_depth,
                                 int preemptions, int mem_faults,
                                 PipelineEngine* current) {
    if (!active()) return nullptr;
    HealthSample sample;
    sample.seq = d.seq;
    sample.dispatch_s = run.timing.total_s;
    sample.stage_busy_s = run.stage_busy_s;
    sample.queue_depth = queue_depth;
    sample.preemptions = preemptions;
    sample.mem_faults = mem_faults;
    const HealthVerdict verdict = monitor.observe(sample);
    if (verdict.healthy() || !options.replan) return nullptr;
    const ReplanOutcome out = options.replan(verdict);
    ReplanEvent ev;
    ev.at_seq = verdict.at_seq;
    ev.status = verdict.status;
    ev.bottleneck_stage = verdict.bottleneck_stage;
    ev.severity = verdict.severity;
    ev.delta = out.delta;
    ev.applied = out.delta.kind != PlanDeltaKind::kNone &&
                 out.engine != nullptr && out.engine != current;
    replans.push_back(ev);
    if (!ev.applied) return nullptr;
    const std::string mismatch =
        validate_replacement_engine(*current, *out.engine);
    if (!mismatch.empty())
      throw Error(
          "OnlineEngineOptions::replan returned an incompatible engine: " +
          mismatch);
    ++migrations;
    TRACE_INSTANT("serve", "migrate");
    return out.engine;
  }
};

/// Periodic llmpq-metrics/v1 dump of the control loop's view: health
/// snapshot (baseline, EWMAs, per-stage busy, counters), the request
/// latency summary so far (completed requests, arrival -> last token),
/// and the live engine's cumulative stats. Callers hold the request
/// tables stable (the live loop runs this under its lock).
void export_serve_metrics(const std::string& path, const ControlLoop& control,
                          const PipelineEngine& engine,
                          const ServeScheduler* scheduler = nullptr) {
  const HealthMonitor::Snapshot snap = control.monitor.snapshot();
  MetricsRegistry reg;
  if (scheduler != nullptr) {
    std::vector<double> latencies;
    for (const RequestStats& r : scheduler->finished()) {
      if (r.outcome != RequestOutcome::kCompleted) continue;
      latencies.push_back(r.finish_s - r.arrival_s);
    }
    reg.set_latency("serve.request_latency", summarize_latency(std::move(latencies)));
    const OutcomeCounts oc = scheduler->outcomes();
    reg.set_value("serve.requests.completed", oc.completed);
    reg.set_value("serve.requests.timed_out", oc.timed_out);
    reg.set_value("serve.requests.rejected", oc.rejected);
    reg.set_value("serve.requests.failed", oc.failed);
  }
  reg.set_value("serve.health.samples", snap.samples);
  reg.set_value("serve.health.verdicts", snap.verdicts);
  reg.set_value("serve.health.baseline_s", snap.baseline_s);
  reg.set_value("serve.health.dispatch_ewma_s", snap.dispatch_ewma_s);
  reg.set_value("serve.health.queue_depth", snap.queue_depth);
  reg.set_value("serve.health.preemptions", snap.preemptions);
  reg.set_value("serve.health.mem_faults", snap.mem_faults);
  reg.set_value("serve.health.migrations", control.migrations);
  reg.set_value("serve.health.replans",
                static_cast<double>(control.replans.size()));
  for (std::size_t p = 0; p < snap.stage_busy_ewma_s.size(); ++p)
    reg.set_value("serve.health.stage" + std::to_string(p) + ".busy_ewma_s",
                  snap.stage_busy_ewma_s[p]);
  reg.set_engine("serve.engine", engine.stats());
  (void)reg.write_json_file(path);
}

std::string describe_exception(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Appends each row's kept output tokens to its request's generated row.
/// Called with the request tables stable again (the live engine re-takes
/// its lock first).
void commit_decision(const DispatchDecision& d, const DecisionInputs& in,
                     const std::vector<std::vector<TokenId>>& out,
                     std::deque<std::vector<TokenId>>& generated) {
  for (std::size_t i = 0; i < d.request_ids.size(); ++i) {
    const std::size_t id = static_cast<std::size_t>(d.request_ids[i]);
    const std::size_t take = std::min(out[i].size(), in.take[i]);
    generated[id].insert(generated[id].end(), out[i].begin(),
                         out[i].begin() + static_cast<std::ptrdiff_t>(take));
  }
}

OnlineReport build_report(const ServeScheduler& scheduler, double makespan_s,
                          const std::deque<std::vector<TokenId>>& generated,
                          const FailureGovernor* gov = nullptr,
                          const std::vector<ReplanEvent>* replans = nullptr,
                          int migrations = 0) {
  OnlineReport rep;
  rep.requests = scheduler.finished();
  rep.decisions = scheduler.decision_log();
  rep.makespan_s = makespan_s;
  // Throughput and the latency summaries cover served requests only —
  // folding rejected/timed-out requests in would make a lossy run look
  // faster, not slower.
  std::int64_t tokens_out = 0;
  std::vector<double> latencies, queue_delays, prefills;
  latencies.reserve(rep.requests.size());
  queue_delays.reserve(rep.requests.size());
  prefills.reserve(rep.requests.size());
  for (const RequestStats& r : rep.requests) {
    if (r.outcome != RequestOutcome::kCompleted) continue;
    ++rep.completed;
    tokens_out += r.gen_tokens;
    latencies.push_back(r.finish_s - r.arrival_s);
    queue_delays.push_back(r.queue_delay_s);
    prefills.push_back(r.prefill_s);
  }
  rep.preemptions = scheduler.preemptions();
  rep.forced_joins = scheduler.forced_joins();
  rep.tenants = scheduler.tenant_summaries();
  const OutcomeCounts oc = scheduler.outcomes();
  rep.timed_out = oc.timed_out;
  rep.rejected = oc.rejected;
  rep.failed = oc.failed;
  rep.retries = oc.retries;
  if (gov != nullptr) {
    rep.engine_restarts = gov->engine_restarts;
    rep.degrades = gov->degrades;
    rep.mem_faults = gov->total_mem_faults;
  }
  if (replans != nullptr) rep.replans = *replans;
  rep.migrations = migrations;
  rep.throughput_tokens_per_s =
      makespan_s > 0.0 ? static_cast<double>(tokens_out) / makespan_s : 0.0;
  rep.latency = summarize_latency(std::move(latencies));
  rep.queue_delay = summarize_latency(std::move(queue_delays));
  rep.prefill = summarize_latency(std::move(prefills));
  rep.generated.assign(generated.begin(), generated.end());
  return rep;
}

}  // namespace

std::string validate_replacement_engine(const PipelineEngine& current,
                                        const PipelineEngine& next) {
  if (next.spec().vocab != current.spec().vocab)
    return "vocab mismatch (" + std::to_string(next.spec().vocab) + " vs " +
           std::to_string(current.spec().vocab) +
           ") — the replacement serves a different token space";
  if (next.spec().layers != current.spec().layers)
    return "layer count mismatch (" + std::to_string(next.spec().layers) +
           " vs " + std::to_string(current.spec().layers) +
           ") — the replacement's plan covers a different model";
  if (!next.healthy())
    return "replacement engine is broken (restart() it before handing it "
           "to the serving loop)";
  return {};
}

OnlineEngine::OnlineEngine(PipelineEngine& engine,
                           const OnlineEngineOptions& options)
    : engine_(&engine), options_(options), scheduler_(options.scheduler) {
  // The scheduler's clock (clock_) reads zero right now, so now_s() is the
  // offset that aligns its lifecycle events with the wall-clock spans.
  scheduler_.enable_trace(trace_pids::kServe, TraceSession::now_s());
  // Start the admission thread last so a constructor failure above never
  // leaves it running (same RAII discipline as the pipeline engine).
  server_ = std::thread([this] { serve_loop(); });
}

OnlineEngine::~OnlineEngine() {
  close();
  if (server_.joinable()) server_.join();
}

int OnlineEngine::submit(std::vector<TokenId> prompt, int gen_tokens,
                         int tenant_id, int req_class) {
  TRACE_INSTANT("serve", "submit");
  // Boundary guard: an empty prompt has no last token to sample from and
  // nothing to prefill; reject it here with a precise message instead of
  // letting it surface later as a mid-dispatch engine error.
  check_arg(!prompt.empty(),
            "OnlineEngine::submit: zero-length prompts are not allowed");
  std::unique_lock<std::mutex> lk(mu_);
  // Fail fast once the serving loop has died: queueing more work would
  // just strand it (nobody will ever dispatch), and the caller would only
  // learn about the failure at wait().
  if (error_)
    throw Error("OnlineEngine::submit: serving loop failed: " + error_what_);
  const int id = static_cast<int>(prompts_.size());
  ServeRequest r;
  r.id = id;
  r.arrival_s = clock_.elapsed_s();
  r.prompt_len = static_cast<int>(prompt.size());
  r.gen_tokens = gen_tokens;
  r.tenant_id = tenant_id;
  r.req_class = req_class;
  scheduler_.submit(r);  // validates shape, tenant and stream state
  prompts_.emplace_back(std::move(prompt), gen_tokens);
  generated_.emplace_back();
  lk.unlock();
  cv_.notify_all();
  return id;
}

void OnlineEngine::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    scheduler_.close();
  }
  cv_.notify_all();
}

OnlineReport OnlineEngine::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  check_arg(scheduler_.closed(), "OnlineEngine::wait(): close() first");
  cv_.wait(lk, [&] { return done_; });
  // Join exactly once, flagged under the lock: two threads calling wait()
  // concurrently must not both reach std::thread::join() (UB on the
  // second), and repeated waits after a failure must keep rethrowing the
  // same error instead of tripping over a dead thread.
  if (!joined_) {
    joined_ = true;
    lk.unlock();
    server_.join();
    lk.lock();
  }
  if (error_) std::rethrow_exception(error_);
  FailureGovernor gov{options_, engine_};
  gov.engine_restarts = engine_restarts_;
  gov.degrades = degrades_;
  gov.total_mem_faults = total_mem_faults_;
  return build_report(scheduler_, makespan_s_, generated_, &gov, &replans_,
                      migrations_);
}

void OnlineEngine::serve_loop() {
  if (TraceSession::enabled()) TraceSession::set_thread_name("serve-loop");
  GenerateOptions gopts;
  gopts.deadline_s = options_.dispatch_deadline_s;
  FailureGovernor gov{options_, engine_};
  ControlLoop control(options_);
  double last_metrics_s = 0.0;
  const bool session_iter =
      options_.scheduler.policy == SchedulerPolicy::kIterationLevel &&
      (options_.scheduler.exec == DecodeExec::kSession ||
       options_.scheduler.exec == DecodeExec::kContinuous);
  SessionExecutor sessions;
  sessions.set_router(options_.class_engine);
  sessions.bind(engine_);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    const double now = clock_.elapsed_s();
    SchedulerAction a = scheduler_.next(now);
    // Deadline expiry inside next() can finish active requests; return
    // their KV pages promptly.
    if (session_iter) sessions.reconcile(scheduler_.finished());
    TRACE_COUNTER("serve", "pending", scheduler_.pending());
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      // Either block for new submissions (unbounded wait) or sleep until
      // the scheduler's deadline — the stale timer that bounds a lone
      // request's wait at arrival + max_wait_s, or a retry-backoff or
      // request-deadline wakeup. Submissions wake us early.
      if (std::isinf(a.wait_until))
        cv_.wait(lk);
      else
        cv_.wait_for(lk, std::chrono::duration<double>(
                             std::max(1e-4, a.wait_until - now)));
      continue;
    }
    const DispatchDecision d = std::move(a.decision);
    // Snapshot the engine inputs while still holding mu_: submit() may
    // concurrently grow prompts_/generated_, and deque growth can
    // reallocate the internal block map that operator[] traverses, so an
    // unsynchronized read during emplace_back is a data race.
    const DecisionInputs inputs = prepare_decision(
        options_.scheduler.policy, options_.scheduler.exec, d, prompts_,
        generated_);
    lk.unlock();
    const double start = clock_.elapsed_s();
    DecisionRun run;
    bool mem_fault = false;
    std::exception_ptr err;
    try {
      TRACE_SPAN1("serve",
                  d.phase == ServePhase::kPrefillPass ? "execute-prefill"
                                                      : "execute-decode",
                  "batch", d.request_ids.size());
      run = execute_decision(*gov.engine, session_iter ? &sessions : nullptr,
                             d.phase, d, inputs, gopts);
    } catch (const std::bad_alloc&) {
      mem_fault = true;
      err = std::current_exception();
    } catch (...) {
      err = std::current_exception();
    }
    lk.lock();
    if (err) {
      // Hand the failed dispatch back to the scheduler (retry with
      // backoff, kFailed past the cap), then recover the engine: restart
      // it if the fault broke it, step down the degradation ladder after
      // repeated memory faults. Only an exhausted restart budget kills
      // the loop — that terminal error is what submit()/wait() surface.
      scheduler_.fail(d, clock_.elapsed_s());
      const bool recovered = gov.handle(mem_fault);
      engine_ = gov.engine;
      engine_restarts_ = gov.engine_restarts;
      degrades_ = gov.degrades;
      total_mem_faults_ = gov.total_mem_faults;
      if (session_iter) {
        // A degrade step swaps the engine: rebind (dropping sessions whose
        // KV lives on the old engine) and release sessions of requests the
        // failure finished for good.
        sessions.bind(gov.engine);
        sessions.reconcile(scheduler_.finished());
      }
      if (!recovered) {
        if (!gov.validation_error.empty())
          err = std::make_exception_ptr(Error(gov.validation_error));
        error_ = err;
        error_what_ = describe_exception(err);
        break;
      }
      continue;
    }
    commit_decision(d, inputs, run.out, generated_);
    const double finish = clock_.elapsed_s();
    const double prefill_end =
        (d.phase == ServePhase::kPrefillPass || d.num_join > 0) &&
                run.timing.prefill_s >= 0.0
            ? start + run.timing.prefill_s
            : -1.0;
    scheduler_.complete(d, finish, prefill_end);
    if (session_iter) sessions.reconcile(scheduler_.finished());
    makespan_s_ = finish;
    // Control loop: one health sample per dispatch; a verdict consults the
    // replan hook and a validated migration swaps the engine live. The
    // session rebind releases every KV page on the old engine; the next
    // decision rebuilds each request from its authoritative context via
    // re-prefill, which under greedy sampling resumes it exactly.
    try {
      if (PipelineEngine* next = control.after_dispatch(
              d, run, scheduler_.pending(), scheduler_.preemptions(),
              gov.total_mem_faults, gov.engine)) {
        gov.engine = next;
        engine_ = next;
        if (session_iter) sessions.bind(next);
      }
    } catch (...) {
      error_ = std::current_exception();
      error_what_ = describe_exception(error_);
      break;
    }
    if (!options_.metrics_out.empty() &&
        finish - last_metrics_s >= options_.metrics_interval_s) {
      last_metrics_s = finish;
      export_serve_metrics(options_.metrics_out, control, *gov.engine,
                           &scheduler_);
    }
  }
  sessions.release_all();
  if (!options_.metrics_out.empty())
    export_serve_metrics(options_.metrics_out, control, *gov.engine,
                         &scheduler_);
  replans_ = std::move(control.replans);
  migrations_ = control.migrations;
  done_ = true;
  lk.unlock();
  cv_.notify_all();
}

OnlineReport serve_trace(PipelineEngine& engine,
                         const std::vector<OnlineTraceRequest>& trace,
                         const OnlineEngineOptions& options) {
  ServeScheduler scheduler(options.scheduler);
  // Trace-replay timestamps are virtual (the trace's own clock), so no
  // offset: the serving tracks start at t=0 alongside the session.
  scheduler.enable_trace(trace_pids::kServe, 0.0);
  std::deque<std::pair<std::vector<TokenId>, int>> prompts;
  std::deque<std::vector<TokenId>> generated;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const OnlineTraceRequest& t = trace[i];
    check_arg(!t.prompt.empty(),
              "serve_trace: zero-length prompts are not allowed");
    ServeRequest r;
    r.id = static_cast<int>(i);
    r.arrival_s = t.arrival_s;
    r.prompt_len = static_cast<int>(t.prompt.size());
    r.gen_tokens = t.gen_tokens;
    r.tenant_id = t.tenant_id;
    r.req_class = t.req_class;
    scheduler.submit(r);
    prompts.emplace_back(t.prompt, t.gen_tokens);
    generated.emplace_back();
  }
  scheduler.close();

  // Virtual clock: arrivals advance it per the trace; each decision
  // advances it by the measured wall time of the real engine call.
  GenerateOptions gopts;
  gopts.deadline_s = options.dispatch_deadline_s;
  FailureGovernor gov{options, &engine};
  ControlLoop control(options);
  double last_metrics_s = 0.0;
  const bool session_iter =
      options.scheduler.policy == SchedulerPolicy::kIterationLevel &&
      (options.scheduler.exec == DecodeExec::kSession ||
       options.scheduler.exec == DecodeExec::kContinuous);
  SessionExecutor sessions;
  sessions.set_router(options.class_engine);
  sessions.bind(&engine);
  double t = 0.0;
  for (;;) {
    SchedulerAction a = scheduler.next(t);
    if (session_iter) sessions.reconcile(scheduler.finished());
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      check_arg(std::isfinite(a.wait_until),
                "serve_trace: scheduler blocked on a closed stream");
      t = std::max(t, a.wait_until);
      continue;
    }
    const DispatchDecision d = std::move(a.decision);
    const DecisionInputs inputs = prepare_decision(
        options.scheduler.policy, options.scheduler.exec, d, prompts,
        generated);
    DecisionRun run;
    bool mem_fault = false;
    std::exception_ptr err;
    StopwatchNs wall;
    try {
      run = execute_decision(*gov.engine, session_iter ? &sessions : nullptr,
                             d.phase, d, inputs, gopts);
    } catch (const std::bad_alloc&) {
      mem_fault = true;
      err = std::current_exception();
    } catch (...) {
      err = std::current_exception();
    }
    if (err) {
      // Same recovery policy as the live loop, on the virtual clock: the
      // failed call's wall time still advances it so retried dispatches
      // do not appear free.
      t += wall.elapsed_s();
      scheduler.fail(d, t);
      const bool recovered = gov.handle(mem_fault);
      if (session_iter) {
        sessions.bind(gov.engine);
        sessions.reconcile(scheduler.finished());
      }
      if (!recovered) {
        if (!gov.validation_error.empty()) throw Error(gov.validation_error);
        std::rethrow_exception(err);
      }
      continue;
    }
    commit_decision(d, inputs, run.out, generated);
    const double finish = t + run.timing.total_s;
    const double prefill_end =
        (d.phase == ServePhase::kPrefillPass || d.num_join > 0) &&
                run.timing.prefill_s >= 0.0
            ? t + run.timing.prefill_s
            : -1.0;
    scheduler.complete(d, finish, prefill_end);
    if (session_iter) sessions.reconcile(scheduler.finished());
    t = finish;
    // Same control loop as the live path, on the virtual clock (the
    // health sample's dispatch cost is the measured wall time of the real
    // engine call, so an injected straggler dominates it identically).
    if (PipelineEngine* next =
            control.after_dispatch(d, run, scheduler.pending(),
                                   scheduler.preemptions(),
                                   gov.total_mem_faults, gov.engine)) {
      gov.engine = next;
      if (session_iter) sessions.bind(next);
    }
    if (!options.metrics_out.empty() &&
        finish - last_metrics_s >= options.metrics_interval_s) {
      last_metrics_s = finish;
      export_serve_metrics(options.metrics_out, control, *gov.engine,
                           &scheduler);
    }
  }
  sessions.release_all();
  if (!options.metrics_out.empty())
    export_serve_metrics(options.metrics_out, control, *gov.engine,
                         &scheduler);
  return build_report(scheduler, t, generated, &gov, &control.replans,
                      control.migrations);
}

}  // namespace llmpq
