#include "serve/replanner.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/error.hpp"
#include "hw/gpu_spec.hpp"

namespace llmpq {

namespace {

struct MigrateCandidate {
  int layer = -1;
  int from = -1;
  int to = -1;
  double objective = 0.0;
};

}  // namespace

const char* plan_delta_kind_name(PlanDeltaKind kind) {
  switch (kind) {
    case PlanDeltaKind::kNone:
      return "none";
    case PlanDeltaKind::kMigrateLayer:
      return "migrate_layer";
    case PlanDeltaKind::kBitChange:
      return "bit_change";
    case PlanDeltaKind::kMicroBatch:
      return "micro_batch";
  }
  return "?";
}

std::string PlanDelta::describe() const {
  std::ostringstream os;
  switch (kind) {
    case PlanDeltaKind::kNone:
      os << "no-op";
      break;
    case PlanDeltaKind::kMigrateLayer:
      os << "migrate layer " << layer << " from stage " << from_stage
         << " to stage " << to_stage;
      break;
    case PlanDeltaKind::kBitChange:
      os << "requantize layer " << layer << " to " << new_bits << " bits";
      break;
    case PlanDeltaKind::kMicroBatch:
      os << "resize micro-batches to prefill=" << prefill_micro_batch
         << " decode=" << decode_micro_batch;
      break;
  }
  return os.str();
}

PlanDelta Replanner::propose(const ExecutionPlan& plan,
                             const HealthVerdict& verdict) const {
  PlanDelta delta;
  if (verdict.healthy()) return delta;

  IncrementalPlanEvaluator eval(cost_, indicator_, theta_, plan);
  delta.base_objective = eval.base().objective;

  if (verdict.status == HealthStatus::kStraggler) {
    // Migrate one layer off the bottleneck stage. The analytic cost model
    // cannot see the live drag the verdict measured (a degraded device
    // looks nominal on paper), so the verdict overrides the objective:
    // any *feasible* off-move is accepted, and the evaluator only ranks
    // the feasible candidates against each other. Candidate order and the
    // prefer-earlier tie-break are fixed for cross-back-end determinism.
    const int b = verdict.bottleneck_stage;
    if (b < 0 || b >= plan.num_stages()) return delta;
    std::optional<MigrateCandidate> best;
    // Candidate 1: the bottleneck's first layer moves to stage b-1.
    if (b > 0) {
      const auto score = eval.score_boundary_shift(b - 1, +1, /*new_bits=*/-1);
      if (score && score->feasible)
        best = MigrateCandidate{plan.stage_range(b).first, b, b - 1,
                                score->objective};
    }
    // Candidate 2: the bottleneck's last layer moves to stage b+1.
    if (b + 1 < plan.num_stages()) {
      const auto score = eval.score_boundary_shift(b, -1, /*new_bits=*/-1);
      if (score && score->feasible &&
          (!best || score->objective < best->objective))
        best = MigrateCandidate{plan.stage_range(b).second - 1, b, b + 1,
                                score->objective};
    }
    if (!best) return delta;  // single-layer stage hemmed in: no repair
    delta.kind = PlanDeltaKind::kMigrateLayer;
    delta.layer = best->layer;
    delta.from_stage = best->from;
    delta.to_stage = best->to;
    delta.new_objective = best->objective;
    return delta;
  }

  if (verdict.status == HealthStatus::kMemoryPressure) {
    // Lower one layer to the next bit candidate. Scope the search to the
    // bottleneck stage when the verdict names one, else the whole model;
    // the evaluator's feasibility check is exactly the memory model the
    // pressure tripped.
    const auto range = (verdict.bottleneck_stage >= 0 &&
                        verdict.bottleneck_stage < plan.num_stages())
                           ? plan.stage_range(verdict.bottleneck_stage)
                           : std::pair<int, int>{0, plan.num_layers()};
    bool found = false;
    for (int layer = range.first; layer < range.second; ++layer) {
      const int bi = bit_index(plan.layer_bits[static_cast<std::size_t>(layer)]);
      if (bi <= 0) continue;  // already at the lowest candidate
      const int lower = kBitCandidates[static_cast<std::size_t>(bi - 1)];
      const auto score = eval.score_bit_change(layer, lower);
      if (!score.feasible) continue;
      if (!found || score.objective < delta.new_objective) {
        found = true;
        delta.kind = PlanDeltaKind::kBitChange;
        delta.layer = layer;
        delta.from_stage = plan.stage_of_layer(layer);
        delta.new_bits = lower;
        delta.new_objective = score.objective;
      }
    }
    return delta;
  }

  // kOverload: halve the micro-batch sizes so dispatches turn around
  // faster. Halving an even divisor of the global batch keeps the
  // divisibility invariant; integer-halving an odd one lands on a divisor
  // too (worst case 1).
  const int pre = std::max(1, plan.prefill_micro_batch / 2);
  const int dec = std::max(1, plan.decode_micro_batch / 2);
  if (pre == plan.prefill_micro_batch && dec == plan.decode_micro_batch)
    return delta;  // already at the smallest quanta
  ExecutionPlan candidate = plan;
  candidate.prefill_micro_batch = pre;
  candidate.decode_micro_batch = dec;
  const PlanEstimate est =
      estimate_plan(cost_, candidate, indicator_, theta_);
  if (!est.mem_feasible) return delta;
  delta.kind = PlanDeltaKind::kMicroBatch;
  delta.prefill_micro_batch = pre;
  delta.decode_micro_batch = dec;
  delta.new_objective = est.objective;
  return delta;
}

ExecutionPlan Replanner::apply(const ExecutionPlan& plan,
                               const PlanDelta& delta) {
  ExecutionPlan out = plan;
  switch (delta.kind) {
    case PlanDeltaKind::kNone:
      return out;
    case PlanDeltaKind::kMigrateLayer:
      check_arg(delta.from_stage >= 0 && delta.from_stage < out.num_stages() &&
                    (delta.to_stage == delta.from_stage - 1 ||
                     delta.to_stage == delta.from_stage + 1) &&
                    delta.to_stage >= 0 && delta.to_stage < out.num_stages(),
                "PlanDelta: migrate stages must be adjacent and in range");
      if (delta.to_stage == delta.from_stage - 1) {
        // The source's first layer joins the end of the previous stage.
        out.boundaries[static_cast<std::size_t>(delta.from_stage)] += 1;
      } else {
        // The source's last layer joins the start of the next stage.
        out.boundaries[static_cast<std::size_t>(delta.from_stage) + 1] -= 1;
      }
      break;
    case PlanDeltaKind::kBitChange:
      check_arg(delta.layer >= 0 && delta.layer < out.num_layers(),
                "PlanDelta: bit-change layer out of range");
      out.layer_bits[static_cast<std::size_t>(delta.layer)] = delta.new_bits;
      break;
    case PlanDeltaKind::kMicroBatch:
      out.prefill_micro_batch = delta.prefill_micro_batch;
      out.decode_micro_batch = delta.decode_micro_batch;
      break;
  }
  out.validate(out.num_layers(), out.num_stages());
  return out;
}

}  // namespace llmpq
