#include "serve/health.hpp"

#include <algorithm>

namespace llmpq {

const char* health_status_name(HealthStatus status) {
  switch (status) {
    case HealthStatus::kHealthy:
      return "healthy";
    case HealthStatus::kStraggler:
      return "straggler";
    case HealthStatus::kMemoryPressure:
      return "memory_pressure";
    case HealthStatus::kOverload:
      return "overload";
  }
  return "?";
}

HealthMonitor::HealthMonitor(const HealthMonitorOptions& options)
    : opt_(options) {}

HealthVerdict HealthMonitor::observe(const HealthSample& sample) {
  ++snap_.samples;
  if (snap_.samples == 1) {
    snap_.dispatch_ewma_s = sample.dispatch_s;
  } else {
    snap_.dispatch_ewma_s = opt_.ewma_alpha * sample.dispatch_s +
                            (1.0 - opt_.ewma_alpha) * snap_.dispatch_ewma_s;
  }
  if (snap_.stage_busy_ewma_s.size() != sample.stage_busy_s.size())
    snap_.stage_busy_ewma_s.assign(sample.stage_busy_s.size(), 0.0);
  for (std::size_t p = 0; p < sample.stage_busy_s.size(); ++p)
    snap_.stage_busy_ewma_s[p] =
        opt_.ewma_alpha * sample.stage_busy_s[p] +
        (1.0 - opt_.ewma_alpha) * snap_.stage_busy_ewma_s[p];
  snap_.queue_depth = sample.queue_depth;
  snap_.preemptions = sample.preemptions;
  snap_.mem_faults = sample.mem_faults;

  HealthVerdict verdict;
  verdict.at_seq = sample.seq;

  // Baseline learning: the max dispatch cost over the warmup window. The
  // max (not the mean) keeps the heterogeneous prefill/decode mix from
  // flagging a legitimately expensive phase as a straggler.
  if (warmup_seen_ < opt_.warmup) {
    ++warmup_seen_;
    snap_.baseline_s = std::max(snap_.baseline_s, sample.dispatch_s);
    streak_ = 0;
    return verdict;
  }

  const bool flagged = snap_.baseline_s > 0.0 &&
                       sample.dispatch_s >
                           opt_.straggler_ratio * snap_.baseline_s;
  streak_ = flagged ? streak_ + 1 : 0;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return verdict;
  }

  if (streak_ >= opt_.hysteresis) {
    verdict.status = HealthStatus::kStraggler;
    verdict.severity =
        snap_.baseline_s > 0.0 ? sample.dispatch_s / snap_.baseline_s : 0.0;
    // Deterministic attribution: the stage that consumed the most of this
    // sample's cost (lowest index wins ties).
    for (std::size_t p = 0; p < sample.stage_busy_s.size(); ++p)
      if (verdict.bottleneck_stage < 0 ||
          sample.stage_busy_s[p] >
              sample.stage_busy_s[static_cast<std::size_t>(
                  verdict.bottleneck_stage)])
        verdict.bottleneck_stage = static_cast<int>(p);
  } else if (sample.mem_faults - mem_fault_mark_ >= opt_.mem_fault_threshold) {
    verdict.status = HealthStatus::kMemoryPressure;
    verdict.severity = static_cast<double>(sample.mem_faults - mem_fault_mark_);
  } else if (opt_.queue_overload_depth > 0 &&
             sample.queue_depth > opt_.queue_overload_depth) {
    verdict.status = HealthStatus::kOverload;
    verdict.severity = static_cast<double>(sample.queue_depth) /
                       static_cast<double>(opt_.queue_overload_depth);
  }

  if (!verdict.healthy()) {
    ++snap_.verdicts;
    snap_.last_status = verdict.status;
    cooldown_left_ = opt_.cooldown;
    streak_ = 0;
    mem_fault_mark_ = sample.mem_faults;
  }
  return verdict;
}

void HealthMonitor::reset_baseline() {
  warmup_seen_ = 0;
  snap_.baseline_s = 0.0;
  streak_ = 0;
}

}  // namespace llmpq
