#include "serve/migration.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace llmpq {

MigrationController::MigrationController(const ModelWeights& weights,
                                         ExecutionPlan plan,
                                         std::uint64_t seed)
    : base_(weights), plan_(std::move(plan)), seed_(seed) {
  check_arg(plan_.num_layers() == base_.spec.layers,
            "MigrationController: plan does not cover the model's layers");
  plan_.validate(plan_.num_layers(), plan_.num_stages());
}

std::vector<std::pair<int, int>> MigrationController::stage_ranges() const {
  std::vector<std::pair<int, int>> ranges;
  ranges.reserve(static_cast<std::size_t>(plan_.num_stages()));
  for (int p = 0; p < plan_.num_stages(); ++p)
    ranges.push_back(plan_.stage_range(p));
  return ranges;
}

PipelineEngine* MigrationController::apply(const PlanDelta& delta) {
  if (delta.kind == PlanDeltaKind::kNone) return nullptr;
  plan_ = Replanner::apply(plan_, delta);

  auto built = std::make_unique<Built>();
  const ModelWeights* weights = &base_;
  if (delta.kind == PlanDeltaKind::kBitChange) {
    // Requantize from the same master seed: same model, new precision
    // (the one delta kind that is deliberately not bit-preserving).
    built->weights = build_random_model(base_.spec, plan_.layer_bits, seed_,
                                        plan_.weight_format);
    built->owns_weights = true;
    weights = &built->weights;
  }
  built->engine = std::make_unique<PipelineEngine>(
      *weights, stage_ranges(), std::max(1, plan_.prefill_micro_batch),
      std::max(1, plan_.decode_micro_batch));
  PipelineEngine* engine = built->engine.get();
  built_.push_back(std::move(built));
  ++migrations_;
  return engine;
}

std::function<ReplanOutcome(const HealthVerdict&)> MigrationController::hook(
    const Replanner& replanner) {
  return [this, &replanner](const HealthVerdict& verdict) {
    ReplanOutcome out;
    out.delta = replanner.propose(plan_, verdict);
    out.engine = apply(out.delta);
    return out;
  };
}

}  // namespace llmpq
