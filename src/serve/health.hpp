#pragma once

#include <string>
#include <vector>

namespace llmpq {

/// Health monitoring for the online control loop (DESIGN.md "Online control
/// loop & elastic migration"): aggregates the per-dispatch signals both
/// serving back-ends already produce — per-stage busy time, scheduler queue
/// depth, preemption and mem-fault counters, dispatch latency — into a
/// bottleneck/degradation verdict the re-planner can act on.
///
/// Determinism contract: observe() is a pure function of the sample
/// sequence. Both back-ends feed one sample per scheduler dispatch, and the
/// straggler trigger compares each sample against a baseline learned as the
/// max over the first `warmup` samples — not a wall-clock rate — so the
/// virtual-clock simulator and the threaded runtime reach the same verdict
/// at the same decision index whenever an injected delay dominates both
/// clocks. That is what lets re-plan events join the sim-vs-runtime parity
/// key.
///
/// Flap control: a verdict needs `hysteresis` consecutive flagged samples,
/// and after any verdict the monitor stays silent for `cooldown` samples so
/// a repair has time to take effect before the loop re-evaluates.

/// One per-dispatch observation. Counters are cumulative (the monitor
/// diffs them internally where needed).
struct HealthSample {
  int seq = -1;            ///< scheduler decision seq (the parity key)
  double dispatch_s = 0.0; ///< end-to-end cost of this dispatch
  std::vector<double> stage_busy_s;  ///< per-stage attribution of that cost
  int queue_depth = 0;     ///< scheduler pending() after the dispatch
  int preemptions = 0;     ///< cumulative KV preemptions
  int mem_faults = 0;      ///< cumulative allocation faults
};

enum class HealthStatus : char {
  kHealthy,
  kStraggler,       ///< one stage's dispatches degraded vs the baseline
  kMemoryPressure,  ///< mem-fault counter advanced past the threshold
  kOverload,        ///< queue depth stuck above the configured bound
};

const char* health_status_name(HealthStatus status);

/// A non-healthy observation the re-planner can act on. `severity` is
/// back-end specific (wall vs virtual clock) and therefore excluded from
/// the parity key; every other field must match across back-ends.
struct HealthVerdict {
  HealthStatus status = HealthStatus::kHealthy;
  int bottleneck_stage = -1;  ///< argmax stage_busy_s for stragglers
  double severity = 0.0;      ///< dispatch_s / baseline at the verdict
  int at_seq = -1;            ///< decision seq that tripped the verdict

  bool healthy() const { return status == HealthStatus::kHealthy; }
};

struct HealthMonitorOptions {
  double ewma_alpha = 0.3;      ///< smoothing for the exported EWMAs
  int warmup = 4;               ///< samples used to learn the baseline
  double straggler_ratio = 3.0; ///< flag when dispatch > ratio * baseline
  int hysteresis = 2;           ///< consecutive flags before a verdict
  int cooldown = 8;             ///< silent samples after any verdict
  int queue_overload_depth = 0; ///< 0 disables the overload verdict
  int mem_fault_threshold = 2;  ///< new mem faults per verdict window
};

class HealthMonitor {
 public:
  HealthMonitor() : HealthMonitor(HealthMonitorOptions{}) {}
  explicit HealthMonitor(const HealthMonitorOptions& options);

  /// Feeds one dispatch sample; returns kHealthy or a verdict. Verdict
  /// priority when several trip at once: straggler, memory pressure,
  /// overload.
  HealthVerdict observe(const HealthSample& sample);

  /// Forgets the learned baseline (the next `warmup` samples re-learn it).
  /// The control loop deliberately does NOT call this after a migration:
  /// keeping the healthy-era baseline lets a persisting bottleneck re-trip
  /// after the cooldown, so repairs iterate until the plan is healthy
  /// again instead of normalizing a still-degraded state.
  void reset_baseline();

  /// Everything the metrics exporter dumps (llmpq-metrics/v1).
  struct Snapshot {
    int samples = 0;
    int verdicts = 0;
    HealthStatus last_status = HealthStatus::kHealthy;
    double baseline_s = 0.0;
    double dispatch_ewma_s = 0.0;
    std::vector<double> stage_busy_ewma_s;
    int queue_depth = 0;
    int preemptions = 0;
    int mem_faults = 0;
  };
  Snapshot snapshot() const { return snap_; }

  const HealthMonitorOptions& options() const { return opt_; }

 private:
  HealthMonitorOptions opt_;
  Snapshot snap_;
  int warmup_seen_ = 0;    ///< samples consumed learning the baseline
  int streak_ = 0;         ///< consecutive straggler-flagged samples
  int cooldown_left_ = 0;  ///< samples to stay silent after a verdict
  int mem_fault_mark_ = 0; ///< cumulative mem faults at the last verdict
};

}  // namespace llmpq
