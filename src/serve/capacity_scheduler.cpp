#include "serve/capacity_scheduler.hpp"

#include "common/error.hpp"

namespace llmpq {

CapacityScheduler::CapacityScheduler(const CapacityOptions& options)
    : options_(options) {
  check_arg(options_.max_batch >= 1,
            "CapacityScheduler: max_batch must be >= 1");
  check_arg(options_.token_budget >= 0,
            "CapacityScheduler: token_budget must be >= 0");
  check_arg(options_.kv_page_size >= 1,
            "CapacityScheduler: kv_page_size must be >= 1");
  check_arg(options_.kv_pages >= 0,
            "CapacityScheduler: kv_pages must be >= 0");
}

std::int64_t CapacityScheduler::pages_for(int tokens) const {
  const std::int64_t t = tokens;
  const std::int64_t p = options_.kv_page_size;
  return (t + p - 1) / p;
}

CapacityPlan CapacityScheduler::plan_round(
    const std::vector<CapacitySeq>& running,
    const std::vector<CapacitySeq>& waiting,
    bool force_admit_head) const {
  CapacityPlan plan;

  // Page ledger after this round's decode appends: every surviving running
  // sequence grows to context + 1 positions.
  std::int64_t used = 0;
  for (const CapacitySeq& r : running) used += pages_for(r.context + 1);

  // 1. Preempt newest-first until the running set fits, keeping at least
  // one sequence so the batch always makes progress.
  std::size_t keep = running.size();
  if (options_.kv_pages > 0) {
    while (used > options_.kv_pages && keep > 1) {
      --keep;
      used -= pages_for(running[keep].context + 1);
      plan.preempt.push_back(running[keep].id);
    }
  }

  // 2. Admit the longest FIFO prefix of the waiting list that fits. Decode
  // rows cost one token each against the per-iteration budget; a join
  // costs its full context (its prefill runs inside this iteration).
  std::int64_t tokens_left = 0;
  if (options_.token_budget > 0) {
    tokens_left = options_.token_budget - static_cast<std::int64_t>(keep);
    if (tokens_left < 0) tokens_left = 0;
  }
  std::size_t batch = keep;
  for (const CapacitySeq& w : waiting) {
    if (batch >= static_cast<std::size_t>(options_.max_batch)) break;
    if (options_.token_budget > 0 && w.context > tokens_left) break;
    const std::int64_t need = pages_for(w.context + 1);
    if (options_.kv_pages > 0 && used + need > options_.kv_pages) break;
    plan.admit.push_back(w.id);
    used += need;
    if (options_.token_budget > 0) tokens_left -= w.context;
    ++batch;
  }

  // 3. Progress guarantee: a request bigger than the budgets must still be
  // served once the batch is otherwise idle, or it wedges the scheduler.
  if (plan.admit.empty() && running.empty() && !waiting.empty())
    plan.admit.push_back(waiting.front().id);

  // 4. Starvation bound: the caller decided the waiting head has waited
  // long enough — make room for it by preempting the newest survivors of
  // step 1 (down to an empty batch if it comes to that), ignoring the
  // per-iteration token budget exactly like step 3 does. The victims
  // resume later via the normal re-prefill path, so this trades one
  // tenant's steady progress for another's bounded admission delay.
  if (force_admit_head && plan.admit.empty() && !waiting.empty()) {
    const CapacitySeq& head = waiting.front();
    const std::int64_t need = pages_for(head.context + 1);
    const auto fits = [&](std::size_t b) {
      if (b + 1 > static_cast<std::size_t>(options_.max_batch)) return false;
      return options_.kv_pages <= 0 || used + need <= options_.kv_pages;
    };
    while (!fits(keep) && keep > 0) {
      --keep;
      used -= pages_for(running[keep].context + 1);
      plan.preempt.push_back(running[keep].id);
    }
    // Admit even if the head alone still violates the ledger (keep == 0):
    // the head must make progress eventually, same as the idle rule.
    plan.admit.push_back(head.id);
  }

  return plan;
}

}  // namespace llmpq
