#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/metrics.hpp"

namespace llmpq {

struct RequestStats;  // serve/scheduler.hpp

/// Multi-tenant serving model (ROADMAP item 4, RAMP-style request
/// classes): every request carries a `tenant_id` naming the stream it
/// belongs to and a `req_class` naming its service class. Tenants share
/// one cluster under weighted fair sharing — the scheduler keeps a
/// virtual-time account per tenant (admitted work divided by weight) and
/// admits waiting requests in ascending-service order, so over a backlog
/// a weight-2 tenant is admitted twice the tokens of a weight-1 tenant.
/// SLOs are per-tenant latency targets measured (not enforced) by
/// `summarize_tenants`; deadlines/admission bounds are per-tenant
/// *enforcement* knobs layered on the scheduler's existing global ones.
struct TenantSpec {
  int id = 0;
  /// Fair-share weight: admitted work is charged as tokens / weight, so a
  /// tenant with twice the weight receives twice the admitted tokens when
  /// every tenant has backlog. Must be > 0.
  double weight = 1.0;
  /// Latency SLO (arrival -> last token) for attainment reporting. Pure
  /// metric — nothing is dropped for missing it. +inf = no SLO.
  double slo_s = std::numeric_limits<double>::infinity();
  /// Per-tenant service deadline (enforced, like
  /// SchedulerOptions::deadline_s but scoped to this tenant's requests;
  /// the effective deadline is the tighter of the two). +inf disables.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Per-tenant bounded admission: a fresh arrival that finds this many
  /// of the tenant's requests already waiting is rejected (kRejected).
  /// 0 = unbounded (the global bound still applies).
  int admission_capacity = 0;
  /// Request class stamped on the tenant's requests by the workload
  /// generator and carried through `DispatchDecision::classes`; the
  /// runtime can route classes to degraded-bit engine variants (see
  /// OnlineEngineOptions::class_engine). Class 0 is the base plan.
  int default_class = 0;
  /// Display name for reports (optional).
  std::string name;
};

/// Per-tenant serving outcome over one run: outcome tallies, the latency
/// summary of completed requests, and SLO attainment — the fraction of
/// *finished* requests (any outcome) that completed within `slo_s`.
/// Counting rejections/timeouts/failures as misses keeps attainment
/// honest: shedding a tenant's load cannot raise its score.
struct TenantSummary {
  int tenant = 0;
  std::string name;
  double weight = 1.0;
  double slo_s = std::numeric_limits<double>::infinity();
  int submitted = 0;  ///< finished requests of this tenant (all outcomes)
  int completed = 0;
  int timed_out = 0;
  int rejected = 0;
  int failed = 0;
  long long tokens_out = 0;  ///< useful generated tokens (completed only)
  LatencySummary latency;    ///< arrival -> last token, completed only
  /// Completed-within-SLO / finished; 1.0 when the tenant has no SLO and
  /// nothing was lost, 0.0 when nothing finished.
  double slo_attainment = 0.0;
};

/// Aggregates the scheduler's completion log per tenant. Requests whose
/// tenant id has no spec are folded into a synthetic default spec (id as
/// given, weight 1, no SLO) so the summary always conserves requests.
std::vector<TenantSummary> summarize_tenants(
    const std::vector<RequestStats>& finished,
    const std::vector<TenantSpec>& specs);

/// Smallest per-tenant SLO attainment across `summaries` (1.0 when
/// empty) — the fairness floor CI gates: no tenant may be starved to
/// prop up the aggregate.
double min_slo_attainment(const std::vector<TenantSummary>& summaries);

}  // namespace llmpq
