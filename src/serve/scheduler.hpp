#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/trace.hpp"
#include "serve/tenant.hpp"

namespace llmpq {

/// Shared serving scheduler (paper Sec. 2.3 / Sec. 7, and the ORCA/vLLM
/// style systems the discussion defers to): *pure decision logic* for
/// batching arriving requests, factored out of the online simulator so the
/// exact same policy code drives both back-ends —
///
///   * `sim/online_sim.cpp` advances a virtual clock with analytic
///     roofline pass times, and
///   * `serve/online_engine.cpp` advances a wall clock with the real
///     threaded `PipelineEngine`.
///
/// The scheduler consumes arrival events plus a caller-supplied clock and
/// emits dispatch decisions (which requests, which phase, padded shapes).
/// It never sleeps, never measures time, and touches no hardware, which is
/// what makes it unit-testable and back-end independent. Two historical
/// timing bugs live here *fixed once* for both back-ends:
///
///   1. Stale timer: with a non-empty, non-full queue the old simulator
///      waited for the *next arrival*, so a tail request could wait
///      unboundedly. The scheduler now emits a wait deadline of
///      `min(next_arrival, oldest.arrival + max_wait_s)` and dispatches at
///      the stale deadline.
///   2. Queue delay: the old iteration-level path recorded
///      `t_after_prefill - arrival`, silently folding prefill compute into
///      queueing. The scheduler records `admit_time - arrival` and tracks
///      prefill time as a separate per-request stat.

struct ServeRequest {
  int id = 0;           ///< caller-assigned, stable across back-ends
  double arrival_s = 0.0;
  int prompt_len = 0;
  int gen_tokens = 0;
  /// Tenant the request belongs to (multi-tenant fair sharing; see
  /// SchedulerOptions::tenants). With no tenants configured the field is
  /// carried through to RequestStats but never affects decisions.
  int tenant_id = 0;
  /// Request class (RAMP-style): stamped into DispatchDecision::classes
  /// so the runtime can route classes to degraded-bit engine variants.
  /// Never affects *which* requests are batched, only where they execute.
  int req_class = 0;
};

enum class SchedulerPolicy {
  kStaticBatching,  ///< pad a batch, run it to the longest generation
  kIterationLevel,  ///< ORCA: requests join/leave at token granularity
};

/// How a back-end executes the decode rounds the scheduler dispatches.
/// For kSession/kReplay this is purely an *execution* strategy: it changes
/// what a dispatch costs (and, for kReplay, mixed-length fidelity), never
/// which requests are batched — their decision logs are identical.
/// kContinuous is different in kind: it routes decisions through the
/// capacity planner (joins ride along with decode rounds, memory pressure
/// preempts), so its log differs from the other two — but it is still
/// deterministic and back-end independent, which is what lets the parity
/// test pin sim against runtime for all three.
enum class DecodeExec {
  /// Step-level engine sessions: KV persists across decisions and each
  /// decode round feeds exactly one new token per request (ragged, no
  /// padding). Exact for mixed-length batches.
  kSession,
  /// Historical replay decode: each decode round re-runs every active
  /// request's full padded context for one token — a prefill-shaped pass
  /// per round, with pad positions attended to. Kept as the regression
  /// baseline the session path is benchmarked against.
  kReplay,
  /// Continuous (in-flight) batching over engine sessions: between decode
  /// steps the capacity planner admits waiting requests into the running
  /// batch (their prefill joins the same iteration), retires finished
  /// sequences immediately, and preempts the newest sequences to pending
  /// when the analytic KV page ledger overflows. Requires
  /// SchedulerPolicy::kIterationLevel.
  kContinuous,
};

struct SchedulerOptions {
  SchedulerPolicy policy = SchedulerPolicy::kIterationLevel;
  /// Max concurrent sequences (bounded by the plan's preallocated KV).
  int max_batch = 32;
  /// Static batching: dispatch when this many requests are queued or the
  /// oldest has waited `max_wait_s`.
  int batch_size = 16;
  double max_wait_s = 5.0;
  /// Decode execution strategy for the back-end (see DecodeExec). Lives in
  /// the shared options so sim and runtime stay configured identically.
  /// For kSession/kReplay the scheduler ignores it — decisions do not
  /// depend on it; kContinuous switches the decision path to the capacity
  /// planner (identical in sim and runtime, so parity still holds).
  DecodeExec exec = DecodeExec::kSession;

  // ---- Continuous-batching budgets (kContinuous only; ignored by the
  // other modes). Zeros disable a dimension — see CapacityOptions.

  /// Per-iteration token budget: each decode row costs 1, a joining
  /// request costs its full context. 0 = unbounded.
  int token_budget = 0;
  /// Analytic KV ledger granularity — tokens per page, mirroring the
  /// engine's KvCacheManagerOptions::page_size.
  int kv_page_size = 16;
  /// Analytic KV ledger cap in pages per layer manager; overflow preempts
  /// the newest running sequences to pending. 0 = unbounded (never
  /// preempts). The ledger is the enforcer — the engine's real pools stay
  /// unbounded, so sim and runtime decide identically without consulting
  /// memory.
  int kv_pages = 0;

  // ---- Fault-tolerance policy (all defaults leave behavior unchanged:
  // with no deadline, no admission bound and no fail() calls the decision
  // log is identical to the pre-fault-tolerance scheduler, which the
  // sim-vs-runtime parity test relies on).

  /// Per-request service deadline measured from arrival. A request still
  /// queued (or still generating, iteration-level) past
  /// `arrival + deadline_s` finishes as kTimedOut. +inf disables.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Bounded admission queue: a fresh arrival that finds this many
  /// requests already waiting is rejected on arrival (kRejected
  /// backpressure). 0 = unbounded. Retries re-enter without re-admission.
  int admission_capacity = 0;
  /// Retry policy for requests of failed dispatches (see fail()): each
  /// request is re-dispatched at most `max_retries` times, with
  /// exponential backoff min(retry_backoff_s * 2^(attempt-1),
  /// retry_backoff_max_s) between attempts; past the cap it finishes as
  /// kFailed.
  int max_retries = 2;
  double retry_backoff_s = 0.05;
  double retry_backoff_max_s = 2.0;

  // ---- Multi-tenant fair sharing (empty = single-tenant legacy mode;
  // the decision log is then bit-identical to the tenant-blind scheduler,
  // which existing parity tests and committed baselines rely on).

  /// Tenant table. When non-empty, every submitted request's tenant_id
  /// must name one of these specs; admission then follows virtual-time
  /// weighted fair sharing (see DESIGN.md "Multi-tenant serving & fair
  /// sharing") and per-tenant deadlines/admission bounds apply.
  std::vector<TenantSpec> tenants;
  /// Starvation bound for continuous batching, measured in dispatch
  /// *rounds* (clock-free, so sim and runtime decide identically): once
  /// the head of the waiting list has been passed over this many
  /// consecutive rounds by a full running batch, the capacity planner
  /// force-admits it, preempting the newest running sequences as needed.
  /// 0 disables (legacy decision logs unchanged); -1 = auto (0 without
  /// tenants, 16 with tenants configured).
  int join_starvation_rounds = -1;
  /// Caps the waiting-list prefix the continuous-mode planner examines
  /// per round, bounding per-round work under a deep backlog (the 10^6
  /// request scale scenario). 0 = unbounded. The cap never reorders —
  /// it only truncates the tail the planner would not admit anyway once
  /// the batch is near capacity.
  int admit_scan_limit = 0;
  /// When false, the scheduler stops retaining the dispatch-decision log
  /// (decision_log() stays empty). Million-request runs disable it —
  /// retaining ~10^8 decision rows is the scale killer, and the parity
  /// tests that need the log run on small traces.
  bool record_decisions = true;
};

/// Terminal state of a request. Conservation invariant (chaos tests): every
/// submitted id ends up in finished() exactly once, with exactly one of
/// these outcomes.
enum class RequestOutcome {
  kCompleted,  ///< served normally
  kTimedOut,   ///< deadline_s elapsed before service finished
  kRejected,   ///< bounced by the admission bound on arrival
  kFailed,     ///< dispatch failures exhausted max_retries
};

const char* request_outcome_name(RequestOutcome outcome);

enum class ServePhase { kPrefillPass, kDecodePass };

/// One unit of work the back-end must execute. For static batching a
/// prefill decision bundles the whole padded run (prefill + `padded_gen`
/// generated tokens); for iteration-level scheduling prefill and each
/// decode round are separate decisions so requests can join/leave between
/// rounds.
struct DispatchDecision {
  int seq = 0;                    ///< decision index (parity-test key)
  ServePhase phase = ServePhase::kPrefillPass;
  std::vector<int> request_ids;   ///< admitted (prefill) or active (decode)
  /// Per-request context length, aligned with request_ids: the prompt
  /// length for a prefill pass, prompt + generated-so-far for a decode
  /// round. Session back-ends use it to verify KV state and retry
  /// idempotently; it is part of the parity-test key.
  std::vector<int> contexts;
  int padded_prompt = 0;          ///< prefill: batch max prompt length
  int padded_gen = 0;             ///< static prefill: batch max generation
  int max_context = 0;            ///< decode: longest context this round
  /// Continuous batching only: the last `num_join` rows of request_ids are
  /// joining this iteration — their context is prefilled (fresh prompt or
  /// preempt-resume re-prefill) while the leading rows decode one token.
  /// A round with only joins is phase kPrefillPass; a mixed round is
  /// kDecodePass with num_join > 0.
  int num_join = 0;
  /// Continuous batching only: running sequences evicted to pending by
  /// this decision, newest first. The back-end must release their KV
  /// (PipelineEngine::preempt_session) before executing the round; they
  /// re-enter later as joining rows. Part of the parity key.
  std::vector<int> preempted;
  /// Per-row tenant ids and request classes, aligned with request_ids.
  /// Tenancy is part of the parity key: the fair-share pass must admit
  /// the same rows in the same order on both back-ends. Classes tell the
  /// runtime which engine variant each row executes on.
  std::vector<int> tenants;
  std::vector<int> classes;
  /// Joins admitted by the starvation bound this round (trailing rows of
  /// the join set). Part of the parity key — a forced admission must
  /// happen at the same round on both back-ends.
  int forced_joins = 0;
};

/// What the back-end should do next, at the clock value it passed in.
struct SchedulerAction {
  enum class Kind {
    kDispatch,  ///< execute `decision`, then report complete()
    kWait,      ///< nothing to do before `wait_until` (+inf: block until
                ///< submit()/close() — live back-ends wait on their queue)
    kDone,      ///< stream closed and every request finished
  };
  Kind kind = Kind::kDone;
  DispatchDecision decision;
  double wait_until = 0.0;
};

/// Per-request serving record. `queue_delay_s` is admission latency only
/// (arrival -> dispatch decision); `prefill_s` is the separate prefill pass
/// time, no longer conflated with queueing.
struct RequestStats {
  int id = 0;
  double arrival_s = 0.0;
  double admit_s = 0.0;
  double finish_s = 0.0;
  double queue_delay_s = 0.0;  ///< admit_s - arrival_s
  double prefill_s = 0.0;      ///< prefill pass duration (0 if unknown)
  /// Total time spent parked on the resume queue after a preemption or a
  /// failed join (kContinuous). queue_delay_s covers arrival->admission
  /// only, so without this field preemption-era waiting was invisible —
  /// per-tenant SLO attribution needs wall time to decompose as
  /// queue_delay + service + resume_wait.
  double resume_wait_s = 0.0;
  int prompt_len = 0;
  int gen_tokens = 0;
  int tenant = 0;     ///< ServeRequest::tenant_id
  int req_class = 0;  ///< ServeRequest::req_class
  RequestOutcome outcome = RequestOutcome::kCompleted;
  int retries = 0;  ///< failed-dispatch retries this request consumed
};

/// Tally of terminal outcomes across finished(), for reports and the
/// conservation assertions in the chaos tests.
struct OutcomeCounts {
  int completed = 0;
  int timed_out = 0;
  int rejected = 0;
  int failed = 0;
  int retries = 0;  ///< total retries consumed by all finished requests
};

class ServeScheduler {
 public:
  explicit ServeScheduler(const SchedulerOptions& options);

  /// Adds a request to the arrival stream. Requests with `arrival_s` in
  /// the future (relative to the clock passed to next()) are held until
  /// their arrival time, which lets trace replay submit everything up
  /// front; live back-ends submit with arrival_s = now. Ids are single-use
  /// for the scheduler's lifetime — reusing one, even after its request
  /// finished, is rejected because back-ends index per-request buffers by
  /// id. Not thread-safe — callers serialize (the online engine holds its
  /// own lock).
  void submit(const ServeRequest& request);

  /// Declares the arrival stream finished: no further submit() calls.
  /// Until close(), an empty queue yields kWait instead of kDone.
  void close();
  bool closed() const { return closed_; }

  /// Core decision function. `now` must be non-decreasing across calls.
  /// After a kDispatch action the caller must execute the decision and
  /// report complete() before asking for the next action.
  SchedulerAction next(double now);

  /// Reports that `decision` finished executing at `finish_s` (same clock
  /// as next()). `prefill_end_s`, when >= 0, is the time the prefill pass
  /// of a kPrefillPass decision completed (for static batching back-ends
  /// that can split the bundled run; pass -1 if unknown).
  void complete(const DispatchDecision& decision, double finish_s,
                double prefill_end_s = -1.0);

  /// Reports that `decision` FAILED at `now` (back-end fault) — the
  /// error-path counterpart of complete(). Prefill: its requests re-enter
  /// the queue with exponential backoff, finishing as kFailed once they
  /// exhaust max_retries. Decode: the active set stays resident and the
  /// round is retried after the backoff window; requests that exhaust
  /// max_retries finish as kFailed. Either way dispatching pauses until
  /// the backoff window elapses.
  void fail(const DispatchDecision& decision, double now);

  /// Outcome tally over finished().
  OutcomeCounts outcomes() const;

  int pending() const { return static_cast<int>(queue_.size()); }
  int active() const { return static_cast<int>(active_.size()); }
  bool idle() const {
    return queue_.empty() && active_.empty() && resume_.empty() &&
           !in_flight_;
  }
  /// Sequences evicted to pending by the capacity planner (kContinuous).
  int preemptions() const { return preemptions_; }
  /// Joins admitted by the starvation bound (kContinuous; see
  /// SchedulerOptions::join_starvation_rounds).
  int forced_joins() const { return forced_joins_total_; }
  /// Per-tenant outcome/SLO summaries over finished() (empty specs fold
  /// everything into one synthetic tenant row).
  std::vector<TenantSummary> tenant_summaries() const {
    return summarize_tenants(finished_, options_.tenants);
  }

  /// Requests that finished, in completion order.
  const std::vector<RequestStats>& finished() const { return finished_; }

  /// Every dispatch decision emitted, in order — the parity-test log: two
  /// back-ends driving the same trace must produce identical logs.
  const std::vector<DispatchDecision>& decision_log() const {
    return decision_log_;
  }

  /// Arms trace emission: dispatch-execution spans on `pid`'s track and a
  /// queue→prefill→decode async lifecycle per request (keyed by request
  /// id), all timestamped on the scheduler's own clock. `clock_offset_s`
  /// is added to every timestamp so a wall-clock back-end can align with
  /// the trace session (pass TraceSession::now_s() captured when this
  /// scheduler's clock read zero); virtual-clock back-ends pass 0. Events
  /// are recorded only while the global TraceSession is enabled.
  void enable_trace(std::uint32_t pid, double clock_offset_s);

 private:
  struct ActiveReq {
    int id = 0;
    int context = 0;    ///< tokens in KV (prompt + generated so far)
    int remaining = 0;  ///< tokens still to generate
    int retries = 0;    ///< failed dispatches consumed so far
    int tenant = 0;     ///< ServeRequest::tenant_id
    int cls = 0;        ///< ServeRequest::req_class
    /// Clock value this sequence was parked on resume_ (preemption or
    /// failed join); < 0 while running. Re-admission charges the parked
    /// interval to RequestStats::resume_wait_s.
    double parked_at = -1.0;
  };

  /// Queue entry: a waiting request plus its retry state. `eligible_s` is
  /// the arrival time for fresh requests and the backoff-release time for
  /// retries; the queue is sorted by (eligible_s, id).
  struct QueuedReq {
    ServeRequest req;
    double eligible_s = 0.0;
    int attempts = 0;      ///< failed dispatches so far
    bool admitted = false; ///< passed the admission bound (retries keep it)
  };

  /// Where a waiting-list row came from, so an admitted prefix maps back
  /// onto resume_ / queue_ (fair sharing interleaves the two, so the old
  /// pop-the-head bookkeeping no longer suffices).
  struct WaitRef {
    int id = 0;
    bool from_resume = false;
    std::size_t idx = 0;  ///< index into resume_ or queue_
  };

  SchedulerAction next_static(double now);
  SchedulerAction next_iteration(double now);
  /// Continuous batching: one capacity-planner round — preempt under page
  /// pressure, then dispatch the continuing set plus the admitted joins as
  /// a single decision.
  SchedulerAction next_continuous(double now);
  void complete_continuous(const DispatchDecision& decision, double finish_s,
                           double prefill_end_s);
  void fail_continuous(double now, int& max_attempt);
  DispatchDecision make_prefill_decision(double now, int take);
  int arrived_count(double now) const;
  /// Builds the round's waiting order: resume rows first, then arrived
  /// fresh rows — each group FIFO in legacy mode, interleaved by
  /// ascending virtual service when tenants are configured.
  std::vector<WaitRef> order_waiting(double now);
  /// Tenant bookkeeping. tenant_idx returns the spec index (-1 when
  /// tenants are not configured); weight_of/deadline_for read the spec.
  int tenant_idx(int tenant_id) const;
  double weight_of(int tenant_id) const;
  double deadline_for(int tenant_id) const;
  /// Charges `tokens` of admitted work to the tenant's virtual-time
  /// account (no-op in legacy mode).
  void charge_service(int tenant_id, double tokens);
  /// Idle-tenant catch-up: a tenant with no active/resume rows cannot
  /// bank fair-share credit while idle — its account is lifted to the
  /// smallest account among tenants that do hold rows, so a returning
  /// tenant gets priority without monopolizing the batch.
  void clamp_idle_service();
  void record_decision(const DispatchDecision& d);
  void trace_request_lifecycle(const RequestStats& rs) const;
  void enqueue(QueuedReq entry);
  /// Deterministic arrival-order pass: expire queued requests whose
  /// deadline lapsed, then apply the admission bound to fresh arrivals.
  void process_arrivals(double now);
  /// Iteration-level deadline check over the in-generation set.
  void expire_active(double now);
  void finish_unserved(const ServeRequest& r, RequestOutcome outcome,
                       double finish_s, int retries);
  double backoff_s(int attempt) const;
  /// Folds deadline-expiry wakeups into a kWait action so a waiting
  /// back-end wakes in time to time requests out.
  void fold_expiry_wakeups(SchedulerAction& a) const;

  SchedulerOptions options_;
  std::unordered_set<int> ids_;     ///< every id ever submitted (O(1) dups)
  std::deque<QueuedReq> queue_;     ///< sorted by (eligible_s, id)
  std::vector<ActiveReq> active_;   ///< iteration-level in-generation set
  /// Continuous mode: preempted sequences waiting to resume (FIFO; they
  /// outrank fresh arrivals for admission since they already hold
  /// generated tokens) plus failed joins awaiting retry.
  std::deque<ActiveReq> resume_;
  /// Continuous mode: the joining rows of the in-flight decision, so
  /// complete()/fail() know each join's shape (context fed, remaining).
  std::vector<ActiveReq> joining_;
  std::unordered_map<int, RequestStats> open_;  ///< admitted, not finished
  std::vector<RequestStats> finished_;
  std::vector<DispatchDecision> decision_log_;
  bool closed_ = false;
  bool in_flight_ = false;  ///< a dispatch awaits complete()
  double dispatch_now_ = 0.0;  ///< clock value of the in-flight dispatch
  double resume_not_before_ = 0.0;  ///< backoff window after a fail()
  int next_seq_ = 0;
  int in_flight_seq_ = -1;  ///< seq of the in-flight dispatch
  int preemptions_ = 0;  ///< capacity-planner evictions (kContinuous)

  // ---- Multi-tenant state (all unused in legacy single-tenant mode).
  std::unordered_map<int, int> tenant_index_;  ///< tenant id -> spec index
  /// Virtual-time fair-share accounts, indexed like options_.tenants:
  /// admitted tokens / weight. The tenant with the smallest account is
  /// first in line.
  std::vector<double> service_;
  bool tenant_deadlines_ = false;  ///< any spec with a finite deadline_s
  bool tenant_admission_ = false;  ///< any spec with an admission bound
  int forced_joins_total_ = 0;  ///< starvation-bound force admissions
  int starved_id_ = -1;     ///< current waiting-list head (kContinuous)
  int starved_rounds_ = 0;  ///< rounds that head has been passed over

  bool trace_ = false;
  std::uint32_t trace_pid_ = trace_pids::kServe;
  double trace_offset_s_ = 0.0;
};

const char* scheduler_policy_name(SchedulerPolicy policy);

}  // namespace llmpq
