#include "serve/tenant.hpp"

#include <algorithm>
#include <map>

#include "serve/scheduler.hpp"

namespace llmpq {

std::vector<TenantSummary> summarize_tenants(
    const std::vector<RequestStats>& finished,
    const std::vector<TenantSpec>& specs) {
  // Ordered map so the summary order is deterministic (ascending tenant
  // id) regardless of completion order; spec'd tenants appear even when
  // they finished nothing.
  std::map<int, TenantSummary> by_tenant;
  std::map<int, std::vector<double>> latencies;
  for (const TenantSpec& spec : specs) {
    TenantSummary s;
    s.tenant = spec.id;
    s.name = spec.name;
    s.weight = spec.weight;
    s.slo_s = spec.slo_s;
    by_tenant.emplace(spec.id, std::move(s));
  }
  for (const RequestStats& r : finished) {
    auto it = by_tenant.find(r.tenant);
    if (it == by_tenant.end()) {
      TenantSummary s;
      s.tenant = r.tenant;
      it = by_tenant.emplace(r.tenant, std::move(s)).first;
    }
    TenantSummary& s = it->second;
    ++s.submitted;
    switch (r.outcome) {
      case RequestOutcome::kCompleted: {
        ++s.completed;
        s.tokens_out += r.gen_tokens;
        latencies[r.tenant].push_back(r.finish_s - r.arrival_s);
        break;
      }
      case RequestOutcome::kTimedOut:
        ++s.timed_out;
        break;
      case RequestOutcome::kRejected:
        ++s.rejected;
        break;
      case RequestOutcome::kFailed:
        ++s.failed;
        break;
    }
  }
  std::vector<TenantSummary> out;
  out.reserve(by_tenant.size());
  for (auto& [id, s] : by_tenant) {
    auto lit = latencies.find(id);
    const std::vector<double>* lat =
        lit != latencies.end() ? &lit->second : nullptr;
    int within = 0;
    if (lat != nullptr)
      for (double l : *lat) within += l <= s.slo_s;
    s.slo_attainment =
        s.submitted > 0
            ? static_cast<double>(within) / static_cast<double>(s.submitted)
            : 0.0;
    if (lat != nullptr) s.latency = summarize_latency(*lat);
    out.push_back(std::move(s));
  }
  return out;
}

double min_slo_attainment(const std::vector<TenantSummary>& summaries) {
  double floor = 1.0;
  for (const TenantSummary& s : summaries)
    floor = std::min(floor, s.slo_attainment);
  return floor;
}

}  // namespace llmpq
