#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/plan.hpp"
#include "runtime/engine.hpp"
#include "runtime/weights.hpp"
#include "serve/replanner.hpp"

namespace llmpq {

/// Owns the elastic-migration state on the runtime side: the evolving
/// ExecutionPlan and every replacement engine built for it. apply() turns a
/// PlanDelta into a live engine:
///
///   kMigrateLayer / kMicroBatch  the new engine SHARES the base weights
///       (boundary and batching moves change no tensor), so greedy output
///       is bit-identical across the swap — the chaos tests pin this.
///   kBitChange  the moved precision is requantized from the same weight
///       seed (the DegradeLadder idiom: build_random_model draws master
///       weights from a bits/format-independent stream, the same overlap
///       path OtfQuantizer serves), so the model identity is preserved but
///       logits are NOT bit-identical — precision changed by design.
///
/// The serving loop completes the migration: swapping engines releases
/// every live session (KvCacheManager::preempt semantics) and the next
/// dispatch re-prefills each request's full context on the new engine,
/// which under greedy sampling resumes it exactly.
///
/// Caveat: health verdicts attribute bottlenecks by ENGINE stage index;
/// the controller maps deltas through PLAN stage indices. The two agree
/// when every plan stage is non-empty (empty stages are filtered out of
/// the engine) — keep migration plans free of empty stages.
class MigrationController {
 public:
  /// `weights` is the serving engine's weight set; it must outlive the
  /// controller. `plan` must describe the same model (layer count) and is
  /// the starting point deltas are applied to. `seed` must be the seed
  /// `weights` was built from so bit-change rebuilds preserve identity.
  MigrationController(const ModelWeights& weights, ExecutionPlan plan,
                      std::uint64_t seed);

  /// The current plan (after every applied delta).
  const ExecutionPlan& plan() const { return plan_; }

  /// Applies a delta and builds the replacement engine (lazily owned for
  /// the controller's lifetime; old engines stay valid until destruction).
  /// Returns nullptr for kNone without touching the plan.
  PipelineEngine* apply(const PlanDelta& delta);

  int migrations() const { return migrations_; }

  /// Adapter for OnlineEngineOptions::replan: proposes with `replanner`
  /// against the current plan and applies the result. Both referents must
  /// outlive the serving loop.
  std::function<ReplanOutcome(const HealthVerdict&)> hook(
      const Replanner& replanner);

 private:
  std::vector<std::pair<int, int>> stage_ranges() const;

  const ModelWeights& base_;
  ExecutionPlan plan_;
  std::uint64_t seed_ = 0;
  int migrations_ = 0;

  struct Built {
    ModelWeights weights;  ///< only populated for bit-change rebuilds
    bool owns_weights = false;
    std::unique_ptr<PipelineEngine> engine;
  };
  std::vector<std::unique_ptr<Built>> built_;
};

}  // namespace llmpq
