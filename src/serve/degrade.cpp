#include "serve/degrade.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace llmpq {

namespace {

// Next rung down the supported weight widths; 3 is the floor.
int lower_bits(int bits) {
  if (bits > 8) return 8;
  if (bits > 4) return 4;
  return 3;
}

}  // namespace

std::vector<DegradeStep> default_degrade_ladder(
    const std::vector<int>& layer_bits, QuantFormat format,
    int prefill_micro_batch, int decode_micro_batch) {
  check_arg(!layer_bits.empty(), "degrade ladder needs layer bitwidths");
  std::vector<DegradeStep> steps;
  std::vector<int> bits = layer_bits;

  if (format != QuantFormat::kPerChannel) {
    steps.push_back(
        {bits, QuantFormat::kPerChannel, prefill_micro_batch,
         decode_micro_batch});
  }

  while (std::any_of(bits.begin(), bits.end(),
                     [](int b) { return b > 3; })) {
    for (int& b : bits) b = lower_bits(b);
    steps.push_back({bits, QuantFormat::kPerChannel, prefill_micro_batch,
                     decode_micro_batch});
  }

  if (prefill_micro_batch > 1 || decode_micro_batch > 1) {
    steps.push_back({bits, QuantFormat::kPerChannel,
                     std::max(1, prefill_micro_batch / 2),
                     std::max(1, decode_micro_batch / 2)});
  }
  return steps;
}

DegradeLadder::DegradeLadder(ModelSpec spec,
                             std::vector<std::pair<int, int>> stage_layers,
                             std::uint64_t seed,
                             std::vector<DegradeStep> steps)
    : spec_(std::move(spec)),
      stage_layers_(std::move(stage_layers)),
      seed_(seed),
      steps_(std::move(steps)) {
  check_arg(!stage_layers_.empty(), "degrade ladder needs stage ranges");
  for (const DegradeStep& s : steps_) {
    check_arg(static_cast<int>(s.layer_bits.size()) == spec_.layers,
                "degrade step bitwidths must cover every layer");
  }
}

PipelineEngine* DegradeLadder::engine_for_level(int level) {
  if (level < 1 || level > static_cast<int>(steps_.size())) return nullptr;
  const std::size_t idx = static_cast<std::size_t>(level - 1);
  if (built_.size() <= idx) built_.resize(idx + 1);
  if (!built_[idx]) {
    const DegradeStep& step = steps_[idx];
    auto built = std::make_unique<Built>();
    built->weights =
        build_random_model(spec_, step.layer_bits, seed_, step.format);
    built->engine = std::make_unique<PipelineEngine>(
        built->weights, stage_layers_, step.prefill_micro_batch,
        step.decode_micro_batch);
    built_[idx] = std::move(built);
  }
  return built_[idx]->engine.get();
}

std::function<PipelineEngine*(int)> DegradeLadder::hook() {
  return [this](int level) { return engine_for_level(level); };
}

}  // namespace llmpq
