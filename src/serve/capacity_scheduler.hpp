#pragma once

#include <cstdint>
#include <vector>

namespace llmpq {

/// Knobs for the per-iteration admission/preemption plan. Zeros disable a
/// dimension: with token_budget == 0 and kv_pages == 0 the plan degenerates
/// to "admit while the batch has room", which is exactly the iteration-level
/// scheduler's behavior — continuous mode with no budgets differs from
/// kSession only in that joins ride along with decode rounds.
struct CapacityOptions {
  /// Max concurrent sequences (running + joining this round).
  int max_batch = 32;
  /// Per-iteration token budget (ORCA-style): each running sequence costs 1
  /// (its decode token), each join costs its full context (the prefill
  /// tokens fed this round). 0 = unbounded.
  int token_budget = 0;
  /// Analytic KV ledger: tokens per page, mirroring the engine's
  /// KvCacheManagerOptions::page_size.
  int kv_page_size = 16;
  /// Analytic KV ledger: page cap *per layer manager* (every sequence
  /// occupies the same page count in every manager, so one ledger covers
  /// them all). 0 = unbounded, preemption never triggers.
  int kv_pages = 0;
};

/// One sequence as the capacity planner sees it: `context` is the KV
/// positions the sequence needs after this round for a running sequence
/// (it appends one token), or the tokens its join prefill feeds for a
/// waiting one.
struct CapacitySeq {
  int id = 0;
  int context = 0;
};

/// Output of one planning round: `admit` is a FIFO prefix of the waiting
/// list to join this iteration; `preempt` lists running sequences to evict
/// to pending (pages released, re-prefilled later), newest first.
struct CapacityPlan {
  std::vector<int> admit;
  std::vector<int> preempt;
};

/// The capacityScheduler of a TensorRT-LLM-style batch manager, reduced to
/// its decision core: between decode iterations, decide which waiting
/// sequences join the running batch and which running sequences must be
/// preempted under KV memory pressure. Pure arithmetic over an analytic
/// page ledger — it never consults real memory — so the simulator and the
/// runtime make bit-identical decisions from the same inputs (the parity
/// property the sim-vs-runtime test pins).
///
/// Policy, in order:
///   1. Preempt newest-first while the running set overflows `kv_pages`,
///      always keeping at least one running sequence. Victims lose their
///      pages but keep their tokens; resuming is a re-prefill of the full
///      history, which greedy sampling makes bit-exact (engine contract).
///   2. Admit the longest FIFO prefix of `waiting` that fits max_batch, the
///      token budget (decode rows cost 1 token, a join costs its context),
///      and the page ledger. Stopping at the first non-fit keeps admission
///      fair (no starvation by short requests slipping past a long head).
///   3. Progress guarantee: an idle batch always admits the head of the
///      waiting list even if it violates the budgets — otherwise a request
///      larger than the budget would wedge the scheduler forever.
///   4. Starvation bound (`force_admit_head`, set by the serve scheduler
///      once the waiting head has been passed over too many consecutive
///      rounds): if the normal pass admitted nothing, preempt the newest
///      running sequences — all the way to an empty batch if needed,
///      ignoring the token budget like rule 3 — until the head fits the
///      page ledger and batch slot, then admit it. This bounds worst-case
///      admission delay under a continuously-full running batch, which
///      rules 1–3 alone never guarantee.
class CapacityScheduler {
 public:
  explicit CapacityScheduler(const CapacityOptions& options);

  CapacityPlan plan_round(const std::vector<CapacitySeq>& running,
                          const std::vector<CapacitySeq>& waiting,
                          bool force_admit_head = false) const;

  /// Pages one sequence of `tokens` positions occupies in each layer
  /// manager (ceil division, int64 so big contexts cannot overflow).
  std::int64_t pages_for(int tokens) const;

  const CapacityOptions& options() const { return options_; }

 private:
  CapacityOptions options_;
};

}  // namespace llmpq
