#include "serve/scheduler.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/error.hpp"
#include "serve/capacity_scheduler.hpp"

namespace llmpq {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kStaticBatching:
      return "static-batching";
    case SchedulerPolicy::kIterationLevel:
      return "iteration-level";
  }
  return "?";
}

const char* request_outcome_name(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kTimedOut:
      return "timed-out";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

ServeScheduler::ServeScheduler(const SchedulerOptions& options)
    : options_(options) {
  check_arg(options_.max_batch >= 1 && options_.batch_size >= 1,
            "ServeScheduler: batch limits must be positive");
  check_arg(options_.max_wait_s >= 0.0,
            "ServeScheduler: max_wait_s must be non-negative");
  check_arg(options_.deadline_s > 0.0,
            "ServeScheduler: deadline_s must be positive");
  check_arg(options_.admission_capacity >= 0,
            "ServeScheduler: admission_capacity must be >= 0");
  check_arg(options_.max_retries >= 0,
            "ServeScheduler: max_retries must be >= 0");
  check_arg(options_.retry_backoff_s >= 0.0 &&
                options_.retry_backoff_max_s >= 0.0,
            "ServeScheduler: retry backoff must be non-negative");
  check_arg(options_.exec != DecodeExec::kContinuous ||
                options_.policy == SchedulerPolicy::kIterationLevel,
            "ServeScheduler: kContinuous requires kIterationLevel");
  check_arg(options_.token_budget >= 0 && options_.kv_pages >= 0 &&
                options_.kv_page_size >= 1,
            "ServeScheduler: bad continuous-batching budgets");
  check_arg(options_.admit_scan_limit >= 0,
            "ServeScheduler: admit_scan_limit must be >= 0");
  for (std::size_t i = 0; i < options_.tenants.size(); ++i) {
    const TenantSpec& spec = options_.tenants[i];
    check_arg(spec.weight > 0.0, "ServeScheduler: tenant weight must be > 0");
    check_arg(spec.deadline_s > 0.0,
              "ServeScheduler: tenant deadline_s must be positive");
    check_arg(spec.admission_capacity >= 0,
              "ServeScheduler: tenant admission_capacity must be >= 0");
    check_arg(tenant_index_.emplace(spec.id, static_cast<int>(i)).second,
              "ServeScheduler: duplicate tenant id");
    tenant_deadlines_ |= spec.deadline_s != kInf;
    tenant_admission_ |= spec.admission_capacity > 0;
  }
  service_.assign(options_.tenants.size(), 0.0);
  // -1 = auto: the starvation bound arms itself with tenants (a fair-share
  // pass that can still starve a tenant's joins behind a full batch would
  // be fair in name only) and stays off in legacy mode so historical
  // decision logs are bit-identical.
  if (options_.join_starvation_rounds < 0)
    options_.join_starvation_rounds = options_.tenants.empty() ? 0 : 16;
}

void ServeScheduler::enqueue(QueuedReq entry) {
  // Keep the queue sorted by (eligible, id) so trace replay can submit a
  // whole workload up front in any order; live submissions (arrival = now)
  // land at the back and retries slot in at their backoff-release time.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), entry,
      [](const QueuedReq& a, const QueuedReq& b) {
        return a.eligible_s != b.eligible_s ? a.eligible_s < b.eligible_s
                                            : a.req.id < b.req.id;
      });
  queue_.insert(pos, std::move(entry));
}

void ServeScheduler::submit(const ServeRequest& request) {
  check_arg(!closed_, "ServeScheduler: submit() after close()");
  check_arg(request.prompt_len >= 1 && request.gen_tokens >= 0,
            "ServeScheduler: bad request shape");
  // Ids are single-use for the scheduler's lifetime: back-ends index
  // per-request buffers by id, so reusing a finished request's id would
  // silently alias its slot. The ever-seen set also makes the duplicate
  // check O(1) instead of an O(n) queue scan per submit.
  check_arg(ids_.insert(request.id).second,
            "ServeScheduler: duplicate request id (ids are single-use)");
  check_arg(options_.tenants.empty() ||
                tenant_index_.count(request.tenant_id) > 0,
            "ServeScheduler: request names an unconfigured tenant");
  QueuedReq entry;
  entry.req = request;
  entry.eligible_s = request.arrival_s;
  enqueue(std::move(entry));
}

void ServeScheduler::close() { closed_ = true; }

int ServeScheduler::arrived_count(double now) const {
  int n = 0;
  for (const QueuedReq& r : queue_) {
    if (r.eligible_s > now) break;  // sorted: the rest are in the future
    ++n;
  }
  return n;
}

double ServeScheduler::backoff_s(int attempt) const {
  double b = options_.retry_backoff_s;
  for (int i = 1; i < attempt && b < options_.retry_backoff_max_s; ++i)
    b *= 2.0;
  return std::min(b, options_.retry_backoff_max_s);
}

int ServeScheduler::tenant_idx(int tenant_id) const {
  const auto it = tenant_index_.find(tenant_id);
  return it == tenant_index_.end() ? -1 : it->second;
}

double ServeScheduler::weight_of(int tenant_id) const {
  const int ti = tenant_idx(tenant_id);
  return ti < 0 ? 1.0 : options_.tenants[static_cast<std::size_t>(ti)].weight;
}

double ServeScheduler::deadline_for(int tenant_id) const {
  const int ti = tenant_idx(tenant_id);
  const double tenant_deadline =
      ti < 0 ? kInf
             : options_.tenants[static_cast<std::size_t>(ti)].deadline_s;
  return std::min(options_.deadline_s, tenant_deadline);
}

void ServeScheduler::charge_service(int tenant_id, double tokens) {
  if (service_.empty()) return;
  const int ti = tenant_idx(tenant_id);
  if (ti >= 0)
    service_[static_cast<std::size_t>(ti)] += tokens / weight_of(tenant_id);
}

void ServeScheduler::clamp_idle_service() {
  if (service_.empty()) return;
  // "Holding rows" = active or parked-for-resume: those tenants' accounts
  // define the system's virtual time. Tenants holding nothing are lifted
  // to the smallest such account so idleness banks no credit.
  std::vector<bool> holds(service_.size(), false);
  for (const ActiveReq& r : active_) {
    const int ti = tenant_idx(r.tenant);
    if (ti >= 0) holds[static_cast<std::size_t>(ti)] = true;
  }
  for (const ActiveReq& r : resume_) {
    const int ti = tenant_idx(r.tenant);
    if (ti >= 0) holds[static_cast<std::size_t>(ti)] = true;
  }
  double floor = kInf;
  for (std::size_t i = 0; i < service_.size(); ++i)
    if (holds[i]) floor = std::min(floor, service_[i]);
  if (floor == kInf) return;  // nobody holds rows: accounts stay put
  for (std::size_t i = 0; i < service_.size(); ++i)
    if (!holds[i]) service_[i] = std::max(service_[i], floor);
}

void ServeScheduler::record_decision(const DispatchDecision& d) {
  in_flight_ = true;
  in_flight_seq_ = d.seq;
  if (options_.record_decisions) decision_log_.push_back(d);
}

void ServeScheduler::finish_unserved(const ServeRequest& r,
                                     RequestOutcome outcome, double finish_s,
                                     int retries) {
  RequestStats rs;
  rs.id = r.id;
  rs.arrival_s = r.arrival_s;
  rs.admit_s = finish_s;
  rs.finish_s = finish_s;
  rs.queue_delay_s = std::max(0.0, finish_s - r.arrival_s);
  rs.prompt_len = r.prompt_len;
  rs.gen_tokens = r.gen_tokens;
  rs.tenant = r.tenant_id;
  rs.req_class = r.req_class;
  rs.outcome = outcome;
  rs.retries = retries;
  finished_.push_back(rs);
  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete("serve", request_outcome_name(outcome),
                                finish_s + trace_offset_s_, /*dur_s=*/0.0,
                                trace_pid_, /*tid=*/0, "id",
                                static_cast<double>(r.id));
}

void ServeScheduler::process_arrivals(double now) {
  // Hot path: with no deadline and no admission bound (global or
  // per-tenant) this is a no-op and the decision log matches the
  // fault-oblivious scheduler exactly.
  const bool has_deadline = options_.deadline_s != kInf || tenant_deadlines_;
  const bool has_admission =
      options_.admission_capacity > 0 || tenant_admission_;
  if (!has_deadline && !has_admission) return;
  // Expire first (including retries parked in backoff — their deadline
  // keeps running) so a request is never rejected after it already timed
  // out. Expiry is stamped at arrival + deadline, not now, so results are
  // independent of how often the back-end polls next(). Each request's
  // effective deadline is the tighter of the global and its tenant's.
  if (has_deadline) {
    for (auto it = queue_.begin(); it != queue_.end();) {
      const double expiry =
          it->req.arrival_s + deadline_for(it->req.tenant_id);
      if (expiry <= now) {
        finish_unserved(it->req, RequestOutcome::kTimedOut, expiry,
                        it->attempts);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (has_admission) {
    int waiting = 0;
    std::vector<int> tenant_waiting(options_.tenants.size(), 0);
    for (const QueuedReq& e : queue_) {
      if (!e.admitted) continue;
      ++waiting;
      const int ti = tenant_idx(e.req.tenant_id);
      if (ti >= 0) ++tenant_waiting[static_cast<std::size_t>(ti)];
    }
    // Fresh arrivals are examined in (arrival, id) order — the queue sort
    // key — so rejection is deterministic and replay-independent. A
    // request is bounced when *either* the global bound or its tenant's
    // own bound is full.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->admitted) {
        ++it;
        continue;
      }
      if (it->eligible_s > now) break;  // fresh: eligible == arrival
      const int ti = tenant_idx(it->req.tenant_id);
      const int tenant_cap =
          ti < 0 ? 0
                 : options_.tenants[static_cast<std::size_t>(ti)]
                       .admission_capacity;
      const bool global_full = options_.admission_capacity > 0 &&
                               waiting >= options_.admission_capacity;
      const bool tenant_full =
          tenant_cap > 0 &&
          tenant_waiting[static_cast<std::size_t>(ti)] >= tenant_cap;
      if (global_full || tenant_full) {
        finish_unserved(it->req, RequestOutcome::kRejected,
                        it->req.arrival_s, 0);
        it = queue_.erase(it);
      } else {
        it->admitted = true;
        ++waiting;
        if (ti >= 0) ++tenant_waiting[static_cast<std::size_t>(ti)];
        ++it;
      }
    }
  }
}

void ServeScheduler::expire_active(double now) {
  if (options_.deadline_s == kInf && !tenant_deadlines_) return;
  const auto expire = [&](auto& set, bool parked) {
    for (auto it = set.begin(); it != set.end();) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      if (sit->second.arrival_s + deadline_for(it->tenant) <= now) {
        RequestStats rs = sit->second;
        // A sequence expiring while parked for resume spent the whole
        // parked interval waiting — the resume-wait account must see it
        // or waits would not sum to wall time.
        if (parked && it->parked_at >= 0.0)
          rs.resume_wait_s += std::max(0.0, now - it->parked_at);
        rs.finish_s = now;
        rs.outcome = RequestOutcome::kTimedOut;
        rs.retries = it->retries;
        finished_.push_back(rs);
        open_.erase(sit);
        it = set.erase(it);
      } else {
        ++it;
      }
    }
  };
  expire(active_, /*parked=*/false);
  expire(resume_, /*parked=*/true);  // preempted deadlines keep running
}

void ServeScheduler::fold_expiry_wakeups(SchedulerAction& a) const {
  if (a.kind != SchedulerAction::Kind::kWait ||
      (options_.deadline_s == kInf && !tenant_deadlines_))
    return;
  for (const QueuedReq& e : queue_)
    a.wait_until = std::min(
        a.wait_until, e.req.arrival_s + deadline_for(e.req.tenant_id));
  for (const ActiveReq& r : active_) {
    const auto it = open_.find(r.id);
    if (it != open_.end())
      a.wait_until = std::min(
          a.wait_until, it->second.arrival_s + deadline_for(r.tenant));
  }
  for (const ActiveReq& r : resume_) {
    const auto it = open_.find(r.id);
    if (it != open_.end())
      a.wait_until = std::min(
          a.wait_until, it->second.arrival_s + deadline_for(r.tenant));
  }
}

DispatchDecision ServeScheduler::make_prefill_decision(double now, int take) {
  DispatchDecision d;
  d.seq = next_seq_++;
  d.phase = ServePhase::kPrefillPass;
  // Which arrived entries join: the queue head `take` times in legacy
  // mode; with tenants, a weighted-fair interleave — repeatedly the next
  // FIFO request of the tenant with the smallest virtual-service account,
  // the account locally advanced per pick so one tenant cannot fill the
  // batch from its own backlog while cheaper tenants wait.
  std::vector<std::size_t> picks;
  picks.reserve(static_cast<std::size_t>(take));
  if (service_.empty()) {
    for (int i = 0; i < take; ++i)
      picks.push_back(static_cast<std::size_t>(i));
  } else {
    clamp_idle_service();
    const auto arrived = static_cast<std::size_t>(arrived_count(now));
    std::vector<std::vector<std::size_t>> per_tenant(service_.size());
    for (std::size_t i = 0; i < arrived; ++i) {
      const int ti = tenant_idx(queue_[i].req.tenant_id);
      per_tenant[static_cast<std::size_t>(ti)].push_back(i);
    }
    std::vector<double> eff = service_;
    std::vector<std::size_t> cursor(service_.size(), 0);
    for (int k = 0; k < take; ++k) {
      int best = -1;
      for (std::size_t t = 0; t < eff.size(); ++t) {
        if (cursor[t] >= per_tenant[t].size()) continue;
        if (best < 0 || eff[t] < eff[static_cast<std::size_t>(best)])
          best = static_cast<int>(t);
      }
      check_arg(best >= 0, "ServeScheduler: fair pick ran out of arrivals");
      const std::size_t bt = static_cast<std::size_t>(best);
      const std::size_t idx = per_tenant[bt][cursor[bt]++];
      picks.push_back(idx);
      const ServeRequest& r = queue_[idx].req;
      eff[bt] += static_cast<double>(r.prompt_len + r.gen_tokens) /
                 weight_of(r.tenant_id);
    }
  }
  d.request_ids.reserve(picks.size());
  for (const std::size_t idx : picks) {
    const QueuedReq& q = queue_[idx];
    const ServeRequest& r = q.req;
    d.request_ids.push_back(r.id);
    d.contexts.push_back(r.prompt_len);
    d.tenants.push_back(r.tenant_id);
    d.classes.push_back(r.req_class);
    d.padded_prompt = std::max(d.padded_prompt, r.prompt_len);
    d.padded_gen = std::max(d.padded_gen, r.gen_tokens);
    // Admission is *now* — queue delay must not include the prefill pass
    // the back-end is about to run (the old simulator's conflation bug).
    RequestStats rs;
    rs.id = r.id;
    rs.arrival_s = r.arrival_s;
    rs.admit_s = now;
    rs.queue_delay_s = std::max(0.0, now - r.arrival_s);
    rs.prompt_len = r.prompt_len;
    rs.gen_tokens = r.gen_tokens;
    rs.tenant = r.tenant_id;
    rs.req_class = r.req_class;
    rs.retries = q.attempts;
    open_.emplace(r.id, rs);
    // Retries re-admit work that was already charged at first admission.
    if (q.attempts == 0)
      charge_service(r.tenant_id,
                     static_cast<double>(r.prompt_len + r.gen_tokens));
  }
  std::vector<std::size_t> doomed = picks;
  std::sort(doomed.begin(), doomed.end(), std::greater<std::size_t>());
  for (const std::size_t idx : doomed)
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  dispatch_now_ = now;
  record_decision(d);
  return d;
}

void ServeScheduler::enable_trace(std::uint32_t pid, double clock_offset_s) {
  trace_ = true;
  trace_pid_ = pid;
  trace_offset_s_ = clock_offset_s;
  TraceSession::instance().set_track_name(pid, 0, "dispatch");
}

/// Emits the finished request's queue→prefill→decode lifecycle as nested
/// async spans keyed by the request id (scheduler clock + offset). Emitted
/// retrospectively at completion, when every boundary is known — the trace
/// is a rendering of RequestStats, so sim and runtime lifecycles are
/// directly overlayable.
void ServeScheduler::trace_request_lifecycle(const RequestStats& rs) const {
  if (!trace_ || !TraceSession::enabled()) return;
  const double off = trace_offset_s_;
  const auto id = static_cast<std::uint64_t>(rs.id);
  TraceSession::emit_async('b', "request", "queue", rs.arrival_s + off, id,
                           trace_pid_);
  TraceSession::emit_async('e', "request", "queue", rs.admit_s + off, id,
                           trace_pid_);
  const double prefill_end = rs.admit_s + rs.prefill_s;
  if (rs.prefill_s > 0.0) {
    TraceSession::emit_async('b', "request", "prefill", rs.admit_s + off, id,
                             trace_pid_);
    TraceSession::emit_async('e', "request", "prefill", prefill_end + off, id,
                             trace_pid_);
  }
  if (rs.finish_s > prefill_end) {
    TraceSession::emit_async('b', "request", "decode", prefill_end + off, id,
                             trace_pid_);
    TraceSession::emit_async('e', "request", "decode", rs.finish_s + off, id,
                             trace_pid_);
  }
}

SchedulerAction ServeScheduler::next(double now) {
  check_arg(!in_flight_,
            "ServeScheduler: next() called with a dispatch still in flight "
            "(call complete() first)");
  process_arrivals(now);
  if (options_.policy == SchedulerPolicy::kIterationLevel)
    expire_active(now);
  // After a fail() the back-end just recovered (or is recovering); hold
  // every dispatch until the backoff window elapses so a persistent fault
  // does not spin the retry loop.
  if (resume_not_before_ > now &&
      (arrived_count(now) > 0 || !active_.empty() || !resume_.empty())) {
    SchedulerAction a;
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = resume_not_before_;
    fold_expiry_wakeups(a);
    return a;
  }
  SchedulerAction a = options_.policy == SchedulerPolicy::kStaticBatching
                          ? next_static(now)
                      : options_.exec == DecodeExec::kContinuous
                          ? next_continuous(now)
                          : next_iteration(now);
  fold_expiry_wakeups(a);
  return a;
}

SchedulerAction ServeScheduler::next_static(double now) {
  SchedulerAction a;
  const int effective = std::min(options_.batch_size, options_.max_batch);
  const int arrived = arrived_count(now);
  if (arrived == 0) {
    if (!queue_.empty()) {  // all queued arrivals are in the future
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = queue_.front().eligible_s;
    } else if (!closed_) {  // live stream: block until submit()/close()
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = kInf;
    } else {
      a.kind = SchedulerAction::Kind::kDone;
    }
    return a;
  }
  const double stale_deadline =
      queue_.front().req.arrival_s + options_.max_wait_s;
  if (arrived >= effective || now >= stale_deadline) {
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = make_prefill_decision(now, std::min(arrived, effective));
    return a;
  }
  // Not full, not stale: wait for whichever comes first — the next queued
  // arrival or the oldest request going stale. The old simulator waited
  // only for the next arrival, so a tail request with no successor (or a
  // distant one) waited unboundedly instead of dispatching at
  // `arrival + max_wait_s`.
  a.kind = SchedulerAction::Kind::kWait;
  a.wait_until = stale_deadline;
  if (arrived < static_cast<int>(queue_.size()))
    a.wait_until = std::min(
        a.wait_until, queue_[static_cast<std::size_t>(arrived)].eligible_s);
  return a;
}

SchedulerAction ServeScheduler::next_iteration(double now) {
  SchedulerAction a;
  const int capacity = options_.max_batch - static_cast<int>(active_.size());
  const int arrived = arrived_count(now);
  if (arrived > 0 && capacity > 0) {
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = make_prefill_decision(now, std::min(arrived, capacity));
    return a;
  }
  if (!active_.empty()) {
    DispatchDecision d;
    d.seq = next_seq_++;
    d.phase = ServePhase::kDecodePass;
    d.request_ids.reserve(active_.size());
    d.contexts.reserve(active_.size());
    for (const ActiveReq& r : active_) {
      d.request_ids.push_back(r.id);
      d.contexts.push_back(r.context);
      d.tenants.push_back(r.tenant);
      d.classes.push_back(r.cls);
      d.max_context = std::max(d.max_context, r.context);
    }
    dispatch_now_ = now;
    record_decision(d);
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = std::move(d);
    return a;
  }
  if (!queue_.empty()) {
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = queue_.front().eligible_s;
  } else if (!closed_) {
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = kInf;
  } else {
    a.kind = SchedulerAction::Kind::kDone;
  }
  return a;
}

std::vector<ServeScheduler::WaitRef> ServeScheduler::order_waiting(
    double now) {
  std::vector<WaitRef> order;
  const std::size_t scan_cap =
      options_.admit_scan_limit > 0
          ? static_cast<std::size_t>(options_.admit_scan_limit)
          : std::numeric_limits<std::size_t>::max();
  // Legacy (no tenants): preempted sequences resume first (they hold
  // generated tokens the system already paid for), then arrived fresh
  // requests in queue order — the historical waiting order, bit-for-bit.
  if (service_.empty()) {
    order.reserve(resume_.size());
    for (std::size_t i = 0; i < resume_.size(); ++i)
      order.push_back(WaitRef{resume_[i].id, true, i});
    for (std::size_t i = 0; i < queue_.size() && i < scan_cap; ++i) {
      if (queue_[i].eligible_s > now) break;  // sorted: rest are future
      order.push_back(WaitRef{queue_[i].req.id, false, i});
    }
    return order;
  }
  // Tenant mode: same two bands (resumes still outrank fresh arrivals),
  // but within each band tenants interleave by ascending virtual-service
  // account — repeatedly the next FIFO row of the cheapest tenant, the
  // account locally advanced by what admitting that row would cost (a
  // resume re-feeds its context; a fresh join is charged its whole
  // prompt + gen up front, matching charge_service at admission). Ties
  // break toward the lower spec index, so the order is deterministic.
  clamp_idle_service();
  std::vector<double> eff = service_;
  const auto interleave = [&](auto count, auto tenant_of, auto cost_of,
                              auto push) {
    std::vector<std::vector<std::size_t>> per_tenant(eff.size());
    for (std::size_t i = 0; i < count(); ++i) {
      const int ti = tenant_of(i);
      per_tenant[static_cast<std::size_t>(ti)].push_back(i);
    }
    std::vector<std::size_t> cursor(eff.size(), 0);
    for (;;) {
      int best = -1;
      for (std::size_t t = 0; t < eff.size(); ++t) {
        if (cursor[t] >= per_tenant[t].size()) continue;
        if (best < 0 || eff[t] < eff[static_cast<std::size_t>(best)])
          best = static_cast<int>(t);
      }
      if (best < 0) break;
      const std::size_t bt = static_cast<std::size_t>(best);
      const std::size_t idx = per_tenant[bt][cursor[bt]++];
      push(idx);
      eff[bt] += cost_of(idx) / options_.tenants[bt].weight;
    }
  };
  interleave([&] { return resume_.size(); },
             [&](std::size_t i) { return tenant_idx(resume_[i].tenant); },
             [&](std::size_t i) {
               return static_cast<double>(resume_[i].context);
             },
             [&](std::size_t i) {
               order.push_back(WaitRef{resume_[i].id, true, i});
             });
  std::size_t fresh = 0;
  while (fresh < queue_.size() && fresh < scan_cap &&
         queue_[fresh].eligible_s <= now)
    ++fresh;
  interleave(
      [&] { return fresh; },
      [&](std::size_t i) { return tenant_idx(queue_[i].req.tenant_id); },
      [&](std::size_t i) {
        const ServeRequest& r = queue_[i].req;
        return static_cast<double>(r.prompt_len + r.gen_tokens);
      },
      [&](std::size_t i) {
        order.push_back(WaitRef{queue_[i].req.id, false, i});
      });
  return order;
}

SchedulerAction ServeScheduler::next_continuous(double now) {
  SchedulerAction a;
  CapacityOptions copt;
  copt.max_batch = options_.max_batch;
  copt.token_budget = options_.token_budget;
  copt.kv_page_size = options_.kv_page_size;
  copt.kv_pages = options_.kv_pages;
  const CapacityScheduler cap(copt);

  std::vector<CapacitySeq> running;
  running.reserve(active_.size());
  for (const ActiveReq& r : active_)
    running.push_back(CapacitySeq{r.id, r.context});

  // Waiting list in admission-priority order; a preempted sequence's
  // "context" is its full history — the tokens its resume prefill feeds.
  const std::vector<WaitRef> order = order_waiting(now);
  std::vector<CapacitySeq> waiting;
  waiting.reserve(order.size());
  for (const WaitRef& w : order)
    waiting.push_back(CapacitySeq{
        w.id, w.from_resume ? resume_[w.idx].context
                            : queue_[w.idx].req.prompt_len});

  CapacityPlan plan = cap.plan_round(running, waiting);

  // Starvation bound: every dispatching round that admits nothing while
  // rows wait is one pass-over of the waiting head. After
  // join_starvation_rounds consecutive pass-overs of the *same* head the
  // round is re-planned with force_admit_head, which preempts running
  // rows to make room. Counting rounds (not seconds) keeps the bound
  // clock-free, so sim and runtime trip it at the same decision seq.
  int forced = 0;
  if (options_.join_starvation_rounds > 0 && plan.admit.empty() &&
      !active_.empty() && !waiting.empty()) {
    if (starved_id_ == waiting.front().id) {
      ++starved_rounds_;
    } else {
      starved_id_ = waiting.front().id;
      starved_rounds_ = 1;
    }
    if (starved_rounds_ >= options_.join_starvation_rounds) {
      plan = cap.plan_round(running, waiting, /*force_admit_head=*/true);
      forced = static_cast<int>(plan.admit.size());
      forced_joins_total_ += forced;
    }
  }
  if (!plan.admit.empty()) {
    starved_id_ = -1;
    starved_rounds_ = 0;
  }

  if (plan.admit.empty() && active_.empty()) {
    // Nothing runnable now (the planner force-admits the waiting head when
    // the batch is idle, so resume_ must be empty here): wait for the
    // arrival stream, or finish.
    if (!queue_.empty()) {
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = queue_.front().eligible_s;
    } else if (!closed_) {
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = kInf;
    } else {
      a.kind = SchedulerAction::Kind::kDone;
    }
    return a;
  }

  DispatchDecision d;
  d.seq = next_seq_++;

  // Evict-to-pending: the planner preempts newest-first, i.e. from the
  // active_ tail. Victims park on resume_ in their original admission
  // order (behind earlier preemptions) so resumption is FIFO-fair. Each
  // victim's park time is stamped so the interval it spends evicted is
  // credited to its resume-wait account on re-admission (or expiry).
  if (!plan.preempt.empty()) {
    std::vector<ActiveReq> victims;
    victims.reserve(plan.preempt.size());
    for (int id : plan.preempt) {
      check_arg(!active_.empty() && active_.back().id == id,
                "ServeScheduler: preemption must pop the newest sequences");
      ActiveReq v = active_.back();
      active_.pop_back();
      v.parked_at = now;
      victims.push_back(v);
    }
    for (auto it = victims.rbegin(); it != victims.rend(); ++it)
      resume_.push_back(*it);
    preemptions_ += static_cast<int>(plan.preempt.size());
    d.preempted = plan.preempt;
  }

  // Continuing rows first, in admission order; joining rows trail.
  d.phase = active_.empty() ? ServePhase::kPrefillPass
                            : ServePhase::kDecodePass;
  for (const ActiveReq& r : active_) {
    d.request_ids.push_back(r.id);
    d.contexts.push_back(r.context);
    d.tenants.push_back(r.tenant);
    d.classes.push_back(r.cls);
    d.max_context = std::max(d.max_context, r.context);
  }
  // The plan admits a prefix of the waiting list; map each admitted id
  // back to its source (resume deque or arrival queue) through the order
  // refs and erase the picked entries afterwards, highest index first.
  joining_.clear();
  std::vector<std::size_t> pop_resume;
  std::vector<std::size_t> pop_queue;
  for (std::size_t k = 0; k < plan.admit.size(); ++k) {
    check_arg(k < order.size() && order[k].id == plan.admit[k],
              "ServeScheduler: admission must take a waiting-list prefix");
    const WaitRef& w = order[k];
    ActiveReq jr;
    if (w.from_resume) {
      jr = resume_[w.idx];
      pop_resume.push_back(w.idx);
      if (jr.parked_at >= 0.0) {
        auto sit = open_.find(jr.id);
        check_arg(sit != open_.end(), "ServeScheduler: unknown resumed id");
        sit->second.resume_wait_s += std::max(0.0, now - jr.parked_at);
        jr.parked_at = -1.0;
      }
    } else {
      const QueuedReq& q = queue_[w.idx];
      const ServeRequest& r = q.req;
      RequestStats rs;
      rs.id = r.id;
      rs.arrival_s = r.arrival_s;
      rs.admit_s = now;
      rs.queue_delay_s = std::max(0.0, now - r.arrival_s);
      rs.prompt_len = r.prompt_len;
      rs.gen_tokens = r.gen_tokens;
      rs.tenant = r.tenant_id;
      rs.req_class = r.req_class;
      rs.retries = q.attempts;
      open_.emplace(r.id, rs);
      jr.id = r.id;
      jr.context = r.prompt_len;
      jr.remaining = r.gen_tokens;
      jr.retries = q.attempts;
      jr.tenant = r.tenant_id;
      jr.cls = r.req_class;
      // Retries re-admit work that was charged at first admission.
      if (q.attempts == 0)
        charge_service(r.tenant_id,
                       static_cast<double>(r.prompt_len + r.gen_tokens));
      pop_queue.push_back(w.idx);
    }
    d.request_ids.push_back(jr.id);
    d.contexts.push_back(jr.context);
    d.tenants.push_back(jr.tenant);
    d.classes.push_back(jr.cls);
    d.padded_prompt = std::max(d.padded_prompt, jr.context);
    joining_.push_back(jr);
    ++d.num_join;
  }
  std::sort(pop_resume.begin(), pop_resume.end(),
            std::greater<std::size_t>());
  for (const std::size_t idx : pop_resume)
    resume_.erase(resume_.begin() + static_cast<std::ptrdiff_t>(idx));
  std::sort(pop_queue.begin(), pop_queue.end(), std::greater<std::size_t>());
  for (const std::size_t idx : pop_queue)
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
  d.forced_joins = forced;

  dispatch_now_ = now;
  record_decision(d);
  a.kind = SchedulerAction::Kind::kDispatch;
  a.decision = std::move(d);
  return a;
}

void ServeScheduler::complete(const DispatchDecision& decision,
                              double finish_s, double prefill_end_s) {
  check_arg(in_flight_, "ServeScheduler: complete() with nothing in flight");
  check_arg(decision.seq == in_flight_seq_,
            "ServeScheduler: complete() for a decision that is not the "
            "in-flight one");
  in_flight_ = false;

  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete(
        "serve",
        decision.phase == ServePhase::kPrefillPass ? "prefill-pass"
                                                   : "decode-pass",
        dispatch_now_ + trace_offset_s_,
        std::max(0.0, finish_s - dispatch_now_), trace_pid_, /*tid=*/0,
        "batch", static_cast<double>(decision.request_ids.size()));

  if (options_.exec == DecodeExec::kContinuous) {
    complete_continuous(decision, finish_s, prefill_end_s);
    return;
  }

  if (decision.phase == ServePhase::kPrefillPass) {
    for (int id : decision.request_ids) {
      auto it = open_.find(id);
      check_arg(it != open_.end(), "ServeScheduler: unknown request id");
      RequestStats& rs = it->second;
      const double prefill_s =
          prefill_end_s >= 0.0
              ? std::max(0.0, prefill_end_s - rs.admit_s)
              : (options_.policy == SchedulerPolicy::kIterationLevel
                     ? std::max(0.0, finish_s - rs.admit_s)
                     : 0.0);
      rs.prefill_s = prefill_s;
      if (options_.policy == SchedulerPolicy::kStaticBatching) {
        // The bundled padded run is over: everyone finishes together.
        rs.finish_s = finish_s;
        trace_request_lifecycle(rs);
        finished_.push_back(rs);
        open_.erase(it);
      } else if (rs.gen_tokens <= 1) {
        // Prefill emits token 1; zero-remaining requests complete at
        // admission and never enter the active set.
        rs.finish_s = finish_s;
        trace_request_lifecycle(rs);
        finished_.push_back(rs);
        open_.erase(it);
      } else {
        ActiveReq ar;
        ar.id = id;
        ar.context = rs.prompt_len + 1;
        ar.remaining = rs.gen_tokens - 1;
        ar.retries = rs.retries;  // prefill retries carry into decode
        ar.tenant = rs.tenant;
        ar.cls = rs.req_class;
        active_.push_back(ar);
      }
    }
    return;
  }

  // Decode round: every active request advanced by one token.
  check_arg(decision.request_ids.size() == active_.size(),
            "ServeScheduler: decode completion does not match active set");
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->context;
    if (--it->remaining <= 0) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      sit->second.finish_s = finish_s;
      sit->second.retries = it->retries;
      trace_request_lifecycle(sit->second);
      finished_.push_back(sit->second);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServeScheduler::complete_continuous(const DispatchDecision& decision,
                                         double finish_s,
                                         double prefill_end_s) {
  const std::size_t cont =
      decision.request_ids.size() - static_cast<std::size_t>(decision.num_join);
  check_arg(cont == active_.size(),
            "ServeScheduler: continuous completion does not match the "
            "continuing set");
  // Continuing rows: one decoded token each, retire the finished.
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->context;
    if (--it->remaining <= 0) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      sit->second.finish_s = finish_s;
      sit->second.retries = it->retries;
      trace_request_lifecycle(sit->second);
      finished_.push_back(sit->second);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  // Joining rows: the ride-along prefill emitted each row's next token —
  // token 1 for a fresh request, the next continuation token for a
  // preempt-resume (the full-history re-prefill samples exactly what the
  // preempted decode step would have, greedy sampling being deterministic).
  for (ActiveReq& r : joining_) {
    auto sit = open_.find(r.id);
    check_arg(sit != open_.end(), "ServeScheduler: unknown joining id");
    RequestStats& rs = sit->second;
    if (r.context == rs.prompt_len) {
      // Fresh join: this round was its prefill (resumed rows re-prefill
      // too, but their prefill stat was recorded at first admission).
      rs.prefill_s = prefill_end_s >= 0.0
                         ? std::max(0.0, prefill_end_s - rs.admit_s)
                         : std::max(0.0, finish_s - rs.admit_s);
    }
    ++r.context;
    if (--r.remaining <= 0) {
      rs.finish_s = finish_s;
      rs.retries = r.retries;
      trace_request_lifecycle(rs);
      finished_.push_back(rs);
      open_.erase(sit);
    } else {
      active_.push_back(r);
    }
  }
  joining_.clear();
}

void ServeScheduler::fail_continuous(double now, int& max_attempt) {
  // Continuing rows: decode-fail semantics — the round is idempotent at
  // the scheduler level, so the set stays resident and is retried; rows
  // that exhaust the cap leave as kFailed.
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->retries;
    if (it->retries > options_.max_retries) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      RequestStats rs = sit->second;
      rs.finish_s = now;
      rs.outcome = RequestOutcome::kFailed;
      rs.retries = it->retries - 1;
      finished_.push_back(rs);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      max_attempt = std::max(max_attempt, it->retries);
      ++it;
    }
  }
  // Joining rows committed nothing: back to the resume queue's *front*
  // (reverse iteration preserves their relative order) so the retry keeps
  // FIFO fairness. Preempted rows already sit on resume_ from decision
  // time and simply stay there.
  for (auto it = joining_.rbegin(); it != joining_.rend(); ++it) {
    ActiveReq r = *it;
    ++r.retries;
    if (r.retries > options_.max_retries) {
      auto sit = open_.find(r.id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown joining id");
      RequestStats rs = sit->second;
      rs.finish_s = now;
      rs.outcome = RequestOutcome::kFailed;
      rs.retries = r.retries - 1;
      finished_.push_back(rs);
      open_.erase(sit);
      continue;
    }
    max_attempt = std::max(max_attempt, r.retries);
    r.parked_at = now;  // re-parked: the wait restarts at failure time
    resume_.push_front(r);
  }
  joining_.clear();
}

void ServeScheduler::fail(const DispatchDecision& decision, double now) {
  check_arg(in_flight_, "ServeScheduler: fail() with nothing in flight");
  check_arg(decision.seq == in_flight_seq_,
            "ServeScheduler: fail() for a decision that is not the "
            "in-flight one");
  in_flight_ = false;
  int max_attempt = 1;  // backoff window scales with the deepest retry

  if (options_.exec == DecodeExec::kContinuous) {
    fail_continuous(now, max_attempt);
  } else if (decision.phase == ServePhase::kPrefillPass) {
    // The pass produced nothing: pull its requests back out of open_ and
    // either re-enqueue them behind a backoff window or, past the retry
    // cap, finish them as kFailed. Retries keep their original arrival
    // (deadlines keep running) and their admission (no re-rejection).
    for (int id : decision.request_ids) {
      auto it = open_.find(id);
      check_arg(it != open_.end(), "ServeScheduler: unknown request id");
      const RequestStats rs = it->second;
      open_.erase(it);
      const int attempt = rs.retries + 1;
      ServeRequest r;
      r.id = rs.id;
      r.arrival_s = rs.arrival_s;
      r.prompt_len = rs.prompt_len;
      r.gen_tokens = rs.gen_tokens;
      r.tenant_id = rs.tenant;
      r.req_class = rs.req_class;
      if (attempt > options_.max_retries) {
        finish_unserved(r, RequestOutcome::kFailed, now, rs.retries);
        continue;
      }
      max_attempt = std::max(max_attempt, attempt);
      QueuedReq q;
      q.req = r;
      q.eligible_s = now + backoff_s(attempt);
      q.attempts = attempt;
      q.admitted = true;
      enqueue(std::move(q));
    }
  } else {
    // Decode rounds are idempotent at the scheduler level (context and
    // remaining advance only in complete()), so the round is simply
    // retried wholesale; requests that exhaust the cap leave as kFailed.
    for (auto it = active_.begin(); it != active_.end();) {
      ++it->retries;
      if (it->retries > options_.max_retries) {
        auto sit = open_.find(it->id);
        check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
        RequestStats rs = sit->second;
        rs.finish_s = now;
        rs.outcome = RequestOutcome::kFailed;
        rs.retries = it->retries - 1;
        finished_.push_back(rs);
        open_.erase(sit);
        it = active_.erase(it);
      } else {
        max_attempt = std::max(max_attempt, it->retries);
        ++it;
      }
    }
  }
  resume_not_before_ =
      std::max(resume_not_before_, now + backoff_s(max_attempt));
  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete("serve", "dispatch-failed",
                                now + trace_offset_s_, /*dur_s=*/0.0,
                                trace_pid_, /*tid=*/0, "seq",
                                static_cast<double>(decision.seq));
}

OutcomeCounts ServeScheduler::outcomes() const {
  OutcomeCounts c;
  for (const RequestStats& rs : finished_) {
    switch (rs.outcome) {
      case RequestOutcome::kCompleted:
        ++c.completed;
        break;
      case RequestOutcome::kTimedOut:
        ++c.timed_out;
        break;
      case RequestOutcome::kRejected:
        ++c.rejected;
        break;
      case RequestOutcome::kFailed:
        ++c.failed;
        break;
    }
    c.retries += rs.retries;
  }
  return c;
}

}  // namespace llmpq
