#include "serve/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace llmpq {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kStaticBatching:
      return "static-batching";
    case SchedulerPolicy::kIterationLevel:
      return "iteration-level";
  }
  return "?";
}

ServeScheduler::ServeScheduler(const SchedulerOptions& options)
    : options_(options) {
  check_arg(options_.max_batch >= 1 && options_.batch_size >= 1,
            "ServeScheduler: batch limits must be positive");
  check_arg(options_.max_wait_s >= 0.0,
            "ServeScheduler: max_wait_s must be non-negative");
}

void ServeScheduler::submit(const ServeRequest& request) {
  check_arg(!closed_, "ServeScheduler: submit() after close()");
  check_arg(request.prompt_len >= 1 && request.gen_tokens >= 0,
            "ServeScheduler: bad request shape");
  // Ids are single-use for the scheduler's lifetime: back-ends index
  // per-request buffers by id, so reusing a finished request's id would
  // silently alias its slot. The ever-seen set also makes the duplicate
  // check O(1) instead of an O(n) queue scan per submit.
  check_arg(ids_.insert(request.id).second,
            "ServeScheduler: duplicate request id (ids are single-use)");
  // Keep the queue sorted by (arrival, id) so trace replay can submit a
  // whole workload up front in any order; live submissions (arrival = now)
  // land at the back.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), request,
      [](const ServeRequest& a, const ServeRequest& b) {
        return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                          : a.id < b.id;
      });
  queue_.insert(pos, request);
}

void ServeScheduler::close() { closed_ = true; }

int ServeScheduler::arrived_count(double now) const {
  int n = 0;
  for (const ServeRequest& r : queue_) {
    if (r.arrival_s > now) break;  // sorted: the rest are in the future
    ++n;
  }
  return n;
}

DispatchDecision ServeScheduler::make_prefill_decision(double now, int take) {
  DispatchDecision d;
  d.seq = next_seq_++;
  d.phase = ServePhase::kPrefillPass;
  d.request_ids.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    const ServeRequest r = queue_.front();
    queue_.pop_front();
    d.request_ids.push_back(r.id);
    d.padded_prompt = std::max(d.padded_prompt, r.prompt_len);
    d.padded_gen = std::max(d.padded_gen, r.gen_tokens);
    // Admission is *now* — queue delay must not include the prefill pass
    // the back-end is about to run (the old simulator's conflation bug).
    RequestStats rs;
    rs.id = r.id;
    rs.arrival_s = r.arrival_s;
    rs.admit_s = now;
    rs.queue_delay_s = std::max(0.0, now - r.arrival_s);
    rs.prompt_len = r.prompt_len;
    rs.gen_tokens = r.gen_tokens;
    open_.emplace(r.id, rs);
  }
  in_flight_ = true;
  dispatch_now_ = now;
  decision_log_.push_back(d);
  return d;
}

void ServeScheduler::enable_trace(std::uint32_t pid, double clock_offset_s) {
  trace_ = true;
  trace_pid_ = pid;
  trace_offset_s_ = clock_offset_s;
  TraceSession::instance().set_track_name(pid, 0, "dispatch");
}

/// Emits the finished request's queue→prefill→decode lifecycle as nested
/// async spans keyed by the request id (scheduler clock + offset). Emitted
/// retrospectively at completion, when every boundary is known — the trace
/// is a rendering of RequestStats, so sim and runtime lifecycles are
/// directly overlayable.
void ServeScheduler::trace_request_lifecycle(const RequestStats& rs) const {
  if (!trace_ || !TraceSession::enabled()) return;
  const double off = trace_offset_s_;
  const auto id = static_cast<std::uint64_t>(rs.id);
  TraceSession::emit_async('b', "request", "queue", rs.arrival_s + off, id,
                           trace_pid_);
  TraceSession::emit_async('e', "request", "queue", rs.admit_s + off, id,
                           trace_pid_);
  const double prefill_end = rs.admit_s + rs.prefill_s;
  if (rs.prefill_s > 0.0) {
    TraceSession::emit_async('b', "request", "prefill", rs.admit_s + off, id,
                             trace_pid_);
    TraceSession::emit_async('e', "request", "prefill", prefill_end + off, id,
                             trace_pid_);
  }
  if (rs.finish_s > prefill_end) {
    TraceSession::emit_async('b', "request", "decode", prefill_end + off, id,
                             trace_pid_);
    TraceSession::emit_async('e', "request", "decode", rs.finish_s + off, id,
                             trace_pid_);
  }
}

SchedulerAction ServeScheduler::next(double now) {
  check_arg(!in_flight_,
            "ServeScheduler: next() called with a dispatch still in flight "
            "(call complete() first)");
  return options_.policy == SchedulerPolicy::kStaticBatching
             ? next_static(now)
             : next_iteration(now);
}

SchedulerAction ServeScheduler::next_static(double now) {
  SchedulerAction a;
  const int effective = std::min(options_.batch_size, options_.max_batch);
  const int arrived = arrived_count(now);
  if (arrived == 0) {
    if (!queue_.empty()) {  // all queued arrivals are in the future
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = queue_.front().arrival_s;
    } else if (!closed_) {  // live stream: block until submit()/close()
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = kInf;
    } else {
      a.kind = SchedulerAction::Kind::kDone;
    }
    return a;
  }
  const double stale_deadline = queue_.front().arrival_s + options_.max_wait_s;
  if (arrived >= effective || now >= stale_deadline) {
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = make_prefill_decision(now, std::min(arrived, effective));
    return a;
  }
  // Not full, not stale: wait for whichever comes first — the next queued
  // arrival or the oldest request going stale. The old simulator waited
  // only for the next arrival, so a tail request with no successor (or a
  // distant one) waited unboundedly instead of dispatching at
  // `arrival + max_wait_s`.
  a.kind = SchedulerAction::Kind::kWait;
  a.wait_until = stale_deadline;
  if (arrived < static_cast<int>(queue_.size()))
    a.wait_until = std::min(
        a.wait_until, queue_[static_cast<std::size_t>(arrived)].arrival_s);
  return a;
}

SchedulerAction ServeScheduler::next_iteration(double now) {
  SchedulerAction a;
  const int capacity = options_.max_batch - static_cast<int>(active_.size());
  const int arrived = arrived_count(now);
  if (arrived > 0 && capacity > 0) {
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = make_prefill_decision(now, std::min(arrived, capacity));
    return a;
  }
  if (!active_.empty()) {
    DispatchDecision d;
    d.seq = next_seq_++;
    d.phase = ServePhase::kDecodePass;
    d.request_ids.reserve(active_.size());
    for (const ActiveReq& r : active_) {
      d.request_ids.push_back(r.id);
      d.max_context = std::max(d.max_context, r.context);
    }
    in_flight_ = true;
    dispatch_now_ = now;
    decision_log_.push_back(d);
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = std::move(d);
    return a;
  }
  if (!queue_.empty()) {
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = queue_.front().arrival_s;
  } else if (!closed_) {
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = kInf;
  } else {
    a.kind = SchedulerAction::Kind::kDone;
  }
  return a;
}

void ServeScheduler::complete(const DispatchDecision& decision,
                              double finish_s, double prefill_end_s) {
  check_arg(in_flight_, "ServeScheduler: complete() with nothing in flight");
  check_arg(!decision_log_.empty() &&
                decision.seq == decision_log_.back().seq,
            "ServeScheduler: complete() for a decision that is not the "
            "in-flight one");
  in_flight_ = false;

  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete(
        "serve",
        decision.phase == ServePhase::kPrefillPass ? "prefill-pass"
                                                   : "decode-pass",
        dispatch_now_ + trace_offset_s_,
        std::max(0.0, finish_s - dispatch_now_), trace_pid_, /*tid=*/0,
        "batch", static_cast<double>(decision.request_ids.size()));

  if (decision.phase == ServePhase::kPrefillPass) {
    for (int id : decision.request_ids) {
      auto it = open_.find(id);
      check_arg(it != open_.end(), "ServeScheduler: unknown request id");
      RequestStats& rs = it->second;
      const double prefill_s =
          prefill_end_s >= 0.0
              ? std::max(0.0, prefill_end_s - rs.admit_s)
              : (options_.policy == SchedulerPolicy::kIterationLevel
                     ? std::max(0.0, finish_s - rs.admit_s)
                     : 0.0);
      rs.prefill_s = prefill_s;
      if (options_.policy == SchedulerPolicy::kStaticBatching) {
        // The bundled padded run is over: everyone finishes together.
        rs.finish_s = finish_s;
        trace_request_lifecycle(rs);
        finished_.push_back(rs);
        open_.erase(it);
      } else if (rs.gen_tokens <= 1) {
        // Prefill emits token 1; zero-remaining requests complete at
        // admission and never enter the active set.
        rs.finish_s = finish_s;
        trace_request_lifecycle(rs);
        finished_.push_back(rs);
        open_.erase(it);
      } else {
        ActiveReq ar;
        ar.id = id;
        ar.context = rs.prompt_len + 1;
        ar.remaining = rs.gen_tokens - 1;
        active_.push_back(ar);
      }
    }
    return;
  }

  // Decode round: every active request advanced by one token.
  check_arg(decision.request_ids.size() == active_.size(),
            "ServeScheduler: decode completion does not match active set");
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->context;
    if (--it->remaining <= 0) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      sit->second.finish_s = finish_s;
      trace_request_lifecycle(sit->second);
      finished_.push_back(sit->second);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace llmpq
