#include "serve/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "serve/capacity_scheduler.hpp"

namespace llmpq {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kStaticBatching:
      return "static-batching";
    case SchedulerPolicy::kIterationLevel:
      return "iteration-level";
  }
  return "?";
}

const char* request_outcome_name(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kCompleted:
      return "completed";
    case RequestOutcome::kTimedOut:
      return "timed-out";
    case RequestOutcome::kRejected:
      return "rejected";
    case RequestOutcome::kFailed:
      return "failed";
  }
  return "?";
}

ServeScheduler::ServeScheduler(const SchedulerOptions& options)
    : options_(options) {
  check_arg(options_.max_batch >= 1 && options_.batch_size >= 1,
            "ServeScheduler: batch limits must be positive");
  check_arg(options_.max_wait_s >= 0.0,
            "ServeScheduler: max_wait_s must be non-negative");
  check_arg(options_.deadline_s > 0.0,
            "ServeScheduler: deadline_s must be positive");
  check_arg(options_.admission_capacity >= 0,
            "ServeScheduler: admission_capacity must be >= 0");
  check_arg(options_.max_retries >= 0,
            "ServeScheduler: max_retries must be >= 0");
  check_arg(options_.retry_backoff_s >= 0.0 &&
                options_.retry_backoff_max_s >= 0.0,
            "ServeScheduler: retry backoff must be non-negative");
  check_arg(options_.exec != DecodeExec::kContinuous ||
                options_.policy == SchedulerPolicy::kIterationLevel,
            "ServeScheduler: kContinuous requires kIterationLevel");
  check_arg(options_.token_budget >= 0 && options_.kv_pages >= 0 &&
                options_.kv_page_size >= 1,
            "ServeScheduler: bad continuous-batching budgets");
}

void ServeScheduler::enqueue(QueuedReq entry) {
  // Keep the queue sorted by (eligible, id) so trace replay can submit a
  // whole workload up front in any order; live submissions (arrival = now)
  // land at the back and retries slot in at their backoff-release time.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), entry,
      [](const QueuedReq& a, const QueuedReq& b) {
        return a.eligible_s != b.eligible_s ? a.eligible_s < b.eligible_s
                                            : a.req.id < b.req.id;
      });
  queue_.insert(pos, std::move(entry));
}

void ServeScheduler::submit(const ServeRequest& request) {
  check_arg(!closed_, "ServeScheduler: submit() after close()");
  check_arg(request.prompt_len >= 1 && request.gen_tokens >= 0,
            "ServeScheduler: bad request shape");
  // Ids are single-use for the scheduler's lifetime: back-ends index
  // per-request buffers by id, so reusing a finished request's id would
  // silently alias its slot. The ever-seen set also makes the duplicate
  // check O(1) instead of an O(n) queue scan per submit.
  check_arg(ids_.insert(request.id).second,
            "ServeScheduler: duplicate request id (ids are single-use)");
  QueuedReq entry;
  entry.req = request;
  entry.eligible_s = request.arrival_s;
  enqueue(std::move(entry));
}

void ServeScheduler::close() { closed_ = true; }

int ServeScheduler::arrived_count(double now) const {
  int n = 0;
  for (const QueuedReq& r : queue_) {
    if (r.eligible_s > now) break;  // sorted: the rest are in the future
    ++n;
  }
  return n;
}

double ServeScheduler::backoff_s(int attempt) const {
  double b = options_.retry_backoff_s;
  for (int i = 1; i < attempt && b < options_.retry_backoff_max_s; ++i)
    b *= 2.0;
  return std::min(b, options_.retry_backoff_max_s);
}

void ServeScheduler::finish_unserved(const ServeRequest& r,
                                     RequestOutcome outcome, double finish_s,
                                     int retries) {
  RequestStats rs;
  rs.id = r.id;
  rs.arrival_s = r.arrival_s;
  rs.admit_s = finish_s;
  rs.finish_s = finish_s;
  rs.queue_delay_s = std::max(0.0, finish_s - r.arrival_s);
  rs.prompt_len = r.prompt_len;
  rs.gen_tokens = r.gen_tokens;
  rs.outcome = outcome;
  rs.retries = retries;
  finished_.push_back(rs);
  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete("serve", request_outcome_name(outcome),
                                finish_s + trace_offset_s_, /*dur_s=*/0.0,
                                trace_pid_, /*tid=*/0, "id",
                                static_cast<double>(r.id));
}

void ServeScheduler::process_arrivals(double now) {
  // Hot path: with no deadline and no admission bound this is a no-op and
  // the decision log matches the fault-oblivious scheduler exactly.
  const bool has_deadline = options_.deadline_s != kInf;
  if (!has_deadline && options_.admission_capacity <= 0) return;
  // Expire first (including retries parked in backoff — their deadline
  // keeps running) so a request is never rejected after it already timed
  // out. Expiry is stamped at arrival + deadline, not now, so results are
  // independent of how often the back-end polls next().
  if (has_deadline) {
    for (auto it = queue_.begin(); it != queue_.end();) {
      const double expiry = it->req.arrival_s + options_.deadline_s;
      if (expiry <= now) {
        finish_unserved(it->req, RequestOutcome::kTimedOut, expiry,
                        it->attempts);
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (options_.admission_capacity > 0) {
    int waiting = 0;
    for (const QueuedReq& e : queue_)
      if (e.admitted) ++waiting;
    // Fresh arrivals are examined in (arrival, id) order — the queue sort
    // key — so rejection is deterministic and replay-independent.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->admitted) {
        ++it;
        continue;
      }
      if (it->eligible_s > now) break;  // fresh: eligible == arrival
      if (waiting >= options_.admission_capacity) {
        finish_unserved(it->req, RequestOutcome::kRejected,
                        it->req.arrival_s, 0);
        it = queue_.erase(it);
      } else {
        it->admitted = true;
        ++waiting;
        ++it;
      }
    }
  }
}

void ServeScheduler::expire_active(double now) {
  if (options_.deadline_s == kInf) return;
  const auto expire = [&](auto& set) {
    for (auto it = set.begin(); it != set.end();) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      if (sit->second.arrival_s + options_.deadline_s <= now) {
        RequestStats rs = sit->second;
        rs.finish_s = now;
        rs.outcome = RequestOutcome::kTimedOut;
        rs.retries = it->retries;
        finished_.push_back(rs);
        open_.erase(sit);
        it = set.erase(it);
      } else {
        ++it;
      }
    }
  };
  expire(active_);
  expire(resume_);  // preempted sequences' deadlines keep running
}

void ServeScheduler::fold_expiry_wakeups(SchedulerAction& a) const {
  if (a.kind != SchedulerAction::Kind::kWait ||
      options_.deadline_s == kInf)
    return;
  for (const QueuedReq& e : queue_)
    a.wait_until =
        std::min(a.wait_until, e.req.arrival_s + options_.deadline_s);
  for (const ActiveReq& r : active_) {
    const auto it = open_.find(r.id);
    if (it != open_.end())
      a.wait_until = std::min(
          a.wait_until, it->second.arrival_s + options_.deadline_s);
  }
  for (const ActiveReq& r : resume_) {
    const auto it = open_.find(r.id);
    if (it != open_.end())
      a.wait_until = std::min(
          a.wait_until, it->second.arrival_s + options_.deadline_s);
  }
}

DispatchDecision ServeScheduler::make_prefill_decision(double now, int take) {
  DispatchDecision d;
  d.seq = next_seq_++;
  d.phase = ServePhase::kPrefillPass;
  d.request_ids.reserve(static_cast<std::size_t>(take));
  for (int i = 0; i < take; ++i) {
    const QueuedReq q = queue_.front();
    queue_.pop_front();
    const ServeRequest& r = q.req;
    d.request_ids.push_back(r.id);
    d.contexts.push_back(r.prompt_len);
    d.padded_prompt = std::max(d.padded_prompt, r.prompt_len);
    d.padded_gen = std::max(d.padded_gen, r.gen_tokens);
    // Admission is *now* — queue delay must not include the prefill pass
    // the back-end is about to run (the old simulator's conflation bug).
    RequestStats rs;
    rs.id = r.id;
    rs.arrival_s = r.arrival_s;
    rs.admit_s = now;
    rs.queue_delay_s = std::max(0.0, now - r.arrival_s);
    rs.prompt_len = r.prompt_len;
    rs.gen_tokens = r.gen_tokens;
    rs.retries = q.attempts;
    open_.emplace(r.id, rs);
  }
  in_flight_ = true;
  dispatch_now_ = now;
  decision_log_.push_back(d);
  return d;
}

void ServeScheduler::enable_trace(std::uint32_t pid, double clock_offset_s) {
  trace_ = true;
  trace_pid_ = pid;
  trace_offset_s_ = clock_offset_s;
  TraceSession::instance().set_track_name(pid, 0, "dispatch");
}

/// Emits the finished request's queue→prefill→decode lifecycle as nested
/// async spans keyed by the request id (scheduler clock + offset). Emitted
/// retrospectively at completion, when every boundary is known — the trace
/// is a rendering of RequestStats, so sim and runtime lifecycles are
/// directly overlayable.
void ServeScheduler::trace_request_lifecycle(const RequestStats& rs) const {
  if (!trace_ || !TraceSession::enabled()) return;
  const double off = trace_offset_s_;
  const auto id = static_cast<std::uint64_t>(rs.id);
  TraceSession::emit_async('b', "request", "queue", rs.arrival_s + off, id,
                           trace_pid_);
  TraceSession::emit_async('e', "request", "queue", rs.admit_s + off, id,
                           trace_pid_);
  const double prefill_end = rs.admit_s + rs.prefill_s;
  if (rs.prefill_s > 0.0) {
    TraceSession::emit_async('b', "request", "prefill", rs.admit_s + off, id,
                             trace_pid_);
    TraceSession::emit_async('e', "request", "prefill", prefill_end + off, id,
                             trace_pid_);
  }
  if (rs.finish_s > prefill_end) {
    TraceSession::emit_async('b', "request", "decode", prefill_end + off, id,
                             trace_pid_);
    TraceSession::emit_async('e', "request", "decode", rs.finish_s + off, id,
                             trace_pid_);
  }
}

SchedulerAction ServeScheduler::next(double now) {
  check_arg(!in_flight_,
            "ServeScheduler: next() called with a dispatch still in flight "
            "(call complete() first)");
  process_arrivals(now);
  if (options_.policy == SchedulerPolicy::kIterationLevel)
    expire_active(now);
  // After a fail() the back-end just recovered (or is recovering); hold
  // every dispatch until the backoff window elapses so a persistent fault
  // does not spin the retry loop.
  if (resume_not_before_ > now &&
      (arrived_count(now) > 0 || !active_.empty() || !resume_.empty())) {
    SchedulerAction a;
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = resume_not_before_;
    fold_expiry_wakeups(a);
    return a;
  }
  SchedulerAction a = options_.policy == SchedulerPolicy::kStaticBatching
                          ? next_static(now)
                      : options_.exec == DecodeExec::kContinuous
                          ? next_continuous(now)
                          : next_iteration(now);
  fold_expiry_wakeups(a);
  return a;
}

SchedulerAction ServeScheduler::next_static(double now) {
  SchedulerAction a;
  const int effective = std::min(options_.batch_size, options_.max_batch);
  const int arrived = arrived_count(now);
  if (arrived == 0) {
    if (!queue_.empty()) {  // all queued arrivals are in the future
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = queue_.front().eligible_s;
    } else if (!closed_) {  // live stream: block until submit()/close()
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = kInf;
    } else {
      a.kind = SchedulerAction::Kind::kDone;
    }
    return a;
  }
  const double stale_deadline =
      queue_.front().req.arrival_s + options_.max_wait_s;
  if (arrived >= effective || now >= stale_deadline) {
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = make_prefill_decision(now, std::min(arrived, effective));
    return a;
  }
  // Not full, not stale: wait for whichever comes first — the next queued
  // arrival or the oldest request going stale. The old simulator waited
  // only for the next arrival, so a tail request with no successor (or a
  // distant one) waited unboundedly instead of dispatching at
  // `arrival + max_wait_s`.
  a.kind = SchedulerAction::Kind::kWait;
  a.wait_until = stale_deadline;
  if (arrived < static_cast<int>(queue_.size()))
    a.wait_until = std::min(
        a.wait_until, queue_[static_cast<std::size_t>(arrived)].eligible_s);
  return a;
}

SchedulerAction ServeScheduler::next_iteration(double now) {
  SchedulerAction a;
  const int capacity = options_.max_batch - static_cast<int>(active_.size());
  const int arrived = arrived_count(now);
  if (arrived > 0 && capacity > 0) {
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = make_prefill_decision(now, std::min(arrived, capacity));
    return a;
  }
  if (!active_.empty()) {
    DispatchDecision d;
    d.seq = next_seq_++;
    d.phase = ServePhase::kDecodePass;
    d.request_ids.reserve(active_.size());
    d.contexts.reserve(active_.size());
    for (const ActiveReq& r : active_) {
      d.request_ids.push_back(r.id);
      d.contexts.push_back(r.context);
      d.max_context = std::max(d.max_context, r.context);
    }
    in_flight_ = true;
    dispatch_now_ = now;
    decision_log_.push_back(d);
    a.kind = SchedulerAction::Kind::kDispatch;
    a.decision = std::move(d);
    return a;
  }
  if (!queue_.empty()) {
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = queue_.front().eligible_s;
  } else if (!closed_) {
    a.kind = SchedulerAction::Kind::kWait;
    a.wait_until = kInf;
  } else {
    a.kind = SchedulerAction::Kind::kDone;
  }
  return a;
}

SchedulerAction ServeScheduler::next_continuous(double now) {
  SchedulerAction a;
  CapacityOptions copt;
  copt.max_batch = options_.max_batch;
  copt.token_budget = options_.token_budget;
  copt.kv_page_size = options_.kv_page_size;
  copt.kv_pages = options_.kv_pages;
  const CapacityScheduler cap(copt);

  std::vector<CapacitySeq> running;
  running.reserve(active_.size());
  for (const ActiveReq& r : active_)
    running.push_back(CapacitySeq{r.id, r.context});

  // Waiting list: preempted sequences resume first (they hold generated
  // tokens the system already paid for), then arrived fresh requests in
  // queue order. A preempted sequence's "context" is its full history —
  // the tokens its resume prefill must feed.
  std::vector<CapacitySeq> waiting;
  waiting.reserve(resume_.size());
  for (const ActiveReq& r : resume_)
    waiting.push_back(CapacitySeq{r.id, r.context});
  const int arrived = arrived_count(now);
  for (int i = 0; i < arrived; ++i) {
    const QueuedReq& q = queue_[static_cast<std::size_t>(i)];
    waiting.push_back(CapacitySeq{q.req.id, q.req.prompt_len});
  }

  const CapacityPlan plan = cap.plan_round(running, waiting);

  if (plan.admit.empty() && active_.empty()) {
    // Nothing runnable now (the planner force-admits the waiting head when
    // the batch is idle, so resume_ must be empty here): wait for the
    // arrival stream, or finish.
    if (!queue_.empty()) {
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = queue_.front().eligible_s;
    } else if (!closed_) {
      a.kind = SchedulerAction::Kind::kWait;
      a.wait_until = kInf;
    } else {
      a.kind = SchedulerAction::Kind::kDone;
    }
    return a;
  }

  DispatchDecision d;
  d.seq = next_seq_++;

  // Evict-to-pending: the planner preempts newest-first, i.e. from the
  // active_ tail. Victims park on resume_ in their original admission
  // order (behind earlier preemptions) so resumption is FIFO-fair.
  if (!plan.preempt.empty()) {
    std::vector<ActiveReq> victims;
    victims.reserve(plan.preempt.size());
    for (int id : plan.preempt) {
      check_arg(!active_.empty() && active_.back().id == id,
                "ServeScheduler: preemption must pop the newest sequences");
      victims.push_back(active_.back());
      active_.pop_back();
    }
    for (auto it = victims.rbegin(); it != victims.rend(); ++it)
      resume_.push_back(*it);
    preemptions_ += static_cast<int>(plan.preempt.size());
    d.preempted = plan.preempt;
  }

  // Continuing rows first, in admission order; joining rows trail.
  d.phase = active_.empty() ? ServePhase::kPrefillPass
                            : ServePhase::kDecodePass;
  for (const ActiveReq& r : active_) {
    d.request_ids.push_back(r.id);
    d.contexts.push_back(r.context);
    d.max_context = std::max(d.max_context, r.context);
  }
  joining_.clear();
  for (int id : plan.admit) {
    ActiveReq jr;
    if (!resume_.empty() && resume_.front().id == id) {
      jr = resume_.front();
      resume_.pop_front();
    } else {
      check_arg(!queue_.empty() && queue_.front().req.id == id,
                "ServeScheduler: admission must pop the waiting head");
      const QueuedReq q = queue_.front();
      queue_.pop_front();
      const ServeRequest& r = q.req;
      RequestStats rs;
      rs.id = r.id;
      rs.arrival_s = r.arrival_s;
      rs.admit_s = now;
      rs.queue_delay_s = std::max(0.0, now - r.arrival_s);
      rs.prompt_len = r.prompt_len;
      rs.gen_tokens = r.gen_tokens;
      rs.retries = q.attempts;
      open_.emplace(r.id, rs);
      jr.id = r.id;
      jr.context = r.prompt_len;
      jr.remaining = r.gen_tokens;
      jr.retries = q.attempts;
    }
    d.request_ids.push_back(jr.id);
    d.contexts.push_back(jr.context);
    d.padded_prompt = std::max(d.padded_prompt, jr.context);
    joining_.push_back(jr);
    ++d.num_join;
  }

  in_flight_ = true;
  dispatch_now_ = now;
  decision_log_.push_back(d);
  a.kind = SchedulerAction::Kind::kDispatch;
  a.decision = std::move(d);
  return a;
}

void ServeScheduler::complete(const DispatchDecision& decision,
                              double finish_s, double prefill_end_s) {
  check_arg(in_flight_, "ServeScheduler: complete() with nothing in flight");
  check_arg(!decision_log_.empty() &&
                decision.seq == decision_log_.back().seq,
            "ServeScheduler: complete() for a decision that is not the "
            "in-flight one");
  in_flight_ = false;

  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete(
        "serve",
        decision.phase == ServePhase::kPrefillPass ? "prefill-pass"
                                                   : "decode-pass",
        dispatch_now_ + trace_offset_s_,
        std::max(0.0, finish_s - dispatch_now_), trace_pid_, /*tid=*/0,
        "batch", static_cast<double>(decision.request_ids.size()));

  if (options_.exec == DecodeExec::kContinuous) {
    complete_continuous(decision, finish_s, prefill_end_s);
    return;
  }

  if (decision.phase == ServePhase::kPrefillPass) {
    for (int id : decision.request_ids) {
      auto it = open_.find(id);
      check_arg(it != open_.end(), "ServeScheduler: unknown request id");
      RequestStats& rs = it->second;
      const double prefill_s =
          prefill_end_s >= 0.0
              ? std::max(0.0, prefill_end_s - rs.admit_s)
              : (options_.policy == SchedulerPolicy::kIterationLevel
                     ? std::max(0.0, finish_s - rs.admit_s)
                     : 0.0);
      rs.prefill_s = prefill_s;
      if (options_.policy == SchedulerPolicy::kStaticBatching) {
        // The bundled padded run is over: everyone finishes together.
        rs.finish_s = finish_s;
        trace_request_lifecycle(rs);
        finished_.push_back(rs);
        open_.erase(it);
      } else if (rs.gen_tokens <= 1) {
        // Prefill emits token 1; zero-remaining requests complete at
        // admission and never enter the active set.
        rs.finish_s = finish_s;
        trace_request_lifecycle(rs);
        finished_.push_back(rs);
        open_.erase(it);
      } else {
        ActiveReq ar;
        ar.id = id;
        ar.context = rs.prompt_len + 1;
        ar.remaining = rs.gen_tokens - 1;
        ar.retries = rs.retries;  // prefill retries carry into decode
        active_.push_back(ar);
      }
    }
    return;
  }

  // Decode round: every active request advanced by one token.
  check_arg(decision.request_ids.size() == active_.size(),
            "ServeScheduler: decode completion does not match active set");
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->context;
    if (--it->remaining <= 0) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      sit->second.finish_s = finish_s;
      sit->second.retries = it->retries;
      trace_request_lifecycle(sit->second);
      finished_.push_back(sit->second);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServeScheduler::complete_continuous(const DispatchDecision& decision,
                                         double finish_s,
                                         double prefill_end_s) {
  const std::size_t cont =
      decision.request_ids.size() - static_cast<std::size_t>(decision.num_join);
  check_arg(cont == active_.size(),
            "ServeScheduler: continuous completion does not match the "
            "continuing set");
  // Continuing rows: one decoded token each, retire the finished.
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->context;
    if (--it->remaining <= 0) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      sit->second.finish_s = finish_s;
      sit->second.retries = it->retries;
      trace_request_lifecycle(sit->second);
      finished_.push_back(sit->second);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  // Joining rows: the ride-along prefill emitted each row's next token —
  // token 1 for a fresh request, the next continuation token for a
  // preempt-resume (the full-history re-prefill samples exactly what the
  // preempted decode step would have, greedy sampling being deterministic).
  for (ActiveReq& r : joining_) {
    auto sit = open_.find(r.id);
    check_arg(sit != open_.end(), "ServeScheduler: unknown joining id");
    RequestStats& rs = sit->second;
    if (r.context == rs.prompt_len) {
      // Fresh join: this round was its prefill (resumed rows re-prefill
      // too, but their prefill stat was recorded at first admission).
      rs.prefill_s = prefill_end_s >= 0.0
                         ? std::max(0.0, prefill_end_s - rs.admit_s)
                         : std::max(0.0, finish_s - rs.admit_s);
    }
    ++r.context;
    if (--r.remaining <= 0) {
      rs.finish_s = finish_s;
      rs.retries = r.retries;
      trace_request_lifecycle(rs);
      finished_.push_back(rs);
      open_.erase(sit);
    } else {
      active_.push_back(r);
    }
  }
  joining_.clear();
}

void ServeScheduler::fail_continuous(double now, int& max_attempt) {
  // Continuing rows: decode-fail semantics — the round is idempotent at
  // the scheduler level, so the set stays resident and is retried; rows
  // that exhaust the cap leave as kFailed.
  for (auto it = active_.begin(); it != active_.end();) {
    ++it->retries;
    if (it->retries > options_.max_retries) {
      auto sit = open_.find(it->id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
      RequestStats rs = sit->second;
      rs.finish_s = now;
      rs.outcome = RequestOutcome::kFailed;
      rs.retries = it->retries - 1;
      finished_.push_back(rs);
      open_.erase(sit);
      it = active_.erase(it);
    } else {
      max_attempt = std::max(max_attempt, it->retries);
      ++it;
    }
  }
  // Joining rows committed nothing: back to the resume queue's *front*
  // (reverse iteration preserves their relative order) so the retry keeps
  // FIFO fairness. Preempted rows already sit on resume_ from decision
  // time and simply stay there.
  for (auto it = joining_.rbegin(); it != joining_.rend(); ++it) {
    ActiveReq r = *it;
    ++r.retries;
    if (r.retries > options_.max_retries) {
      auto sit = open_.find(r.id);
      check_arg(sit != open_.end(), "ServeScheduler: unknown joining id");
      RequestStats rs = sit->second;
      rs.finish_s = now;
      rs.outcome = RequestOutcome::kFailed;
      rs.retries = r.retries - 1;
      finished_.push_back(rs);
      open_.erase(sit);
      continue;
    }
    max_attempt = std::max(max_attempt, r.retries);
    resume_.push_front(r);
  }
  joining_.clear();
}

void ServeScheduler::fail(const DispatchDecision& decision, double now) {
  check_arg(in_flight_, "ServeScheduler: fail() with nothing in flight");
  check_arg(!decision_log_.empty() &&
                decision.seq == decision_log_.back().seq,
            "ServeScheduler: fail() for a decision that is not the "
            "in-flight one");
  in_flight_ = false;
  int max_attempt = 1;  // backoff window scales with the deepest retry

  if (options_.exec == DecodeExec::kContinuous) {
    fail_continuous(now, max_attempt);
  } else if (decision.phase == ServePhase::kPrefillPass) {
    // The pass produced nothing: pull its requests back out of open_ and
    // either re-enqueue them behind a backoff window or, past the retry
    // cap, finish them as kFailed. Retries keep their original arrival
    // (deadlines keep running) and their admission (no re-rejection).
    for (int id : decision.request_ids) {
      auto it = open_.find(id);
      check_arg(it != open_.end(), "ServeScheduler: unknown request id");
      const RequestStats rs = it->second;
      open_.erase(it);
      const int attempt = rs.retries + 1;
      ServeRequest r;
      r.id = rs.id;
      r.arrival_s = rs.arrival_s;
      r.prompt_len = rs.prompt_len;
      r.gen_tokens = rs.gen_tokens;
      if (attempt > options_.max_retries) {
        finish_unserved(r, RequestOutcome::kFailed, now, rs.retries);
        continue;
      }
      max_attempt = std::max(max_attempt, attempt);
      QueuedReq q;
      q.req = r;
      q.eligible_s = now + backoff_s(attempt);
      q.attempts = attempt;
      q.admitted = true;
      enqueue(std::move(q));
    }
  } else {
    // Decode rounds are idempotent at the scheduler level (context and
    // remaining advance only in complete()), so the round is simply
    // retried wholesale; requests that exhaust the cap leave as kFailed.
    for (auto it = active_.begin(); it != active_.end();) {
      ++it->retries;
      if (it->retries > options_.max_retries) {
        auto sit = open_.find(it->id);
        check_arg(sit != open_.end(), "ServeScheduler: unknown active id");
        RequestStats rs = sit->second;
        rs.finish_s = now;
        rs.outcome = RequestOutcome::kFailed;
        rs.retries = it->retries - 1;
        finished_.push_back(rs);
        open_.erase(sit);
        it = active_.erase(it);
      } else {
        max_attempt = std::max(max_attempt, it->retries);
        ++it;
      }
    }
  }
  resume_not_before_ =
      std::max(resume_not_before_, now + backoff_s(max_attempt));
  if (trace_ && TraceSession::enabled())
    TraceSession::emit_complete("serve", "dispatch-failed",
                                now + trace_offset_s_, /*dur_s=*/0.0,
                                trace_pid_, /*tid=*/0, "seq",
                                static_cast<double>(decision.seq));
}

OutcomeCounts ServeScheduler::outcomes() const {
  OutcomeCounts c;
  for (const RequestStats& rs : finished_) {
    switch (rs.outcome) {
      case RequestOutcome::kCompleted:
        ++c.completed;
        break;
      case RequestOutcome::kTimedOut:
        ++c.timed_out;
        break;
      case RequestOutcome::kRejected:
        ++c.rejected;
        break;
      case RequestOutcome::kFailed:
        ++c.failed;
        break;
    }
    c.retries += rs.retries;
  }
  return c;
}

}  // namespace llmpq
