#pragma once

#include <string>

#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "serve/health.hpp"

namespace llmpq {

/// Single-move plan repairs for the online control loop. On a health
/// verdict the Replanner searches the O(1)-rescorable moves the
/// IncrementalPlanEvaluator exposes and emits the best one as a PlanDelta;
/// the serving layer (MigrationController / the simulator mirror) applies
/// it live. The search is deterministic — candidate order and tie-breaks
/// are fixed — so both back-ends propose the identical delta from the same
/// plan and verdict, which is what puts re-plan events into the
/// sim-vs-runtime parity key.
///
/// Repair policy per verdict (DESIGN.md "Online control loop & elastic
/// migration"):
///   kStraggler       migrate one layer off the bottleneck stage to an
///                    adjacent stage (bit-preserving, hence bit-exact:
///                    the replacement engine shares the same weights)
///   kMemoryPressure  lower one bottleneck-stage layer to the next bit
///                    candidate (trades quality for memory; NOT
///                    bit-preserving, documented as such)
///   kOverload        halve the micro-batch sizes (smaller dispatch
///                    quanta drain the queue sooner)

enum class PlanDeltaKind : char {
  kNone,          ///< no feasible single-move repair
  kMigrateLayer,  ///< move `layer` from `from_stage` to `to_stage`
  kBitChange,     ///< requantize `layer` to `new_bits`
  kMicroBatch,    ///< set prefill/decode micro-batch sizes
};

const char* plan_delta_kind_name(PlanDeltaKind kind);

struct PlanDelta {
  PlanDeltaKind kind = PlanDeltaKind::kNone;
  int layer = -1;
  int from_stage = -1;
  int to_stage = -1;
  int new_bits = -1;
  int prefill_micro_batch = 0;
  int decode_micro_batch = 0;
  double base_objective = 0.0;  ///< evaluator score before the move
  double new_objective = 0.0;   ///< evaluator score after the move

  std::string describe() const;

  /// Parity comparison: every structural field, none of the scores (the
  /// two back-ends run different clocks but identical search state).
  bool same_move(const PlanDelta& other) const {
    return kind == other.kind && layer == other.layer &&
           from_stage == other.from_stage && to_stage == other.to_stage &&
           new_bits == other.new_bits &&
           prefill_micro_batch == other.prefill_micro_batch &&
           decode_micro_batch == other.decode_micro_batch;
  }
};

/// One control-loop decision, recorded by both back-ends. Alongside the
/// scheduler's DispatchDecision log this forms the extended parity key:
/// `same_decision` compares verdict identity and the proposed move, not
/// severities or objective scores (those are clock-dependent).
struct ReplanEvent {
  int at_seq = -1;  ///< decision seq the verdict tripped on
  HealthStatus status = HealthStatus::kHealthy;
  int bottleneck_stage = -1;
  double severity = 0.0;  ///< informational; excluded from parity
  PlanDelta delta;
  bool applied = false;  ///< false when no feasible repair existed

  bool same_decision(const ReplanEvent& other) const {
    return at_seq == other.at_seq && status == other.status &&
           bottleneck_stage == other.bottleneck_stage &&
           applied == other.applied && delta.same_move(other.delta);
  }
};

class PipelineEngine;

/// What a replan hook hands back to the serving loop: the delta it decided
/// on (kNone = no feasible repair) and, when the delta was applied, the
/// replacement engine to migrate onto. The hook's owner retains engine
/// ownership (MigrationController is the canonical owner).
struct ReplanOutcome {
  PipelineEngine* engine = nullptr;
  PlanDelta delta;
};

class Replanner {
 public:
  /// `indicator` may be null. References must outlive the Replanner.
  Replanner(const CostProvider& cost, const IndicatorResult* indicator,
            double theta)
      : cost_(cost), indicator_(indicator), theta_(theta) {}

  /// Searches single-move repairs for `verdict` against `plan`; returns
  /// kNone when nothing feasible improves the verdict's pressure.
  PlanDelta propose(const ExecutionPlan& plan,
                    const HealthVerdict& verdict) const;

  /// Applies a delta to a plan (pure; validates the result). kNone returns
  /// the plan unchanged.
  static ExecutionPlan apply(const ExecutionPlan& plan, const PlanDelta& delta);

 private:
  const CostProvider& cost_;
  const IndicatorResult* indicator_;
  double theta_;
};

}  // namespace llmpq
