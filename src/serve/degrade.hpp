#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "quant/format.hpp"
#include "runtime/engine.hpp"
#include "runtime/weights.hpp"

namespace llmpq {

/// One rung of the graceful-degradation ladder: a complete cheaper
/// configuration the serving loop can fall back to after repeated memory
/// faults. Rungs shed cost in the order that preserves the most quality:
/// first the group-wise scale/min metadata (same bitwidths, per-channel
/// format), then bitwidth itself, and only at the bottom the micro-batch.
struct DegradeStep {
  std::vector<int> layer_bits;
  QuantFormat format = QuantFormat::kPerChannel;
  int prefill_micro_batch = 1;
  int decode_micro_batch = 1;
};

/// Builds the default ladder below a serving configuration. Starting from
/// (`layer_bits`, `format`, micro-batches), emits in order:
///   1. the same bitwidths in per-channel format (only when `format` is
///      group-wise — dropping per-group scale+min metadata is the cheapest
///      memory cut, ~2-7% of weight bytes, with the smallest quality hit);
///   2. one rung per uniform bit reduction (16 -> 8 -> 4 -> 3), applied to
///      every layer still above the rung, until all layers sit at 3 bits;
///   3. a final rung with both micro-batches halved (floor 1), shrinking
///      peak activation + KV footprint when weights can shrink no further.
std::vector<DegradeStep> default_degrade_ladder(
    const std::vector<int>& layer_bits, QuantFormat format,
    int prefill_micro_batch, int decode_micro_batch);

/// Owns the replacement engines the OnlineEngine degrade hook hands out.
/// Engines are built lazily (level N is only materialized when the serving
/// loop actually reaches it) from the SAME weight seed as the original
/// model: build_random_model draws master weights from a format- and
/// bits-independent RNG stream, so every rung serves the same underlying
/// model requantized — degradation changes precision, not identity.
///
/// OnlineEngineOptions::degrade documents that the caller retains
/// ownership of replacement engines; this class is that caller. Keep it
/// alive until OnlineEngine::wait() returns.
class DegradeLadder {
 public:
  DegradeLadder(ModelSpec spec, std::vector<std::pair<int, int>> stage_layers,
                std::uint64_t seed, std::vector<DegradeStep> steps);

  /// Engine for ladder level `level` (1-based, matching the hook protocol);
  /// nullptr once the ladder is exhausted. Stable addresses: a level's
  /// engine is built once and reused if the loop asks again.
  PipelineEngine* engine_for_level(int level);

  /// Adapter for OnlineEngineOptions::degrade. The returned closure
  /// borrows `this` — the ladder must outlive the serving loop.
  std::function<PipelineEngine*(int)> hook();

  const std::vector<DegradeStep>& steps() const { return steps_; }

 private:
  struct Built {
    ModelWeights weights;
    std::unique_ptr<PipelineEngine> engine;
  };

  ModelSpec spec_;
  std::vector<std::pair<int, int>> stage_layers_;
  std::uint64_t seed_ = 0;
  std::vector<DegradeStep> steps_;
  std::vector<std::unique_ptr<Built>> built_;  ///< index = level - 1
};

}  // namespace llmpq
