#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "quant/format.hpp"

namespace llmpq {

/// Candidate weight precisions (bits). Order matters: ascending.
inline constexpr std::array<int, 4> kBitCandidates = {3, 4, 8, 16};

/// Index of a bitwidth inside kBitCandidates; -1 if not a candidate.
int bit_index(int bits);

/// Bytes per weight parameter at a given precision (packed storage).
double bytes_per_param(int bits);

/// How a GPU executes a kernel at one weight precision. `compute_scale`
/// multiplies the effective FLOP throughput relative to the FP16 tensor-core
/// path (values < 1 model dequantization overhead, > 1 model INT8 tensor
/// cores); `overhead_s` is the fixed per-layer-pass launch cost.
struct KernelProfile {
  double compute_scale = 1.0;
  /// Fraction of peak bandwidth the kernel achieves (LLM.int8's
  /// decomposition halves it on GPUs without INT8 tensor cores, which is
  /// why V100 INT8 loses to FP16 even in the memory-bound decode phase).
  double mem_scale = 1.0;
  double overhead_s = 0.0;
  /// Extra compute multiplier when the weights use a group-wise format
  /// (per-32/64-block scale+min) instead of per-channel: the kernel
  /// reloads metadata every group. Calibrated against the CPU kernel
  /// ratios measured by bench_ext_qgemm_kernels; newer architectures hide
  /// the reload better. 1.0 for per-channel.
  double group_scale = 1.0;
};

/// Static description of one GPU model. These numbers parameterize the
/// roofline ground-truth timing model (`cost/ground_truth`); they are
/// calibrated so that cross-device ratios match the ones the paper reports
/// (e.g. P100 ~14.5x V100 on FP16 prefill, T4 INT8 ~ FP16, V100 INT8 slower
/// than FP16).
struct GpuSpec {
  std::string name;
  std::int64_t mem_bytes = 0;
  double peak_fp16_tflops = 0.0;
  double mem_bandwidth = 0.0;     ///< bytes/s
  double compute_efficiency = 0;  ///< achievable fraction of peak on GEMMs
  double mem_efficiency = 0.85;   ///< achievable fraction of peak bandwidth
  std::array<KernelProfile, 4> kernels;  ///< indexed by bit_index()

  const KernelProfile& kernel(int bits) const;
  /// Effective FLOP/s when running at `bits`.
  double effective_flops(int bits) const;
  /// Format-aware overload: group-wise formats pay kernel(bits)
  /// .group_scale on top.
  double effective_flops(int bits, QuantFormat format) const;
  /// Effective bytes/s when running at `bits`.
  double effective_bandwidth(int bits) const {
    return mem_bandwidth * mem_efficiency * kernel(bits).mem_scale;
  }
};

/// Looks up a GPU by name: "A100-40G", "A800-80G", "V100-32G", "T4-16G",
/// "P100-12G". Throws InvalidArgumentError for unknown names.
const GpuSpec& gpu_registry_get(const std::string& name);

std::vector<std::string> gpu_registry_names();

}  // namespace llmpq
