#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace llmpq {

/// Synthetic production AI-cluster inventory and utilization trace, standing
/// in for the proprietary ByteDance trace behind the paper's Fig. 1. The
/// generator reproduces the figure's qualitative facts: high-calibre GPUs
/// (A100/V100) are a small fraction of the fleet but run near saturation,
/// while the plentiful inference GPUs (T4, P100) sit largely idle.
struct GpuFleetShare {
  std::string gpu_name;
  double fraction = 0.0;         ///< share of the fleet
  double mean_utilization = 0.0; ///< long-run average busy fraction
};

struct UtilizationSample {
  std::string gpu_name;
  int day = 0;      ///< day within the month, 0-based
  double util = 0;  ///< [0, 1]
};

struct ClusterTrace {
  std::vector<GpuFleetShare> shares;         ///< sums to 1.0
  std::vector<UtilizationSample> samples;    ///< per type x day
};

/// Generates a 30-day trace. Deterministic given the rng seed.
ClusterTrace generate_cluster_trace(Rng& rng, int days = 30);

/// Average utilization per GPU type over the trace.
std::vector<GpuFleetShare> average_utilization(const ClusterTrace& trace);

}  // namespace llmpq
