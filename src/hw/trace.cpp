#include "hw/trace.hpp"

#include <algorithm>
#include <cmath>

namespace llmpq {

ClusterTrace generate_cluster_trace(Rng& rng, int days) {
  // Fleet composition and long-run utilization chosen to match the shape of
  // the paper's Fig. 1: T4 is the majority inference fleet, A100 is scarce
  // and saturated, older Pascal parts are plentiful and mostly idle.
  ClusterTrace trace;
  trace.shares = {
      {"A100-40G", 0.08, 0.88},
      {"V100-32G", 0.14, 0.55},
      {"T4-16G", 0.46, 0.34},
      {"P100-12G", 0.22, 0.18},
      {"A800-80G", 0.10, 0.82},
  };
  for (const auto& share : trace.shares) {
    for (int day = 0; day < days; ++day) {
      // Weekly seasonality (weekend dips) + noise, clamped to [0, 1].
      const double weekly =
          0.06 * std::sin(2.0 * M_PI * static_cast<double>(day) / 7.0);
      const double noise = rng.normal(0.0, 0.04);
      const double util =
          std::clamp(share.mean_utilization + weekly + noise, 0.0, 1.0);
      trace.samples.push_back({share.gpu_name, day, util});
    }
  }
  return trace;
}

std::vector<GpuFleetShare> average_utilization(const ClusterTrace& trace) {
  std::vector<GpuFleetShare> out = trace.shares;
  for (auto& share : out) {
    double sum = 0.0;
    int n = 0;
    for (const auto& s : trace.samples) {
      if (s.gpu_name == share.gpu_name) {
        sum += s.util;
        ++n;
      }
    }
    share.mean_utilization = n > 0 ? sum / n : 0.0;
  }
  return out;
}

}  // namespace llmpq
