#include "hw/cluster.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace llmpq {

const LinkSpec& ClusterSpec::link(int a, int b) const {
  check_arg(a >= 0 && a < num_devices() && b >= 0 && b < num_devices(),
            "ClusterSpec::link: device index out of range");
  return devices[static_cast<std::size_t>(a)].node ==
                 devices[static_cast<std::size_t>(b)].node
             ? intra_node
             : inter_node;
}

std::int64_t ClusterSpec::total_mem_bytes() const {
  std::int64_t total = 0;
  for (const auto& d : devices) total += d.gpu().mem_bytes;
  return total;
}

bool ClusterSpec::homogeneous() const {
  for (const auto& d : devices)
    if (d.gpu_name != devices.front().gpu_name) return false;
  return true;
}

std::string ClusterSpec::describe_devices() const {
  // Preserve first-seen order of GPU types.
  std::vector<std::pair<std::string, int>> counts;
  for (const auto& d : devices) {
    bool found = false;
    for (auto& [name, n] : counts)
      if (name == d.gpu_name) {
        ++n;
        found = true;
      }
    if (!found) counts.emplace_back(d.gpu_name, 1);
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i) os << " + ";
    os << counts[i].second << 'x' << counts[i].first;
  }
  return os.str();
}

ClusterSpec make_cluster(const std::string& name,
                         const std::vector<std::pair<std::string, int>>& gpus,
                         double ethernet_gbps) {
  ClusterSpec c;
  c.name = name;
  int node = 0;
  for (const auto& [gpu_name, count] : gpus) {
    check_arg(count > 0, "make_cluster: non-positive GPU count");
    gpu_registry_get(gpu_name);  // validate name
    for (int i = 0; i < count; ++i) c.devices.push_back({gpu_name, node});
    ++node;
  }
  check_arg(!c.devices.empty(), "make_cluster: empty cluster");
  // NVLink (NV-LINK in the paper's setup): ~300 GB/s effective, 5 us.
  c.intra_node = {gBps(300), us(5)};
  c.inter_node = {gbps(ethernet_gbps), us(30)};
  return c;
}

PaperCluster paper_cluster(int index) {
  // Table 3 of the paper. Nodes in clusters 3, 5, 8, 11 use 800 Gbps
  // Ethernet; 4, 6, 7 use 100 Gbps; single-node clusters have no
  // inter-node traffic (rate value is irrelevant but set to 800).
  switch (index) {
    case 1:
      return {make_cluster("cluster-1", {{"V100-32G", 1}}), "opt-13b"};
    case 2:
      return {make_cluster("cluster-2", {{"A100-40G", 1}}), "opt-13b"};
    case 3:
      return {make_cluster("cluster-3", {{"T4-16G", 3}, {"V100-32G", 1}}, 800),
              "opt-30b"};
    case 4:
      return {make_cluster("cluster-4", {{"P100-12G", 3}, {"V100-32G", 1}}, 100),
              "opt-30b"};
    case 5:
      return {make_cluster("cluster-5", {{"T4-16G", 4}, {"V100-32G", 2}}, 800),
              "opt-66b"};
    case 6:
      return {make_cluster("cluster-6", {{"V100-32G", 2}, {"A100-40G", 2}}, 100),
              "opt-66b"};
    case 7:
      return {make_cluster("cluster-7", {{"V100-32G", 4}, {"A100-40G", 4}}, 100),
              "bloom-176b"};
    case 8:
      return {make_cluster("cluster-8", {{"V100-32G", 4}, {"A800-80G", 2}}, 800),
              "bloom-176b"};
    case 9:
      return {make_cluster("cluster-9", {{"T4-16G", 4}}), "opt-30b"};
    case 10:
      return {make_cluster("cluster-10", {{"V100-32G", 4}}), "opt-66b"};
    case 11:
      return {make_cluster("cluster-11", {{"A800-80G", 4}}, 800), "bloom-176b"};
    default:
      throw InvalidArgumentError("paper_cluster: index must be in [1, 11]");
  }
}

}  // namespace llmpq
