#include "hw/gpu_spec.hpp"

#include "common/error.hpp"
#include "common/units.hpp"

namespace llmpq {

int bit_index(int bits) {
  for (std::size_t i = 0; i < kBitCandidates.size(); ++i)
    if (kBitCandidates[i] == bits) return static_cast<int>(i);
  return -1;
}

double bytes_per_param(int bits) {
  check_arg(bit_index(bits) >= 0, "bytes_per_param: unsupported bitwidth");
  return static_cast<double>(bits) / 8.0;
}

const KernelProfile& GpuSpec::kernel(int bits) const {
  const int idx = bit_index(bits);
  check_arg(idx >= 0, "GpuSpec::kernel: unsupported bitwidth");
  return kernels[static_cast<std::size_t>(idx)];
}

double GpuSpec::effective_flops(int bits) const {
  return peak_fp16_tflops * TFLOP * compute_efficiency *
         kernel(bits).compute_scale;
}

double GpuSpec::effective_flops(int bits, QuantFormat format) const {
  const double base = effective_flops(bits);
  if (format == QuantFormat::kPerChannel || bits >= 16) return base;
  return base * kernel(bits).group_scale;
}

namespace {

// Kernel profiles, indexed {3, 4, 8, 16}. The 3/4-bit entries model GPTQ
// weight-only kernels: dequantize-then-GEMM costs compute throughput but
// reads fewer weight bytes. The 8-bit entry models bitsandbytes LLM.int8
// decomposition: near-FP16 on GPUs with INT8 tensor cores (T4/A100/A800),
// slower than FP16 on V100/P100 which lack them.
std::vector<GpuSpec> build_registry() {
  std::vector<GpuSpec> r;

  GpuSpec a100;
  a100.name = "A100-40G";
  a100.mem_bytes = gb_marketing(40);
  a100.peak_fp16_tflops = 312.0;
  a100.mem_bandwidth = gBps(1555);
  a100.compute_efficiency = 0.62;
  a100.kernels = {KernelProfile{0.50, 0.85, us(45)}, KernelProfile{0.58, 0.90, us(40)},
                  KernelProfile{1.30, 1.00, us(35)}, KernelProfile{1.00, 1.00, us(25)}};
  r.push_back(a100);

  GpuSpec a800 = a100;
  a800.name = "A800-80G";
  a800.mem_bytes = gb_marketing(80);
  a800.mem_bandwidth = gBps(1935);
  r.push_back(a800);

  GpuSpec v100;
  v100.name = "V100-32G";
  v100.mem_bytes = gb_marketing(32);
  v100.peak_fp16_tflops = 125.0;
  v100.mem_bandwidth = gBps(900);
  v100.compute_efficiency = 0.62;
  // No INT8 tensor cores: the 8-bit decomposition kernel always loses to
  // FP16 on compute (paper Sec 2.5).
  v100.kernels = {KernelProfile{0.45, 0.85, us(50)}, KernelProfile{0.52, 0.90, us(45)},
                  KernelProfile{0.55, 0.45, us(45)}, KernelProfile{1.00, 1.00, us(25)}};
  r.push_back(v100);

  GpuSpec t4;
  t4.name = "T4-16G";
  t4.mem_bytes = gb_marketing(16);
  t4.peak_fp16_tflops = 65.0;
  t4.mem_bandwidth = gBps(320);
  t4.compute_efficiency = 0.48;
  // Turing INT8 tensor cores make the 8-bit layer comparable to FP16
  // (paper Sec 2.5: "T4 supports fast INT8").
  t4.kernels = {KernelProfile{0.50, 0.85, us(50)}, KernelProfile{0.60, 0.90, us(45)},
                KernelProfile{1.55, 1.00, us(40)}, KernelProfile{1.00, 1.00, us(30)}};
  r.push_back(t4);

  GpuSpec p100;
  p100.name = "P100-12G";
  p100.mem_bytes = gb_marketing(12);
  p100.peak_fp16_tflops = 18.7;
  p100.mem_bandwidth = gBps(732);
  // Pascal has no tensor cores at all; GEMM efficiency is poor, which is
  // what yields the ~14.5x FP16 prefill gap vs V100 the paper measures.
  p100.compute_efficiency = 0.28;
  p100.kernels = {KernelProfile{0.55, 0.85, us(55)}, KernelProfile{0.62, 0.90, us(50)},
                  KernelProfile{0.70, 0.50, us(50)}, KernelProfile{1.00, 1.00, us(30)}};
  r.push_back(p100);

  // Group-format compute multipliers for the sub-16-bit kernels (FP16 has
  // no metadata). Calibrated against the CPU dequant-GEMM ratios from
  // bench_ext_qgemm_kernels; newer architectures (larger register files,
  // better L2) hide the per-group (scale, min) reload better than Pascal.
  for (GpuSpec& g : r) {
    double gs = 0.95;
    if (g.name.rfind("A100", 0) == 0 || g.name.rfind("A800", 0) == 0)
      gs = 0.97;
    else if (g.name.rfind("T4", 0) == 0)
      gs = 0.93;
    else if (g.name.rfind("P100", 0) == 0)
      gs = 0.90;
    for (std::size_t b = 0; b + 1 < g.kernels.size(); ++b)
      g.kernels[b].group_scale = gs;
  }

  return r;
}

const std::vector<GpuSpec>& registry() {
  static const std::vector<GpuSpec> r = build_registry();
  return r;
}

}  // namespace

const GpuSpec& gpu_registry_get(const std::string& name) {
  for (const auto& g : registry())
    if (g.name == name) return g;
  throw InvalidArgumentError("unknown GPU: " + name);
}

std::vector<std::string> gpu_registry_names() {
  std::vector<std::string> names;
  for (const auto& g : registry()) names.push_back(g.name);
  return names;
}

}  // namespace llmpq
