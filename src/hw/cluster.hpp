#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/gpu_spec.hpp"

namespace llmpq {

/// Point-to-point link characteristics between pipeline neighbours.
struct LinkSpec {
  double bytes_per_s = 0.0;
  double latency_s = 0.0;

  /// Time to move `bytes` across this link.
  double transfer_time(double bytes) const {
    return latency_s + bytes / bytes_per_s;
  }
};

/// One GPU slot in a cluster: which device model and which node hosts it.
/// A slot may carry an inline spec instead of a registry reference — used
/// for *virtual* devices such as tensor-parallel groups folded into one
/// logical device (core/tensor_parallel).
struct DeviceSlot {
  std::string gpu_name;
  int node = 0;
  std::shared_ptr<const GpuSpec> custom;  ///< overrides the registry if set

  const GpuSpec& gpu() const {
    return custom ? *custom : gpu_registry_get(gpu_name);
  }
};

/// A (possibly heterogeneous) cluster: GPU slots grouped into nodes,
/// NVLink within a node, Ethernet across nodes.
struct ClusterSpec {
  std::string name;
  std::vector<DeviceSlot> devices;
  LinkSpec intra_node;  ///< NVLink
  LinkSpec inter_node;  ///< Ethernet

  int num_devices() const { return static_cast<int>(devices.size()); }

  /// Link between devices at positions a and b of a pipeline ordering.
  const LinkSpec& link(int a, int b) const;

  /// Total GPU memory across all devices.
  std::int64_t total_mem_bytes() const;

  /// True if every device is the same GPU model.
  bool homogeneous() const;

  /// Device multiset rendered as e.g. "3xT4-16G + 1xV100-32G".
  std::string describe_devices() const;
};

/// Builds a cluster from counts, e.g. {{"T4-16G", 3}, {"V100-32G", 1}} with
/// each GPU type placed on its own node (the paper's layout). Ethernet rate
/// in Gbps picks 100 or 800 per the paper's cluster table.
ClusterSpec make_cluster(const std::string& name,
                         const std::vector<std::pair<std::string, int>>& gpus,
                         double ethernet_gbps = 800.0);

/// The paper's Table 3 clusters, keyed 1..11, plus the model evaluated on
/// each. `paper_cluster(k)` throws for k outside [1, 11].
struct PaperCluster {
  ClusterSpec cluster;
  std::string model_name;
};
PaperCluster paper_cluster(int index);

}  // namespace llmpq
