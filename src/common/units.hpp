#pragma once

#include <cstdint>

namespace llmpq {

// All sizes in the code base are carried in bytes (int64), all times in
// seconds (double), all rates in units/second. These helpers keep literals
// readable at call sites.

inline constexpr std::int64_t KiB = 1024;
inline constexpr std::int64_t MiB = 1024 * KiB;
inline constexpr std::int64_t GiB = 1024 * MiB;

/// 10^9 floating point operations.
inline constexpr double GFLOP = 1e9;
inline constexpr double TFLOP = 1e12;

/// Converts a marketing "GB" (10^9) figure to bytes.
constexpr std::int64_t gb_marketing(double gb) {
  return static_cast<std::int64_t>(gb * 1e9);
}

/// Converts GiB to bytes.
constexpr std::int64_t gib(double g) {
  return static_cast<std::int64_t>(g * static_cast<double>(GiB));
}

/// Network rate helpers: converts Gbit/s to bytes/s.
constexpr double gbps(double g) { return g * 1e9 / 8.0; }

/// Memory bandwidth: GB/s (10^9 bytes) to bytes/s.
constexpr double gBps(double g) { return g * 1e9; }

/// Milliseconds to seconds.
constexpr double ms(double m) { return m * 1e-3; }

/// Microseconds to seconds.
constexpr double us(double u) { return u * 1e-6; }

}  // namespace llmpq
