#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llmpq {

class JsonWriter;

/// Lightweight runtime observability for the pipeline engine (and any other
/// long-lived worker): lock-free accumulators written by worker threads and
/// plain-value snapshots handed to callers. The shape mirrors what the
/// paper's runtime reports per stage (busy/idle split, queue pressure,
/// per-phase token throughput) and what `sim/` models analytically — so the
/// real threaded runtime and the simulator can be compared on the same
/// quantities.

/// Monotonic nanosecond stopwatch (steady_clock).
class StopwatchNs {
 public:
  StopwatchNs() : start_(std::chrono::steady_clock::now()) {}

  std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  double elapsed_s() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Snapshot of one pipeline stage's counters (plain values, safe to copy).
struct StageStats {
  double busy_s = 0.0;   ///< wall time inside decoder-layer compute
  double idle_s = 0.0;   ///< wall time blocked on the stage inbox
  double qgemm_s = 0.0;  ///< busy-time share spent in linear (qgemm) ops
  double attn_s = 0.0;   ///< busy-time share spent in attention
  std::uint64_t microbatches = 0;    ///< micro-batches processed
  std::size_t inbox_high_water = 0;  ///< max queued micro-batches observed

  /// busy / (busy + idle); 0 when the stage never ran.
  double utilization() const;
};

/// Snapshot of one execution phase (prefill or decode).
struct PhaseStats {
  std::uint64_t tokens = 0;  ///< token positions pushed through the pipeline
  double seconds = 0.0;      ///< wall time spent in this phase

  double tokens_per_s() const;
};

/// Everything `PipelineEngine::stats()` exposes.
struct EngineStats {
  std::vector<StageStats> stages;
  PhaseStats prefill;
  PhaseStats decode;
  std::uint64_t generate_calls = 0;  ///< completed generate() calls
};

/// Per-stage accumulator: written by exactly one worker thread, read
/// concurrently by `stats()`. Relaxed atomics — each counter is independent
/// and snapshots only need eventual per-counter consistency.
class StageMetrics {
 public:
  void add_busy_ns(std::uint64_t ns) { busy_ns_ += ns; }
  void add_idle_ns(std::uint64_t ns) { idle_ns_ += ns; }
  void add_qgemm_ns(std::uint64_t ns) { qgemm_ns_ += ns; }
  void add_attn_ns(std::uint64_t ns) { attn_ns_ += ns; }
  void add_microbatch() { ++microbatches_; }

  /// Consistent-enough copy for reporting (inbox high-water is filled in by
  /// the engine, which owns the queues).
  StageStats snapshot() const;

 private:
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> idle_ns_{0};
  std::atomic<std::uint64_t> qgemm_ns_{0};
  std::atomic<std::uint64_t> attn_ns_{0};
  std::atomic<std::uint64_t> microbatches_{0};
};

/// Per-phase accumulator (tokens + wall time across generate() calls).
class PhaseMetrics {
 public:
  void add(std::uint64_t tokens, std::uint64_t ns) {
    tokens_ += tokens;
    ns_ += ns;
  }

  PhaseStats snapshot() const;

 private:
  std::atomic<std::uint64_t> tokens_{0};
  std::atomic<std::uint64_t> ns_{0};
};

/// Human-readable multi-line report (used by the bench harness and the
/// `llmpq-dist`-style launchers).
std::string format_engine_stats(const EngineStats& stats);

/// Tail-aware summary of a latency-like sample (seconds). Shared by the
/// serving back-ends: the online simulator and the real `OnlineEngine`
/// report request latency / queue delay / prefill time in this shape so
/// the two can be compared side by side. `p99_s` is the tail statistic
/// SLO gates and the serving benches key on — bench rows, metrics
/// snapshots and per-tenant SLO reports all read the same field.
struct LatencySummary {
  std::size_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

LatencySummary summarize_latency(std::vector<double> seconds);

/// One-line rendering:
/// "n=12 mean=0.31s p50=0.25s p95=0.80s p99=1.02s max=1.10s".
std::string format_latency_summary(const LatencySummary& summary);

/// JSON projections of the metric structs (objects with snake_case keys,
/// derived rates included) — the machine-readable counterpart to the
/// format_* renderers above, shared by the metrics registry, the bench
/// artifacts and any launcher that wants to dump stats.
void write_json(JsonWriter& w, const StageStats& s);
void write_json(JsonWriter& w, const PhaseStats& s);
void write_json(JsonWriter& w, const EngineStats& s);
void write_json(JsonWriter& w, const LatencySummary& s);

/// Named collection of metric snapshots exported as one JSON document
/// (schema "llmpq-metrics/v1"): scalar gauges, latency summaries and full
/// engine stats. Plain value type — fill it at report time from the lock-
/// free accumulators above; it does no synchronization of its own.
class MetricsRegistry {
 public:
  void set_value(const std::string& name, double value);
  void set_latency(const std::string& name, const LatencySummary& summary);
  void set_engine(const std::string& name, const EngineStats& stats);

  void write_json(JsonWriter& w) const;
  /// Serializes to `path`; false (with a log line) on I/O failure.
  bool write_json_file(const std::string& path) const;

 private:
  std::map<std::string, double> values_;
  std::map<std::string, LatencySummary> latencies_;
  std::map<std::string, EngineStats> engines_;
};

}  // namespace llmpq
