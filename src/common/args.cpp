#include "common/args.hpp"

#include <algorithm>
#include <climits>

#include "common/error.hpp"

namespace llmpq {

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string key, value;
    const auto eq = arg.find('=');
    bool has_value = false;
    if (eq != std::string::npos) {
      key = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    } else {
      key = arg;
      // Consume a following token as the value unless it looks like an
      // option itself.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
        has_value = true;
      }
    }
    if (std::find(order_.begin(), order_.end(), key) == order_.end())
      order_.push_back(key);
    if (has_value)
      values_[key].push_back(std::move(value));
    else
      values_[key];  // bare flag: present with no values
  }
}

bool ArgParser::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> ArgParser::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::string ArgParser::get_or(const std::string& key,
                              const std::string& fallback) const {
  return get(key).value_or(fallback);
}

std::vector<std::string> ArgParser::get_all(const std::string& key) const {
  const auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

long ArgParser::get_long(const std::string& key, long fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  // Strict: "5x" or "1e3" must be a usage error naming the token, not a
  // silently truncated 5 or 1 (the historical std::stol behavior).
  std::size_t used = 0;
  long value = 0;
  bool ok = true;
  try {
    value = std::stol(*v, &used);
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok || used != v->size())
    throw InvalidArgumentError("--" + key + ": expected an integer, got '" +
                               *v + "'");
  return value;
}

double ArgParser::get_double(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return parse_double_token(*v, "--" + key);
}

int parse_int_token(const std::string& token, const std::string& what) {
  std::size_t used = 0;
  long value = 0;
  bool ok = true;
  try {
    value = std::stol(token, &used);
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok || used != token.size() || value < INT_MIN || value > INT_MAX)
    throw InvalidArgumentError(what + ": expected an integer, got '" + token +
                               "'");
  return static_cast<int>(value);
}

double parse_double_token(const std::string& token, const std::string& what) {
  std::size_t used = 0;
  double value = 0.0;
  bool ok = true;
  try {
    value = std::stod(token, &used);
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok || used != token.size())
    throw InvalidArgumentError(what + ": expected a number, got '" + token +
                               "'");
  return value;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string token;
  for (char c : s) {
    if (c == ',') {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

}  // namespace llmpq
