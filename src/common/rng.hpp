#pragma once

#include <cstdint>
#include <limits>

namespace llmpq {

/// Deterministic, fast PRNG (xoshiro256**). All randomized components in the
/// code base take an explicit Rng so every experiment is reproducible from a
/// seed; nothing reads global entropy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Splits off an independent stream (for per-thread / per-component use).
  Rng split();

  // UniformRandomBitGenerator interface so std::shuffle etc. work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace llmpq
