#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace llmpq {

/// Low-overhead span/counter tracer exporting Chrome "trace event" JSON
/// (open the file in chrome://tracing or https://ui.perfetto.dev). This is
/// the machine-readable counterpart to `PipelineEngine::stats()`: where the
/// stats aggregate, the trace keeps the timeline — per-stage busy spans,
/// qgemm/attention sub-spans, mailbox waits, scheduler decisions and
/// per-request queue→prefill→decode lifecycles.
///
/// Design:
///   * One process-wide `TraceSession`. `start()` arms it; until then every
///     recording call is a relaxed atomic load + branch — no clock read, no
///     allocation (pinned by the zero-allocation regression test).
///   * Per-thread ring buffers of POD events, written lock-free by their
///     owning thread (a light per-buffer mutex is only contended by the
///     exporter). A full ring overwrites the oldest events and counts the
///     drops — tracing never blocks the traced code.
///   * Category/name/arg-key strings must be string literals (or otherwise
///     outlive the session): events store the pointers.
///   * Virtual timelines (the discrete-event simulator, the serving
///     scheduler's request lifecycles) are emitted through the explicit-
///     timestamp functions onto their own pid tracks, so a *simulated*
///     schedule and a *measured* runtime schedule of the same plan land in
///     one trace for side-by-side comparison (the Fig. 7 cost-model
///     fidelity check, visually).
///
/// Track layout: pid 0 = runtime (real threads), pid 1 = simulator (one
/// tid per pipeline stage), pid 2 = serving (scheduler decisions +
/// per-request async lifecycle spans keyed by request id).
namespace trace_pids {
constexpr std::uint32_t kRuntime = 0;
constexpr std::uint32_t kSim = 1;
constexpr std::uint32_t kServe = 2;
}  // namespace trace_pids

/// One recorded event (POD; ~64 bytes). `phase` uses the Chrome trace
/// phase letters: 'X' complete, 'C' counter, 'b'/'e' async begin/end,
/// 'i' instant.
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  const char* arg_name = nullptr;  ///< optional numeric arg key
  double arg_value = 0.0;
  std::uint64_t ts_ns = 0;   ///< since session start (or virtual clock)
  std::uint64_t dur_ns = 0;  ///< 'X' only
  std::uint64_t id = 0;      ///< async correlation id ('b'/'e')
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  char phase = 'X';
};

class TraceSession {
 public:
  /// The process-wide session used by the TRACE_* macros.
  static TraceSession& instance();

  /// Arms tracing. Clears previously collected events; per-thread rings
  /// hold `events_per_thread` events each (oldest overwritten when full).
  void start(std::size_t events_per_thread = 1 << 16);

  /// Disarms tracing; collected events stay available for export.
  void stop();

  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Seconds since start() on the session clock (0 when never started).
  /// Back-ends with their own clock use this to align explicit-timestamp
  /// events with wall-clock spans.
  static double now_s();

  // ---- Wall-clock recording (timestamps from the session clock). All are
  // no-ops (one relaxed load) when tracing is off.
  static void counter(const char* category, const char* name, double value);
  static void instant(const char* category, const char* name);
  static void async_begin(const char* category, const char* name,
                          std::uint64_t id, std::uint32_t pid);
  static void async_end(const char* category, const char* name,
                        std::uint64_t id, std::uint32_t pid);

  // ---- Explicit-timestamp recording (virtual clocks: simulator, serving
  // scheduler). `ts_s`/`dur_s` are seconds on the caller's clock; callers
  // that want alignment with the wall-clock tracks add their offset to
  // now_s() themselves.
  static void emit_complete(const char* category, const char* name,
                            double ts_s, double dur_s, std::uint32_t pid,
                            std::uint32_t tid,
                            const char* arg_name = nullptr,
                            double arg_value = 0.0);
  static void emit_async(char phase, const char* category, const char* name,
                         double ts_s, std::uint64_t id, std::uint32_t pid);

  /// Names the calling thread's track (metadata event on export). Safe to
  /// call repeatedly; only the first non-empty name per session sticks.
  static void set_thread_name(const std::string& name);

  /// Names an explicit (pid, tid) track — used by virtual timelines.
  void set_track_name(std::uint32_t pid, std::uint32_t tid,
                      const std::string& name);

  /// Names a pid row in the trace viewer. pids 0/1/2 are pre-named
  /// runtime/sim/serve on start().
  void set_process_name(std::uint32_t pid, const std::string& name);

  /// Events lost to ring-buffer wrap since start().
  std::uint64_t dropped() const;

  /// All collected events, sorted by (ts, tid). Primarily for tests; the
  /// usual consumer is write_chrome_trace().
  std::vector<TraceEvent> snapshot() const;

  /// Writes the collected events as a Chrome trace-event JSON document
  /// ({"traceEvents": [...]}, timestamps in microseconds).
  void write_chrome_trace(std::ostream& os) const;

  /// write_chrome_trace() to a file; false (with a log line) on I/O error.
  bool write_chrome_trace_file(const std::string& path) const;

  // Internal: called by the recording fast paths.
  struct ThreadBuffer;
  ThreadBuffer* thread_buffer();
  void append(const TraceEvent& event);

 private:
  TraceSession() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};

  struct State;
  State* state() const;
  mutable std::atomic<State*> state_{nullptr};
};

/// RAII wall-clock span on the calling thread's track. Records nothing —
/// and reads no clock — when tracing is off at construction.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name,
            const char* arg_name = nullptr, double arg_value = 0.0);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* category_;
  const char* name_;
  const char* arg_name_;
  double arg_value_;
  std::uint64_t start_ns_;
  bool active_;
};

// Define LLMPQ_TRACE_DISABLED to compile every trace macro to nothing (the
// runtime check already costs ~1 ns; this removes even that).
#ifndef LLMPQ_TRACE_DISABLED

#define LLMPQ_TRACE_CAT2(a, b) a##b
#define LLMPQ_TRACE_CAT(a, b) LLMPQ_TRACE_CAT2(a, b)

/// Scoped span: TRACE_SPAN("engine", "prefill");
#define TRACE_SPAN(category, name) \
  ::llmpq::TraceSpan LLMPQ_TRACE_CAT(llmpq_trace_span_, __LINE__)(category, \
                                                                  name)

/// Scoped span with one numeric arg:
/// TRACE_SPAN1("engine", "microbatch", "seq_len", 16);
#define TRACE_SPAN1(category, name, arg_name, arg_value)             \
  ::llmpq::TraceSpan LLMPQ_TRACE_CAT(llmpq_trace_span_, __LINE__)(   \
      category, name, arg_name, static_cast<double>(arg_value))

#define TRACE_COUNTER(category, name, value) \
  ::llmpq::TraceSession::counter(category, name, static_cast<double>(value))

#define TRACE_INSTANT(category, name) \
  ::llmpq::TraceSession::instant(category, name)

#else  // LLMPQ_TRACE_DISABLED

#define TRACE_SPAN(category, name) ((void)0)
#define TRACE_SPAN1(category, name, arg_name, arg_value) ((void)0)
#define TRACE_COUNTER(category, name, value) ((void)0)
#define TRACE_INSTANT(category, name) ((void)0)

#endif  // LLMPQ_TRACE_DISABLED

}  // namespace llmpq
