#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace llmpq {

/// Tiny GNU-style argument parser for the CLI tools (`llmpq-algo`,
/// `llmpq-dist`): supports `--key value`, `--key=value`, repeated keys
/// (collected in order) and bare `--flag`s. Unknown keys are kept so the
/// tool can reject them with a helpful message.
class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Last value of --key; nullopt if absent or a bare flag.
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;

  /// All values passed for --key, in order.
  std::vector<std::string> get_all(const std::string& key) const;

  /// Strictly parsed numeric flags: trailing junk ("5x", "0.1s") is a
  /// usage error naming both the key and the offending token, matching
  /// parse_int_token — a bad --seed or --max_wait_s must not silently
  /// truncate to a prefix.
  long get_long(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;

  /// Keys seen on the command line (for unknown-option checks).
  const std::vector<std::string>& keys() const { return order_; }

  /// Positional (non --key) arguments.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
};

/// Splits "a,b,c" into tokens (empty tokens dropped).
std::vector<std::string> split_csv(const std::string& s);

/// Strictly parses `token` as a base-10 integer (optional sign, no
/// trailing junk, no overflow). Throws InvalidArgumentError naming both
/// `what` and the offending token — CLI list options use this instead of
/// raw std::stoi so "3,x" reports the bad token rather than aborting with
/// an uncaught exception.
int parse_int_token(const std::string& token, const std::string& what);

/// Floating-point counterpart of parse_int_token (strict: whole token must
/// parse, otherwise InvalidArgumentError naming `what` and the token).
double parse_double_token(const std::string& token, const std::string& what);

}  // namespace llmpq
