#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace llmpq {

/// Streaming mean/variance accumulator (Welford). Used by calibration
/// statistics and by the profiler's noise estimates.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (n divisor); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);

/// Percentile with linear interpolation; p in [0, 100].
double percentile(std::vector<double> xs, double p);

/// Ordinary least squares: fits y ~ X * beta (no implicit intercept; append
/// a ones column yourself if you want one). Returns beta of size X.cols().
/// Solved via normal equations + Cholesky with automatic ridging, which is
/// plenty for the small, well-scaled designs the latency model produces.
struct OlsFit {
  std::vector<double> beta;
  double r2 = 0.0;                 ///< coefficient of determination
  double max_abs_residual = 0.0;   ///< worst-case training error
  double mean_abs_rel_error = 0.0; ///< mean |resid| / |y|, y != 0 rows only
};

OlsFit ols_fit(const std::vector<std::vector<double>>& features,
               const std::vector<double>& targets);

/// Dot product of a fitted beta with a feature row.
double ols_predict(const std::vector<double>& beta,
                   const std::vector<double>& features);

}  // namespace llmpq
