#include "common/fault.hpp"

#include <chrono>
#include <new>
#include <sstream>
#include <thread>

#include "common/json_writer.hpp"
#include "common/trace.hpp"

namespace llmpq {

namespace {

/// splitmix64 finalizer — the per-evaluation hash that makes fire decisions
/// a pure function of (seed, rule, evaluation index).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool site_matches(const std::string& pattern, std::string_view site) {
  if (!pattern.empty() && pattern.back() == '*')
    return site.substr(0, pattern.size() - 1) ==
           std::string_view(pattern).substr(0, pattern.size() - 1);
  return site == pattern;
}

FaultKind fault_kind_from_name(const std::string& name) {
  if (name == "throw") return FaultKind::kThrow;
  if (name == "delay") return FaultKind::kDelay;
  if (name == "alloc_fail") return FaultKind::kAllocFail;
  if (name == "drop") return FaultKind::kDrop;
  if (name == "slow") return FaultKind::kSlow;
  throw InvalidArgumentError(
      "FaultPlan: unknown fault kind '" + name +
      "' (known: throw, delay, alloc_fail, drop, slow)");
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kThrow:
      return "throw";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kAllocFail:
      return "alloc_fail";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kSlow:
      return "slow";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// FaultPlan JSON
// ---------------------------------------------------------------------------

std::string FaultPlan::to_json() const {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/2);
  w.begin_object();
  w.kv("seed", static_cast<std::uint64_t>(seed));
  w.key("rules");
  w.begin_array();
  for (const FaultRule& r : rules) {
    w.begin_object();
    w.kv("site", r.site);
    w.kv("kind", fault_kind_name(r.kind));
    w.kv("probability", r.probability);
    w.kv("after", r.after);
    if (r.max_fires != std::numeric_limits<int>::max())
      w.kv("max_fires", r.max_fires);
    if (r.delay_ms != 0.0) w.kv("delay_ms", r.delay_ms);
    if (r.duration != std::numeric_limits<int>::max())
      w.kv("duration", r.duration);
    if (!r.message.empty()) w.kv("message", r.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

FaultPlan FaultPlan::from_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  check_arg(doc.is_object(), "FaultPlan: top level must be an object");
  FaultPlan plan;
  if (doc.has("seed")) {
    const JsonValue& s = doc.at("seed");
    check_arg(s.is_number() && s.number >= 0,
              "FaultPlan: 'seed' must be a non-negative number");
    plan.seed = static_cast<std::uint64_t>(s.number);
  }
  check_arg(doc.has("rules") && doc.at("rules").is_array(),
            "FaultPlan: 'rules' array is required");
  for (const JsonValue& jr : doc.at("rules").array) {
    check_arg(jr.is_object(), "FaultPlan: each rule must be an object");
    FaultRule r;
    check_arg(jr.has("site") && jr.at("site").is_string() &&
                  !jr.at("site").string.empty(),
              "FaultPlan: rule 'site' (non-empty string) is required");
    r.site = jr.at("site").string;
    check_arg(jr.has("kind") && jr.at("kind").is_string(),
              "FaultPlan: rule 'kind' (string) is required");
    r.kind = fault_kind_from_name(jr.at("kind").string);
    if (jr.has("probability")) {
      const double p = jr.at("probability").number;
      check_arg(jr.at("probability").is_number() && p >= 0.0 && p <= 1.0,
                "FaultPlan: 'probability' must be in [0, 1]");
      r.probability = p;
    }
    if (jr.has("after")) {
      check_arg(jr.at("after").is_number() && jr.at("after").number >= 0,
                "FaultPlan: 'after' must be a non-negative integer");
      r.after = static_cast<int>(jr.at("after").number);
    }
    if (jr.has("max_fires")) {
      check_arg(jr.at("max_fires").is_number() &&
                    jr.at("max_fires").number >= 0,
                "FaultPlan: 'max_fires' must be a non-negative integer");
      r.max_fires = static_cast<int>(jr.at("max_fires").number);
    }
    if (jr.has("delay_ms")) {
      check_arg(jr.at("delay_ms").is_number() &&
                    jr.at("delay_ms").number >= 0.0,
                "FaultPlan: 'delay_ms' must be non-negative");
      r.delay_ms = jr.at("delay_ms").number;
    }
    if (jr.has("duration")) {
      check_arg(jr.at("duration").is_number() && jr.at("duration").number >= 1,
                "FaultPlan: 'duration' must be a positive integer");
      r.duration = static_cast<int>(jr.at("duration").number);
    }
    if (jr.has("message")) {
      check_arg(jr.at("message").is_string(),
                "FaultPlan: 'message' must be a string");
      r.message = jr.at("message").string;
    }
    check_arg(r.kind != FaultKind::kDelay || r.delay_ms > 0.0,
              "FaultPlan: a delay rule needs delay_ms > 0");
    check_arg(r.kind != FaultKind::kSlow || r.delay_ms > 0.0,
              "FaultPlan: a slow rule needs delay_ms > 0");
    plan.rules.push_back(std::move(r));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// FaultLottery
// ---------------------------------------------------------------------------

struct FaultLottery::RuleState {
  std::atomic<std::uint64_t> hits{0};   ///< evaluations of this rule
  std::atomic<std::uint64_t> fires{0};  ///< decisions that fired
  /// kSlow memo: first evaluation index whose draw fired (-1 = not yet
  /// found). The onset is a pure function of (seed, rule index) — racing
  /// threads recompute the identical value, so a plain store is fine.
  std::atomic<std::int64_t> slow_onset{-1};
  /// kSlow scan hint: evaluations below this index are known not to fire.
  /// Only ever advanced past indices whose (pure) draw came up empty, so a
  /// stale value merely causes a redundant re-scan.
  std::atomic<std::uint64_t> slow_scanned{0};
};

FaultLottery::FaultLottery() = default;
FaultLottery::~FaultLottery() = default;
FaultLottery::FaultLottery(FaultLottery&&) noexcept = default;
FaultLottery& FaultLottery::operator=(FaultLottery&&) noexcept = default;

FaultLottery::FaultLottery(FaultPlan plan) : plan_(std::move(plan)) {
  states_.reserve(plan_.rules.size());
  for (std::size_t i = 0; i < plan_.rules.size(); ++i)
    states_.push_back(std::make_unique<RuleState>());
}

FaultAction FaultLottery::check(std::string_view site) {
  FaultAction action;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    const FaultRule& rule = plan_.rules[i];
    if (!site_matches(rule.site, site)) continue;
    RuleState& st = *states_[i];
    const std::uint64_t n = st.hits.fetch_add(1, std::memory_order_relaxed);
    if (n < static_cast<std::uint64_t>(rule.after)) continue;
    if (rule.kind == FaultKind::kSlow) {
      // Sustained straggler: the site is slow for evaluations in
      // [onset, onset + duration), where onset is the first eligible
      // evaluation whose hash draw fires. Everything is derived from pure
      // draws, so the verdict for evaluation n is interleaving-independent.
      std::int64_t onset = st.slow_onset.load(std::memory_order_relaxed);
      if (onset < 0) {
        std::uint64_t s = std::max<std::uint64_t>(
            static_cast<std::uint64_t>(rule.after),
            st.slow_scanned.load(std::memory_order_relaxed));
        for (; s <= n; ++s) {
          if (rule.probability >= 1.0) {
            onset = static_cast<std::int64_t>(s);
            break;
          }
          const std::uint64_t h = mix64(plan_.seed ^ mix64(i + 1) ^ mix64(s));
          const double u =
              static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
          if (u < rule.probability) {
            onset = static_cast<std::int64_t>(s);
            break;
          }
        }
        if (onset >= 0)
          st.slow_onset.store(onset, std::memory_order_relaxed);
        else
          st.slow_scanned.store(n + 1, std::memory_order_relaxed);
      }
      if (onset < 0 || n < static_cast<std::uint64_t>(onset) ||
          n - static_cast<std::uint64_t>(onset) >=
              static_cast<std::uint64_t>(rule.duration))
        continue;
      const std::uint64_t f =
          st.fires.fetch_add(1, std::memory_order_relaxed);
      if (f >= static_cast<std::uint64_t>(rule.max_fires)) {
        st.fires.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      action.kind = rule.kind;
      action.delay_s = rule.delay_ms / 1e3;
      action.rule = &rule;
      return action;
    }
    if (rule.probability < 1.0) {
      // Counter-based hash, not a sequential RNG: the n-th evaluation's
      // verdict is fixed by (seed, rule, n) no matter how threads
      // interleave, so a seed sweep is reproducible.
      const std::uint64_t h = mix64(plan_.seed ^ mix64(i + 1) ^ mix64(n));
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      if (u >= rule.probability) continue;
    }
    // Budget check last, so a skipped probability draw never burns a fire.
    const std::uint64_t f = st.fires.fetch_add(1, std::memory_order_relaxed);
    if (f >= static_cast<std::uint64_t>(rule.max_fires)) {
      st.fires.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    action.kind = rule.kind;
    action.delay_s = rule.delay_ms / 1e3;
    action.rule = &rule;
    return action;
  }
  return action;
}

std::uint64_t FaultLottery::total_fires() const {
  std::uint64_t total = 0;
  for (const auto& st : states_)
    total += st->fires.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t FaultLottery::rule_fires(std::size_t index) const {
  check_arg(index < states_.size(), "FaultLottery: rule index out of range");
  return states_[index]->fires.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lk(mu_);
  lottery_ = std::make_shared<FaultLottery>(plan);
  fires_.store(0, std::memory_order_relaxed);
  log_.clear();
  log_next_ = 0;
  armed_.store(!plan.empty(), std::memory_order_release);
}

void FaultInjector::disarm() {
  armed_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lk(mu_);
  lottery_.reset();
}

FaultAction FaultInjector::check(const char* site) {
  FaultInjector& in = instance();
  std::shared_ptr<FaultLottery> lottery;
  {
    std::lock_guard<std::mutex> lk(in.mu_);
    lottery = in.lottery_;
  }
  if (!lottery) return {};
  FaultAction action = lottery->check(site);
  if (action.kind != FaultKind::kNone) in.record(site, action.kind);
  return action;
}

void FaultInjector::record(const char* site, FaultKind kind) {
  const std::uint64_t seq = fires_.fetch_add(1, std::memory_order_relaxed);
  TRACE_INSTANT("fault", "fire");
  std::lock_guard<std::mutex> lk(mu_);
  FaultFire fire;
  fire.site = site;
  fire.kind = kind;
  fire.seq = seq;
  if (log_.size() < kLogCap) {
    log_.push_back(std::move(fire));
  } else {
    log_[log_next_] = std::move(fire);
    log_next_ = (log_next_ + 1) % kLogCap;
  }
}

std::uint64_t FaultInjector::fires() const {
  return fires_.load(std::memory_order_relaxed);
}

std::vector<FaultFire> FaultInjector::fire_log() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<FaultFire> out;
  out.reserve(log_.size());
  // Ring order: log_next_ is the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < log_.size(); ++i)
    out.push_back(log_[(log_next_ + i) % log_.size()]);
  return out;
}

void fault_point_act(const char* site) {
  const FaultAction action = FaultInjector::check(site);
  switch (action.kind) {
    case FaultKind::kNone:
    case FaultKind::kDrop:  // drop sites use FAULT_DROP
      return;
    case FaultKind::kDelay:
    case FaultKind::kSlow:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(action.delay_s));
      return;
    case FaultKind::kThrow:
      throw InjectedFault(site, action.rule ? action.rule->message : "");
    case FaultKind::kAllocFail:
      throw std::bad_alloc();
  }
}

bool fault_drop_check(const char* site) {
  const FaultAction action = FaultInjector::check(site);
  switch (action.kind) {
    case FaultKind::kNone:
      return false;
    case FaultKind::kDrop:
      return true;
    case FaultKind::kDelay:
    case FaultKind::kSlow:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(action.delay_s));
      return false;
    case FaultKind::kThrow:
      throw InjectedFault(site, action.rule ? action.rule->message : "");
    case FaultKind::kAllocFail:
      throw std::bad_alloc();
  }
  return false;
}

}  // namespace llmpq
