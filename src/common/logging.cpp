#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace llmpq {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.3f %s] %s\n", t, level_tag(level), msg.c_str());
}
}  // namespace detail

}  // namespace llmpq
