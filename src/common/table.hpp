#pragma once

#include <string>
#include <vector>

namespace llmpq {

/// Monospace table printer used by the benchmark harnesses to emit
/// paper-style result tables (and CSV for downstream plotting).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_ratio(double v, int precision = 2);  // "1.82x"

  /// Pretty monospace rendering with column alignment.
  std::string to_string() const;

  /// Comma-separated rendering (quotes cells containing commas).
  std::string to_csv() const;

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace llmpq
