#include "common/matrix.hpp"

#include <cmath>

#include "common/error.hpp"

namespace llmpq {

Matrix Matrix::multiply(const Matrix& a, const Matrix& b) {
  check_arg(a.cols() == b.rows(), "Matrix::multiply: dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

namespace {
// In-place Cholesky; returns false if the matrix is not (numerically) SPD.
bool cholesky(Matrix& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  return true;
}
}  // namespace

std::vector<double> Matrix::solve_spd(Matrix a, std::vector<double> b) {
  check_arg(a.rows() == a.cols() && a.rows() == b.size(),
            "solve_spd: dimension mismatch");
  const std::size_t n = a.rows();
  // Retry with an escalating ridge if the factorization fails; OLS callers
  // hit this when features are collinear and the ridge is the right answer.
  Matrix saved = a;
  double ridge = 0.0;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (attempt > 0) {
      a = saved;
      ridge = (ridge == 0.0) ? 1e-10 : ridge * 100.0;
      double trace = 0.0;
      for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
      const double bump = ridge * (trace / static_cast<double>(n) + 1.0);
      for (std::size_t i = 0; i < n; ++i) a(i, i) += bump;
    }
    if (cholesky(a)) {
      // Forward substitution: L y = b.
      std::vector<double> x = b;
      for (std::size_t i = 0; i < n; ++i) {
        double s = x[i];
        for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * x[k];
        x[i] = s / a(i, i);
      }
      // Back substitution: L^T x = y.
      for (std::size_t ii = n; ii-- > 0;) {
        double s = x[ii];
        for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * x[k];
        x[ii] = s / a(ii, ii);
      }
      return x;
    }
  }
  throw Error("solve_spd: matrix not positive definite even after ridging");
}

}  // namespace llmpq
