#include "common/rng.hpp"

#include <cmath>

namespace llmpq {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  // Seed the xoshiro state with splitmix64, as its authors recommend.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa from the high bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for span << 2^64 (all our uses).
  return lo + static_cast<std::int64_t>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

}  // namespace llmpq
