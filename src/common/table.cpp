#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace llmpq {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  check_arg(!header_.empty(), "Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  check_arg(cells.size() == header_.size(), "Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::fmt_ratio(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << '\n';
  };
  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      if (row[c].find(',') != std::string::npos)
        os << '"' << row[c] << '"';
      else
        os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace llmpq
