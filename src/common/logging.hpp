#pragma once

#include <sstream>
#include <string>

namespace llmpq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped. Thread-safe.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace llmpq

#define LLMPQ_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::llmpq::log_level())) { \
  } else                                                  \
    ::llmpq::detail::LogLine(level)

#define LOG_DEBUG LLMPQ_LOG(::llmpq::LogLevel::kDebug)
#define LOG_INFO LLMPQ_LOG(::llmpq::LogLevel::kInfo)
#define LOG_WARN LLMPQ_LOG(::llmpq::LogLevel::kWarn)
#define LOG_ERROR LLMPQ_LOG(::llmpq::LogLevel::kError)
