#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

namespace llmpq {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("LLMPQ_THREADS")) {
      const long n = std::strtol(env, nullptr, 10);
      if (n >= 1) return static_cast<std::size_t>(n);
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }());
  return pool;
}

namespace {
thread_local bool t_inside_worker = false;
}  // namespace

bool ThreadPool::inside_worker() { return t_inside_worker; }

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  while (auto task = tasks_.pop()) (*task)();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  std::atomic<std::size_t> next{0};
  // Short-circuits surviving workers once any body throws: without it a
  // failed parallel_for still ran every remaining chunk to completion
  // before rethrowing, turning one bad element into a full sweep of
  // doomed (possibly equally-throwing or corrupt-state) work. Relaxed
  // ordering suffices — the flag is a go/no-go hint; the error itself is
  // published under the mutex and by the fork/join of parallel_for.
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&] {
    const std::size_t per = (n + chunks - 1) / chunks;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      const std::size_t c = next.fetch_add(1);
      if (c >= chunks) break;
      const std::size_t lo = c * per;
      const std::size_t hi = std::min(n, lo + per);
      for (std::size_t i = lo; i < hi; ++i) {
        if (failed.load(std::memory_order_relaxed)) break;
        try {
          fn(i);
        } catch (...) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::future<void>> futs;
  futs.reserve(workers_.size());
  for (std::size_t t = 0; t + 1 < workers_.size(); ++t)
    futs.push_back(submit(body));
  body();  // caller thread participates
  for (auto& f : futs) f.get();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace llmpq
