#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/matrix.hpp"

namespace llmpq {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) rs.add(x);
  return rs.variance();
}

double percentile(std::vector<double> xs, double p) {
  check_arg(!xs.empty(), "percentile: empty sample");
  check_arg(p >= 0.0 && p <= 100.0, "percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

OlsFit ols_fit(const std::vector<std::vector<double>>& features,
               const std::vector<double>& targets) {
  check_arg(!features.empty(), "ols_fit: no rows");
  check_arg(features.size() == targets.size(),
            "ols_fit: rows/targets mismatch");
  const std::size_t n = features.size();
  const std::size_t k = features.front().size();
  check_arg(k > 0, "ols_fit: no features");
  for (const auto& row : features)
    check_arg(row.size() == k, "ols_fit: ragged feature rows");

  // Normal equations: (X^T X) beta = X^T y.
  Matrix xtx(k, k, 0.0);
  std::vector<double> xty(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = features[i];
    for (std::size_t a = 0; a < k; ++a) {
      xty[a] += row[a] * targets[i];
      for (std::size_t b = a; b < k; ++b) xtx(a, b) += row[a] * row[b];
    }
  }
  for (std::size_t a = 0; a < k; ++a)
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);

  OlsFit fit;
  fit.beta = Matrix::solve_spd(std::move(xtx), std::move(xty));

  double ss_res = 0.0, ss_tot = 0.0, rel_sum = 0.0;
  std::size_t rel_n = 0;
  const double ybar = mean(targets);
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = ols_predict(fit.beta, features[i]);
    const double resid = targets[i] - pred;
    ss_res += resid * resid;
    ss_tot += (targets[i] - ybar) * (targets[i] - ybar);
    fit.max_abs_residual = std::max(fit.max_abs_residual, std::fabs(resid));
    if (std::fabs(targets[i]) > 1e-12) {
      rel_sum += std::fabs(resid) / std::fabs(targets[i]);
      ++rel_n;
    }
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  fit.mean_abs_rel_error = rel_n > 0 ? rel_sum / static_cast<double>(rel_n) : 0.0;
  return fit;
}

double ols_predict(const std::vector<double>& beta,
                   const std::vector<double>& features) {
  check_arg(beta.size() == features.size(), "ols_predict: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < beta.size(); ++i) s += beta[i] * features[i];
  return s;
}

}  // namespace llmpq
