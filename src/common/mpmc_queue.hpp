#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace llmpq {

/// Bounded multi-producer/multi-consumer blocking queue. This is the
/// message-passing primitive between pipeline stages in the runtime: each
/// stage owns an inbox and data moves between worker threads only through
/// these queues (no shared mutable tensors), mirroring the MPI-style model
/// the runtime is built on.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(std::size_t capacity = SIZE_MAX) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks while the queue is full. Returns false if the queue was closed
  /// before the item could be enqueued.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks up to `timeout` for an item. Returns nullopt on timeout *or*
  /// when the queue is closed and drained — callers that need to tell the
  /// two apart check closed() (a closed queue stays closed). This is the
  /// primitive behind the engine's per-run deadline: the master polls the
  /// outbox in bounded waits so a dropped or straggling message cannot
  /// block generate() forever.
  std::optional<T> pop_for(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // timeout, or closed+drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// After close(), pushes fail and pops drain the remaining items then
  /// return nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// Largest queue depth ever observed (backpressure indicator: a stage
  /// whose inbox rides its high-water mark is the pipeline bottleneck).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace llmpq
