#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace llmpq {

/// Deterministic fault injection for chaos testing the serving stack.
///
/// The design mirrors `common/trace`: one process-wide singleton
/// (`FaultInjector`), armed explicitly, whose *disarmed* fast path is a
/// single relaxed atomic load — every `FAULT_POINT` compiled into the hot
/// runtime paths costs ~1 ns until a test or a `--faults plan.json` flag
/// arms a plan. The decision core (`FaultLottery`) is a plain object so the
/// discrete-event simulators can run the *same* `FaultPlan` through a local
/// instance and reproduce a chaos scenario on their virtual clocks without
/// touching global state.
///
/// Determinism: whether the n-th evaluation of a rule fires is a pure
/// function of (plan seed, rule index, n) via a splitmix64 hash — not a
/// sequential RNG — so the set of firing indices is independent of thread
/// interleaving. Concurrent threads still race for *which* invocation index
/// they draw, but the number and pattern of fires per site is reproducible
/// from the seed, which is what the conservation tests sweep.
///
/// Named sites currently compiled in:
///   stage.work      pipeline stage worker, per micro-batch (throw => the
///                   poisoned-message protocol; delay => straggler)
///   stage.qgemm     quantized GEMM entry (throw/delay inside a stage pass)
///   engine.embed    master-side embedding, per micro-batch push
///   engine.kv_alloc KV-cache (re)allocation (alloc_fail => bad_alloc, the
///                   memory-pressure signal the degradation ladder watches)
///   engine.mailbox  inter-stage forward (drop => message vanishes; the
///                   master's deadline converts it into a restartable fault)
///   serve.dispatch  online serving loop, per scheduler decision
///   serve.stage.<p> online serving loop, once per dispatch per pipeline
///                   stage, in BOTH back-ends: the runtime sleeps and
///                   attributes the delay to stage p; the online simulator
///                   charges it per layer of stage p so migrating layers
///                   away measurably relieves the straggler (mirroring the
///                   per-layer engine site below). The control loop's
///                   parity trace is keyed on these evaluations.
///   stage.<p>.layer pipeline stage worker, per micro-batch per layer of
///                   stage p — a slow rule here models a degraded device
///                   whose drag shrinks when layers migrate off it
///   sim.stage       pipeline_sim stage pass (virtual-clock straggler/fail)
///   sim.dispatch    online_sim dispatch (virtual-clock fail/straggler)

enum class FaultKind : char {
  kNone,       ///< no action (the default)
  kThrow,      ///< throw InjectedFault at the site
  kDelay,      ///< sleep `delay_ms` (straggler); sims add virtual time
  kAllocFail,  ///< throw std::bad_alloc (simulated allocation failure)
  kDrop,       ///< site-specific: drop the message/work item
  kSlow,       ///< sustained straggler: once the probability draw first
               ///< fires, the site stays slow (`delay_ms` per evaluation)
               ///< for `duration` consecutive evaluations
};

const char* fault_kind_name(FaultKind kind);

/// One injection rule. `site` matches a fault point by exact name, or by
/// prefix when it ends in '*' ("stage.*"). Rules are evaluated in plan
/// order; the first rule that fires decides the action for that check.
struct FaultRule {
  std::string site;
  FaultKind kind = FaultKind::kThrow;
  double probability = 1.0;  ///< chance an eligible evaluation fires
  int after = 0;             ///< skip the first `after` evaluations
  int max_fires = std::numeric_limits<int>::max();
  double delay_ms = 0.0;     ///< kDelay / kSlow payload
  /// kSlow only: how many consecutive evaluations stay slow once the onset
  /// draw fires (default: forever, i.e. a device that degrades and stays
  /// degraded until disarmed). The onset index is itself deterministic —
  /// the first eligible evaluation whose hash draw fires — so a slow window
  /// is a pure function of (seed, rule index) across thread interleavings.
  int duration = std::numeric_limits<int>::max();
  std::string message;       ///< optional InjectedFault text
};

/// A seeded set of rules — the unit tests and CLIs pass around. JSON shape:
///   {"seed": 7, "rules": [{"site": "stage.work", "kind": "throw",
///     "probability": 0.25, "after": 1, "max_fires": 3, "delay_ms": 0,
///     "duration": 4, "message": "boom"}]}
/// (`duration` only applies to "slow" rules; omitted means slow forever.)
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  std::string to_json() const;
  /// Strict parse; throws InvalidArgumentError naming the bad field.
  static FaultPlan from_json(std::string_view text);
};

/// What a fault point should do, as decided by the lottery.
struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  double delay_s = 0.0;
  const FaultRule* rule = nullptr;  ///< firing rule (owned by the lottery)
};

/// Thrown by a firing kThrow rule. Derives from Error so existing
/// exception-safety paths (poisoned messages, serving retry) treat it like
/// any recoverable fault.
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& site, const std::string& message)
      : Error("injected fault at " + site +
              (message.empty() ? "" : ": " + message)),
        site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// The deterministic decision core: owns a plan plus per-rule atomic
/// counters. check() is thread-safe and lock-free. Local instances give the
/// simulators their own reproducible chaos stream; the global
/// FaultInjector wraps one for the real runtime.
class FaultLottery {
 public:
  FaultLottery();
  explicit FaultLottery(FaultPlan plan);
  ~FaultLottery();  // out of line: RuleState is incomplete here
  FaultLottery(FaultLottery&&) noexcept;
  FaultLottery& operator=(FaultLottery&&) noexcept;

  bool empty() const { return states_.empty(); }
  const FaultPlan& plan() const { return plan_; }

  /// Evaluates `site` against every matching rule in order; returns the
  /// first firing rule's action (kNone if nothing fires).
  FaultAction check(std::string_view site);

  /// Total fires across all rules since construction.
  std::uint64_t total_fires() const;
  /// Fires charged to rule `index` (plan order).
  std::uint64_t rule_fires(std::size_t index) const;

 private:
  struct RuleState;
  FaultPlan plan_;
  std::vector<std::unique_ptr<RuleState>> states_;
};

/// Record of one fire, kept (bounded) for tests and the chaos report.
struct FaultFire {
  std::string site;
  FaultKind kind = FaultKind::kNone;
  std::uint64_t seq = 0;  ///< global fire index
};

/// Process-wide injector driving the FAULT_* macros. arm() swaps in a fresh
/// lottery (counters reset); disarm() returns every fault point to the
/// one-relaxed-load fast path.
class FaultInjector {
 public:
  static FaultInjector& instance();

  void arm(const FaultPlan& plan);
  void disarm();

  static bool armed() {
    return instance().armed_.load(std::memory_order_relaxed);
  }

  /// Armed-path decision for `site` (kNone when disarmed or no rule fires).
  /// `site` must be a string literal (fire records keep the text).
  static FaultAction check(const char* site);

  std::uint64_t fires() const;
  /// The most recent fires, oldest first (bounded ring; for tests/demos).
  std::vector<FaultFire> fire_log() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::shared_ptr<FaultLottery> lottery_;
  std::atomic<std::uint64_t> fires_{0};
  std::vector<FaultFire> log_;  ///< ring, capped at kLogCap
  std::size_t log_next_ = 0;

  static constexpr std::size_t kLogCap = 1024;
  void record(const char* site, FaultKind kind);
};

/// Armed-path helper behind FAULT_POINT: evaluates the site and *acts* —
/// sleeps on kDelay, throws InjectedFault on kThrow, throws std::bad_alloc
/// on kAllocFail. kDrop is ignored here (use FAULT_DROP for sites that can
/// drop work).
void fault_point_act(const char* site);

/// Armed-path helper behind FAULT_DROP: true when a kDrop rule fired
/// (delays are honored first, throw rules also act).
bool fault_drop_check(const char* site);

/// One relaxed load when disarmed; may sleep/throw when armed.
#define FAULT_POINT(site)                   \
  do {                                      \
    if (::llmpq::FaultInjector::armed())    \
      ::llmpq::fault_point_act(site);       \
  } while (0)

/// Evaluates to true when an armed kDrop rule says to drop at `site`.
#define FAULT_DROP(site) \
  (::llmpq::FaultInjector::armed() && ::llmpq::fault_drop_check(site))

}  // namespace llmpq
