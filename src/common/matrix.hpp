#pragma once

#include <cstddef>
#include <vector>

namespace llmpq {

/// Dense row-major matrix of doubles. Small and deliberately boring: the
/// numerical workhorses (simplex tableau, OLS normal equations) need
/// contiguous storage and bounds-checked debug access, nothing fancier.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  double* row(std::size_t r) { return data_.data() + r * cols_; }
  const double* row(std::size_t r) const { return data_.data() + r * cols_; }

  /// C = A * B. Dimensions must agree.
  static Matrix multiply(const Matrix& a, const Matrix& b);

  /// A^T.
  Matrix transposed() const;

  /// Solves A x = b for symmetric positive definite A via Cholesky, with a
  /// small diagonal ridge added on failure (used by OLS on nearly collinear
  /// designs). Returns x.
  static std::vector<double> solve_spd(Matrix a, std::vector<double> b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace llmpq
