#include "common/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "common/stats.hpp"
#include "common/table.hpp"

namespace llmpq {

namespace {

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

double StageStats::utilization() const {
  const double total = busy_s + idle_s;
  return total > 0.0 ? busy_s / total : 0.0;
}

double PhaseStats::tokens_per_s() const {
  return seconds > 0.0 ? static_cast<double>(tokens) / seconds : 0.0;
}

StageStats StageMetrics::snapshot() const {
  StageStats s;
  s.busy_s = ns_to_s(busy_ns_.load(std::memory_order_relaxed));
  s.idle_s = ns_to_s(idle_ns_.load(std::memory_order_relaxed));
  s.qgemm_s = ns_to_s(qgemm_ns_.load(std::memory_order_relaxed));
  s.attn_s = ns_to_s(attn_ns_.load(std::memory_order_relaxed));
  s.microbatches = microbatches_.load(std::memory_order_relaxed);
  return s;
}

PhaseStats PhaseMetrics::snapshot() const {
  PhaseStats s;
  s.tokens = tokens_.load(std::memory_order_relaxed);
  s.seconds = ns_to_s(ns_.load(std::memory_order_relaxed));
  return s;
}

std::string format_engine_stats(const EngineStats& stats) {
  std::ostringstream out;
  Table t({"stage", "busy_ms", "idle_ms", "util", "qgemm_ms", "attn_ms",
           "ubatches", "inbox_hw"});
  for (std::size_t p = 0; p < stats.stages.size(); ++p) {
    const StageStats& s = stats.stages[p];
    t.add_row({std::to_string(p), Table::fmt(s.busy_s * 1e3),
               Table::fmt(s.idle_s * 1e3), Table::fmt(s.utilization()),
               Table::fmt(s.qgemm_s * 1e3), Table::fmt(s.attn_s * 1e3),
               std::to_string(s.microbatches),
               std::to_string(s.inbox_high_water)});
  }
  out << t.to_string();
  out << "prefill: " << stats.prefill.tokens << " tokens in "
      << Table::fmt(stats.prefill.seconds * 1e3) << " ms ("
      << Table::fmt(stats.prefill.tokens_per_s()) << " tok/s)\n";
  out << "decode:  " << stats.decode.tokens << " tokens in "
      << Table::fmt(stats.decode.seconds * 1e3) << " ms ("
      << Table::fmt(stats.decode.tokens_per_s()) << " tok/s)\n";
  out << "generate() calls: " << stats.generate_calls << "\n";
  return out.str();
}

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary s;
  s.count = seconds.size();
  if (seconds.empty()) return s;
  s.mean_s = mean(seconds);
  s.max_s = *std::max_element(seconds.begin(), seconds.end());
  s.p50_s = percentile(seconds, 50);
  s.p95_s = percentile(std::move(seconds), 95);
  return s;
}

std::string format_latency_summary(const LatencySummary& summary) {
  std::ostringstream out;
  out << "n=" << summary.count << " mean=" << Table::fmt(summary.mean_s)
      << "s p50=" << Table::fmt(summary.p50_s) << "s p95="
      << Table::fmt(summary.p95_s) << "s max=" << Table::fmt(summary.max_s)
      << "s";
  return out.str();
}

}  // namespace llmpq
