#include "common/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/json_writer.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace llmpq {

namespace {

double ns_to_s(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

}  // namespace

double StageStats::utilization() const {
  const double total = busy_s + idle_s;
  return total > 0.0 ? busy_s / total : 0.0;
}

double PhaseStats::tokens_per_s() const {
  return seconds > 0.0 ? static_cast<double>(tokens) / seconds : 0.0;
}

StageStats StageMetrics::snapshot() const {
  StageStats s;
  s.busy_s = ns_to_s(busy_ns_.load(std::memory_order_relaxed));
  s.idle_s = ns_to_s(idle_ns_.load(std::memory_order_relaxed));
  s.qgemm_s = ns_to_s(qgemm_ns_.load(std::memory_order_relaxed));
  s.attn_s = ns_to_s(attn_ns_.load(std::memory_order_relaxed));
  s.microbatches = microbatches_.load(std::memory_order_relaxed);
  return s;
}

PhaseStats PhaseMetrics::snapshot() const {
  PhaseStats s;
  s.tokens = tokens_.load(std::memory_order_relaxed);
  s.seconds = ns_to_s(ns_.load(std::memory_order_relaxed));
  return s;
}

std::string format_engine_stats(const EngineStats& stats) {
  std::ostringstream out;
  Table t({"stage", "busy_ms", "idle_ms", "util", "qgemm_ms", "attn_ms",
           "ubatches", "inbox_hw"});
  for (std::size_t p = 0; p < stats.stages.size(); ++p) {
    const StageStats& s = stats.stages[p];
    t.add_row({std::to_string(p), Table::fmt(s.busy_s * 1e3),
               Table::fmt(s.idle_s * 1e3), Table::fmt(s.utilization()),
               Table::fmt(s.qgemm_s * 1e3), Table::fmt(s.attn_s * 1e3),
               std::to_string(s.microbatches),
               std::to_string(s.inbox_high_water)});
  }
  out << t.to_string();
  out << "prefill: " << stats.prefill.tokens << " tokens in "
      << Table::fmt(stats.prefill.seconds * 1e3) << " ms ("
      << Table::fmt(stats.prefill.tokens_per_s()) << " tok/s)\n";
  out << "decode:  " << stats.decode.tokens << " tokens in "
      << Table::fmt(stats.decode.seconds * 1e3) << " ms ("
      << Table::fmt(stats.decode.tokens_per_s()) << " tok/s)\n";
  out << "generate() calls: " << stats.generate_calls << "\n";
  return out.str();
}

LatencySummary summarize_latency(std::vector<double> seconds) {
  LatencySummary s;
  s.count = seconds.size();
  if (seconds.empty()) return s;
  s.mean_s = mean(seconds);
  s.max_s = *std::max_element(seconds.begin(), seconds.end());
  s.p50_s = percentile(seconds, 50);
  s.p95_s = percentile(seconds, 95);
  s.p99_s = percentile(std::move(seconds), 99);
  return s;
}

std::string format_latency_summary(const LatencySummary& summary) {
  std::ostringstream out;
  out << "n=" << summary.count << " mean=" << Table::fmt(summary.mean_s)
      << "s p50=" << Table::fmt(summary.p50_s) << "s p95="
      << Table::fmt(summary.p95_s) << "s p99=" << Table::fmt(summary.p99_s)
      << "s max=" << Table::fmt(summary.max_s) << "s";
  return out.str();
}

void write_json(JsonWriter& w, const StageStats& s) {
  w.begin_object();
  w.kv("busy_s", s.busy_s);
  w.kv("idle_s", s.idle_s);
  w.kv("qgemm_s", s.qgemm_s);
  w.kv("attn_s", s.attn_s);
  w.kv("utilization", s.utilization());
  w.kv("microbatches", s.microbatches);
  w.kv("inbox_high_water", s.inbox_high_water);
  w.end_object();
}

void write_json(JsonWriter& w, const PhaseStats& s) {
  w.begin_object();
  w.kv("tokens", s.tokens);
  w.kv("seconds", s.seconds);
  w.kv("tokens_per_s", s.tokens_per_s());
  w.end_object();
}

void write_json(JsonWriter& w, const EngineStats& s) {
  w.begin_object();
  w.kv("generate_calls", s.generate_calls);
  w.key("prefill");
  write_json(w, s.prefill);
  w.key("decode");
  write_json(w, s.decode);
  w.key("stages");
  w.begin_array();
  for (const StageStats& st : s.stages) write_json(w, st);
  w.end_array();
  w.end_object();
}

void write_json(JsonWriter& w, const LatencySummary& s) {
  w.begin_object();
  w.kv("count", s.count);
  w.kv("mean_s", s.mean_s);
  w.kv("p50_s", s.p50_s);
  w.kv("p95_s", s.p95_s);
  w.kv("p99_s", s.p99_s);
  w.kv("max_s", s.max_s);
  w.end_object();
}

void MetricsRegistry::set_value(const std::string& name, double value) {
  values_[name] = value;
}

void MetricsRegistry::set_latency(const std::string& name,
                                  const LatencySummary& summary) {
  latencies_[name] = summary;
}

void MetricsRegistry::set_engine(const std::string& name,
                                 const EngineStats& stats) {
  engines_[name] = stats;
}

void MetricsRegistry::write_json(JsonWriter& w) const {
  w.begin_object();
  w.kv("schema", "llmpq-metrics/v1");
  w.key("values");
  w.begin_object();
  for (const auto& [name, v] : values_) w.kv(name, v);
  w.end_object();
  w.key("latencies");
  w.begin_object();
  for (const auto& [name, s] : latencies_) {
    w.key(name);
    llmpq::write_json(w, s);
  }
  w.end_object();
  w.key("engines");
  w.begin_object();
  for (const auto& [name, s] : engines_) {
    w.key(name);
    llmpq::write_json(w, s);
  }
  w.end_object();
  w.end_object();
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    LOG_WARN << "metrics: cannot open " << path << " for writing";
    return false;
  }
  JsonWriter w(os, /*indent=*/1);
  write_json(w);
  os << '\n';
  os.flush();
  if (!os) {
    LOG_WARN << "metrics: short write to " << path;
    return false;
  }
  return true;
}

}  // namespace llmpq
