#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace llmpq {

/// Minimal streaming JSON writer for the export paths (Chrome traces,
/// metrics registries, bench artifacts). No DOM is built: values stream to
/// the ostream as they are written, so a multi-megabyte trace costs no
/// intermediate allocation beyond the ostream's own buffer. The writer
/// tracks the container stack and comma placement; misuse (a value where a
/// key is required, unbalanced end_*) throws Error so schema bugs fail
/// loudly in tests instead of emitting silently broken JSON.
///
/// Non-finite doubles have no JSON spelling; they are emitted as `null`,
/// which keeps exported documents parseable everywhere (Python, browsers,
/// jq) at the cost of losing the inf/nan distinction — acceptable for
/// metrics, where a non-finite value is already a "no data" signal.
class JsonWriter {
 public:
  /// `indent` = 0 writes compact one-line JSON; > 0 pretty-prints with that
  /// many spaces per nesting level.
  explicit JsonWriter(std::ostream& os, int indent = 0);
  ~JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Writes an object key; the next call must write its value (or open a
  /// container).
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  /// True once the single top-level value is complete and balanced.
  bool done() const { return stack_.empty() && wrote_top_; }

 private:
  enum class Frame : char { kObject, kArray };

  void before_value(bool is_key);
  void newline_indent();
  void write_escaped(std::string_view s);

  std::ostream& os_;
  int indent_ = 0;
  std::vector<Frame> stack_;
  std::vector<bool> frame_has_item_;
  bool expect_value_ = false;  ///< a key was written, its value is pending
  bool wrote_top_ = false;
};

/// Parsed JSON document node — the reader half used by tests (trace and
/// bench-schema round trips) and by any tool that needs to consume the
/// exported artifacts in-process. Objects preserve key lookup via std::map;
/// numbers are doubles (enough for every schema we emit).
class JsonValue {
 public:
  enum class Kind : char { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Object member access; throws Error when absent or not an object.
  const JsonValue& at(const std::string& k) const;
  /// True when this is an object containing key `k`.
  bool has(const std::string& k) const;
};

/// Strict recursive-descent parse of a complete JSON document (UTF-8 text,
/// \uXXXX escapes decoded for the BMP). Throws Error with a byte offset on
/// malformed input or trailing garbage.
JsonValue parse_json(std::string_view text);

}  // namespace llmpq
