#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/mpmc_queue.hpp"

namespace llmpq {

/// Fixed-size thread pool used for embarrassingly parallel sweeps (profiling
/// grids, per-ordering planner solves) and the threaded qgemm kernel. Tasks
/// are type-erased closures; use submit() to get a future, or parallel_for
/// for an indexed loop with static chunking (OpenMP-style "parallel for
/// schedule(static)").
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads =
                          std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Process-wide pool shared by every pipeline stage and planner sweep
  /// (lazily created; sized from LLMPQ_THREADS or hardware_concurrency).
  /// Sharing one pool keeps total CPU oversubscription bounded no matter
  /// how many stages call into threaded kernels concurrently.
  static ThreadPool& shared();

  /// Throws Error if the pool has been shut down — a dropped task whose
  /// future never becomes ready would deadlock the caller otherwise.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    if (!tasks_.push([task] { (*task)(); }))
      throw Error("ThreadPool::submit: pool has been shut down");
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// Exceptions from tasks propagate (the first one observed is rethrown).
  /// The calling thread participates, so this is safe to invoke from
  /// multiple threads concurrently (each call makes progress on its own).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Stops accepting tasks, drains the queue and joins the workers.
  /// Idempotent; called by the destructor. Subsequent submit() calls throw.
  void shutdown();

  /// True when the calling thread is a pool worker (of any ThreadPool).
  /// Nested parallel kernels use this to fall back to serial execution
  /// instead of blocking on futures their own pool may never run.
  static bool inside_worker();

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace llmpq
