#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mpmc_queue.hpp"

namespace llmpq {

/// Fixed-size thread pool used for embarrassingly parallel sweeps (profiling
/// grids, per-ordering planner solves). Tasks are type-erased closures; use
/// submit() to get a future, or parallel_for for an indexed loop with static
/// chunking (OpenMP-style "parallel for schedule(static)").
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads =
                          std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    tasks_.push([task] { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool; blocks until all complete.
  /// Exceptions from tasks propagate (the first one observed is rethrown).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  MpmcQueue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace llmpq
