#include "common/json_writer.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace llmpq {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

JsonWriter::~JsonWriter() = default;

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i)
    os_ << ' ';
}

void JsonWriter::before_value(bool is_key) {
  if (stack_.empty()) {
    check_arg(!wrote_top_, "JsonWriter: more than one top-level value");
    check_arg(!is_key, "JsonWriter: key outside an object");
    return;
  }
  if (expect_value_) {
    // A key was just written; only its value (or a container open) may
    // follow, and no comma is needed.
    check_arg(!is_key, "JsonWriter: key while a key's value is pending");
    expect_value_ = false;
    return;
  }
  check_arg(stack_.back() == Frame::kArray ? !is_key : is_key,
            stack_.back() == Frame::kArray
                ? "JsonWriter: key inside an array"
                : "JsonWriter: object members need a key first");
  if (frame_has_item_.back()) os_ << ',';
  frame_has_item_.back() = true;
  newline_indent();
}

void JsonWriter::begin_object() {
  before_value(false);
  stack_.push_back(Frame::kObject);
  frame_has_item_.push_back(false);
  os_ << '{';
}

void JsonWriter::end_object() {
  check_arg(!stack_.empty() && stack_.back() == Frame::kObject &&
                !expect_value_,
            "JsonWriter: unbalanced end_object");
  const bool had_items = frame_has_item_.back();
  stack_.pop_back();
  frame_has_item_.pop_back();
  if (had_items) newline_indent();
  os_ << '}';
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::begin_array() {
  before_value(false);
  stack_.push_back(Frame::kArray);
  frame_has_item_.push_back(false);
  os_ << '[';
}

void JsonWriter::end_array() {
  check_arg(!stack_.empty() && stack_.back() == Frame::kArray,
            "JsonWriter: unbalanced end_array");
  const bool had_items = frame_has_item_.back();
  stack_.pop_back();
  frame_has_item_.pop_back();
  if (had_items) newline_indent();
  os_ << ']';
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::write_escaped(std::string_view s) {
  os_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os_ << "\\\"";
        break;
      case '\\':
        os_ << "\\\\";
        break;
      case '\n':
        os_ << "\\n";
        break;
      case '\r':
        os_ << "\\r";
        break;
      case '\t':
        os_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os_ << buf;
        } else {
          os_ << c;
        }
    }
  }
  os_ << '"';
}

void JsonWriter::key(std::string_view k) {
  before_value(true);
  write_escaped(k);
  os_ << ':';
  if (indent_ > 0) os_ << ' ';
  expect_value_ = true;
}

void JsonWriter::value(std::string_view v) {
  before_value(false);
  write_escaped(v);
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::value(bool v) {
  before_value(false);
  os_ << (v ? "true" : "false");
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::value(double v) {
  before_value(false);
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no inf/nan spelling (see header)
  } else {
    // Shortest round-trippable decimal form.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    os_ << std::string_view(buf, static_cast<std::size_t>(res.ptr - buf));
  }
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::value(std::int64_t v) {
  before_value(false);
  os_ << v;
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::value(std::uint64_t v) {
  before_value(false);
  os_ << v;
  if (stack_.empty()) wrote_top_ = true;
}

void JsonWriter::null() {
  before_value(false);
  os_ << "null";
  if (stack_.empty()) wrote_top_ = true;
}

// ---------------------------------------------------------------------------
// Parser.

const JsonValue& JsonValue::at(const std::string& k) const {
  check_arg(kind == Kind::kObject, "JsonValue::at: not an object");
  const auto it = object.find(k);
  check_arg(it != object.end(), "JsonValue::at: missing key: " + k);
  return it->second;
}

bool JsonValue::has(const std::string& k) const {
  return kind == Kind::kObject && object.count(k) > 0;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("parse_json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.object.emplace(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    return parse_number();
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20)
          fail("unescaped control character in string");
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unhandled —
          // nothing we emit needs them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::string_view tok = text_.substr(start, pos_ - start);
    const auto res =
        std::from_chars(tok.data(), tok.data() + tok.size(), v.number);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace llmpq
