#include "common/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/json_writer.hpp"
#include "common/logging.hpp"

namespace llmpq {

/// Ring buffer owned (written) by exactly one thread. The mutex is only
/// ever contended by the exporter / name-setter; the owning thread's
/// append takes it uncontended (~20 ns), far below the microsecond-scale
/// spans being recorded.
struct TraceSession::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::size_t head = 0;      ///< next write index
  std::uint64_t total = 0;   ///< events ever appended
  std::uint32_t tid = 0;
  std::string name;
};

struct TraceSession::State {
  mutable std::mutex mu;
  bool started = false;
  std::chrono::steady_clock::time_point base;
  std::size_t capacity = 1 << 16;
  std::uint32_t next_tid = 0;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> track_names;
  std::map<std::uint32_t, std::string> process_names;
};

namespace {

/// Per-thread buffer cache, invalidated when the session generation bumps
/// (start() discards old buffers; the shared_ptr keeps a mid-append buffer
/// alive for any thread still holding it).
struct TlsCache {
  std::shared_ptr<TraceSession::ThreadBuffer> buf;
  std::uint64_t generation = ~std::uint64_t{0};
};

thread_local TlsCache g_tls;

}  // namespace

TraceSession& TraceSession::instance() {
  static TraceSession session;
  return session;
}

TraceSession::State* TraceSession::state() const {
  State* s = state_.load(std::memory_order_acquire);
  if (s != nullptr) return s;
  State* fresh = new State();
  if (state_.compare_exchange_strong(s, fresh, std::memory_order_acq_rel))
    return fresh;
  delete fresh;
  return s;
}

void TraceSession::start(std::size_t events_per_thread) {
  State* s = state();
  {
    std::lock_guard<std::mutex> lk(s->mu);
    s->started = true;
    s->base = std::chrono::steady_clock::now();
    s->capacity = std::max<std::size_t>(16, events_per_thread);
    s->next_tid = 0;
    s->buffers.clear();
    s->track_names.clear();
    s->process_names = {{trace_pids::kRuntime, "runtime"},
                        {trace_pids::kSim, "sim"},
                        {trace_pids::kServe, "serve"}};
  }
  generation_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceSession::stop() { enabled_.store(false, std::memory_order_release); }

double TraceSession::now_s() {
  TraceSession& inst = instance();
  State* s = inst.state();
  std::lock_guard<std::mutex> lk(s->mu);
  if (!s->started) return 0.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       s->base)
      .count();
}

namespace {

std::uint64_t session_ns(const std::chrono::steady_clock::time_point& base) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

std::uint64_t seconds_to_ns(double s) {
  if (!(s > 0.0)) return 0;  // clamp negatives / NaN to the timeline origin
  return static_cast<std::uint64_t>(s * 1e9);
}

}  // namespace

TraceSession::ThreadBuffer* TraceSession::thread_buffer() {
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (g_tls.buf && g_tls.generation == gen) return g_tls.buf.get();
  State* s = state();
  auto buf = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard<std::mutex> lk(s->mu);
    buf->ring.resize(s->capacity);
    buf->tid = s->next_tid++;
    s->buffers.push_back(buf);
  }
  g_tls.buf = std::move(buf);
  g_tls.generation = gen;
  return g_tls.buf.get();
}

void TraceSession::append(const TraceEvent& event) {
  ThreadBuffer* b = thread_buffer();
  std::lock_guard<std::mutex> lk(b->mu);
  b->ring[b->head] = event;
  b->head = (b->head + 1) % b->ring.size();
  ++b->total;
}

// ---- Wall-clock fast paths. Each returns on one relaxed load when off.

void TraceSession::counter(const char* category, const char* name,
                           double value) {
  if (!enabled()) return;
  TraceSession& inst = instance();
  State* s = inst.state();
  TraceEvent e;
  e.phase = 'C';
  e.category = category;
  e.name = name;
  e.arg_name = name;
  e.arg_value = value;
  e.pid = trace_pids::kRuntime;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    e.ts_ns = session_ns(s->base);
  }
  e.tid = inst.thread_buffer()->tid;
  inst.append(e);
}

void TraceSession::instant(const char* category, const char* name) {
  if (!enabled()) return;
  TraceSession& inst = instance();
  State* s = inst.state();
  TraceEvent e;
  e.phase = 'i';
  e.category = category;
  e.name = name;
  e.pid = trace_pids::kRuntime;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    e.ts_ns = session_ns(s->base);
  }
  e.tid = inst.thread_buffer()->tid;
  inst.append(e);
}

void TraceSession::async_begin(const char* category, const char* name,
                               std::uint64_t id, std::uint32_t pid) {
  if (!enabled()) return;
  emit_async('b', category, name, now_s(), id, pid);
}

void TraceSession::async_end(const char* category, const char* name,
                             std::uint64_t id, std::uint32_t pid) {
  if (!enabled()) return;
  emit_async('e', category, name, now_s(), id, pid);
}

void TraceSession::emit_complete(const char* category, const char* name,
                                 double ts_s, double dur_s, std::uint32_t pid,
                                 std::uint32_t tid, const char* arg_name,
                                 double arg_value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = 'X';
  e.category = category;
  e.name = name;
  e.ts_ns = seconds_to_ns(ts_s);
  e.dur_ns = seconds_to_ns(dur_s);
  e.pid = pid;
  e.tid = tid;
  e.arg_name = arg_name;
  e.arg_value = arg_value;
  instance().append(e);
}

void TraceSession::emit_async(char phase, const char* category,
                              const char* name, double ts_s, std::uint64_t id,
                              std::uint32_t pid) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = phase;
  e.category = category;
  e.name = name;
  e.ts_ns = seconds_to_ns(ts_s);
  e.id = id;
  e.pid = pid;
  instance().append(e);
}

void TraceSession::set_thread_name(const std::string& name) {
  if (!enabled() || name.empty()) return;
  ThreadBuffer* b = instance().thread_buffer();
  std::lock_guard<std::mutex> lk(b->mu);
  if (b->name.empty()) b->name = name;
}

void TraceSession::set_track_name(std::uint32_t pid, std::uint32_t tid,
                                  const std::string& name) {
  if (!enabled()) return;
  State* s = state();
  std::lock_guard<std::mutex> lk(s->mu);
  s->track_names[{pid, tid}] = name;
}

void TraceSession::set_process_name(std::uint32_t pid,
                                    const std::string& name) {
  State* s = state();
  std::lock_guard<std::mutex> lk(s->mu);
  s->process_names[pid] = name;
}

std::uint64_t TraceSession::dropped() const {
  State* s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    buffers = s->buffers;
  }
  std::uint64_t dropped = 0;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lk(b->mu);
    if (b->total > b->ring.size()) dropped += b->total - b->ring.size();
  }
  return dropped;
}

std::vector<TraceEvent> TraceSession::snapshot() const {
  State* s = state();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    buffers = s->buffers;
  }
  std::vector<TraceEvent> events;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lk(b->mu);
    const std::size_t n = b->ring.size();
    const std::size_t kept = static_cast<std::size_t>(
        std::min<std::uint64_t>(b->total, n));
    // Oldest kept event sits at `head` once the ring has wrapped.
    const std::size_t first = b->total > n ? b->head : 0;
    for (std::size_t i = 0; i < kept; ++i)
      events.push_back(b->ring[(first + i) % n]);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.pid != b.pid) return a.pid < b.pid;
                     return a.tid < b.tid;
                   });
  return events;
}

void TraceSession::write_chrome_trace(std::ostream& os) const {
  State* s = state();
  std::map<std::uint32_t, std::string> process_names;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> track_names;
  {
    std::lock_guard<std::mutex> lk(s->mu);
    process_names = s->process_names;
    track_names = s->track_names;
    for (const auto& b : s->buffers) {
      std::lock_guard<std::mutex> blk(b->mu);
      if (!b->name.empty())
        track_names[{trace_pids::kRuntime, b->tid}] = b->name;
    }
  }

  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  auto metadata = [&](const char* kind, std::uint32_t pid, std::uint32_t tid,
                      const std::string& value) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", kind);
    w.kv("pid", pid);
    w.kv("tid", tid);
    w.key("args");
    w.begin_object();
    w.kv("name", value);
    w.end_object();
    w.end_object();
  };
  for (const auto& [pid, name] : process_names)
    metadata("process_name", pid, 0, name);
  for (const auto& [key, name] : track_names)
    metadata("thread_name", key.first, key.second, name);

  for (const TraceEvent& e : snapshot()) {
    w.begin_object();
    const char phase[2] = {e.phase, '\0'};
    w.kv("ph", phase);
    w.kv("cat", e.category != nullptr ? e.category : "");
    w.kv("name", e.name != nullptr ? e.name : "");
    w.kv("pid", e.pid);
    w.kv("tid", e.tid);
    w.kv("ts", static_cast<double>(e.ts_ns) / 1e3);  // µs
    if (e.phase == 'X') w.kv("dur", static_cast<double>(e.dur_ns) / 1e3);
    if (e.phase == 'b' || e.phase == 'e') {
      char idbuf[24];
      std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                    static_cast<unsigned long long>(e.id));
      w.kv("id", idbuf);
    }
    if (e.phase == 'i') w.kv("s", "t");  // thread-scoped instant
    if (e.arg_name != nullptr) {
      w.key("args");
      w.begin_object();
      w.kv(e.arg_name, e.arg_value);
      w.end_object();
    }
    w.end_object();
  }

  w.end_array();
  w.end_object();
}

bool TraceSession::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    LOG_WARN << "trace: cannot open " << path << " for writing";
    return false;
  }
  write_chrome_trace(os);
  os.flush();
  if (!os) {
    LOG_WARN << "trace: short write to " << path;
    return false;
  }
  return true;
}

// ---- TraceSpan.

TraceSpan::TraceSpan(const char* category, const char* name,
                     const char* arg_name, double arg_value)
    : category_(category),
      name_(name),
      arg_name_(arg_name),
      arg_value_(arg_value),
      start_ns_(0),
      active_(TraceSession::enabled()) {
  if (active_) start_ns_ = seconds_to_ns(TraceSession::now_s());
}

TraceSpan::~TraceSpan() {
  if (!active_ || !TraceSession::enabled()) return;
  const std::uint64_t end_ns = seconds_to_ns(TraceSession::now_s());
  TraceSession& inst = TraceSession::instance();
  TraceEvent e;
  e.phase = 'X';
  e.category = category_;
  e.name = name_;
  e.ts_ns = start_ns_;
  e.dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  e.pid = trace_pids::kRuntime;
  e.tid = inst.thread_buffer()->tid;
  e.arg_name = arg_name_;
  e.arg_value = arg_value_;
  inst.append(e);
}

}  // namespace llmpq
