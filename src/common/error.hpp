#pragma once

#include <stdexcept>
#include <string>

namespace llmpq {

/// Base class for all llmpq errors. Thrown on contract violations that a
/// caller could plausibly recover from (bad configs, infeasible plans).
/// Programming errors use assertions instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Requested configuration cannot be satisfied (e.g. model does not fit in
/// cluster memory at any candidate precision).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// Malformed input: unknown model/device name, invalid plan file, ...
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgumentError with `msg` unless `cond` holds.
inline void check_arg(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgumentError(msg);
}

/// Literal-message overload: avoids constructing a std::string (a heap
/// allocation for most messages) on the success path of checks that sit
/// inside per-token loops (KV-cache reads, appends).
inline void check_arg(bool cond, const char* msg) {
  if (!cond) throw InvalidArgumentError(msg);
}

}  // namespace llmpq
