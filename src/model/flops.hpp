#pragma once

#include <cstdint>

#include "model/model_spec.hpp"

namespace llmpq {

/// Workload shape for one phase of one micro-batch through one layer.
/// Prefill: `tokens = batch * prompt_len`, attention spans `prompt_len`.
/// Decode: `tokens = batch` (one new token each), attention spans the
/// current context length (prompt + generated so far).
struct PhaseShape {
  std::int64_t batch = 1;
  std::int64_t seq = 1;      ///< tokens processed per sequence this pass
  std::int64_t context = 1;  ///< KV length attended over
};

/// Floating-point operations of one decoder layer for the given shape
/// (GEMMs dominate; attention scores/values included; softmax/norms folded
/// into a small linear term).
double layer_flops(const ModelSpec& m, const PhaseShape& s);

/// Bytes of memory traffic of one decoder layer: weights read once per
/// pass at `weight_bytes_per_param` (precision-dependent), activations, and
/// KV cache read/write at FP16. This is the "MOPs" quantity the latency
/// cost model's features are built from.
double layer_mem_ops(const ModelSpec& m, const PhaseShape& s,
                     double weight_bytes_per_param);

/// FLOPs of the embedding lookup + LM head for the given number of tokens.
double embedding_flops(const ModelSpec& m, std::int64_t tokens);

/// Arithmetic intensity (FLOPs / bytes) — used in tests to reproduce the
/// paper's observation that prefill is compute-bound (intensity in the
/// thousands) while decode is memory-bound (tens).
double layer_arithmetic_intensity(const ModelSpec& m, const PhaseShape& s,
                                  double weight_bytes_per_param);

/// Convenience constructors for the two phases.
PhaseShape prefill_shape(std::int64_t batch, std::int64_t prompt_len);
PhaseShape decode_shape(std::int64_t batch, std::int64_t context_len);

}  // namespace llmpq
