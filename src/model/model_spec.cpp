#include "model/model_spec.hpp"

#include <map>

#include "common/error.hpp"

namespace llmpq {

std::vector<LinearOp> ModelSpec::layer_linear_ops() const {
  // Fused QKV projection (h -> 3h), attention output (h -> h), and the MLP
  // projections: two for OPT/BLOOM (h -> ffn -> h), three for LLaMA-style
  // SwiGLU (gate and up h -> ffn, down ffn -> h).
  std::vector<LinearOp> ops = {
      {"qkv", hidden, 3 * hidden},
      {"out", hidden, hidden},
  };
  if (gated_mlp) {
    ops.push_back({"gate", hidden, ffn});
    ops.push_back({"up", hidden, ffn});
    ops.push_back({"down", ffn, hidden});
  } else {
    ops.push_back({"fc1", hidden, ffn});
    ops.push_back({"fc2", ffn, hidden});
  }
  return ops;
}

std::int64_t ModelSpec::layer_params() const {
  std::int64_t linears = 0;
  for (const auto& op : layer_linear_ops())
    linears += op.weight_params() + op.out_dim;  // weights + bias
  // Two layer norms, each with weight + bias of size h.
  return linears + 4 * hidden;
}

std::int64_t ModelSpec::embedding_params() const {
  // Token embedding (tied with LM head) + learned positional embedding
  // (OPT) / alibi-free equivalents sized identically, + final layer norm.
  return vocab * hidden + max_pos * hidden + 2 * hidden;
}

std::int64_t ModelSpec::total_params() const {
  return embedding_params() + static_cast<std::int64_t>(layers) * layer_params();
}

namespace {

std::vector<ModelSpec> build_registry() {
  auto opt = [](const std::string& name, std::int64_t h, int layers,
                std::int64_t heads, double ppl, double acc) {
    ModelSpec m;
    m.name = name;
    m.family = "opt";
    m.hidden = h;
    m.ffn = 4 * h;
    m.heads = heads;
    m.layers = layers;
    m.vocab = 50272;
    m.max_pos = 2048;
    m.ppl_fp16 = ppl;
    m.acc_fp16 = acc;
    return m;
  };
  auto bloom = [](const std::string& name, std::int64_t h, int layers,
                  std::int64_t heads, double ppl, double acc) {
    ModelSpec m;
    m.name = name;
    m.family = "bloom";
    m.hidden = h;
    m.ffn = 4 * h;
    m.heads = heads;
    m.layers = layers;
    m.vocab = 250880;
    m.max_pos = 2048;
    m.ppl_fp16 = ppl;
    m.acc_fp16 = acc;
    return m;
  };
  auto llama = [](const std::string& name, std::int64_t h, std::int64_t f,
                  int layers, std::int64_t heads, double ppl, double acc) {
    ModelSpec m;
    m.name = name;
    m.family = "llama";
    m.hidden = h;
    m.ffn = f;
    m.heads = heads;
    m.layers = layers;
    m.vocab = 32000;
    m.max_pos = 2048;
    m.gated_mlp = true;
    m.use_rms_norm = true;
    m.use_rope = true;
    m.ppl_fp16 = ppl;
    m.acc_fp16 = acc;
    return m;
  };
  // Reference FP16 quality figures follow the magnitudes reported in the
  // paper's evaluation (Tables 1/4/5/6): OPT-13b ~11.2, 30b ~10.7, 66b
  // ~10.33, BLOOM-176b ~10.90, OPT-1.3b ~15.3, BLOOM-3b ~17.4. LLaMA
  // entries (the paper's intro names the family) use its published sizes;
  // both the planner and the runtime handle the family (gated SwiGLU MLP,
  // RMSNorm, rotary position embeddings).
  return {
      opt("opt-125m", 768, 12, 12, 27.65, 50.2),
      opt("opt-1.3b", 2048, 24, 32, 15.30, 63.5),
      opt("opt-13b", 5120, 40, 40, 11.22, 67.9),
      opt("opt-30b", 7168, 48, 56, 10.70, 69.4),
      opt("opt-66b", 9216, 64, 72, 10.33, 70.9),
      opt("opt-175b", 12288, 96, 96, 9.85, 72.5),
      bloom("bloom-560m", 1024, 24, 16, 22.40, 52.1),
      bloom("bloom-1b7", 2048, 24, 16, 19.10, 56.8),
      bloom("bloom-3b", 2560, 30, 32, 17.40, 61.0),
      bloom("bloom-7b1", 4096, 30, 32, 14.96, 64.2),
      bloom("bloom-176b", 14336, 70, 112, 10.90, 71.8),
      llama("llama-7b", 4096, 11008, 32, 32, 12.10, 66.2),
      llama("llama-13b", 5120, 13824, 40, 40, 11.15, 68.9),
      llama("llama-30b", 6656, 17920, 60, 52, 10.18, 71.4),
      llama("llama-65b", 8192, 22016, 80, 64, 9.61, 73.0),
  };
}

const std::vector<ModelSpec>& registry() {
  static const std::vector<ModelSpec> r = build_registry();
  return r;
}

}  // namespace

const ModelSpec& model_registry_get(const std::string& name) {
  for (const auto& m : registry())
    if (m.name == name) return m;
  throw InvalidArgumentError("unknown model: " + name);
}

std::vector<std::string> model_registry_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& m : registry()) names.push_back(m.name);
  return names;
}

}  // namespace llmpq
