#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llmpq {

/// One linear operator inside a decoder layer (the unit the variance
/// indicator reasons about: D_W is the weight's row dimension).
struct LinearOp {
  std::string name;      ///< "qkv", "out", "fc1", "fc2"
  std::int64_t in_dim;   ///< columns of W (input features)
  std::int64_t out_dim;  ///< rows of W (output features)

  std::int64_t weight_params() const { return in_dim * out_dim; }
};

/// Architecture metadata for a decoder-only transformer. Everything the
/// planner needs is derivable from these numbers; no checkpoint is loaded.
struct ModelSpec {
  std::string name;          ///< e.g. "opt-30b"
  std::string family;        ///< "opt" or "bloom"
  std::int64_t hidden = 0;   ///< h1: model (hidden) dimension
  std::int64_t ffn = 0;      ///< h2: MLP intermediate dimension
  std::int64_t heads = 0;    ///< attention heads
  int layers = 0;            ///< number of decoder layers
  std::int64_t vocab = 0;    ///< vocabulary size
  std::int64_t max_pos = 0;  ///< maximum position embeddings
  /// LLaMA-style gated MLP (SwiGLU): three MLP projections instead of two.
  bool gated_mlp = false;
  /// LLaMA-style normalization (RMSNorm instead of LayerNorm).
  bool use_rms_norm = false;
  /// Rotary position embeddings instead of a learned position table.
  bool use_rope = false;

  // Reference model quality at FP16, used by the synthetic quality model
  // (`quant/quality`): average perplexity over WikiText2/PTB/C4 and average
  // zero-shot accuracy over LAMBADA/ARC/PIQA as the paper reports them.
  double ppl_fp16 = 0.0;
  double acc_fp16 = 0.0;

  /// Head dimension (hidden / heads).
  std::int64_t head_dim() const { return hidden / heads; }

  /// The linear operators of one decoder layer (four for OPT/BLOOM-style
  /// MLPs, five for LLaMA-style gated MLPs).
  std::vector<LinearOp> layer_linear_ops() const;

  /// Weight parameters in one decoder layer (linears + layer norms + biases).
  std::int64_t layer_params() const;

  /// Parameters of the embedding (token + positional) and final norm; the
  /// LM head is weight-tied with the token embedding as in OPT/BLOOM.
  std::int64_t embedding_params() const;

  /// Total parameters of the full model.
  std::int64_t total_params() const;
};

/// Looks up a model by canonical name ("opt-13b", "bloom-176b", ...).
/// Throws InvalidArgumentError for unknown names.
const ModelSpec& model_registry_get(const std::string& name);

/// All registered model names in registration order.
std::vector<std::string> model_registry_names();

}  // namespace llmpq
