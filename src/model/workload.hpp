#pragma once

#include <cstdint>

namespace llmpq {

/// An offline serving task: a fixed global batch of prompts padded to a
/// common length, generating a predetermined number of tokens (the paper's
/// target setting, Sec. 2.3; defaults follow its evaluation setup).
struct Workload {
  int global_batch = 32;
  int prompt_len = 512;   ///< s
  int gen_tokens = 100;   ///< n

  /// Maximum sequence length the KV cache must hold.
  int max_seq_len() const { return prompt_len + gen_tokens; }

  /// Total tokens produced by the whole batch (throughput denominator's
  /// numerator: throughput = total_generated_tokens / e2e latency).
  std::int64_t total_generated_tokens() const {
    return static_cast<std::int64_t>(global_batch) * gen_tokens;
  }
};

}  // namespace llmpq
