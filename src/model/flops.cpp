#include "model/flops.hpp"

namespace llmpq {

PhaseShape prefill_shape(std::int64_t batch, std::int64_t prompt_len) {
  return {batch, prompt_len, prompt_len};
}

PhaseShape decode_shape(std::int64_t batch, std::int64_t context_len) {
  return {batch, 1, context_len};
}

double layer_flops(const ModelSpec& m, const PhaseShape& s) {
  const double tokens = static_cast<double>(s.batch * s.seq);
  const double h = static_cast<double>(m.hidden);
  // Linear GEMMs, derived from the layer's operator list so gated
  // (LLaMA-style) MLPs are charged their third projection.
  double gemm_params = 0.0;
  for (const auto& op : m.layer_linear_ops())
    gemm_params += static_cast<double>(op.weight_params());
  const double gemm = 2.0 * tokens * gemm_params;
  // Attention: QK^T and attn*V, each 2 * batch * seq * context * h.
  const double attn = 4.0 * static_cast<double>(s.batch) *
                      static_cast<double>(s.seq) *
                      static_cast<double>(s.context) * h;
  // Norms, softmax, residuals: ~10 flops per token-feature.
  const double misc = 10.0 * tokens * h;
  return gemm + attn + misc;
}

double layer_mem_ops(const ModelSpec& m, const PhaseShape& s,
                     double weight_bytes_per_param) {
  const double tokens = static_cast<double>(s.batch * s.seq);
  const double h = static_cast<double>(m.hidden);
  double gemm_params = 0.0;
  double act_features = 0.0;  // in + out features touched per token
  for (const auto& op : m.layer_linear_ops()) {
    gemm_params += static_cast<double>(op.weight_params());
    act_features +=
        static_cast<double>(op.in_dim) + static_cast<double>(op.out_dim);
  }
  const double weight_bytes = gemm_params * weight_bytes_per_param;
  // Activations in/out of each linear plus residual streams, FP16.
  const double act_bytes = tokens * act_features * 2.0;
  // KV cache: write seq tokens, read context tokens, both K and V, FP16.
  const double kv_bytes = 2.0 * static_cast<double>(s.batch) *
                          (static_cast<double>(s.seq) +
                           static_cast<double>(s.context)) *
                          h * 2.0;
  return weight_bytes + act_bytes + kv_bytes;
}

double embedding_flops(const ModelSpec& m, std::int64_t tokens) {
  // Lookup is bandwidth-only; the LM head GEMM is 2 * tokens * h * vocab.
  return 2.0 * static_cast<double>(tokens) * static_cast<double>(m.hidden) *
         static_cast<double>(m.vocab);
}

double layer_arithmetic_intensity(const ModelSpec& m, const PhaseShape& s,
                                  double weight_bytes_per_param) {
  return layer_flops(m, s) / layer_mem_ops(m, s, weight_bytes_per_param);
}

}  // namespace llmpq
