#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <sstream>

#include "common/rng.hpp"
#include "common/trace.hpp"
#include "common/units.hpp"
#include "core/estimator.hpp"
#include "cost/ground_truth.hpp"
#include "cost/mem_model.hpp"
#include "sim/event_queue.hpp"

namespace llmpq {

namespace {

/// Compute-only time of one stage pass (all its layers + master work on the
/// first stage), excluding communication.
double stage_pass_time(const ModelSpec& model, const ClusterSpec& cluster,
                       const ExecutionPlan& plan, int p, Phase phase,
                       int micro_batch, int seq_or_ctx, bool is_first_stage,
                       QuantScheme scheme) {
  const int dev = plan.device_order[static_cast<std::size_t>(p)];
  const GpuSpec& gpu = cluster.devices[static_cast<std::size_t>(dev)].gpu();
  const PhaseShape shape = phase == Phase::kPrefill
                               ? prefill_shape(micro_batch, seq_or_ctx)
                               : decode_shape(micro_batch, seq_or_ctx);
  double t = 0.0;
  for (int bits : plan.stage_bits(p))
    t += layer_time_ground_truth(gpu, model, shape, bits, scheme);
  if (is_first_stage) {
    const std::int64_t tokens =
        phase == Phase::kPrefill
            ? static_cast<std::int64_t>(micro_batch) * seq_or_ctx
            : static_cast<std::int64_t>(micro_batch);
    t += embedding_time_ground_truth(gpu, model, tokens);
  }
  return t;
}

}  // namespace

SimResult simulate_plan(const ModelSpec& model, const ClusterSpec& cluster,
                        const ExecutionPlan& plan, const SimOptions& options) {
  SimResult result;
  plan.validate(model.layers, cluster.num_devices());
  const Workload& w = plan.workload;

  // ---- Active (non-empty) stages in pipeline order.
  std::vector<int> active;
  for (int p = 0; p < plan.num_stages(); ++p)
    if (plan.stage_size(p) > 0) active.push_back(p);
  if (active.empty()) {
    result.error = "plan assigns no layers";
    return result;
  }
  const int S = static_cast<int>(active.size());

  // ---- Memory check (the simulator's OOM signal).
  result.stage_peak_mem.assign(static_cast<std::size_t>(plan.num_stages()), 0);
  for (int si = 0; si < S; ++si) {
    const int p = active[static_cast<std::size_t>(si)];
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    const StageMemory mem =
        stage_memory(model, plan.stage_bits(p), w, plan.prefill_micro_batch,
                     plan.decode_micro_batch, si == 0, si == S - 1,
                     plan.weight_format);
    result.stage_peak_mem[static_cast<std::size_t>(p)] = mem.total();
    const std::int64_t budget =
        cluster.devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
        device_memory_reserve();
    if (mem.total() > budget) {
      std::ostringstream os;
      os << "OOM on device " << dev << " (stage " << p << "): needs "
         << static_cast<double>(mem.total()) / static_cast<double>(GiB)
         << " GiB, has "
         << static_cast<double>(budget) / static_cast<double>(GiB) << " GiB";
      result.error = os.str();
      return result;
    }
  }

  Rng rng(options.seed);
  auto jittered = [&](double t) {
    return options.jitter > 0.0
               ? t * std::max(0.5, 1.0 + options.jitter * rng.normal())
               : t;
  };

  // Virtual-clock mirror of the runtime fault injector: one lottery local
  // to this run (the process-wide injector is for wall-clock code), with
  // the same plan format and determinism guarantees. A delay rule on
  // "sim.stage" makes that stage pass a straggler; any other rule kind
  // fails the simulated run the way a poisoned micro-batch fails the
  // runtime. The event cascade stops at the first failure.
  FaultLottery lottery(options.faults);
  const bool faults_armed = !options.faults.empty();
  bool injected_failure = false;
  // Returns the extra straggler seconds, or sets injected_failure.
  auto stage_fault = [&]() -> double {
    if (!faults_armed || injected_failure) return 0.0;
    const FaultAction fa = lottery.check("sim.stage");
    if (fa.kind == FaultKind::kDelay) return fa.delay_s;
    if (fa.kind != FaultKind::kNone) injected_failure = true;
    return 0.0;
  };

  // Inter-stage transfer time from active stage si to si+1.
  auto comm = [&](int si, Phase phase, int micro_batch) {
    if (si + 1 >= S) return 0.0;
    const int a = plan.device_order[static_cast<std::size_t>(
        active[static_cast<std::size_t>(si)])];
    const int b = plan.device_order[static_cast<std::size_t>(
        active[static_cast<std::size_t>(si + 1)])];
    if (a == b) return 0.0;
    const PhaseShape shape = phase == Phase::kPrefill
                                 ? prefill_shape(micro_batch, w.prompt_len)
                                 : decode_shape(micro_batch, 1);
    return cluster.link(a, b).transfer_time(
        activation_bytes(model, shape));
  };

  EventQueue queue;
  std::vector<double> stage_free(static_cast<std::size_t>(S), 0.0);
  std::vector<double> stage_busy(static_cast<std::size_t>(S), 0.0);

  const int m_pre = plan.prefill_microbatch_count();
  const int m_dec = plan.decode_microbatch_count();
  double prefill_done = 0.0;
  int prefill_remaining = m_pre;

  // Decode stage-pass times are per round (context grows with each token).
  // Cached per (round) on demand inside the round scheduling.

  double final_time = 0.0;
  const int rounds_total = std::max(0, w.gen_tokens - 1);

  // Forward declaration trampoline for scheduling decode rounds.
  std::function<void(int, int, int, double)> arrive_decode;

  arrive_decode = [&](int si, int m, int round, double now) {
    if (injected_failure) return;  // fault cascade already stopped the run
    const double start =
        std::max(now, stage_free[static_cast<std::size_t>(si)]);
    const int ctx = w.prompt_len + round;
    const double straggle = stage_fault();
    if (injected_failure) return;
    const double pass =
        jittered(stage_pass_time(
            model, cluster, plan, active[static_cast<std::size_t>(si)],
            Phase::kDecode, plan.decode_micro_batch, ctx, si == 0,
            options.scheme)) +
        straggle;
    const double finish = start + pass;
    stage_free[static_cast<std::size_t>(si)] = finish;
    stage_busy[static_cast<std::size_t>(si)] += pass;
    // The simulated schedule lands on the sim pid's per-stage tracks in the
    // same trace format the real engine records, so a sim run and a runtime
    // run of one plan overlay directly (cost-model fidelity, Fig. 7 style).
    TraceSession::emit_complete("sim", "decode", start, pass, trace_pids::kSim,
                                static_cast<std::uint32_t>(si), "round",
                                round);
    if (si + 1 < S) {
      const double arrive = finish + comm(si, Phase::kDecode,
                                          plan.decode_micro_batch);
      queue.schedule(arrive, [&, si, m, round](double t) {
        arrive_decode(si + 1, m, round, t);
      });
    } else {
      final_time = std::max(final_time, finish);
      if (round + 1 <= rounds_total) {
        // Token round + 1 of micro-batch m begins at the master once this
        // round's token is sampled.
        queue.schedule(finish, [&, m, round](double t) {
          arrive_decode(0, m, round + 1, t);
        });
      }
    }
  };

  std::function<void(int, int, double)> arrive_prefill;
  arrive_prefill = [&](int si, int m, double now) {
    if (injected_failure) return;  // fault cascade already stopped the run
    const double start =
        std::max(now, stage_free[static_cast<std::size_t>(si)]);
    const double straggle = stage_fault();
    if (injected_failure) return;
    const double pass =
        jittered(stage_pass_time(
            model, cluster, plan, active[static_cast<std::size_t>(si)],
            Phase::kPrefill, plan.prefill_micro_batch, w.prompt_len, si == 0,
            options.scheme)) +
        straggle;
    const double finish = start + pass;
    stage_free[static_cast<std::size_t>(si)] = finish;
    stage_busy[static_cast<std::size_t>(si)] += pass;
    TraceSession::emit_complete("sim", "prefill", start, pass,
                                trace_pids::kSim,
                                static_cast<std::uint32_t>(si), "mb", m);
    if (si + 1 < S) {
      const double arrive =
          finish + comm(si, Phase::kPrefill, plan.prefill_micro_batch);
      queue.schedule(arrive, [&, si, m](double t) {
        arrive_prefill(si + 1, m, t);
      });
    } else {
      prefill_done = std::max(prefill_done, finish);
      final_time = std::max(final_time, finish);
      if (--prefill_remaining == 0 && rounds_total > 0) {
        // Barrier: decode re-batches the prompts, so round 1 starts once
        // every prefill micro-batch has produced its first token.
        for (int dm = 0; dm < m_dec; ++dm)
          queue.schedule(prefill_done, [&, dm](double t) {
            arrive_decode(0, dm, 1, t);
          });
      }
    }
  };

  if (TraceSession::enabled()) {
    for (int si = 0; si < S; ++si)
      TraceSession::instance().set_track_name(
          trace_pids::kSim, static_cast<std::uint32_t>(si),
          "sim stage " +
              std::to_string(active[static_cast<std::size_t>(si)]) +
              " (dev " +
              std::to_string(plan.device_order[static_cast<std::size_t>(
                  active[static_cast<std::size_t>(si)])]) +
              ")");
  }

  for (int m = 0; m < m_pre; ++m)
    queue.schedule(0.0, [&, m](double t) { arrive_prefill(0, m, t); });

  queue.run();

  if (injected_failure) {
    result.error = "injected stage failure (fault plan, site sim.stage)";
    return result;
  }

  result.ok = true;
  result.prefill_latency_s = prefill_done;
  result.e2e_latency_s = final_time;
  // A degenerate workload (e.g. zero-cost passes or gen_tokens == 0 with
  // instant prefill) can finish at t == 0; report zero throughput rather
  // than dividing by it.
  result.throughput_tokens_per_s =
      final_time > 0.0
          ? static_cast<double>(w.total_generated_tokens()) / final_time
          : 0.0;
  result.stage_busy_s.assign(static_cast<std::size_t>(plan.num_stages()), 0.0);
  result.stage_utilization.assign(static_cast<std::size_t>(plan.num_stages()),
                                  0.0);
  for (int si = 0; si < S; ++si) {
    const int p = active[static_cast<std::size_t>(si)];
    result.stage_busy_s[static_cast<std::size_t>(p)] =
        stage_busy[static_cast<std::size_t>(si)];
    result.stage_utilization[static_cast<std::size_t>(p)] =
        final_time > 0.0
            ? stage_busy[static_cast<std::size_t>(si)] / final_time
            : 0.0;
  }
  result.events_processed = queue.events_processed();
  return result;
}

}  // namespace llmpq
