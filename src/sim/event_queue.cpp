#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace llmpq {

void EventQueue::schedule(double when, Callback cb) {
  check_arg(when >= now_ - 1e-12, "EventQueue: scheduling into the past");
  queue_.push(Event{when, next_seq_++, std::move(cb)});
}

double EventQueue::run() {
  while (!queue_.empty()) {
    // Move out the top event before popping so the callback may schedule.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    ++processed_;
    ev.cb(now_);
  }
  return now_;
}

}  // namespace llmpq
