#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "hw/cluster.hpp"
#include "model/model_spec.hpp"

namespace llmpq {

/// Online-serving extension (paper Sec. 2.3 / Sec. 7): LLM-PQ targets the
/// offline task, but the discussion sketches applying its plans to
/// ORCA/vLLM-style online serving, where requests arrive unpredictably
/// with varying prompt and generation lengths. This module provides the
/// missing pieces: a ShareGPT-shaped request generator and a scheduler
/// simulator with both classic static batching and ORCA-style
/// iteration-level scheduling, executing over an LLM-PQ execution plan.

struct OnlineRequest {
  double arrival_s = 0.0;
  int prompt_len = 0;
  int gen_tokens = 0;
};

/// Synthetic ShareGPT-like workload (paper Sec. 2.1: "prompt length varies
/// substantially", with a large short-prompt mass and a long tail).
/// Poisson arrivals at `rate_per_s`.
std::vector<OnlineRequest> generate_sharegpt_workload(Rng& rng, int count,
                                                      double rate_per_s,
                                                      int max_prompt = 1024,
                                                      int max_gen = 256);

/// Fraction of prompts shorter than `threshold` (the paper's "< 128"
/// observation).
double fraction_below(const std::vector<OnlineRequest>& reqs, int threshold);

enum class SchedulerPolicy {
  kStaticBatching,    ///< pad a batch, run it to the longest generation
  kIterationLevel,    ///< ORCA: requests join/leave at token granularity
};

struct OnlineSimResult {
  bool ok = false;
  std::string error;
  int completed = 0;
  double makespan_s = 0.0;
  double throughput_tokens_per_s = 0.0;
  double mean_latency_s = 0.0;   ///< arrival -> last token
  double p95_latency_s = 0.0;
  double mean_queue_delay_s = 0.0;  ///< arrival -> first admission
};

struct OnlineSimOptions {
  SchedulerPolicy policy = SchedulerPolicy::kIterationLevel;
  /// Max concurrent sequences (bounded by the plan's preallocated KV).
  int max_batch = 32;
  /// Static batching: dispatch when this many requests are queued or the
  /// oldest has waited `max_wait_s`.
  int batch_size = 16;
  double max_wait_s = 5.0;
};

/// Replays `requests` against the plan's pipeline on the simulated
/// cluster. Timing comes from the same roofline ground truth the offline
/// simulator uses; memory feasibility of the plan is checked up front.
OnlineSimResult simulate_online(const ModelSpec& model,
                                const ClusterSpec& cluster,
                                const ExecutionPlan& plan,
                                const std::vector<OnlineRequest>& requests,
                                const OnlineSimOptions& options = {});

}  // namespace llmpq
