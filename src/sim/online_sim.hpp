#pragma once

#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "core/plan.hpp"
#include "hw/cluster.hpp"
#include "hw/trace.hpp"
#include "model/model_spec.hpp"
#include "serve/replanner.hpp"
#include "serve/scheduler.hpp"

namespace llmpq {

/// Online-serving extension (paper Sec. 2.3 / Sec. 7): LLM-PQ targets the
/// offline task, but the discussion sketches applying its plans to
/// ORCA/vLLM-style online serving, where requests arrive unpredictably
/// with varying prompt and generation lengths. This module provides a
/// ShareGPT-shaped request generator and the *simulator back-end* for the
/// shared serving scheduler (`serve/scheduler.hpp`): the same policy code
/// that drives the real `PipelineEngine` in `serve/online_engine.cpp` is
/// driven here with analytic roofline pass times, so the two back-ends
/// make identical admission/batching decisions on identical traces (the
/// sim-vs-runtime parity test asserts exactly that).

struct OnlineRequest {
  double arrival_s = 0.0;
  int prompt_len = 0;
  int gen_tokens = 0;
  int tenant_id = 0;   ///< ServeRequest::tenant_id (multi-tenant runs)
  int req_class = 0;   ///< ServeRequest::req_class (bitwidth routing)
};

/// Synthetic ShareGPT-like workload (paper Sec. 2.1: "prompt length varies
/// substantially", with a large short-prompt mass and a long tail).
/// Poisson arrivals at `rate_per_s`.
std::vector<OnlineRequest> generate_sharegpt_workload(Rng& rng, int count,
                                                      double rate_per_s,
                                                      int max_prompt = 1024,
                                                      int max_gen = 256);

/// Multi-tenant workload whose aggregate arrival rate follows the cluster
/// utilization trace (hw/trace.hpp): the request stream is mapped onto the
/// trace's days and each day's Poisson rate is
/// `base_rate_per_s * (0.5 + fleet_util(day))`, so busy trace days become
/// burst windows. Each request draws its tenant from `load` (per-tenant
/// arrival share, normalized; empty = equal shares), takes that tenant's
/// default_class, and uses the ShareGPT shape mix for lengths. This is the
/// scenario generator behind the 10^6-request scale runs — deterministic
/// given the rng seed, so scale baselines are reproducible.
std::vector<OnlineRequest> generate_tenant_workload(
    Rng& rng, const ClusterTrace& trace,
    const std::vector<TenantSpec>& tenants, int count, double base_rate_per_s,
    const std::vector<double>& load = {}, int max_prompt = 1024,
    int max_gen = 256);

/// Fraction of prompts shorter than `threshold` (the paper's "< 128"
/// observation).
double fraction_below(const std::vector<OnlineRequest>& reqs, int threshold);

/// The scheduling policy and its knobs live with the shared scheduler;
/// the simulator keeps its historical option-struct name.
using OnlineSimOptions = SchedulerOptions;

/// Virtual-clock mirror of the runtime control loop (DESIGN.md "Online
/// control loop & elastic migration"): when passed to simulate_online the
/// simulator feeds the same HealthMonitor one sample per dispatched
/// decision (dispatch cost + per-stage busy breakdown from the roofline
/// model) and applies the Replanner's single-move repairs to its working
/// copy of the plan. With identical traces, fault plans, and health
/// options, the sim's ReplanEvent log matches the runtime's event for
/// event (ReplanEvent::same_decision) — the extended parity key.
struct OnlineReplanOptions {
  /// Health-monitor knobs; defaults are the parity-tested configuration.
  HealthMonitorOptions health;
  /// Cost model for the Replanner's feasibility/objective scoring.
  /// Required (the simulator cannot propose repairs without one).
  const CostProvider* cost = nullptr;
  /// Optional quality indicator for the evaluator's objective.
  const IndicatorResult* indicator = nullptr;
  /// Quality/latency trade-off weight (same theta as the offline planner).
  double theta = 0.0;
};

struct OnlineSimResult {
  bool ok = false;
  std::string error;
  int completed = 0;
  double makespan_s = 0.0;
  double throughput_tokens_per_s = 0.0;
  double mean_latency_s = 0.0;   ///< arrival -> last token
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_queue_delay_s = 0.0;  ///< arrival -> admission decision
  double mean_prefill_s = 0.0;      ///< prefill pass time, tracked apart
                                    ///< from queueing (was conflated)
  /// Per-request records in completion order (request ids index the input
  /// vector) and the dispatch-decision log — the parity-test key shared
  /// with the runtime back-end.
  std::vector<RequestStats> requests;
  std::vector<DispatchDecision> decisions;
  /// Per-tenant outcome/latency/SLO summaries (one synthetic row when no
  /// tenants are configured). Same shape as OnlineReport::tenants.
  std::vector<TenantSummary> tenants;
  /// Joins admitted by the continuous-mode starvation bound.
  int forced_joins = 0;

  // ---- Control-loop mirror (populated when OnlineReplanOptions is
  // passed). `replans` joins `decisions` in the sim-vs-runtime parity
  // contract: same compared fields as OnlineReport::replans. The sim has
  // no engine to swap, so an "applied" event means the working plan copy
  // changed; `final_plan` is that copy after the run.
  std::vector<ReplanEvent> replans;
  int migrations = 0;  ///< applied deltas (plan mutations in the sim)
  ExecutionPlan final_plan;

  // ---- Fault accounting (all zero with an empty fault plan).
  int timed_out = 0;     ///< requests past deadline_s
  int rejected = 0;      ///< bounced by the admission bound
  int failed = 0;        ///< exhausted max_retries
  int retries = 0;       ///< total dispatch retries consumed
  int fault_events = 0;  ///< sim-site rule firings (delays included)
  int preemptions = 0;   ///< capacity-planner evictions (kContinuous)
};

/// Replays `requests` against the plan's pipeline on the simulated
/// cluster. Timing comes from the same roofline ground truth the offline
/// simulator uses; memory feasibility of the plan is checked up front.
///
/// `faults` mirrors the runtime fault injector on the virtual clock: a
/// `delay` rule on site "sim.dispatch" inflates that dispatch's pass time
/// (straggler); any other rule kind fails the dispatch, exercising the
/// scheduler's retry/backoff/kFailed path. Per-stage sites
/// "serve.stage.<p>" are evaluated once per decision per plan stage (the
/// same cadence as the runtime serving loop), with delay/slow rules
/// charged once per layer of stage p — so migrating layers off a
/// straggling stage visibly shrinks the drag on the virtual clock. The
/// lottery is seeded by the plan alone, so identical (requests, options,
/// faults) runs are bit-identical — chaos tests sweep seeds on top of
/// this determinism.
///
/// `replan`, when non-null, arms the control-loop mirror (see
/// OnlineReplanOptions); the plan evolves inside the run and the result
/// carries the decision log plus the final plan.
OnlineSimResult simulate_online(const ModelSpec& model,
                                const ClusterSpec& cluster,
                                const ExecutionPlan& plan,
                                const std::vector<OnlineRequest>& requests,
                                const OnlineSimOptions& options = {},
                                const FaultPlan& faults = {},
                                const OnlineReplanOptions* replan = nullptr);

}  // namespace llmpq
