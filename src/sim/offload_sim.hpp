#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cluster.hpp"
#include "model/model_spec.hpp"
#include "model/workload.hpp"

namespace llmpq {

/// Offloading execution model (the FlexGen-style baseline substrate):
/// layers are evenly partitioned over the devices; weights and KV cache
/// that do not fit in GPU memory live in CPU RAM (over PCIe) or on NVMe,
/// streamed in during execution with compute/transfer overlap (the zig-zag
/// block schedule). Per-layer time is the max of compute and the transfer
/// of the non-resident bytes touched by that pass.
struct OffloadConfig {
  double pcie_bytes_per_s = 16e9;   ///< PCIe 3.0 x16 effective
  double disk_bytes_per_s = 3e9;    ///< NVMe SSD ("GB/s SSD" in the paper)
  double cpu_mem_bytes = 128e9;     ///< spill target before disk
  double overlap_efficiency = 0.85; ///< fraction of transfer hidden-able
};

struct OffloadResult {
  bool ok = false;
  std::string error;
  double prefill_latency_s = 0.0;
  double e2e_latency_s = 0.0;
  double throughput_tokens_per_s = 0.0;
  /// Fraction of (weights+KV) resident in GPU memory, per device.
  std::vector<double> resident_fraction;
};

/// Simulates uniform-precision offloaded serving at `bits` on `cluster`.
OffloadResult simulate_offload(const ModelSpec& model,
                               const ClusterSpec& cluster, const Workload& w,
                               int bits, const OffloadConfig& config = {});

}  // namespace llmpq
