#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace llmpq {

/// Minimal discrete-event core: a time-ordered queue of callbacks with
/// deterministic FIFO tie-breaking (events scheduled earlier run first at
/// equal timestamps), driving the pipeline and offloading simulators.
class EventQueue {
 public:
  using Callback = std::function<void(double now)>;

  /// Schedules `cb` at absolute time `when` (must be >= now during run()).
  void schedule(double when, Callback cb);

  /// Runs until the queue drains; returns the final clock value.
  double run();

  double now() const { return now_; }
  std::size_t events_processed() const { return processed_; }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  double now_ = 0.0;
};

}  // namespace llmpq
