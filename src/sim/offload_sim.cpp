#include "sim/offload_sim.hpp"

#include <algorithm>

#include "core/estimator.hpp"
#include "cost/ground_truth.hpp"
#include "cost/mem_model.hpp"

namespace llmpq {

OffloadResult simulate_offload(const ModelSpec& model,
                               const ClusterSpec& cluster, const Workload& w,
                               int bits, const OffloadConfig& config) {
  OffloadResult result;
  const int N = cluster.num_devices();
  const int L = model.layers;

  // Even layer partition (FlexGen has no heterogeneity awareness).
  std::vector<int> counts(static_cast<std::size_t>(N), L / N);
  for (int p = 0; p < L % N; ++p) ++counts[static_cast<std::size_t>(p)];

  // Same micro-batch for both phases: global batch split over stages.
  const int micro_batch = std::max(1, w.global_batch / N);
  const int m_count = (w.global_batch + micro_batch - 1) / micro_batch;

  const std::int64_t wb = layer_weight_bytes(model, bits);
  const std::int64_t kv =
      layer_kv_bytes(model, w.global_batch, w.max_seq_len());
  const int dec_ctx = w.prompt_len + w.gen_tokens / 2;

  std::vector<double> stage_pre(static_cast<std::size_t>(N), 0.0);
  std::vector<double> stage_dec(static_cast<std::size_t>(N), 0.0);
  result.resident_fraction.resize(static_cast<std::size_t>(N), 1.0);

  for (int p = 0; p < N; ++p) {
    const GpuSpec& gpu = cluster.devices[static_cast<std::size_t>(p)].gpu();
    const int layers = counts[static_cast<std::size_t>(p)];
    if (layers == 0) continue;
    std::int64_t budget = gpu.mem_bytes - device_memory_reserve() -
                          temp_peak_bytes(model, w, micro_batch, micro_batch);
    if (p == 0) budget -= embedding_weight_bytes(model);
    if (p == N - 1) budget -= lm_head_bytes(model);
    if (budget < 0) {
      result.error = "device cannot hold even the working set";
      return result;
    }

    // Residency policy: KV first (touched every decode step), then weights.
    const std::int64_t kv_total = static_cast<std::int64_t>(layers) * kv;
    const std::int64_t w_total = static_cast<std::int64_t>(layers) * wb;
    const std::int64_t kv_resident = std::min(kv_total, budget);
    const std::int64_t w_resident =
        std::min(w_total, std::max<std::int64_t>(0, budget - kv_resident));
    const std::int64_t spill =
        (kv_total - kv_resident) + (w_total - w_resident);
    result.resident_fraction[static_cast<std::size_t>(p)] =
        kv_total + w_total > 0
            ? static_cast<double>(kv_resident + w_resident) /
                  static_cast<double>(kv_total + w_total)
            : 1.0;

    // Spill beyond CPU RAM goes to disk at disk bandwidth.
    const double cpu_spill =
        std::min(static_cast<double>(spill), config.cpu_mem_bytes);
    const double disk_spill = static_cast<double>(spill) - cpu_spill;
    const double spill_bw =
        spill > 0 ? static_cast<double>(spill) /
                        (cpu_spill / config.pcie_bytes_per_s +
                         disk_spill / config.disk_bytes_per_s)
                  : config.pcie_bytes_per_s;

    // Per-layer non-resident bytes touched per pass.
    const double w_miss =
        static_cast<double>(w_total - w_resident) / layers;
    const double kv_miss_frac =
        kv_total > 0 ? static_cast<double>(kv_total - kv_resident) /
                           static_cast<double>(kv_total)
                     : 0.0;

    double pre = 0.0, dec = 0.0;
    for (int i = 0; i < layers; ++i) {
      const double c_pre = layer_time_ground_truth(
          gpu, model, prefill_shape(micro_batch, w.prompt_len), bits);
      // Prefill writes fresh KV; only weight misses stream in.
      const double t_pre =
          w_miss / (spill_bw * config.overlap_efficiency);
      pre += std::max(c_pre, t_pre);

      const double c_dec = layer_time_ground_truth(
          gpu, model, decode_shape(micro_batch, dec_ctx), bits);
      // Decode touches the full KV of the micro-batch's sequences.
      const double kv_touch =
          kv_miss_frac *
          (2.0 * micro_batch * static_cast<double>(dec_ctx) *
           static_cast<double>(model.hidden) * 2.0);
      const double t_dec =
          (w_miss + kv_touch) / (spill_bw * config.overlap_efficiency);
      dec += std::max(c_dec, t_dec);
    }
    if (p == 0) {
      pre += embedding_time_ground_truth(
          gpu, model, static_cast<std::int64_t>(micro_batch) * w.prompt_len);
      dec += embedding_time_ground_truth(gpu, model, micro_batch);
    }
    // Outbound comm.
    if (p + 1 < N) {
      const auto& link = cluster.link(p, p + 1);
      pre += link.transfer_time(
          activation_bytes(model, prefill_shape(micro_batch, w.prompt_len)));
      dec += link.transfer_time(
          activation_bytes(model, decode_shape(micro_batch, dec_ctx)));
    }
    stage_pre[static_cast<std::size_t>(p)] = pre;
    stage_dec[static_cast<std::size_t>(p)] = dec;
  }

  double pre_sum = 0.0, pre_max = 0.0, dec_sum = 0.0, dec_max = 0.0;
  for (int p = 0; p < N; ++p) {
    pre_sum += stage_pre[static_cast<std::size_t>(p)];
    pre_max = std::max(pre_max, stage_pre[static_cast<std::size_t>(p)]);
    dec_sum += stage_dec[static_cast<std::size_t>(p)];
    dec_max = std::max(dec_max, stage_dec[static_cast<std::size_t>(p)]);
  }
  result.ok = true;
  result.prefill_latency_s =
      pre_sum + static_cast<double>(m_count - 1) * pre_max;
  result.e2e_latency_s =
      result.prefill_latency_s +
      static_cast<double>(w.gen_tokens - 1) *
          (dec_sum + static_cast<double>(m_count - 1) * dec_max);
  result.throughput_tokens_per_s =
      static_cast<double>(w.total_generated_tokens()) / result.e2e_latency_s;
  return result;
}

}  // namespace llmpq
