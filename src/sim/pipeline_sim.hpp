#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "core/plan.hpp"
#include "hw/cluster.hpp"
#include "model/model_spec.hpp"
#include "quant/scheme.hpp"

namespace llmpq {

/// Result of executing a plan on the simulated cluster (the stand-in for a
/// real serving run; all "measured" numbers in the benchmark tables come
/// from here).
struct SimResult {
  bool ok = false;
  std::string error;  ///< e.g. OOM description when !ok

  double prefill_latency_s = 0.0;
  double e2e_latency_s = 0.0;
  double throughput_tokens_per_s = 0.0;

  std::vector<double> stage_busy_s;       ///< per pipeline position
  std::vector<double> stage_utilization;  ///< busy / e2e
  std::vector<std::int64_t> stage_peak_mem;
  std::size_t events_processed = 0;
};

struct SimOptions {
  /// Multiplicative per-stage-pass timing jitter stddev (0 = deterministic).
  double jitter = 0.0;
  std::uint64_t seed = 11;
  /// Weight-only kernel family used for sub-8-bit layers.
  QuantScheme scheme = QuantScheme::kGptq;
  /// Deterministic fault plan mirroring the runtime's injector: `delay`
  /// rules on site "sim.stage" inflate stage passes (stragglers), any
  /// other rule kind fails the run (result.ok == false). Empty = no
  /// faults, bit-identical to the fault-oblivious simulator.
  FaultPlan faults;
};

/// Discrete-event simulation of pipelined two-phase generative inference:
/// prefill micro-batches stream through the stages, then gen_tokens - 1
/// decode rounds with re-sized micro-batches, token t+1 depending on token
/// t through the master engine. Timing comes from the roofline ground
/// truth; memory from the analytic model with an OOM check per stage.
SimResult simulate_plan(const ModelSpec& model, const ClusterSpec& cluster,
                        const ExecutionPlan& plan,
                        const SimOptions& options = {});

}  // namespace llmpq
