#include "sim/online_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "cost/ground_truth.hpp"
#include "cost/profiler.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq {

std::vector<OnlineRequest> generate_sharegpt_workload(Rng& rng, int count,
                                                      double rate_per_s,
                                                      int max_prompt,
                                                      int max_gen) {
  check_arg(count >= 0 && rate_per_s > 0.0,
            "generate_sharegpt_workload: bad arguments");
  std::vector<OnlineRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += -std::log(std::max(rng.uniform(), 1e-12)) / rate_per_s;  // Poisson
    OnlineRequest r;
    r.arrival_s = t;
    // Bimodal prompt mix: ~55% short chat turns (lognormal around ~40
    // tokens), the rest long context pastes (lognormal around ~400).
    const bool short_prompt = rng.uniform() < 0.55;
    const double mu = short_prompt ? 3.6 : 6.0;
    const double sigma = short_prompt ? 0.6 : 0.5;
    r.prompt_len = static_cast<int>(
        std::clamp(std::exp(rng.normal(mu, sigma)), 4.0,
                   static_cast<double>(max_prompt)));
    // Generation length: geometric-ish with a heavier tail.
    r.gen_tokens = static_cast<int>(
        std::clamp(std::exp(rng.normal(4.0, 0.8)), 4.0,
                   static_cast<double>(max_gen)));
    reqs.push_back(r);
  }
  return reqs;
}

double fraction_below(const std::vector<OnlineRequest>& reqs, int threshold) {
  if (reqs.empty()) return 0.0;
  int below = 0;
  for (const auto& r : reqs) below += r.prompt_len < threshold;
  return static_cast<double>(below) / static_cast<double>(reqs.size());
}

namespace {

/// Serial traversal time of the whole pipeline for one pass: with a single
/// in-flight batch, round r+1 depends on round r's token, so stages do not
/// overlap; the pass costs the sum of stage times plus transfers.
double pass_time(const ModelSpec& model, const ClusterSpec& cluster,
                 const ExecutionPlan& plan, Phase phase, int batch,
                 int seq_or_ctx) {
  double total = 0.0;
  int prev_dev = -1;
  bool first = true;
  for (int p = 0; p < plan.num_stages(); ++p) {
    if (plan.stage_size(p) == 0) continue;
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    const GpuSpec& gpu = cluster.devices[static_cast<std::size_t>(dev)].gpu();
    const PhaseShape shape = phase == Phase::kPrefill
                                 ? prefill_shape(batch, seq_or_ctx)
                                 : decode_shape(batch, seq_or_ctx);
    for (int bits : plan.stage_bits(p))
      total += layer_time_ground_truth(gpu, model, shape, bits);
    if (first) {
      const std::int64_t tokens =
          phase == Phase::kPrefill
              ? static_cast<std::int64_t>(batch) * seq_or_ctx
              : static_cast<std::int64_t>(batch);
      total += embedding_time_ground_truth(gpu, model, tokens);
      first = false;
    }
    if (prev_dev >= 0 && prev_dev != dev)
      total += cluster.link(prev_dev, dev)
                   .transfer_time(activation_bytes(model, shape));
    prev_dev = dev;
  }
  return total;
}

struct Active {
  std::size_t idx;   ///< index into requests
  int context;       ///< tokens currently in KV
  int remaining;     ///< tokens still to generate
  double admitted_at;
};

}  // namespace

OnlineSimResult simulate_online(const ModelSpec& model,
                                const ClusterSpec& cluster,
                                const ExecutionPlan& plan,
                                const std::vector<OnlineRequest>& requests,
                                const OnlineSimOptions& options) {
  OnlineSimResult result;
  plan.validate(model.layers, cluster.num_devices());
  check_arg(options.max_batch >= 1 && options.batch_size >= 1,
            "simulate_online: batch limits must be positive");

  // The plan's memory feasibility gates the run exactly like offline.
  {
    const SimResult probe = simulate_plan(model, cluster, plan);
    if (!probe.ok) {
      result.error = probe.error;
      return result;
    }
  }

  std::vector<OnlineRequest> sorted = requests;
  std::sort(sorted.begin(), sorted.end(),
            [](const OnlineRequest& a, const OnlineRequest& b) {
              return a.arrival_s < b.arrival_s;
            });

  std::vector<double> latencies;
  std::vector<double> queue_delays;
  std::int64_t tokens_out = 0;
  double t = 0.0;
  std::size_t next = 0;

  if (options.policy == SchedulerPolicy::kStaticBatching) {
    // Form batches of `batch_size` (or whatever is queued once the oldest
    // waits too long); pad prompts and generations to the batch maxima.
    std::deque<std::size_t> queue;
    while (next < sorted.size() || !queue.empty()) {
      // Fill the queue up to the current time.
      while (next < sorted.size() && sorted[next].arrival_s <= t)
        queue.push_back(next++);
      if (queue.empty()) {
        t = sorted[next].arrival_s;
        continue;
      }
      const bool full =
          static_cast<int>(queue.size()) >= options.batch_size;
      const bool stale =
          t - sorted[queue.front()].arrival_s >= options.max_wait_s;
      if (!full && !stale && next < sorted.size()) {
        t = std::max(t, sorted[next].arrival_s);  // wait for more arrivals
        continue;
      }
      // Dispatch.
      std::vector<std::size_t> batch;
      while (!queue.empty() &&
             static_cast<int>(batch.size()) <
                 std::min(options.batch_size, options.max_batch)) {
        batch.push_back(queue.front());
        queue.pop_front();
      }
      int max_prompt = 0, max_gen = 0;
      for (std::size_t idx : batch) {
        max_prompt = std::max(max_prompt, sorted[idx].prompt_len);
        max_gen = std::max(max_gen, sorted[idx].gen_tokens);
      }
      for (std::size_t idx : batch)
        queue_delays.push_back(t - sorted[idx].arrival_s);
      t += pass_time(model, cluster, plan, Phase::kPrefill,
                     static_cast<int>(batch.size()), max_prompt);
      for (int round = 1; round < max_gen; ++round)
        t += pass_time(model, cluster, plan, Phase::kDecode,
                       static_cast<int>(batch.size()), max_prompt + round);
      for (std::size_t idx : batch) {
        latencies.push_back(t - sorted[idx].arrival_s);
        tokens_out += sorted[idx].gen_tokens;  // useful (unpadded) tokens
      }
      result.completed += static_cast<int>(batch.size());
    }
  } else {
    // ORCA-style iteration-level scheduling: the active set changes at
    // token granularity; new requests are prefilled as they are admitted.
    std::vector<Active> active;
    while (next < sorted.size() || !active.empty()) {
      // Admit while capacity allows.
      std::vector<std::size_t> admitted;
      while (next < sorted.size() && sorted[next].arrival_s <= t &&
             static_cast<int>(active.size() + admitted.size()) <
                 options.max_batch)
        admitted.push_back(next++);
      if (!admitted.empty()) {
        int max_prompt = 0;
        for (std::size_t idx : admitted)
          max_prompt = std::max(max_prompt, sorted[idx].prompt_len);
        t += pass_time(model, cluster, plan, Phase::kPrefill,
                       static_cast<int>(admitted.size()), max_prompt);
        for (std::size_t idx : admitted) {
          queue_delays.push_back(
              std::max(0.0, t - sorted[idx].arrival_s));
          Active a;
          a.idx = idx;
          a.context = sorted[idx].prompt_len + 1;  // prefill emits token 1
          a.remaining = sorted[idx].gen_tokens - 1;
          a.admitted_at = t;
          if (a.remaining <= 0) {
            latencies.push_back(t - sorted[idx].arrival_s);
            tokens_out += sorted[idx].gen_tokens;
            ++result.completed;
          } else {
            active.push_back(a);
          }
        }
        continue;
      }
      if (active.empty()) {
        t = sorted[next].arrival_s;
        continue;
      }
      // One decode round over the current active set.
      int max_ctx = 0;
      for (const Active& a : active) max_ctx = std::max(max_ctx, a.context);
      t += pass_time(model, cluster, plan, Phase::kDecode,
                     static_cast<int>(active.size()), max_ctx);
      for (auto it = active.begin(); it != active.end();) {
        ++it->context;
        if (--it->remaining <= 0) {
          latencies.push_back(t - sorted[it->idx].arrival_s);
          tokens_out += sorted[it->idx].gen_tokens;
          ++result.completed;
          it = active.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  result.ok = true;
  result.makespan_s = t;
  result.throughput_tokens_per_s =
      t > 0.0 ? static_cast<double>(tokens_out) / t : 0.0;
  if (!latencies.empty()) {
    result.mean_latency_s = mean(latencies);
    result.p95_latency_s = percentile(latencies, 95);
  }
  if (!queue_delays.empty()) result.mean_queue_delay_s = mean(queue_delays);
  return result;
}

}  // namespace llmpq
