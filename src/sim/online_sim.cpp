#include "sim/online_sim.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "cost/ground_truth.hpp"
#include "cost/profiler.hpp"
#include "serve/health.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq {

std::vector<OnlineRequest> generate_sharegpt_workload(Rng& rng, int count,
                                                      double rate_per_s,
                                                      int max_prompt,
                                                      int max_gen) {
  check_arg(count >= 0 && rate_per_s > 0.0,
            "generate_sharegpt_workload: bad arguments");
  std::vector<OnlineRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    t += -std::log(std::max(rng.uniform(), 1e-12)) / rate_per_s;  // Poisson
    OnlineRequest r;
    r.arrival_s = t;
    // Bimodal prompt mix: ~55% short chat turns (lognormal around ~40
    // tokens), the rest long context pastes (lognormal around ~400).
    const bool short_prompt = rng.uniform() < 0.55;
    const double mu = short_prompt ? 3.6 : 6.0;
    const double sigma = short_prompt ? 0.6 : 0.5;
    r.prompt_len = static_cast<int>(
        std::clamp(std::exp(rng.normal(mu, sigma)), 4.0,
                   static_cast<double>(max_prompt)));
    // Generation length: geometric-ish with a heavier tail.
    r.gen_tokens = static_cast<int>(
        std::clamp(std::exp(rng.normal(4.0, 0.8)), 4.0,
                   static_cast<double>(max_gen)));
    reqs.push_back(r);
  }
  return reqs;
}

std::vector<OnlineRequest> generate_tenant_workload(
    Rng& rng, const ClusterTrace& trace,
    const std::vector<TenantSpec>& tenants, int count, double base_rate_per_s,
    const std::vector<double>& load, int max_prompt, int max_gen) {
  check_arg(count >= 0 && base_rate_per_s > 0.0,
            "generate_tenant_workload: bad arguments");
  check_arg(!tenants.empty(), "generate_tenant_workload: no tenants");
  check_arg(load.empty() || load.size() == tenants.size(),
            "generate_tenant_workload: load shares must match tenants");
  // Per-day fleet utilization: share-weighted mean over GPU types. An
  // empty trace degenerates to a flat 0.5 modulation (constant rate).
  int days = 0;
  for (const UtilizationSample& s : trace.samples)
    days = std::max(days, s.day + 1);
  std::vector<double> util(static_cast<std::size_t>(std::max(days, 1)), 0.5);
  if (days > 0) {
    std::vector<double> acc(static_cast<std::size_t>(days), 0.0);
    std::vector<double> wsum(static_cast<std::size_t>(days), 0.0);
    for (const UtilizationSample& s : trace.samples) {
      double share = 0.0;
      for (const GpuFleetShare& g : trace.shares)
        if (g.gpu_name == s.gpu_name) share = g.fraction;
      acc[static_cast<std::size_t>(s.day)] += share * s.util;
      wsum[static_cast<std::size_t>(s.day)] += share;
    }
    for (int d = 0; d < days; ++d)
      if (wsum[static_cast<std::size_t>(d)] > 0.0)
        util[static_cast<std::size_t>(d)] =
            acc[static_cast<std::size_t>(d)] / wsum[static_cast<std::size_t>(d)];
  }
  // Normalized cumulative tenant shares for the per-request draw.
  std::vector<double> cum(tenants.size(), 0.0);
  {
    double total = 0.0;
    for (std::size_t i = 0; i < tenants.size(); ++i)
      total += load.empty() ? 1.0 : std::max(load[i], 0.0);
    check_arg(total > 0.0, "generate_tenant_workload: zero total load");
    double run = 0.0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      run += (load.empty() ? 1.0 : std::max(load[i], 0.0)) / total;
      cum[i] = run;
    }
    cum.back() = 1.0;  // absorb rounding
  }
  std::vector<OnlineRequest> reqs;
  reqs.reserve(static_cast<std::size_t>(count));
  double t = 0.0;
  for (int i = 0; i < count; ++i) {
    // Map the stream position onto the trace's days so busy days become
    // burst windows of the generated stream.
    const std::size_t day =
        count > 0 ? static_cast<std::size_t>(
                        (static_cast<long long>(i) * util.size()) / count)
                  : 0;
    const double rate = base_rate_per_s * (0.5 + util[day]);
    t += -std::log(std::max(rng.uniform(), 1e-12)) / rate;  // Poisson
    OnlineRequest r;
    r.arrival_s = t;
    const double u = rng.uniform();
    std::size_t ti = 0;
    while (ti + 1 < cum.size() && u > cum[ti]) ++ti;
    r.tenant_id = tenants[ti].id;
    r.req_class = tenants[ti].default_class;
    const bool short_prompt = rng.uniform() < 0.55;
    const double mu = short_prompt ? 3.6 : 6.0;
    const double sigma = short_prompt ? 0.6 : 0.5;
    r.prompt_len = static_cast<int>(
        std::clamp(std::exp(rng.normal(mu, sigma)), 4.0,
                   static_cast<double>(max_prompt)));
    r.gen_tokens = static_cast<int>(
        std::clamp(std::exp(rng.normal(4.0, 0.8)), 4.0,
                   static_cast<double>(max_gen)));
    reqs.push_back(r);
  }
  return reqs;
}

double fraction_below(const std::vector<OnlineRequest>& reqs, int threshold) {
  if (reqs.empty()) return 0.0;
  int below = 0;
  for (const auto& r : reqs) below += r.prompt_len < threshold;
  return static_cast<double>(below) / static_cast<double>(reqs.size());
}

namespace {

/// Serial traversal time of the whole pipeline for one pass: with a single
/// in-flight batch, round r+1 depends on round r's token, so stages do not
/// overlap; the pass costs the sum of stage times plus transfers. When
/// `stage_s` is non-null it accumulates each stage's share (embedding to
/// the first non-empty stage, a transfer to its receiving stage) so the
/// health monitor can attribute a dispatch's cost per stage.
double pass_time(const ModelSpec& model, const ClusterSpec& cluster,
                 const ExecutionPlan& plan, Phase phase, int batch,
                 int seq_or_ctx, std::vector<double>* stage_s = nullptr) {
  double total = 0.0;
  int prev_dev = -1;
  bool first = true;
  for (int p = 0; p < plan.num_stages(); ++p) {
    if (plan.stage_size(p) == 0) continue;
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    const GpuSpec& gpu = cluster.devices[static_cast<std::size_t>(dev)].gpu();
    const PhaseShape shape = phase == Phase::kPrefill
                                 ? prefill_shape(batch, seq_or_ctx)
                                 : decode_shape(batch, seq_or_ctx);
    double stage_t = 0.0;
    for (int bits : plan.stage_bits(p))
      stage_t += layer_time_ground_truth(gpu, model, shape, bits);
    if (first) {
      const std::int64_t tokens =
          phase == Phase::kPrefill
              ? static_cast<std::int64_t>(batch) * seq_or_ctx
              : static_cast<std::int64_t>(batch);
      stage_t += embedding_time_ground_truth(gpu, model, tokens);
      first = false;
    }
    if (prev_dev >= 0 && prev_dev != dev)
      stage_t += cluster.link(prev_dev, dev)
                     .transfer_time(activation_bytes(model, shape));
    prev_dev = dev;
    total += stage_t;
    if (stage_s != nullptr && p < static_cast<int>(stage_s->size()))
      (*stage_s)[static_cast<std::size_t>(p)] += stage_t;
  }
  return total;
}

}  // namespace

OnlineSimResult simulate_online(const ModelSpec& model,
                                const ClusterSpec& cluster,
                                const ExecutionPlan& plan,
                                const std::vector<OnlineRequest>& requests,
                                const OnlineSimOptions& options,
                                const FaultPlan& faults,
                                const OnlineReplanOptions* replan) {
  OnlineSimResult result;
  plan.validate(model.layers, cluster.num_devices());
  check_arg(replan == nullptr || replan->cost != nullptr,
            "simulate_online: OnlineReplanOptions needs a cost provider");

  // The plan's memory feasibility gates the run exactly like offline.
  {
    const SimResult probe = simulate_plan(model, cluster, plan);
    if (!probe.ok) {
      result.error = probe.error;
      return result;
    }
  }

  // Same decision logic as the runtime back-end (serve/online_engine.cpp);
  // only the cost of each dispatched pass differs — here it comes from the
  // roofline ground truth instead of a wall clock.
  ServeScheduler scheduler(options);
  // Simulated serving lifecycles land on the sim pid, so a sim run and a
  // runtime run of the same trace are distinct tracks in one trace file.
  scheduler.enable_trace(trace_pids::kSim, 0.0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    ServeRequest r;
    r.id = static_cast<int>(i);  // ids index the input vector
    r.arrival_s = requests[i].arrival_s;
    r.prompt_len = requests[i].prompt_len;
    r.gen_tokens = requests[i].gen_tokens;
    r.tenant_id = requests[i].tenant_id;
    r.req_class = requests[i].req_class;
    scheduler.submit(r);
  }
  scheduler.close();

  // Virtual-clock mirror of the runtime fault injector (same plan format;
  // local lottery, so concurrent sims never share state). One "sim.dispatch"
  // draw per decision: a delay rule makes the dispatch a straggler, any
  // other kind fails it and exercises the retry/backoff/kFailed machinery.
  FaultLottery lottery(faults);
  const bool faults_armed = !faults.empty();

  // Control-loop mirror: the plan evolves inside the run exactly like the
  // runtime's MigrationController plan does, and the same HealthMonitor /
  // Replanner pair makes the decisions — only the sample's clock differs.
  ExecutionPlan cur_plan = plan;
  std::optional<HealthMonitor> monitor;
  std::optional<Replanner> replanner;
  if (replan != nullptr) {
    monitor.emplace(replan->health);
    replanner.emplace(*replan->cost, replan->indicator, replan->theta);
  }

  double t = 0.0;
  for (;;) {
    SchedulerAction a = scheduler.next(t);
    if (a.kind == SchedulerAction::Kind::kDone) break;
    if (a.kind == SchedulerAction::Kind::kWait) {
      check_arg(std::isfinite(a.wait_until),
                "simulate_online: scheduler blocked on a closed stream");
      t = std::max(t, a.wait_until);
      continue;
    }
    const DispatchDecision d = std::move(a.decision);
    const int batch = static_cast<int>(d.request_ids.size());
    std::vector<double> stage_busy(
        static_cast<std::size_t>(cur_plan.num_stages()), 0.0);
    double straggle = 0.0;
    bool dispatch_failed = false;
    if (faults_armed) {
      const FaultAction fa = lottery.check("sim.dispatch");
      if (fa.kind != FaultKind::kNone) ++result.fault_events;
      if (fa.kind == FaultKind::kDelay) {
        straggle = fa.delay_s;
      } else if (fa.kind != FaultKind::kNone) {
        scheduler.fail(d, t);
        continue;
      }
      // Per-stage serving sites, one draw per decision per plan stage —
      // the cadence the runtime serving loop uses. A delay/slow firing is
      // charged per layer of the stage, so a migration that moves layers
      // off the straggler shrinks the drag on the virtual clock; any
      // other kind fails the dispatch (and, like the runtime, stops
      // evaluating later stages' sites for this attempt).
      for (int p = 0; p < cur_plan.num_stages(); ++p) {
        const FaultAction sa =
            lottery.check(("serve.stage." + std::to_string(p)).c_str());
        if (sa.kind == FaultKind::kNone) continue;
        ++result.fault_events;
        if (sa.kind == FaultKind::kDelay || sa.kind == FaultKind::kSlow) {
          const double drag = sa.delay_s * cur_plan.stage_size(p);
          straggle += drag;
          stage_busy[static_cast<std::size_t>(p)] += drag;
        } else if (sa.kind != FaultKind::kDrop) {
          scheduler.fail(d, t);
          dispatch_failed = true;
          break;
        }
      }
      if (dispatch_failed) continue;
    }
    double finish;
    double prefill_end = -1.0;
    if (d.phase == ServePhase::kPrefillPass) {
      prefill_end = t + straggle +
                    pass_time(model, cluster, cur_plan, Phase::kPrefill,
                              batch, d.padded_prompt, &stage_busy);
      finish = prefill_end;
      if (options.policy == SchedulerPolicy::kStaticBatching) {
        // Static batching runs the whole padded generation as one unit;
        // the batch stays intact until its longest request finishes.
        for (int round = 1; round < d.padded_gen; ++round)
          finish += pass_time(model, cluster, cur_plan, Phase::kDecode,
                              batch, d.padded_prompt + round, &stage_busy);
      }
    } else if (options.exec == DecodeExec::kReplay) {
      // Replay decode re-runs every active context for one token, so the
      // round costs a prefill-shaped pass over the padded context — the
      // cost model the session path is benchmarked against.
      finish = t + straggle +
               pass_time(model, cluster, cur_plan, Phase::kPrefill, batch,
                         d.max_context, &stage_busy);
    } else if (options.exec == DecodeExec::kContinuous && d.num_join > 0) {
      // Mixed continuous round: the joining rows' ride-along prefill runs
      // first (mirroring the SessionExecutor's prefill-then-decode call
      // order), then the continuing rows decode one token each.
      prefill_end = t + straggle +
                    pass_time(model, cluster, cur_plan, Phase::kPrefill,
                              d.num_join, d.padded_prompt, &stage_busy);
      finish = prefill_end +
               pass_time(model, cluster, cur_plan, Phase::kDecode,
                         batch - d.num_join, d.max_context, &stage_busy);
    } else {
      finish = t + straggle +
               pass_time(model, cluster, cur_plan, Phase::kDecode, batch,
                         d.max_context, &stage_busy);
    }
    scheduler.complete(d, finish, prefill_end);
    // Health sample + re-plan decision, mirroring ControlLoop::
    // after_dispatch in serve/online_engine.cpp field for field. An
    // applied delta mutates the working plan; the next decision runs on
    // it (the runtime swaps engines at the same point).
    if (monitor) {
      HealthSample sample;
      sample.seq = d.seq;
      sample.dispatch_s = finish - t;
      sample.stage_busy_s = stage_busy;
      sample.queue_depth = scheduler.pending();
      sample.preemptions = scheduler.preemptions();
      sample.mem_faults = 0;  // the sim has no allocator to fault
      const HealthVerdict verdict = monitor->observe(sample);
      if (!verdict.healthy()) {
        ReplanEvent ev;
        ev.at_seq = verdict.at_seq;
        ev.status = verdict.status;
        ev.bottleneck_stage = verdict.bottleneck_stage;
        ev.severity = verdict.severity;
        ev.delta = replanner->propose(cur_plan, verdict);
        ev.applied = ev.delta.kind != PlanDeltaKind::kNone;
        if (ev.applied) {
          cur_plan = Replanner::apply(cur_plan, ev.delta);
          ++result.migrations;
        }
        result.replans.push_back(ev);
      }
    }
    t = finish;
  }

  // Served requests only: a run that times half its requests out must not
  // report them as throughput (mirrors the runtime report).
  std::int64_t tokens_out = 0;
  int completed = 0;
  std::vector<double> latencies, queue_delays, prefills;
  for (const RequestStats& r : scheduler.finished()) {
    if (r.outcome != RequestOutcome::kCompleted) continue;
    ++completed;
    tokens_out += r.gen_tokens;  // useful (unpadded) tokens
    latencies.push_back(r.finish_s - r.arrival_s);
    queue_delays.push_back(r.queue_delay_s);
    prefills.push_back(r.prefill_s);
  }
  const OutcomeCounts oc = scheduler.outcomes();
  result.timed_out = oc.timed_out;
  result.rejected = oc.rejected;
  result.failed = oc.failed;
  result.retries = oc.retries;
  result.ok = true;
  result.completed = completed;
  result.makespan_s = t;
  result.throughput_tokens_per_s =
      t > 0.0 ? static_cast<double>(tokens_out) / t : 0.0;
  if (!latencies.empty()) {
    result.mean_latency_s = mean(latencies);
    result.p95_latency_s = percentile(latencies, 95);
    result.p99_latency_s = percentile(latencies, 99);
    result.mean_queue_delay_s = mean(queue_delays);
    result.mean_prefill_s = mean(prefills);
  }
  result.preemptions = scheduler.preemptions();
  result.forced_joins = scheduler.forced_joins();
  result.tenants = scheduler.tenant_summaries();
  result.requests = scheduler.finished();
  result.decisions = scheduler.decision_log();
  result.final_plan = cur_plan;
  return result;
}

}  // namespace llmpq
