#pragma once

#include <cstdint>
#include <vector>

namespace llmpq {

/// Multiple-choice knapsack: pick exactly one option per item, minimizing
/// total value subject to a weight (byte) capacity. Used by the adabits
/// planner to choose per-layer bitwidths inside one pipeline stage:
/// options are bitwidths, weight = memory footprint, value = quality
/// perturbation omega.
struct MckpOption {
  std::int64_t weight = 0;
  double value = 0.0;
};

struct MckpResult {
  bool feasible = false;
  double total_value = 0.0;
  std::int64_t total_weight = 0;
  std::vector<int> choice;  ///< option index per item
};

/// Exact DP over discretized capacity. `buckets` trades precision for
/// speed; weights are rounded *up* to bucket granularity so the returned
/// selection never exceeds `capacity` in true weight.
MckpResult solve_mckp(const std::vector<std::vector<MckpOption>>& items,
                      std::int64_t capacity, int buckets = 2048);

}  // namespace llmpq
