#pragma once

#include <cstdint>
#include <vector>

namespace llmpq {

/// Multiple-choice knapsack: pick exactly one option per item, minimizing
/// total value subject to a weight (byte) capacity. Used by the adabits
/// planner to choose per-layer bitwidths inside one pipeline stage:
/// options are bitwidths, weight = memory footprint, value = quality
/// perturbation omega.
struct MckpOption {
  std::int64_t weight = 0;
  double value = 0.0;
};

struct MckpResult {
  bool feasible = false;
  double total_value = 0.0;
  std::int64_t total_weight = 0;
  std::vector<int> choice;  ///< option index per item
};

/// DP over the bucketized *cumulative* weight. `buckets` trades precision
/// for speed: each DP state carries the exact weight of its representative
/// selection, so feasibility is always checked against the true capacity
/// (the returned selection never exceeds `capacity`, and near-capacity
/// selections are not rejected by rounding — the discretization only
/// merges same-bucket states, keeping the min-value / min-weight one).
MckpResult solve_mckp(const std::vector<std::vector<MckpOption>>& items,
                      std::int64_t capacity, int buckets = 2048);

}  // namespace llmpq
