#include "solver/mckp.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace llmpq {

MckpResult solve_mckp(const std::vector<std::vector<MckpOption>>& items,
                      std::int64_t capacity, int buckets) {
  check_arg(buckets >= 1, "solve_mckp: buckets must be positive");
  MckpResult result;
  if (items.empty()) {
    result.feasible = capacity >= 0;
    return result;
  }
  if (capacity < 0) return result;
  for (const auto& options : items)
    check_arg(!options.empty(), "solve_mckp: item with no options");

  const std::int64_t bucket_size =
      std::max<std::int64_t>(1, (capacity + buckets - 1) / buckets);
  const int cap_buckets = static_cast<int>(capacity / bucket_size);

  // Bucketized (rounded-up) weights; options that alone exceed capacity are
  // marked unusable.
  const double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = items.size();
  const std::size_t width = static_cast<std::size_t>(cap_buckets) + 1;

  std::vector<double> dp(width, kInf);
  std::vector<double> next(width, kInf);
  // choice_at[i][c] = option chosen for item i when ending at bucket c.
  std::vector<std::vector<std::int16_t>> choice_at(
      n, std::vector<std::int16_t>(width, -1));

  dp[0] = 0.0;
  // dp over prefix of items; dp[c] = min value with total bucketized
  // weight exactly... no — "at most c" formulation: we propagate minima.
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(next.begin(), next.end(), kInf);
    for (std::size_t c = 0; c < width; ++c) {
      if (dp[c] == kInf) continue;
      for (std::size_t o = 0; o < items[i].size(); ++o) {
        const auto& opt = items[i][o];
        check_arg(opt.weight >= 0, "solve_mckp: negative weight");
        const std::int64_t wb = (opt.weight + bucket_size - 1) / bucket_size;
        const std::size_t nc = c + static_cast<std::size_t>(wb);
        if (nc >= width) continue;
        const double val = dp[c] + opt.value;
        if (val < next[nc]) {
          next[nc] = val;
          choice_at[i][nc] = static_cast<std::int16_t>(o);
        }
      }
    }
    dp.swap(next);
  }

  // Find the best end bucket.
  double best = kInf;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < width; ++c) {
    if (dp[c] < best) {
      best = dp[c];
      best_c = c;
    }
  }
  if (best == kInf) return result;

  // Backtrack. Recompute predecessor buckets from the stored choices.
  result.choice.assign(n, -1);
  std::size_t c = best_c;
  for (std::size_t ii = n; ii-- > 0;) {
    const int o = choice_at[ii][c];
    check_arg(o >= 0, "solve_mckp: backtrack failure");
    result.choice[ii] = o;
    const auto& opt = items[ii][static_cast<std::size_t>(o)];
    const std::int64_t wb = (opt.weight + bucket_size - 1) / bucket_size;
    c -= static_cast<std::size_t>(wb);
    result.total_weight += opt.weight;
    result.total_value += opt.value;
  }
  result.feasible = true;
  return result;
}

}  // namespace llmpq
