#include "solver/mckp.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace llmpq {

MckpResult solve_mckp(const std::vector<std::vector<MckpOption>>& items,
                      std::int64_t capacity, int buckets) {
  check_arg(buckets >= 1, "solve_mckp: buckets must be positive");
  check_arg(buckets <= 32767, "solve_mckp: buckets exceeds backtrack range");
  MckpResult result;
  if (items.empty()) {
    result.feasible = capacity >= 0;
    return result;
  }
  if (capacity < 0) return result;
  for (const auto& options : items)
    check_arg(!options.empty(), "solve_mckp: item with no options");

  const std::int64_t bucket_size =
      std::max<std::int64_t>(1, (capacity + buckets - 1) / buckets);
  const int cap_buckets = static_cast<int>(capacity / bucket_size);

  // DP over the bucketized *cumulative* weight. Each state carries the
  // exact weight of its representative selection, so (a) feasibility is
  // checked against the true capacity, never a rounded one — per-option
  // ceil-rounding used to lose up to n * bucket_size of capacity and
  // reject feasible near-capacity assignments — and (b) the reported
  // total_weight is exact. States falling in the same bucket are merged
  // keeping the min value (ties: min exact weight), which is where the
  // bounded discretization error lives.
  const double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = items.size();
  const std::size_t width = static_cast<std::size_t>(cap_buckets) + 1;

  struct State {
    double value;
    std::int64_t weight;  ///< exact cumulative weight of the representative
  };
  std::vector<State> dp(width, {kInf, 0});
  std::vector<State> next(width, {kInf, 0});
  // Backtrack info per (item, end bucket): the chosen option and the
  // predecessor bucket (no longer derivable from the option weight alone).
  struct Step {
    std::int16_t choice = -1;
    std::int16_t prev = -1;
  };
  std::vector<std::vector<Step>> step_at(n, std::vector<Step>(width));

  dp[0] = {0.0, 0};
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(next.begin(), next.end(), State{kInf, 0});
    for (std::size_t c = 0; c < width; ++c) {
      if (dp[c].value == kInf) continue;
      for (std::size_t o = 0; o < items[i].size(); ++o) {
        const auto& opt = items[i][o];
        check_arg(opt.weight >= 0, "solve_mckp: negative weight");
        const std::int64_t nw = dp[c].weight + opt.weight;
        if (nw > capacity) continue;
        const std::size_t nc = static_cast<std::size_t>(nw / bucket_size);
        const double val = dp[c].value + opt.value;
        if (val < next[nc].value ||
            (val == next[nc].value && nw < next[nc].weight)) {
          next[nc] = {val, nw};
          step_at[i][nc] = {static_cast<std::int16_t>(o),
                            static_cast<std::int16_t>(c)};
        }
      }
    }
    dp.swap(next);
  }

  // Find the best end bucket.
  double best = kInf;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < width; ++c) {
    if (dp[c].value < best) {
      best = dp[c].value;
      best_c = c;
    }
  }
  if (best == kInf) return result;

  // Backtrack along the stored (choice, predecessor-bucket) chain.
  result.choice.assign(n, -1);
  std::size_t c = best_c;
  for (std::size_t ii = n; ii-- > 0;) {
    const Step step = step_at[ii][c];
    check_arg(step.choice >= 0, "solve_mckp: backtrack failure");
    result.choice[ii] = step.choice;
    const auto& opt = items[ii][static_cast<std::size_t>(step.choice)];
    c = static_cast<std::size_t>(step.prev);
    result.total_weight += opt.weight;
    result.total_value += opt.value;
  }
  result.feasible = true;
  return result;
}

}  // namespace llmpq
