#pragma once

#include <limits>
#include <string>
#include <vector>

namespace llmpq {

inline constexpr double kLpInf = std::numeric_limits<double>::infinity();

/// Linear program in the form
///   minimize    c^T x
///   subject to  row_i: a_i^T x  (<= | >= | =)  b_i
///               lower_j <= x_j <= upper_j
/// Rows hold sparse coefficient lists. This mirrors the slice of the Gurobi
/// API the paper's assigner uses.
class LpProblem {
 public:
  enum class RowType { kLe, kGe, kEq };

  struct Row {
    std::vector<std::pair<int, double>> coeffs;
    RowType type = RowType::kLe;
    double rhs = 0.0;
    std::string name;
  };

  /// Adds a variable, returns its column index.
  int add_var(double lower, double upper, double objective,
              std::string name = {});

  /// Adds a binary (0/1) variable — bound sugar; integrality is tracked by
  /// MilpProblem, not here.
  int add_binary(double objective, std::string name = {});

  void add_row(std::vector<std::pair<int, double>> coeffs, RowType type,
               double rhs, std::string name = {});

  int num_vars() const { return static_cast<int>(lower_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& lower() const { return lower_; }
  const std::vector<double>& upper() const { return upper_; }
  const std::vector<Row>& rows() const { return rows_; }
  const std::string& var_name(int j) const { return names_[static_cast<std::size_t>(j)]; }

  void set_bounds(int var, double lower, double upper);
  void set_objective_coeff(int var, double coeff);

 private:
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
  int iterations = 0;
};

const char* lp_status_name(LpStatus status);

}  // namespace llmpq
