#include "solver/dp_partition.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace llmpq {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

PartitionResult run_dp(int num_layers, int num_devices,
                       const StageCostFn& cost, bool min_max) {
  check_arg(num_layers >= 0 && num_devices >= 1, "partition: bad sizes");
  const int L = num_layers, N = num_devices;
  // f[j][i]: best objective assigning the first i layers to the first j
  // devices. combine = max or +.
  std::vector<std::vector<double>> f(
      static_cast<std::size_t>(N) + 1,
      std::vector<double>(static_cast<std::size_t>(L) + 1, kInf));
  std::vector<std::vector<int>> arg(
      static_cast<std::size_t>(N) + 1,
      std::vector<int>(static_cast<std::size_t>(L) + 1, -1));
  f[0][0] = min_max ? 0.0 : 0.0;

  for (int j = 1; j <= N; ++j) {
    for (int i = 0; i <= L; ++i) {
      for (int k = 0; k <= i; ++k) {
        const double prev = f[static_cast<std::size_t>(j - 1)]
                             [static_cast<std::size_t>(k)];
        if (prev == kInf) continue;
        const double stage = (k == i) ? 0.0 : cost(k, i, j - 1);
        if (stage == kInf) continue;
        const double combined = min_max ? std::max(prev, stage) : prev + stage;
        auto& cell =
            f[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
        if (combined < cell) {
          cell = combined;
          arg[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = k;
        }
      }
    }
  }

  PartitionResult result;
  if (f[static_cast<std::size_t>(N)][static_cast<std::size_t>(L)] == kInf)
    return result;
  result.feasible = true;
  result.objective = f[static_cast<std::size_t>(N)][static_cast<std::size_t>(L)];
  result.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);
  result.boundaries[static_cast<std::size_t>(N)] = L;
  int i = L;
  for (int j = N; j >= 1; --j) {
    const int k =
        arg[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)];
    result.boundaries[static_cast<std::size_t>(j - 1)] = k;
    i = k;
  }
  return result;
}

}  // namespace

PartitionResult partition_min_max(int num_layers, int num_devices,
                                  const StageCostFn& cost) {
  return run_dp(num_layers, num_devices, cost, /*min_max=*/true);
}

PartitionResult partition_min_sum(int num_layers, int num_devices,
                                  const StageCostFn& cost) {
  return run_dp(num_layers, num_devices, cost, /*min_max=*/false);
}

}  // namespace llmpq
