#include "solver/lp.hpp"

#include "common/error.hpp"

namespace llmpq {

int LpProblem::add_var(double lower, double upper, double objective,
                       std::string name) {
  check_arg(lower <= upper, "LpProblem::add_var: empty bound interval");
  lower_.push_back(lower);
  upper_.push_back(upper);
  objective_.push_back(objective);
  names_.push_back(name.empty() ? "x" + std::to_string(lower_.size() - 1)
                                : std::move(name));
  return num_vars() - 1;
}

int LpProblem::add_binary(double objective, std::string name) {
  return add_var(0.0, 1.0, objective, std::move(name));
}

void LpProblem::add_row(std::vector<std::pair<int, double>> coeffs,
                        RowType type, double rhs, std::string name) {
  for (const auto& [col, coef] : coeffs) {
    check_arg(col >= 0 && col < num_vars(), "LpProblem::add_row: bad column");
    (void)coef;
  }
  rows_.push_back(Row{std::move(coeffs), type, rhs, std::move(name)});
}

void LpProblem::set_bounds(int var, double lower, double upper) {
  check_arg(var >= 0 && var < num_vars(), "set_bounds: bad var");
  check_arg(lower <= upper, "set_bounds: empty interval");
  lower_[static_cast<std::size_t>(var)] = lower;
  upper_[static_cast<std::size_t>(var)] = upper;
}

void LpProblem::set_objective_coeff(int var, double coeff) {
  check_arg(var >= 0 && var < num_vars(), "set_objective_coeff: bad var");
  objective_[static_cast<std::size_t>(var)] = coeff;
}

const char* lp_status_name(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterLimit:
      return "iteration-limit";
  }
  return "?";
}

}  // namespace llmpq
