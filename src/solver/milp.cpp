#include "solver/milp.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace llmpq {

const char* milp_status_name(MilpStatus status) {
  switch (status) {
    case MilpStatus::kOptimal:
      return "optimal";
    case MilpStatus::kFeasible:
      return "feasible";
    case MilpStatus::kInfeasible:
      return "infeasible";
    case MilpStatus::kNoSolution:
      return "no-solution";
  }
  return "?";
}

namespace {

struct Node {
  // Sparse bound overrides relative to the root problem.
  std::vector<std::pair<int, std::pair<double, double>>> bounds;
  double parent_bound = -kLpInf;
  int depth = 0;
};

bool warm_start_feasible(const MilpProblem& p, const std::vector<double>& x,
                         double int_tol) {
  if (static_cast<int>(x.size()) != p.lp.num_vars()) return false;
  for (int j = 0; j < p.lp.num_vars(); ++j) {
    const double v = x[static_cast<std::size_t>(j)];
    if (v < p.lp.lower()[static_cast<std::size_t>(j)] - 1e-6 ||
        v > p.lp.upper()[static_cast<std::size_t>(j)] + 1e-6)
      return false;
  }
  for (int jv : p.integer_vars) {
    const double v = x[static_cast<std::size_t>(jv)];
    if (std::fabs(v - std::round(v)) > int_tol) return false;
  }
  for (const auto& row : p.lp.rows()) {
    double lhs = 0.0;
    for (const auto& [col, coef] : row.coeffs)
      lhs += coef * x[static_cast<std::size_t>(col)];
    const double slack = row.rhs - lhs;
    if (row.type == LpProblem::RowType::kLe && slack < -1e-6) return false;
    if (row.type == LpProblem::RowType::kGe && slack > 1e-6) return false;
    if (row.type == LpProblem::RowType::kEq && std::fabs(slack) > 1e-6)
      return false;
  }
  return true;
}

double objective_of(const LpProblem& lp, const std::vector<double>& x) {
  double z = 0.0;
  for (int j = 0; j < lp.num_vars(); ++j)
    z += lp.objective()[static_cast<std::size_t>(j)] *
         x[static_cast<std::size_t>(j)];
  return z;
}

}  // namespace

MilpSolution solve_milp(const MilpProblem& problem,
                        const MilpOptions& options) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(clock::now() - start).count();
  };

  MilpSolution best;
  best.objective = std::numeric_limits<double>::infinity();

  // Cross-solver incumbent pool (see MilpOptions::shared_incumbent):
  // relaxed atomics suffice — the value only ever decreases, and a stale
  // read merely prunes less.
  auto shared_value = [&] {
    return options.shared_incumbent
               ? options.shared_incumbent->load(std::memory_order_relaxed)
               : kLpInf;
  };
  auto publish_incumbent = [&](double obj) {
    if (options.shared_incumbent == nullptr) return;
    double cur = options.shared_incumbent->load(std::memory_order_relaxed);
    while (obj < cur && !options.shared_incumbent->compare_exchange_weak(
                            cur, obj, std::memory_order_relaxed))
      ;
  };
  // Min dual bound among subtrees pruned by the *shared* incumbent while
  // it sat below this solver's own: those subtrees could have held a
  // better own solution, so optimality can no longer be claimed.
  double shared_pruned_min = kLpInf;

  if (options.warm_start &&
      warm_start_feasible(problem, *options.warm_start, options.int_tol)) {
    best.status = MilpStatus::kFeasible;
    best.x = *options.warm_start;
    best.objective = objective_of(problem.lp, best.x);
    publish_incumbent(best.objective);
  }

  LpProblem work = problem.lp;  // bounds mutated per node, restored after

  std::vector<Node> stack;
  stack.push_back({});
  bool truncated = false;
  bool any_lp_feasible = false;
  double root_bound = -kLpInf;
  // Minimum dual bound over nodes abandoned with their LP unsolved (iter
  // limit): their subtrees are only covered by the parent objective.
  double dropped_bound = kLpInf;
  // Minimum dual bound over nodes pruned against the incumbent. Pruning
  // uses a gap_abs tolerance, so a pruned subtree may hold solutions up to
  // gap_abs below the incumbent — its recorded bound, not the incumbent,
  // is what is proven about it.
  double pruned_bound = kLpInf;

  while (!stack.empty()) {
    if (best.nodes_explored >= options.max_nodes ||
        elapsed() > options.time_limit_s) {
      truncated = true;
      break;
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (node.parent_bound >= best.objective - options.gap_abs) {
      pruned_bound = std::min(pruned_bound, node.parent_bound);
      continue;
    }
    // Shared-incumbent pruning is strictly-greater on purpose: a subtree
    // whose bound ties the pooled best may still hold the solution that
    // *is* the pooled best, and must stay searchable for determinism.
    if (node.parent_bound > shared_value()) {
      pruned_bound = std::min(pruned_bound, node.parent_bound);
      if (node.parent_bound < best.objective)
        shared_pruned_min = std::min(shared_pruned_min, node.parent_bound);
      continue;
    }
    ++best.nodes_explored;

    // Apply node bounds.
    std::vector<std::pair<int, std::pair<double, double>>> saved;
    saved.reserve(node.bounds.size());
    for (const auto& [col, bd] : node.bounds) {
      saved.push_back({col,
                       {work.lower()[static_cast<std::size_t>(col)],
                        work.upper()[static_cast<std::size_t>(col)]}});
      const double lo = std::max(bd.first, saved.back().second.first);
      const double hi = std::min(bd.second, saved.back().second.second);
      if (lo > hi) {  // empty intersection: infeasible node
        for (auto it = saved.rbegin(); it != saved.rend(); ++it)
          work.set_bounds(it->first, it->second.first, it->second.second);
        saved.clear();
        break;
      }
      work.set_bounds(col, lo, hi);
    }
    if (saved.size() != node.bounds.size()) continue;

    const LpSolution relax = solve_lp(work, options.simplex);

    // Restore bounds.
    for (auto it = saved.rbegin(); it != saved.rend(); ++it)
      work.set_bounds(it->first, it->second.first, it->second.second);

    if (relax.status == LpStatus::kInfeasible) continue;
    if (relax.status == LpStatus::kUnbounded)
      throw Error("solve_milp: relaxation unbounded (missing bounds?)");
    if (relax.status == LpStatus::kIterLimit) {
      truncated = true;
      dropped_bound = std::min(dropped_bound, node.parent_bound);
      continue;
    }
    any_lp_feasible = true;
    if (node.depth == 0) root_bound = relax.objective;
    if (relax.objective >= best.objective - options.gap_abs) {
      pruned_bound = std::min(pruned_bound, relax.objective);
      continue;
    }
    if (relax.objective > shared_value()) {
      pruned_bound = std::min(pruned_bound, relax.objective);
      if (relax.objective < best.objective)
        shared_pruned_min = std::min(shared_pruned_min, relax.objective);
      continue;
    }

    // Find most fractional integer variable.
    int branch_var = -1;
    double branch_frac = 0.0;
    for (int jv : problem.integer_vars) {
      const double v = relax.x[static_cast<std::size_t>(jv)];
      const double frac = std::fabs(v - std::round(v));
      if (frac > options.int_tol && frac > branch_frac) {
        branch_frac = frac;
        branch_var = jv;
      }
    }

    if (branch_var < 0) {
      // Integral: new incumbent.
      best.objective = relax.objective;
      best.x = relax.x;
      for (int jv : problem.integer_vars) {
        auto& v = best.x[static_cast<std::size_t>(jv)];
        v = std::round(v);
      }
      best.status = MilpStatus::kFeasible;
      publish_incumbent(best.objective);
      continue;
    }

    const double v = relax.x[static_cast<std::size_t>(branch_var)];
    const double fl = std::floor(v);
    Node down;
    down.bounds = node.bounds;
    down.bounds.push_back({branch_var, {-kLpInf, fl}});
    down.parent_bound = relax.objective;
    down.depth = node.depth + 1;
    Node up;
    up.bounds = node.bounds;
    up.bounds.push_back({branch_var, {fl + 1.0, kLpInf}});
    up.parent_bound = relax.objective;
    up.depth = node.depth + 1;
    // Dive toward the nearer integer first (pushed last = explored first).
    if (v - fl < 0.5) {
      stack.push_back(std::move(up));
      stack.push_back(std::move(down));
    } else {
      stack.push_back(std::move(down));
      stack.push_back(std::move(up));
    }
  }

  best.solve_time_s = elapsed();
  // Tighten the dual bound past the root relaxation: every unexplored
  // subtree is one of (a) an open node left on the stack at truncation,
  // (b) a node dropped at the LP iteration limit, or (c) pruned against
  // the incumbent, with its dual bound recorded at prune time (possibly up
  // to gap_abs below the incumbent). Every explored integral leaf is >=
  // the incumbent by construction, so min(frontier, incumbent) is a proven
  // bound; it collapses to the incumbent itself when the search exhausts
  // without gap-tolerance pruning.
  double frontier = std::min(dropped_bound, pruned_bound);
  for (const Node& n : stack) frontier = std::min(frontier, n.parent_bound);
  best.best_bound = std::max(root_bound, std::min(frontier, best.objective));
  // A subtree shared-pruned below our own incumbent might have held a
  // better own solution — the pooled search covers it, but *this* solve
  // cannot claim optimality for its subproblem.
  if (best.status == MilpStatus::kFeasible && !truncated &&
      shared_pruned_min >= best.objective)
    best.status = MilpStatus::kOptimal;
  if (best.status == MilpStatus::kNoSolution && !truncated &&
      !any_lp_feasible)
    best.status = MilpStatus::kInfeasible;
  if (best.status == MilpStatus::kNoSolution && !truncated && any_lp_feasible)
    best.status = MilpStatus::kInfeasible;  // all integral leaves pruned/infeasible
  return best;
}

}  // namespace llmpq
