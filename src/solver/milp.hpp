#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "solver/lp.hpp"
#include "solver/simplex.hpp"

namespace llmpq {

/// Mixed-integer program: an LpProblem plus integrality marks.
struct MilpProblem {
  LpProblem lp;
  std::vector<int> integer_vars;  ///< columns required to be integral
};

struct MilpOptions {
  double time_limit_s = 60.0;
  int max_nodes = 500000;
  double int_tol = 1e-6;
  double gap_abs = 1e-6;  ///< prune nodes within this of the incumbent
  SimplexOptions simplex;
  /// Optional feasible start (full x vector); its objective seeds the
  /// incumbent so branch-and-bound can prune immediately — this is how the
  /// assigner warm-starts the ILP from the bitwidth-transfer heuristic.
  std::optional<std::vector<double>> warm_start;
  /// Optional cross-solver incumbent objective, shared by concurrent
  /// solves of *comparable* problems (the assigner's parallel Pass 2:
  /// every refined combo minimizes the same latency + theta * penalty
  /// scale). Each solver publishes improving incumbents into it and
  /// additionally prunes nodes whose dual bound is *strictly above* the
  /// shared value. The strict comparison is what keeps the pooled search
  /// deterministic in its outcome: a subtree containing a solution equal
  /// to the global optimum can never be shared-pruned (its bound is <=
  /// the optimum <= the shared value), so the best objective across the
  /// pool is schedule-independent even though per-solver node counts are
  /// not. When shared pruning discards a subtree that could have beaten
  /// this solver's own incumbent, the solver reports kFeasible rather
  /// than claiming optimality. nullptr disables sharing.
  std::atomic<double>* shared_incumbent = nullptr;
};

enum class MilpStatus {
  kOptimal,     ///< proved optimal
  kFeasible,    ///< feasible incumbent, search truncated (time/node limit)
  kInfeasible,  ///< no integral solution exists
  kNoSolution,  ///< truncated before any incumbent was found
};

struct MilpSolution {
  MilpStatus status = MilpStatus::kNoSolution;
  double objective = 0.0;
  std::vector<double> x;
  int nodes_explored = 0;
  double solve_time_s = 0.0;
  /// Proven lower bound on the optimum: the minimum dual bound over every
  /// unexplored subtree — open nodes at truncation, nodes dropped at the
  /// LP iteration limit, and nodes pruned against the incumbent (whose
  /// bounds can sit up to `gap_abs` below it) — clamped by the incumbent
  /// and never looser than the root relaxation. Within `gap_abs` of
  /// `objective` when optimal; equals it when no gap-tolerance pruning
  /// occurred.
  double best_bound = -kLpInf;
};

const char* milp_status_name(MilpStatus status);

/// Depth-first branch-and-bound over LP relaxations (most-fractional
/// branching, dive-toward-nearest-integer child first).
MilpSolution solve_milp(const MilpProblem& problem,
                        const MilpOptions& options = {});

}  // namespace llmpq
