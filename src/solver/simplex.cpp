#include "solver/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace llmpq {

namespace {

enum class VarState : unsigned char { kBasic, kAtLower, kAtUpper };

/// Dense bounded-variable two-phase tableau simplex.
///
/// Column layout: [structural | slack (one per inequality) | artificial
/// (one per row)]. After slacks every row is an equality; artificials give
/// the initial identity basis. Phase 1 minimizes the artificial sum; phase
/// 2 fixes artificials at zero and minimizes the real objective.
class Simplex {
 public:
  Simplex(const LpProblem& p, const SimplexOptions& opt) : opt_(opt) {
    build(p);
  }

  LpSolution run(const LpProblem& p) {
    LpSolution sol;
    // ---- Phase 1.
    set_phase1_costs();
    const LpStatus s1 = iterate();
    sol.iterations = iters_;
    if (s1 == LpStatus::kIterLimit) {
      sol.status = LpStatus::kIterLimit;
      return sol;
    }
    if (objective_value() > 1e-6) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
    // ---- Phase 2: fix artificials to zero, restore real costs.
    for (int j = art_begin_; j < num_cols_; ++j) {
      lower_[j] = 0.0;
      upper_[j] = 0.0;
      if (state_[j] == VarState::kAtUpper) state_[j] = VarState::kAtLower;
      value_[j] = 0.0;
    }
    set_phase2_costs(p);
    const LpStatus s2 = iterate();
    sol.iterations = iters_;
    sol.status = s2;
    if (s2 == LpStatus::kOptimal) {
      sol.objective = objective_value();
      // Basic variables' current values live in beta_; sync before export.
      for (int i = 0; i < num_rows_; ++i) value_[basis_[i]] = beta_[i];
      sol.x.resize(static_cast<std::size_t>(num_structural_));
      for (int j = 0; j < num_structural_; ++j)
        sol.x[static_cast<std::size_t>(j)] = value_[j];
    }
    return sol;
  }

 private:
  void build(const LpProblem& p) {
    num_structural_ = p.num_vars();
    const int m = p.num_rows();
    int num_slacks = 0;
    for (const auto& row : p.rows())
      if (row.type != LpProblem::RowType::kEq) ++num_slacks;
    slack_begin_ = num_structural_;
    art_begin_ = num_structural_ + num_slacks;
    num_cols_ = art_begin_ + m;
    num_rows_ = m;

    tab_.assign(static_cast<std::size_t>(m) * num_cols_, 0.0);
    lower_.assign(num_cols_, 0.0);
    upper_.assign(num_cols_, kLpInf);
    value_.assign(num_cols_, 0.0);
    state_.assign(num_cols_, VarState::kAtLower);
    cost_.assign(num_cols_, 0.0);
    d_.assign(num_cols_, 0.0);
    basis_.assign(m, -1);
    beta_.assign(m, 0.0);

    for (int j = 0; j < num_structural_; ++j) {
      lower_[j] = p.lower()[static_cast<std::size_t>(j)];
      upper_[j] = p.upper()[static_cast<std::size_t>(j)];
    }

    // Choose initial nonbasic resting values for structurals.
    for (int j = 0; j < num_structural_; ++j) {
      if (std::isfinite(lower_[j])) {
        state_[j] = VarState::kAtLower;
        value_[j] = lower_[j];
      } else if (std::isfinite(upper_[j])) {
        state_[j] = VarState::kAtUpper;
        value_[j] = upper_[j];
      } else {
        state_[j] = VarState::kAtLower;  // free var parked at 0
        value_[j] = 0.0;
      }
    }

    // Fill rows: structural coefficients + slack, then artificial identity.
    int slack = slack_begin_;
    for (int i = 0; i < m; ++i) {
      const auto& row = p.rows()[static_cast<std::size_t>(i)];
      double* t = row_ptr(i);
      for (const auto& [col, coef] : row.coeffs) t[col] += coef;
      if (row.type == LpProblem::RowType::kLe) {
        t[slack] = 1.0;
        lower_[slack] = 0.0;
        upper_[slack] = kLpInf;
        state_[slack] = VarState::kAtLower;
        value_[slack] = 0.0;
        ++slack;
      } else if (row.type == LpProblem::RowType::kGe) {
        t[slack] = -1.0;
        lower_[slack] = 0.0;
        upper_[slack] = kLpInf;
        state_[slack] = VarState::kAtLower;
        value_[slack] = 0.0;
        ++slack;
      }
      // Residual given nonbasic resting values.
      double residual = row.rhs;
      for (int j = 0; j < art_begin_; ++j) residual -= t[j] * value_[j];
      const double sign = residual >= 0.0 ? 1.0 : -1.0;
      if (sign < 0.0)
        for (int j = 0; j < art_begin_; ++j) t[j] = -t[j];
      const double rhs_mag = std::fabs(residual);
      rhs_sign_.push_back(sign);
      rhs_.push_back(sign * row.rhs);
      const int art = art_begin_ + i;
      t[art] = 1.0;
      lower_[art] = 0.0;
      upper_[art] = kLpInf;
      state_[art] = VarState::kBasic;
      basis_[i] = art;
      beta_[i] = rhs_mag;
      value_[art] = rhs_mag;
    }
  }

  double* row_ptr(int i) {
    return tab_.data() + static_cast<std::size_t>(i) * num_cols_;
  }

  void set_phase1_costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = art_begin_; j < num_cols_; ++j) cost_[j] = 1.0;
    recompute_reduced_costs();
  }

  void set_phase2_costs(const LpProblem& p) {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < num_structural_; ++j)
      cost_[j] = p.objective()[static_cast<std::size_t>(j)];
    recompute_reduced_costs();
  }

  // d_j = c_j - c_B^T (B^{-1} A)_j, computed from the current tableau.
  void recompute_reduced_costs() {
    d_ = cost_;
    for (int i = 0; i < num_rows_; ++i) {
      const double cb = cost_[basis_[i]];
      if (cb == 0.0) continue;
      const double* t = row_ptr(i);
      for (int j = 0; j < num_cols_; ++j) d_[j] -= cb * t[j];
    }
  }

  double objective_value() const {
    double z = 0.0;
    for (int j = 0; j < num_cols_; ++j)
      if (state_[j] != VarState::kBasic) z += cost_[j] * value_[j];
    for (int i = 0; i < num_rows_; ++i) z += cost_[basis_[i]] * beta_[i];
    return z;
  }

  LpStatus iterate() {
    int stall = 0;
    for (;;) {
      if (iters_ >= opt_.max_iterations) return LpStatus::kIterLimit;
      ++iters_;
      const bool bland = stall > 2 * (num_rows_ + num_cols_);

      // ---- Pricing: pick an entering column.
      int q = -1;
      double best = -opt_.cost_tol;
      double dir = 0.0;
      for (int j = 0; j < num_cols_; ++j) {
        if (state_[j] == VarState::kBasic) continue;
        if (lower_[j] == upper_[j]) continue;  // fixed
        double score = 0.0;
        double cand_dir = 0.0;
        const bool is_free =
            !std::isfinite(lower_[j]) && !std::isfinite(upper_[j]);
        if (is_free && std::fabs(d_[j]) > opt_.cost_tol) {
          score = -std::fabs(d_[j]);
          cand_dir = d_[j] > 0.0 ? -1.0 : 1.0;
        } else if (state_[j] == VarState::kAtLower && d_[j] < -opt_.cost_tol) {
          score = d_[j];
          cand_dir = 1.0;
        } else if (state_[j] == VarState::kAtUpper && d_[j] > opt_.cost_tol) {
          score = -d_[j];
          cand_dir = -1.0;
        } else {
          continue;
        }
        if (bland) {
          q = j;
          dir = cand_dir;
          break;
        }
        if (score < best) {
          best = score;
          q = j;
          dir = cand_dir;
        }
      }
      if (q < 0) return LpStatus::kOptimal;  // optimal

      // ---- Ratio test. Moving x_q by t*dir changes basic i by
      // -t*dir*T[i][q].
      double t_limit = kLpInf;
      // Entering variable's own opposite bound.
      if (std::isfinite(upper_[q]) && std::isfinite(lower_[q]))
        t_limit = upper_[q] - lower_[q];
      int leave_row = -1;
      double leave_bound = 0.0;  // bound the leaving var hits
      for (int i = 0; i < num_rows_; ++i) {
        const double alpha = dir * row_ptr(i)[q];
        if (std::fabs(alpha) < 1e-11) continue;
        const int bi = basis_[i];
        double t_i = kLpInf;
        double hit = 0.0;
        if (alpha > 0.0) {
          // beta decreases toward lower bound.
          if (std::isfinite(lower_[bi])) {
            t_i = (beta_[i] - lower_[bi]) / alpha;
            hit = lower_[bi];
          }
        } else {
          // beta increases toward upper bound.
          if (std::isfinite(upper_[bi])) {
            t_i = (upper_[bi] - beta_[i]) / (-alpha);
            hit = upper_[bi];
          }
        }
        if (t_i < -1e-12) t_i = 0.0;
        if (t_i < t_limit - 1e-12 ||
            (t_i < t_limit + 1e-12 && leave_row >= 0 && bland &&
             basis_[i] < basis_[leave_row])) {
          t_limit = t_i;
          leave_row = i;
          leave_bound = hit;
        }
      }

      if (!std::isfinite(t_limit)) return LpStatus::kUnbounded;
      if (t_limit < 1e-12)
        ++stall;
      else
        stall = 0;

      // Apply step to basic values.
      for (int i = 0; i < num_rows_; ++i)
        beta_[i] -= t_limit * dir * row_ptr(i)[q];
      const double new_q_value = value_[q] + t_limit * dir;

      if (leave_row < 0) {
        // Bound flip: x_q traverses to the opposite bound.
        value_[q] = new_q_value;
        state_[q] = (dir > 0.0) ? VarState::kAtUpper : VarState::kAtLower;
        continue;
      }

      // ---- Pivot basis_[leave_row] out, q in.
      const int leaving = basis_[leave_row];
      value_[leaving] = leave_bound;
      state_[leaving] = (std::fabs(leave_bound - lower_[leaving]) <
                         std::fabs(leave_bound - upper_[leaving]))
                            ? VarState::kAtLower
                            : VarState::kAtUpper;
      basis_[leave_row] = q;
      state_[q] = VarState::kBasic;
      beta_[leave_row] = new_q_value;

      double* prow = row_ptr(leave_row);
      const double piv = prow[q];
      check_arg(std::fabs(piv) > 1e-12, "simplex: zero pivot");
      const double inv_piv = 1.0 / piv;
      for (int j = 0; j < num_cols_; ++j) prow[j] *= inv_piv;
      prow[q] = 1.0;
      for (int i = 0; i < num_rows_; ++i) {
        if (i == leave_row) continue;
        double* t = row_ptr(i);
        const double f = t[q];
        if (f == 0.0) continue;
        for (int j = 0; j < num_cols_; ++j) t[j] -= f * prow[j];
        t[q] = 0.0;
      }
      {
        const double f = d_[q];
        if (f != 0.0) {
          for (int j = 0; j < num_cols_; ++j) d_[j] -= f * prow[j];
          d_[q] = 0.0;
        }
      }
    }
  }

  const SimplexOptions opt_;
  int num_structural_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int num_cols_ = 0;
  int num_rows_ = 0;
  int iters_ = 0;

  std::vector<double> tab_;
  std::vector<double> lower_, upper_, value_, cost_, d_;
  std::vector<VarState> state_;
  std::vector<int> basis_;
  std::vector<double> beta_;
  std::vector<double> rhs_, rhs_sign_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const SimplexOptions& options) {
  Simplex s(problem, options);
  return s.run(problem);
}

}  // namespace llmpq
