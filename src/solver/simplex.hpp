#pragma once

#include "solver/lp.hpp"

namespace llmpq {

struct SimplexOptions {
  int max_iterations = 200000;
  double feas_tol = 1e-7;   ///< bound / constraint feasibility tolerance
  double cost_tol = 1e-9;   ///< reduced-cost optimality tolerance
};

/// Solves an LpProblem with a dense two-phase primal simplex supporting
/// general variable bounds (nonbasic variables rest at either bound, with
/// bound-flip pivots). Suitable for the mid-sized, well-scaled LPs the
/// planner's branch-and-bound produces (hundreds of rows and columns).
LpSolution solve_lp(const LpProblem& problem,
                    const SimplexOptions& options = {});

}  // namespace llmpq
