#pragma once

#include <functional>
#include <vector>

namespace llmpq {

/// Cost of assigning the contiguous layer range [begin, end) to device
/// `device`. Return +inf (or any huge value) for infeasible stages (e.g.
/// memory overflow). An empty range (begin == end) means the device is
/// skipped and must cost 0.
using StageCostFn =
    std::function<double(int begin, int end, int device)>;

struct PartitionResult {
  bool feasible = false;
  double objective = 0.0;
  /// boundaries[j] .. boundaries[j+1] is device j's range; size N+1 with
  /// boundaries[0] == 0 and boundaries[N] == num_layers.
  std::vector<int> boundaries;
};

/// Optimal contiguous partition of `num_layers` layers over `num_devices`
/// ordered devices minimizing the *maximum* stage cost (the PipeEdge
/// objective: pipeline throughput is bound by the slowest stage).
/// O(num_devices * num_layers^2) DP.
PartitionResult partition_min_max(int num_layers, int num_devices,
                                  const StageCostFn& cost);

/// Same, minimizing the *sum* of stage costs (used for latency-sum style
/// objectives and as a cross-check for the MILP).
PartitionResult partition_min_sum(int num_layers, int num_devices,
                                  const StageCostFn& cost);

}  // namespace llmpq
