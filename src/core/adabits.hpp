#pragma once

#include <vector>

#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "quant/indicator.hpp"

namespace llmpq {

/// Pure adaptive quantization (the "adabits" scheme of Sec. 6.9 and the
/// starting point of the bitwidth-transfer heuristic, Alg. 2 lines 1-3):
/// drop the latency term from the ILP and pick, for a fixed device
/// ordering, the memory-feasible bit assignment minimizing the quality
/// indicator. Layers are spread proportionally to each device's free
/// memory; per-stage bitwidths are then an exact multiple-choice knapsack.
///
/// Returns a complete plan (micro-batch sizes taken from `prefill_mb` /
/// `decode_mb`). Throws InfeasibleError if the model cannot fit at any
/// candidate precision.
ExecutionPlan adabits_plan(const CostProvider& cost,
                           const IndicatorResult& indicator,
                           const std::vector<int>& device_order,
                           int prefill_mb, int decode_mb);

}  // namespace llmpq
