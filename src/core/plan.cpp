#include "core/plan.hpp"

#include <map>
#include <sstream>

#include "common/args.hpp"
#include "common/error.hpp"
#include "hw/gpu_spec.hpp"

namespace llmpq {

std::pair<int, int> ExecutionPlan::stage_range(int p) const {
  check_arg(p >= 0 && p < num_stages(), "stage_range: bad stage");
  return {boundaries[static_cast<std::size_t>(p)],
          boundaries[static_cast<std::size_t>(p) + 1]};
}

int ExecutionPlan::stage_size(int p) const {
  const auto [b, e] = stage_range(p);
  return e - b;
}

std::span<const int> ExecutionPlan::stage_bits(int p) const {
  const auto [b, e] = stage_range(p);
  return std::span<const int>(layer_bits).subspan(
      static_cast<std::size_t>(b), static_cast<std::size_t>(e - b));
}

int ExecutionPlan::stage_of_layer(int layer) const {
  for (int p = 0; p < num_stages(); ++p) {
    const auto [b, e] = stage_range(p);
    if (layer >= b && layer < e) return p;
  }
  throw InvalidArgumentError("stage_of_layer: layer not assigned");
}

int ExecutionPlan::prefill_microbatch_count() const {
  return (workload.global_batch + prefill_micro_batch - 1) /
         prefill_micro_batch;
}

int ExecutionPlan::decode_microbatch_count() const {
  return (workload.global_batch + decode_micro_batch - 1) /
         decode_micro_batch;
}

void ExecutionPlan::validate(int model_layers, int cluster_devices) const {
  check_arg(static_cast<int>(layer_bits.size()) == model_layers,
            "plan: layer_bits size mismatch");
  check_arg(static_cast<int>(device_order.size()) == cluster_devices,
            "plan: device_order size mismatch");
  check_arg(boundaries.size() == device_order.size() + 1,
            "plan: boundaries size mismatch");
  check_arg(boundaries.front() == 0 && boundaries.back() == model_layers,
            "plan: boundaries must cover all layers");
  for (std::size_t i = 1; i < boundaries.size(); ++i)
    check_arg(boundaries[i] >= boundaries[i - 1],
              "plan: boundaries must be non-decreasing");
  std::vector<bool> seen(static_cast<std::size_t>(cluster_devices), false);
  for (int d : device_order) {
    check_arg(d >= 0 && d < cluster_devices, "plan: bad device index");
    check_arg(!seen[static_cast<std::size_t>(d)], "plan: duplicate device");
    seen[static_cast<std::size_t>(d)] = true;
  }
  for (int bits : layer_bits)
    check_arg(bit_index(bits) >= 0, "plan: unsupported bitwidth");
  check_arg(prefill_micro_batch >= 1 &&
                prefill_micro_batch <= workload.global_batch,
            "plan: bad prefill micro-batch");
  check_arg(decode_micro_batch >= 1 &&
                decode_micro_batch <= workload.global_batch,
            "plan: bad decode micro-batch");
}

std::string ExecutionPlan::to_string() const {
  std::ostringstream os;
  os << "plan for " << model_name << " on " << cluster_name << " (s="
     << workload.prompt_len << ", n=" << workload.gen_tokens
     << ", batch=" << workload.global_batch << ")\n";
  os << "  micro-batches: prefill=" << prefill_micro_batch
     << ", decode=" << decode_micro_batch << "\n";
  if (weight_format != QuantFormat::kPerChannel)
    os << "  weight format: " << quant_format_name(weight_format) << "\n";
  for (int p = 0; p < num_stages(); ++p) {
    const auto [b, e] = stage_range(p);
    os << "  stage " << p << " -> device " << device_order[static_cast<std::size_t>(p)]
       << ": layers [" << b << ", " << e << ")";
    if (b < e) {
      std::map<int, int> bit_counts;
      for (int i = b; i < e; ++i)
        ++bit_counts[layer_bits[static_cast<std::size_t>(i)]];
      os << " bits {";
      bool first = true;
      for (const auto& [bits, count] : bit_counts) {
        if (!first) os << ", ";
        os << bits << "b x" << count;
        first = false;
      }
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

std::string ExecutionPlan::serialize() const {
  std::ostringstream os;
  os << "model=" << model_name << "\n";
  os << "cluster=" << cluster_name << "\n";
  os << "global_batch=" << workload.global_batch << "\n";
  os << "prompt_len=" << workload.prompt_len << "\n";
  os << "gen_tokens=" << workload.gen_tokens << "\n";
  os << "prefill_micro_batch=" << prefill_micro_batch << "\n";
  os << "decode_micro_batch=" << decode_micro_batch << "\n";
  os << "weight_format=" << quant_format_name(weight_format) << "\n";
  auto emit_list = [&os](const char* key, const std::vector<int>& xs) {
    os << key << '=';
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i) os << ',';
      os << xs[i];
    }
    os << "\n";
  };
  emit_list("device_order", device_order);
  emit_list("boundaries", boundaries);
  emit_list("layer_bits", layer_bits);
  return os.str();
}

ExecutionPlan ExecutionPlan::deserialize(const std::string& text) {
  ExecutionPlan plan;
  std::istringstream is(text);
  std::string line;
  // Strict parsing throughout: a corrupted strategy file ("gen_tokens=10x",
  // "layer_bits=8,x") must surface as InvalidArgumentError naming the bad
  // key/token, not silently truncate or abort with an uncaught std::stoi
  // exception.
  auto parse_list = [](const std::string& s, const std::string& key) {
    std::vector<int> xs;
    std::istringstream ls(s);
    std::string tok;
    while (std::getline(ls, tok, ','))
      if (!tok.empty())
        xs.push_back(parse_int_token(tok, "plan deserialize: " + key));
    return xs;
  };
  auto parse_field = [](const std::string& value, const std::string& key) {
    return parse_int_token(value, "plan deserialize: " + key);
  };
  while (std::getline(is, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "model") plan.model_name = value;
    else if (key == "cluster") plan.cluster_name = value;
    else if (key == "global_batch") plan.workload.global_batch = parse_field(value, key);
    else if (key == "prompt_len") plan.workload.prompt_len = parse_field(value, key);
    else if (key == "gen_tokens") plan.workload.gen_tokens = parse_field(value, key);
    else if (key == "prefill_micro_batch") plan.prefill_micro_batch = parse_field(value, key);
    else if (key == "decode_micro_batch") plan.decode_micro_batch = parse_field(value, key);
    else if (key == "device_order") plan.device_order = parse_list(value, key);
    else if (key == "boundaries") plan.boundaries = parse_list(value, key);
    else if (key == "layer_bits") plan.layer_bits = parse_list(value, key);
    else if (key == "weight_format") plan.weight_format = quant_format_from_name(value);
    else throw InvalidArgumentError("plan deserialize: unknown key " + key);
  }
  return plan;
}

}  // namespace llmpq
