#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/workload.hpp"
#include "quant/format.hpp"

namespace llmpq {

/// The assigner's output: everything the runtime needs to execute a serving
/// job (paper Fig. 6 "strategy file").
struct ExecutionPlan {
  std::string model_name;
  std::string cluster_name;
  Workload workload;

  /// Pipeline order: position p is served by cluster device
  /// device_order[p]. Every cluster device appears exactly once; stages
  /// with an empty layer range are skipped at runtime.
  std::vector<int> device_order;

  /// boundaries[p] .. boundaries[p+1] are the layers of stage p
  /// (size device_order.size() + 1, starts at 0, ends at num layers).
  std::vector<int> boundaries;

  /// Quantization bitwidth per decoder layer (size = model layers).
  std::vector<int> layer_bits;

  /// Weight storage format shared by every quantized layer (16-bit layers
  /// are float pass-through regardless). Stamped by assign() from its
  /// CostProvider so the memory estimate, the kernel cost model and the
  /// runtime's packed layout agree.
  QuantFormat weight_format = QuantFormat::kPerChannel;

  int prefill_micro_batch = 0;
  int decode_micro_batch = 0;

  int num_stages() const { return static_cast<int>(device_order.size()); }
  int num_layers() const { return static_cast<int>(layer_bits.size()); }

  /// Layers of stage p as [begin, end).
  std::pair<int, int> stage_range(int p) const;
  int stage_size(int p) const;

  /// Bitwidths of stage p's layers.
  std::span<const int> stage_bits(int p) const;

  /// Pipeline stage serving layer `layer`.
  int stage_of_layer(int layer) const;

  /// Number of prefill / decode micro-batches per global batch.
  int prefill_microbatch_count() const;
  int decode_microbatch_count() const;

  /// Throws InvalidArgumentError if internally inconsistent (sizes,
  /// monotone boundaries, micro-batch divisibility, bit candidates).
  void validate(int model_layers, int cluster_devices) const;

  /// Human-readable multi-line summary.
  std::string to_string() const;

  /// Round-trips through a simple key=value text format (the `strat_file`
  /// of the paper's `llmpq-dist` command).
  std::string serialize() const;
  static ExecutionPlan deserialize(const std::string& text);
};

}  // namespace llmpq
