#include "core/assigner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <set>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "core/adabits.hpp"
#include "core/ilp_builder.hpp"
#include "solver/milp.hpp"

namespace llmpq {

std::vector<std::vector<int>> enumerate_device_orderings(
    const ClusterSpec& cluster, int max_orderings) {
  const int N = cluster.num_devices();
  // Devices of the same type are interchangeable: enumerate distinct type
  // sequences, then materialize device indices by handing out same-type
  // devices in index order.
  std::map<std::string, std::vector<int>> by_type;
  for (int d = 0; d < N; ++d)
    by_type[cluster.devices[static_cast<std::size_t>(d)].gpu_name].push_back(d);

  std::vector<std::string> type_seq;
  for (const auto& slot : cluster.devices) type_seq.push_back(slot.gpu_name);
  std::sort(type_seq.begin(), type_seq.end());

  std::vector<std::vector<int>> all;
  auto materialize = [&](const std::vector<std::string>& seq) {
    std::map<std::string, std::size_t> next;
    std::vector<int> order;
    for (const auto& t : seq)
      order.push_back(by_type[t][next[t]++]);
    return order;
  };
  do {
    all.push_back(materialize(type_seq));
  } while (std::next_permutation(type_seq.begin(), type_seq.end()));

  if (static_cast<int>(all.size()) <= max_orderings) return all;

  // Deterministic truncation: keep compute-ascending and -descending, then
  // a uniform stride over the rest.
  auto flops_of = [&](int d) {
    return cluster.devices[static_cast<std::size_t>(d)].gpu().effective_flops(16);
  };
  std::vector<int> asc(static_cast<std::size_t>(N));
  for (int d = 0; d < N; ++d) asc[static_cast<std::size_t>(d)] = d;
  std::stable_sort(asc.begin(), asc.end(),
                   [&](int a, int b) { return flops_of(a) < flops_of(b); });
  std::vector<int> desc(asc.rbegin(), asc.rend());

  std::vector<std::vector<int>> kept{asc, desc};
  const std::size_t stride =
      std::max<std::size_t>(1, all.size() / static_cast<std::size_t>(
                                                std::max(1, max_orderings - 2)));
  for (std::size_t i = 0; i < all.size() && kept.size() <
                                                static_cast<std::size_t>(max_orderings);
       i += stride) {
    if (std::find(kept.begin(), kept.end(), all[i]) == kept.end())
      kept.push_back(all[i]);
  }
  return kept;
}

std::vector<int> prefill_microbatch_candidates(const Workload& w, int limit) {
  std::vector<int> candidates;
  for (int mb = 1; mb <= std::min(limit, w.global_batch); mb *= 2)
    if (w.global_batch % mb == 0) candidates.push_back(mb);
  if (candidates.empty()) candidates.push_back(1);
  return candidates;
}

std::vector<int> decode_microbatch_candidates(const Workload& w,
                                              int num_devices) {
  // Optimization #1: evenly partition the global batch across pipeline
  // stages; consider the even split and one refinement around it.
  std::set<int> cands;
  const int even = std::max(1, w.global_batch / std::max(1, num_devices));
  cands.insert(even);
  if (even / 2 >= 1) cands.insert(even / 2);
  cands.insert(std::min(w.global_batch, even * 2));
  return {cands.begin(), cands.end()};
}

namespace {

struct SolverChoice {
  SolverKind kind;
  int group_size;
  std::string describe() const {
    if (kind == SolverKind::kHeuristic) return "heuristic";
    return "ilp(group=" + std::to_string(group_size) + ")";
  }
};

/// Runs fn(i) for i in [0, n): on the shared pool when the options ask for
/// parallel search (and the pool has more than one worker), else serially
/// on the calling thread — the bit-identical baseline the determinism
/// tests compare against.
template <typename Fn>
int run_indexed(int num_threads, std::size_t n, const Fn& fn) {
  const bool serial = num_threads == 1 || ThreadPool::inside_worker() ||
                      ThreadPool::shared().size() <= 1;
  if (serial) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return 1;
  }
  ThreadPool::shared().parallel_for(n, fn);
  return static_cast<int>(ThreadPool::shared().size());
}

SolverChoice pick_solver(const AssignerOptions& opt, int layers,
                         int devices) {
  if (opt.solver == SolverKind::kHeuristic)
    return {SolverKind::kHeuristic, 0};
  const int group =
      opt.group_size > 0 ? opt.group_size : (layers > 48 ? 2 : 1);
  if (opt.solver == SolverKind::kIlp) return {SolverKind::kIlp, group};
  // Auto (mirrors the paper's Table 9 at the scales our branch-and-bound
  // handles; Gurobi would push the ILP further up).
  const int binaries =
      layers * devices * static_cast<int>(kBitCandidates.size());
  if (devices == 1 || binaries <= 440) return {SolverKind::kIlp, 1};
  if (binaries <= 880) return {SolverKind::kIlp, 2};
  return {SolverKind::kHeuristic, 0};
}

}  // namespace

AssignerResult assign(const CostProvider& cost,
                      const AssignerOptions& options) {
  TRACE_SPAN("planner", "assign");
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();

  const ModelSpec& model = cost.model();
  const ClusterSpec& cluster = cost.cluster();
  const Workload& workload = cost.workload();

  const IndicatorResult indicator =
      compute_indicator(model, options.indicator,
                        Rounding::kDeterministic, options.seed);

  const SolverChoice solver =
      pick_solver(options, model.layers, cluster.num_devices());

  AssignerResult best;
  best.stats.indicator_overhead_s = indicator.overhead_s;
  best.stats.profiling_overhead_s = cost.build_cost_s();
  best.stats.solver_used = solver.describe();
  double best_obj = kLpInf;

  const auto orderings =
      enumerate_device_orderings(cluster, options.max_orderings);
  const auto prefill_cands =
      prefill_microbatch_candidates(workload, options.prefill_mb_limit);
  const auto decode_cands =
      decode_microbatch_candidates(workload, cluster.num_devices());

  // ---- Pass 1: score every (ordering, mb_pre, mb_dec) combo with the
  // cheap heuristic. Each combo is a pure function of its inputs (the
  // shared CostProvider is const-thread-safe), so the combos fan out over
  // the shared pool; the reduction below walks the results in combo order,
  // which makes the outcome bit-identical to the serial sweep.
  struct Combo {
    std::vector<int> ordering;
    int mb_pre, mb_dec;
    ExecutionPlan plan;
    PlanEstimate est;
    bool feasible = false;
    std::string infeasible_reason;
  };
  std::vector<Combo> combos;
  for (const auto& ordering : orderings)
    for (int mb_pre : prefill_cands)
      for (int mb_dec : decode_cands)
        combos.push_back({ordering, mb_pre, mb_dec, {}, {}, false, {}});
  best.stats.combos_tried = static_cast<int>(combos.size());

  best.stats.search_threads =
      run_indexed(options.num_threads, combos.size(), [&](std::size_t i) {
        TRACE_SPAN("planner", "pass1.combo");
        Combo& combo = combos[i];
        try {
          const ExecutionPlan seed = adabits_plan(
              cost, indicator, combo.ordering, combo.mb_pre, combo.mb_dec);
          BitTransferOptions bt;
          bt.theta = options.theta;
          BitTransferResult bt_result =
              bit_transfer(cost, indicator, seed, bt);
          if (!bt_result.estimate.mem_feasible) {
            combo.infeasible_reason = bt_result.estimate.infeasible_reason;
            return;
          }
          combo.plan = std::move(bt_result.plan);
          combo.est = bt_result.estimate;
          combo.feasible = true;
        } catch (const InfeasibleError& e) {
          combo.infeasible_reason = e.what();
        }
      });

  std::string last_infeasible = "no combination tried";
  std::vector<const Combo*> feasible;
  for (const Combo& combo : combos) {
    if (combo.feasible)
      feasible.push_back(&combo);
    else
      last_infeasible = combo.infeasible_reason;
  }
  std::stable_sort(feasible.begin(), feasible.end(),
                   [](const Combo* a, const Combo* b) {
                     return a->est.objective < b->est.objective;
                   });

  for (const Combo* combo : feasible) {
    if (combo->est.objective < best_obj) {
      best_obj = combo->est.objective;
      best.plan = combo->plan;
      best.estimate = combo->est;
    }
  }

  // ---- Pass 2: ILP refinement of the leading combos only. The
  // refinements run concurrently, pooling their incumbents through one
  // atomic objective: every solver prunes against the best integral
  // solution found by ANY of them (all refined combos minimize the same
  // latency + theta * penalty objective). Sharing is strictly-greater /
  // publish-min, so the pooled best is schedule-independent (see
  // MilpOptions::shared_incumbent); the reduction walks results in combo
  // order.
  if (solver.kind == SolverKind::kIlp && !feasible.empty()) {
    const int refine =
        std::min<int>(static_cast<int>(feasible.size()),
                      std::max(1, options.ilp_refine_top));
    std::atomic<double> incumbent{kLpInf};
    struct Refinement {
      MilpSolution sol;
      ExecutionPlan plan;
      PlanEstimate est;
      bool has_plan = false;
    };
    std::vector<Refinement> refinements(static_cast<std::size_t>(refine));
    run_indexed(options.num_threads, refinements.size(), [&](std::size_t c) {
      TRACE_SPAN("planner", "pass2.ilp_refine");
      const Combo& combo = *feasible[c];
      Refinement& out = refinements[c];
      IlpBuilder builder(cost, indicator, combo.ordering, combo.mb_pre,
                         combo.mb_dec, options.theta, solver.group_size);
      MilpProblem milp = builder.build();
      MilpOptions mopt;
      mopt.time_limit_s =
          options.ilp_time_limit_s / static_cast<double>(refine);
      mopt.warm_start = builder.encode_plan(combo.plan);
      mopt.shared_incumbent = &incumbent;
      out.sol = solve_milp(milp, mopt);
      if (out.sol.status == MilpStatus::kOptimal ||
          out.sol.status == MilpStatus::kFeasible) {
        out.plan = builder.extract_plan(out.sol.x);
        out.est = estimate_plan(cost, out.plan, &indicator, options.theta);
        out.has_plan = true;
      }
    });
    for (Refinement& r : refinements) {
      ++best.stats.ilp_solves;
      best.stats.ilp_nodes += r.sol.nodes_explored;
      if (r.has_plan && r.est.mem_feasible && r.est.objective < best_obj) {
        best_obj = r.est.objective;
        best.plan = std::move(r.plan);
        best.estimate = r.est;
      }
    }
  }

  best.stats.solve_time_s =
      std::chrono::duration<double>(clock::now() - start).count();
  if (best_obj == kLpInf)
    throw InfeasibleError("assign: no feasible plan found (" +
                          last_infeasible + ")");
  LOG_INFO << "assign: best objective " << best_obj << " via "
           << best.stats.solver_used << " after "
           << best.stats.combos_tried << " combos in "
           << best.stats.solve_time_s << "s";
  return best;
}

}  // namespace llmpq
