#include "core/estimator.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace llmpq {

std::int64_t device_memory_reserve() { return gib(0.75); }

PlanEstimate estimate_plan(const CostProvider& cost,
                           const ExecutionPlan& plan,
                           const IndicatorResult* indicator, double theta) {
  const ModelSpec& model = cost.model();
  const ClusterSpec& cluster = cost.cluster();
  const Workload& w = plan.workload;
  plan.validate(model.layers, cluster.num_devices());

  PlanEstimate est;
  const int num_stages = plan.num_stages();
  est.stage_mem.resize(static_cast<std::size_t>(num_stages));
  est.stage_prefill_time.assign(static_cast<std::size_t>(num_stages), 0.0);
  est.stage_decode_time.assign(static_cast<std::size_t>(num_stages), 0.0);

  // First/last non-empty stage indices (embedding / LM-head owners).
  int first_stage = -1, last_stage = -1;
  for (int p = 0; p < num_stages; ++p) {
    if (plan.stage_size(p) > 0) {
      if (first_stage < 0) first_stage = p;
      last_stage = p;
    }
  }
  check_arg(first_stage >= 0, "estimate_plan: plan assigns no layers");

  // ---- Memory feasibility.
  est.mem_feasible = true;
  for (int p = 0; p < num_stages; ++p) {
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    const StageMemory mem =
        stage_memory(model, plan.stage_bits(p), w, plan.prefill_micro_batch,
                     plan.decode_micro_batch, p == first_stage,
                     p == last_stage, plan.weight_format);
    est.stage_mem[static_cast<std::size_t>(p)] = mem;
    const std::int64_t budget =
        cluster.devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
        device_memory_reserve();
    if (plan.stage_size(p) > 0 && mem.total() > budget) {
      est.mem_feasible = false;
      std::ostringstream os;
      os << "stage " << p << " needs "
         << static_cast<double>(mem.total()) / static_cast<double>(GiB)
         << " GiB but device has only "
         << static_cast<double>(budget) / static_cast<double>(GiB) << " GiB";
      est.infeasible_reason = os.str();
    }
  }

  // ---- Per-micro-batch stage times (compute + outbound comm).
  // Layer time depends only on (device, bits, phase) for a fixed plan, so
  // memoize the at-most N x |BITs| x 2 distinct queries — this function is
  // the inner loop of the bitwidth-transfer heuristic.
  const int dec_ctx = w.prompt_len + w.gen_tokens / 2;  // average context
  const std::size_t nbits = kBitCandidates.size();
  std::vector<double> time_cache(
      2 * static_cast<std::size_t>(num_stages) * nbits, -1.0);
  auto cached_layer_time = [&](int p, int dev, int bits, Phase phase) {
    const std::size_t slot =
        (static_cast<std::size_t>(p) * nbits +
         static_cast<std::size_t>(bit_index(bits))) *
            2 +
        (phase == Phase::kDecode ? 1 : 0);
    if (time_cache[slot] < 0.0) {
      time_cache[slot] =
          phase == Phase::kPrefill
              ? cost.layer_time(dev, bits, Phase::kPrefill,
                                plan.prefill_micro_batch, w.prompt_len)
              : cost.layer_time(dev, bits, Phase::kDecode,
                                plan.decode_micro_batch, dec_ctx);
    }
    return time_cache[slot];
  };
  for (int p = 0; p < num_stages; ++p) {
    if (plan.stage_size(p) == 0) continue;
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    double pre = 0.0, dec = 0.0;
    for (int bits : plan.stage_bits(p)) {
      pre += cached_layer_time(p, dev, bits, Phase::kPrefill);
      dec += cached_layer_time(p, dev, bits, Phase::kDecode);
    }
    if (p == first_stage) {
      pre += cost.embedding_time(dev, plan.prefill_micro_batch, w.prompt_len);
      dec += cost.embedding_time(dev, plan.decode_micro_batch, 1);
    }
    // Outbound transfer to the next non-empty stage.
    int q = p + 1;
    while (q < num_stages && plan.stage_size(q) == 0) ++q;
    if (q < num_stages) {
      const int dev_q = plan.device_order[static_cast<std::size_t>(q)];
      pre += cost.comm_time(dev, dev_q, Phase::kPrefill,
                            plan.prefill_micro_batch);
      dec += cost.comm_time(dev, dev_q, Phase::kDecode,
                            plan.decode_micro_batch);
    }
    est.stage_prefill_time[static_cast<std::size_t>(p)] = pre;
    est.stage_decode_time[static_cast<std::size_t>(p)] = dec;
  }

  double pre_sum = 0.0, pre_max = 0.0, dec_sum = 0.0, dec_max = 0.0;
  for (int p = 0; p < num_stages; ++p) {
    pre_sum += est.stage_prefill_time[static_cast<std::size_t>(p)];
    pre_max = std::max(pre_max,
                       est.stage_prefill_time[static_cast<std::size_t>(p)]);
    dec_sum += est.stage_decode_time[static_cast<std::size_t>(p)];
    dec_max = std::max(dec_max,
                       est.stage_decode_time[static_cast<std::size_t>(p)]);
  }

  const int m_pre = plan.prefill_microbatch_count();
  const int m_dec = plan.decode_microbatch_count();
  est.prefill_total = pre_sum + static_cast<double>(m_pre - 1) * pre_max;
  // Decode rounds are token-serial per micro-batch chain: in steady state a
  // round costs the larger of one chain's full traversal (sum of stages)
  // and the bottleneck stage serving every chain (m_dec * max). This
  // refines the paper's additive eq. (4) bound, which can misrank plans
  // against the discrete-event simulator. The first token comes out of
  // prefill, so only gen_tokens - 1 decode rounds run — clamped at zero:
  // a prefill-only workload (gen_tokens ∈ {0, 1}) has no decode phase,
  // not a negative one (mirrors simulate_plan's zero-gen guard).
  est.decode_total =
      static_cast<double>(std::max(0, w.gen_tokens - 1)) *
      std::max(dec_sum, static_cast<double>(m_dec) * dec_max);
  est.e2e_latency = est.prefill_total + est.decode_total;
  // Degenerate zero-cost plans can finish at t == 0; report zero
  // throughput rather than dividing by it.
  est.throughput_tokens_per_s =
      est.e2e_latency > 0.0
          ? static_cast<double>(w.total_generated_tokens()) / est.e2e_latency
          : 0.0;

  if (indicator != nullptr) {
    for (int i = 0; i < model.layers; ++i)
      est.quality_penalty +=
          indicator->at(i, plan.layer_bits[static_cast<std::size_t>(i)]);
  }
  est.objective = est.e2e_latency + theta * est.quality_penalty;
  return est;
}

IncrementalPlanEvaluator::IncrementalPlanEvaluator(
    const CostProvider& cost, const IndicatorResult* indicator, double theta,
    const ExecutionPlan& plan)
    : cost_(cost), indicator_(indicator), plan_(plan), theta_(theta) {
  const ModelSpec& model = cost.model();
  const ClusterSpec& cluster = cost.cluster();
  const Workload& w = plan.workload;
  plan.validate(model.layers, cluster.num_devices());

  num_stages_ = plan.num_stages();
  decode_rounds_ = std::max(0, w.gen_tokens - 1);
  m_pre_ = plan.prefill_microbatch_count();
  m_dec_ = plan.decode_microbatch_count();
  dec_ctx_ = w.prompt_len + w.gen_tokens / 2;
  kv_per_layer_ = layer_kv_bytes(model, w.global_batch, w.max_seq_len());
  for (std::size_t bi = 0; bi < kBitCandidates.size(); ++bi)
    weight_bytes_[bi] =
        layer_weight_bytes(model, kBitCandidates[bi], plan.weight_format);

  const std::size_t ns = static_cast<std::size_t>(num_stages_);
  comp_pre_.assign(ns, 0.0);
  comp_dec_.assign(ns, 0.0);
  extra_pre_.assign(ns, 0.0);
  extra_dec_.assign(ns, 0.0);
  weights_.assign(ns, 0);
  fixed_mem_.assign(ns, 0);
  budget_.assign(ns, 0);
  size_.assign(ns, 0);
  stage_feasible_.assign(ns, true);
  time_cache_.assign(ns * kBitCandidates.size() * 2, -1.0);
  stage_of_layer_.assign(static_cast<std::size_t>(plan.num_layers()), 0);
  for (int i = 0; i < plan.num_layers(); ++i)
    stage_of_layer_[static_cast<std::size_t>(i)] = plan.stage_of_layer(i);

  int first_stage = -1, last_stage = -1;
  for (int p = 0; p < num_stages_; ++p) {
    if (plan.stage_size(p) > 0) {
      if (first_stage < 0) first_stage = p;
      last_stage = p;
    }
  }
  check_arg(first_stage >= 0,
            "IncrementalPlanEvaluator: plan assigns no layers");

  const std::int64_t temp =
      temp_peak_bytes(model, w, plan.prefill_micro_batch,
                      plan.decode_micro_batch);
  for (int p = 0; p < num_stages_; ++p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    const int dev = plan.device_order[sp];
    size_[sp] = plan.stage_size(p);
    budget_[sp] =
        cluster.devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
        device_memory_reserve();
    fixed_mem_[sp] = temp;
    if (p == first_stage) fixed_mem_[sp] += embedding_weight_bytes(model);
    if (p == last_stage && p != first_stage)
      fixed_mem_[sp] += lm_head_bytes(model);
    for (int bits : plan.stage_bits(p)) {
      comp_pre_[sp] += layer_time_cached(p, bits, Phase::kPrefill);
      comp_dec_[sp] += layer_time_cached(p, bits, Phase::kDecode);
      weights_[sp] += weight_bytes_[static_cast<std::size_t>(bit_index(bits))];
    }
    if (size_[sp] > 0) {
      if (p == first_stage) {
        extra_pre_[sp] += cost.embedding_time(dev, plan.prefill_micro_batch,
                                              w.prompt_len);
        extra_dec_[sp] +=
            cost.embedding_time(dev, plan.decode_micro_batch, 1);
      }
      int q = p + 1;
      while (q < num_stages_ && plan.stage_size(q) == 0) ++q;
      if (q < num_stages_) {
        const int dev_q = plan.device_order[static_cast<std::size_t>(q)];
        extra_pre_[sp] += cost.comm_time(dev, dev_q, Phase::kPrefill,
                                         plan.prefill_micro_batch);
        extra_dec_[sp] += cost.comm_time(dev, dev_q, Phase::kDecode,
                                         plan.decode_micro_batch);
      }
      const std::int64_t mem = weights_[sp] +
                               static_cast<std::int64_t>(size_[sp]) *
                                   kv_per_layer_ +
                               fixed_mem_[sp];
      stage_feasible_[sp] = mem <= budget_[sp];
      if (!stage_feasible_[sp]) ++infeasible_stages_;
    }
  }

  if (indicator_ != nullptr) {
    for (int i = 0; i < plan.num_layers(); ++i)
      penalty_ +=
          indicator_->at(i, plan.layer_bits[static_cast<std::size_t>(i)]);
  }
  base_ = reduce({}, {}, penalty_);
}

double IncrementalPlanEvaluator::layer_time_cached(int p, int bits,
                                                   Phase phase) const {
  const std::size_t slot =
      (static_cast<std::size_t>(p) * kBitCandidates.size() +
       static_cast<std::size_t>(bit_index(bits))) *
          2 +
      (phase == Phase::kDecode ? 1 : 0);
  if (time_cache_[slot] < 0.0) {
    const int dev = plan_.device_order[static_cast<std::size_t>(p)];
    time_cache_[slot] =
        phase == Phase::kPrefill
            ? cost_.layer_time(dev, bits, Phase::kPrefill,
                               plan_.prefill_micro_batch,
                               plan_.workload.prompt_len)
            : cost_.layer_time(dev, bits, Phase::kDecode,
                               plan_.decode_micro_batch, dec_ctx_);
  }
  return time_cache_[slot];
}

IncrementalPlanEvaluator::Score IncrementalPlanEvaluator::reduce(
    const StagePatch& a, const StagePatch& b, double penalty) const {
  double pre_sum = 0.0, pre_max = 0.0, dec_sum = 0.0, dec_max = 0.0;
  int infeasible = infeasible_stages_;
  for (int p = 0; p < num_stages_; ++p) {
    const std::size_t sp = static_cast<std::size_t>(p);
    double pre = comp_pre_[sp] + extra_pre_[sp];
    double dec = comp_dec_[sp] + extra_dec_[sp];
    bool feasible = stage_feasible_[sp];
    if (p == a.p) {
      pre = a.pre + extra_pre_[sp];
      dec = a.dec + extra_dec_[sp];
      feasible = a.feasible;
    } else if (p == b.p) {
      pre = b.pre + extra_pre_[sp];
      dec = b.dec + extra_dec_[sp];
      feasible = b.feasible;
    }
    if ((p == a.p || p == b.p) && feasible != stage_feasible_[sp])
      infeasible += feasible ? -1 : 1;
    pre_sum += pre;
    pre_max = std::max(pre_max, pre);
    dec_sum += dec;
    dec_max = std::max(dec_max, dec);
  }
  Score s;
  s.feasible = infeasible == 0;
  const double prefill_total =
      pre_sum + static_cast<double>(m_pre_ - 1) * pre_max;
  const double decode_total =
      static_cast<double>(decode_rounds_) *
      std::max(dec_sum, static_cast<double>(m_dec_) * dec_max);
  s.objective = prefill_total + decode_total + theta_ * penalty;
  return s;
}

IncrementalPlanEvaluator::Score IncrementalPlanEvaluator::score_bit_change(
    int layer, int new_bits) const {
  const std::size_t sl = static_cast<std::size_t>(layer);
  const int p = stage_of_layer_[sl];
  const std::size_t sp = static_cast<std::size_t>(p);
  const int old_bits = plan_.layer_bits[sl];

  StagePatch patch;
  patch.p = p;
  patch.pre = comp_pre_[sp] - layer_time_cached(p, old_bits, Phase::kPrefill) +
              layer_time_cached(p, new_bits, Phase::kPrefill);
  patch.dec = comp_dec_[sp] - layer_time_cached(p, old_bits, Phase::kDecode) +
              layer_time_cached(p, new_bits, Phase::kDecode);
  const std::int64_t new_weights =
      weights_[sp] -
      weight_bytes_[static_cast<std::size_t>(bit_index(old_bits))] +
      weight_bytes_[static_cast<std::size_t>(bit_index(new_bits))];
  patch.feasible =
      size_[sp] == 0 ||
      new_weights + static_cast<std::int64_t>(size_[sp]) * kv_per_layer_ +
              fixed_mem_[sp] <=
          budget_[sp];

  double penalty = penalty_;
  if (indicator_ != nullptr)
    penalty += indicator_->at(layer, new_bits) -
               indicator_->at(layer, old_bits);
  return reduce(patch, {}, penalty);
}

std::optional<IncrementalPlanEvaluator::Score>
IncrementalPlanEvaluator::score_boundary_shift(int p, int delta,
                                               int new_bits) const {
  const int src = delta < 0 ? p : p + 1;
  const int dst = delta < 0 ? p + 1 : p;
  const std::size_t ss = static_cast<std::size_t>(src);
  const std::size_t sd = static_cast<std::size_t>(dst);
  // Emptiness changes reshape the embedding/comm structure: bail out.
  if (size_[ss] <= 1 || size_[sd] == 0) return std::nullopt;

  const int moved = delta < 0
                        ? plan_.boundaries[static_cast<std::size_t>(p) + 1] - 1
                        : plan_.boundaries[static_cast<std::size_t>(p) + 1];
  const int old_bits = plan_.layer_bits[static_cast<std::size_t>(moved)];
  const int bits = new_bits < 0 ? old_bits : new_bits;

  StagePatch a;  // source stage loses the layer
  a.p = src;
  a.pre = comp_pre_[ss] - layer_time_cached(src, old_bits, Phase::kPrefill);
  a.dec = comp_dec_[ss] - layer_time_cached(src, old_bits, Phase::kDecode);
  const std::int64_t src_weights =
      weights_[ss] -
      weight_bytes_[static_cast<std::size_t>(bit_index(old_bits))];
  a.feasible = src_weights + static_cast<std::int64_t>(size_[ss] - 1) *
                                 kv_per_layer_ +
                   fixed_mem_[ss] <=
               budget_[ss];

  StagePatch b;  // destination stage gains it (possibly re-quantized)
  b.p = dst;
  b.pre = comp_pre_[sd] + layer_time_cached(dst, bits, Phase::kPrefill);
  b.dec = comp_dec_[sd] + layer_time_cached(dst, bits, Phase::kDecode);
  const std::int64_t dst_weights =
      weights_[sd] + weight_bytes_[static_cast<std::size_t>(bit_index(bits))];
  b.feasible = dst_weights + static_cast<std::int64_t>(size_[sd] + 1) *
                                 kv_per_layer_ +
                   fixed_mem_[sd] <=
               budget_[sd];

  double penalty = penalty_;
  if (indicator_ != nullptr && bits != old_bits)
    penalty +=
        indicator_->at(moved, bits) - indicator_->at(moved, old_bits);
  return reduce(a, b, penalty);
}

}  // namespace llmpq
