#include "core/estimator.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/units.hpp"

namespace llmpq {

std::int64_t device_memory_reserve() { return gib(0.75); }

PlanEstimate estimate_plan(const CostProvider& cost,
                           const ExecutionPlan& plan,
                           const IndicatorResult* indicator, double theta) {
  const ModelSpec& model = cost.model();
  const ClusterSpec& cluster = cost.cluster();
  const Workload& w = plan.workload;
  plan.validate(model.layers, cluster.num_devices());

  PlanEstimate est;
  const int num_stages = plan.num_stages();
  est.stage_mem.resize(static_cast<std::size_t>(num_stages));
  est.stage_prefill_time.assign(static_cast<std::size_t>(num_stages), 0.0);
  est.stage_decode_time.assign(static_cast<std::size_t>(num_stages), 0.0);

  // First/last non-empty stage indices (embedding / LM-head owners).
  int first_stage = -1, last_stage = -1;
  for (int p = 0; p < num_stages; ++p) {
    if (plan.stage_size(p) > 0) {
      if (first_stage < 0) first_stage = p;
      last_stage = p;
    }
  }
  check_arg(first_stage >= 0, "estimate_plan: plan assigns no layers");

  // ---- Memory feasibility.
  est.mem_feasible = true;
  for (int p = 0; p < num_stages; ++p) {
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    const StageMemory mem =
        stage_memory(model, plan.stage_bits(p), w, plan.prefill_micro_batch,
                     plan.decode_micro_batch, p == first_stage,
                     p == last_stage);
    est.stage_mem[static_cast<std::size_t>(p)] = mem;
    const std::int64_t budget =
        cluster.devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
        device_memory_reserve();
    if (plan.stage_size(p) > 0 && mem.total() > budget) {
      est.mem_feasible = false;
      std::ostringstream os;
      os << "stage " << p << " needs "
         << static_cast<double>(mem.total()) / static_cast<double>(GiB)
         << " GiB but device has only "
         << static_cast<double>(budget) / static_cast<double>(GiB) << " GiB";
      est.infeasible_reason = os.str();
    }
  }

  // ---- Per-micro-batch stage times (compute + outbound comm).
  // Layer time depends only on (device, bits, phase) for a fixed plan, so
  // memoize the at-most N x |BITs| x 2 distinct queries — this function is
  // the inner loop of the bitwidth-transfer heuristic.
  const int dec_ctx = w.prompt_len + w.gen_tokens / 2;  // average context
  const std::size_t nbits = kBitCandidates.size();
  std::vector<double> time_cache(
      2 * static_cast<std::size_t>(num_stages) * nbits, -1.0);
  auto cached_layer_time = [&](int p, int dev, int bits, Phase phase) {
    const std::size_t slot =
        (static_cast<std::size_t>(p) * nbits +
         static_cast<std::size_t>(bit_index(bits))) *
            2 +
        (phase == Phase::kDecode ? 1 : 0);
    if (time_cache[slot] < 0.0) {
      time_cache[slot] =
          phase == Phase::kPrefill
              ? cost.layer_time(dev, bits, Phase::kPrefill,
                                plan.prefill_micro_batch, w.prompt_len)
              : cost.layer_time(dev, bits, Phase::kDecode,
                                plan.decode_micro_batch, dec_ctx);
    }
    return time_cache[slot];
  };
  for (int p = 0; p < num_stages; ++p) {
    if (plan.stage_size(p) == 0) continue;
    const int dev = plan.device_order[static_cast<std::size_t>(p)];
    double pre = 0.0, dec = 0.0;
    for (int bits : plan.stage_bits(p)) {
      pre += cached_layer_time(p, dev, bits, Phase::kPrefill);
      dec += cached_layer_time(p, dev, bits, Phase::kDecode);
    }
    if (p == first_stage) {
      pre += cost.embedding_time(dev, plan.prefill_micro_batch, w.prompt_len);
      dec += cost.embedding_time(dev, plan.decode_micro_batch, 1);
    }
    // Outbound transfer to the next non-empty stage.
    int q = p + 1;
    while (q < num_stages && plan.stage_size(q) == 0) ++q;
    if (q < num_stages) {
      const int dev_q = plan.device_order[static_cast<std::size_t>(q)];
      pre += cost.comm_time(dev, dev_q, Phase::kPrefill,
                            plan.prefill_micro_batch);
      dec += cost.comm_time(dev, dev_q, Phase::kDecode,
                            plan.decode_micro_batch);
    }
    est.stage_prefill_time[static_cast<std::size_t>(p)] = pre;
    est.stage_decode_time[static_cast<std::size_t>(p)] = dec;
  }

  double pre_sum = 0.0, pre_max = 0.0, dec_sum = 0.0, dec_max = 0.0;
  for (int p = 0; p < num_stages; ++p) {
    pre_sum += est.stage_prefill_time[static_cast<std::size_t>(p)];
    pre_max = std::max(pre_max,
                       est.stage_prefill_time[static_cast<std::size_t>(p)]);
    dec_sum += est.stage_decode_time[static_cast<std::size_t>(p)];
    dec_max = std::max(dec_max,
                       est.stage_decode_time[static_cast<std::size_t>(p)]);
  }

  const int m_pre = plan.prefill_microbatch_count();
  const int m_dec = plan.decode_microbatch_count();
  est.prefill_total = pre_sum + static_cast<double>(m_pre - 1) * pre_max;
  // Decode rounds are token-serial per micro-batch chain: in steady state a
  // round costs the larger of one chain's full traversal (sum of stages)
  // and the bottleneck stage serving every chain (m_dec * max). This
  // refines the paper's additive eq. (4) bound, which can misrank plans
  // against the discrete-event simulator.
  est.decode_total =
      static_cast<double>(w.gen_tokens - 1) *
      std::max(dec_sum, static_cast<double>(m_dec) * dec_max);
  est.e2e_latency = est.prefill_total + est.decode_total;
  est.throughput_tokens_per_s =
      static_cast<double>(w.total_generated_tokens()) / est.e2e_latency;

  if (indicator != nullptr) {
    for (int i = 0; i < model.layers; ++i)
      est.quality_penalty +=
          indicator->at(i, plan.layer_bits[static_cast<std::size_t>(i)]);
  }
  est.objective = est.e2e_latency + theta * est.quality_penalty;
  return est;
}

}  // namespace llmpq
