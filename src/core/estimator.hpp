#pragma once

#include <string>
#include <vector>

#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "cost/mem_model.hpp"
#include "quant/indicator.hpp"

namespace llmpq {

/// Planner-side analytic estimate of a plan's cost — the quantity the ILP
/// objective (4) encodes: pipelined two-phase latency
///   T = [sum_p Tpre_p + (Mpre-1) max_p Tpre_p]
///     + (n-1) [sum_p Tdec_p + (Mdec-1) max_p Tdec_p]
/// plus theta times the quality-perturbation indicator. The ground truth
/// the plan is eventually judged by is the discrete-event simulator; tests
/// pin the two within a few percent.
struct PlanEstimate {
  bool mem_feasible = false;
  std::string infeasible_reason;
  std::vector<StageMemory> stage_mem;  ///< per pipeline position

  std::vector<double> stage_prefill_time;  ///< per micro-batch, incl. comm
  std::vector<double> stage_decode_time;
  double prefill_total = 0.0;
  double decode_total = 0.0;
  double e2e_latency = 0.0;
  double throughput_tokens_per_s = 0.0;

  double quality_penalty = 0.0;  ///< sum_i omega(i, b_i)
  double objective = 0.0;        ///< e2e + theta * penalty
};

PlanEstimate estimate_plan(const CostProvider& cost,
                           const ExecutionPlan& plan,
                           const IndicatorResult* indicator = nullptr,
                           double theta = 0.0);

/// Memory headroom reserved per device for allocator slack / runtime
/// context (bytes).
std::int64_t device_memory_reserve();

}  // namespace llmpq
