#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "cost/mem_model.hpp"
#include "quant/indicator.hpp"

namespace llmpq {

/// Planner-side analytic estimate of a plan's cost — the quantity the ILP
/// objective (4) encodes: pipelined two-phase latency
///   T = [sum_p Tpre_p + (Mpre-1) max_p Tpre_p]
///     + (n-1) [sum_p Tdec_p + (Mdec-1) max_p Tdec_p]
/// plus theta times the quality-perturbation indicator. The ground truth
/// the plan is eventually judged by is the discrete-event simulator; tests
/// pin the two within a few percent.
struct PlanEstimate {
  bool mem_feasible = false;
  std::string infeasible_reason;
  std::vector<StageMemory> stage_mem;  ///< per pipeline position

  std::vector<double> stage_prefill_time;  ///< per micro-batch, incl. comm
  std::vector<double> stage_decode_time;
  double prefill_total = 0.0;
  double decode_total = 0.0;
  double e2e_latency = 0.0;
  double throughput_tokens_per_s = 0.0;

  double quality_penalty = 0.0;  ///< sum_i omega(i, b_i)
  double objective = 0.0;        ///< e2e + theta * penalty
};

PlanEstimate estimate_plan(const CostProvider& cost,
                           const ExecutionPlan& plan,
                           const IndicatorResult* indicator = nullptr,
                           double theta = 0.0);

/// Incremental re-estimate path for the bitwidth-transfer inner loop: built
/// once per base plan (O(L)), it re-scores a single-move candidate — one
/// layer's bitwidth changed, or one layer shifted across a stage boundary —
/// in O(1) plus an O(num_stages) totals reduction, instead of re-running
/// the full O(L) estimate_plan. Memory deltas are integer-exact; time
/// deltas differ from a from-scratch estimate only in floating-point
/// summation order. The evaluator snapshots the plan at construction: it
/// must be rebuilt after a move is applied (bit_transfer rebuilds once per
/// accepted move, keeping each search iteration amortized O(L + N)).
class IncrementalPlanEvaluator {
 public:
  /// `indicator` may be null (no quality term). References must outlive
  /// the evaluator.
  IncrementalPlanEvaluator(const CostProvider& cost,
                           const IndicatorResult* indicator, double theta,
                           const ExecutionPlan& plan);

  struct Score {
    bool feasible = false;   ///< every non-empty stage fits its device
    double objective = 0.0;  ///< e2e latency + theta * quality penalty
  };

  /// Score of the unmodified base plan (same algebra as the candidate
  /// scores, so comparisons against it are consistent).
  const Score& base() const { return base_; }

  /// Candidate: layer `layer` re-quantized to `new_bits`.
  Score score_bit_change(int layer, int new_bits) const;

  /// Candidate: the boundary between stages p and p+1 shifted by one
  /// layer. delta = -1 moves stage p's last layer into p+1; delta = +1
  /// moves stage p+1's first layer into p. `new_bits` re-quantizes the
  /// moved layer (< 0 keeps its bits). Returns nullopt when the move
  /// changes a stage's emptiness — that reshapes embedding/comm structure,
  /// so the caller must fall back to the full estimate_plan.
  std::optional<Score> score_boundary_shift(int p, int delta,
                                            int new_bits) const;

 private:
  double layer_time_cached(int p, int bits, Phase phase) const;
  struct StagePatch {
    int p = -1;
    double pre = 0.0, dec = 0.0;  ///< replacement compute sums
    bool feasible = true;
  };
  Score reduce(const StagePatch& a, const StagePatch& b,
               double penalty) const;

  const CostProvider& cost_;
  const IndicatorResult* indicator_;
  const ExecutionPlan& plan_;
  double theta_;
  int num_stages_ = 0;
  int decode_rounds_ = 0;  ///< max(0, gen_tokens - 1)
  int m_pre_ = 1, m_dec_ = 1;
  int dec_ctx_ = 0;
  std::int64_t kv_per_layer_ = 0;
  std::array<std::int64_t, kBitCandidates.size()> weight_bytes_{};
  std::vector<int> stage_of_layer_;
  std::vector<double> comp_pre_, comp_dec_;    ///< per-stage layer-time sums
  std::vector<double> extra_pre_, extra_dec_;  ///< embed + outbound comm
  std::vector<std::int64_t> weights_, fixed_mem_, budget_;
  std::vector<int> size_;
  std::vector<bool> stage_feasible_;
  int infeasible_stages_ = 0;
  double penalty_ = 0.0;
  mutable std::vector<double> time_cache_;  ///< (stage, bits, phase) memo
  Score base_;
};

/// Memory headroom reserved per device for allocator slack / runtime
/// context (bytes).
std::int64_t device_memory_reserve();

}  // namespace llmpq
