#include "core/adabits.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "core/estimator.hpp"
#include "cost/mem_model.hpp"
#include "solver/mckp.hpp"

namespace llmpq {

namespace {

/// Free bytes on pipeline position p after reserving KV-independent
/// overheads (embedding/head, temp workspace, allocator reserve).
std::int64_t stage_budget(const CostProvider& cost, const ExecutionPlan& plan,
                          int p, bool first, bool last) {
  const auto& model = cost.model();
  const int dev = plan.device_order[static_cast<std::size_t>(p)];
  std::int64_t budget =
      cost.cluster().devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
      device_memory_reserve() -
      temp_peak_bytes(model, plan.workload, plan.prefill_micro_batch,
                      plan.decode_micro_batch);
  if (first) budget -= embedding_weight_bytes(model);
  if (last && !first) budget -= lm_head_bytes(model);
  return budget;
}

}  // namespace

ExecutionPlan adabits_plan(const CostProvider& cost,
                           const IndicatorResult& indicator,
                           const std::vector<int>& device_order,
                           int prefill_mb, int decode_mb) {
  const ModelSpec& model = cost.model();
  const ClusterSpec& cluster = cost.cluster();
  const int N = cluster.num_devices();
  const int L = model.layers;
  check_arg(static_cast<int>(device_order.size()) == N,
            "adabits_plan: ordering size mismatch");

  ExecutionPlan plan;
  plan.model_name = model.name;
  plan.cluster_name = cluster.name;
  plan.workload = cost.workload();
  plan.weight_format = cost.format();
  plan.device_order = device_order;
  plan.prefill_micro_batch = prefill_mb;
  plan.decode_micro_batch = decode_mb;
  plan.layer_bits.assign(static_cast<std::size_t>(L), 16);
  plan.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);
  plan.boundaries[static_cast<std::size_t>(N)] = L;

  // ---- Proportional layer split by free memory.
  const std::int64_t kv_per_layer =
      layer_kv_bytes(model, plan.workload.global_batch,
                     plan.workload.max_seq_len());
  std::vector<std::int64_t> budgets(static_cast<std::size_t>(N));
  std::int64_t total_budget = 0;
  for (int p = 0; p < N; ++p) {
    budgets[static_cast<std::size_t>(p)] =
        std::max<std::int64_t>(0, stage_budget(cost, plan, p, p == 0, p == N - 1));
    total_budget += budgets[static_cast<std::size_t>(p)];
  }
  check_arg(total_budget > 0, "adabits_plan: cluster has no free memory");

  std::vector<int> counts(static_cast<std::size_t>(N), 0);
  int assigned = 0;
  for (int p = 0; p < N; ++p) {
    const double share = static_cast<double>(budgets[static_cast<std::size_t>(p)]) /
                         static_cast<double>(total_budget);
    counts[static_cast<std::size_t>(p)] =
        std::min(L - assigned, static_cast<int>(share * L + 0.5));
    assigned += counts[static_cast<std::size_t>(p)];
  }
  // Distribute any remainder to the largest budgets.
  while (assigned < L) {
    int best = 0;
    double best_headroom = -1.0;
    for (int p = 0; p < N; ++p) {
      const double per_layer_used =
          counts[static_cast<std::size_t>(p)] > 0
              ? static_cast<double>(counts[static_cast<std::size_t>(p)])
              : 0.0;
      const double headroom =
          static_cast<double>(budgets[static_cast<std::size_t>(p)]) -
          per_layer_used * static_cast<double>(kv_per_layer);
      if (headroom > best_headroom) {
        best_headroom = headroom;
        best = p;
      }
    }
    ++counts[static_cast<std::size_t>(best)];
    ++assigned;
  }
  for (int p = 0; p < N; ++p)
    plan.boundaries[static_cast<std::size_t>(p) + 1] =
        plan.boundaries[static_cast<std::size_t>(p)] +
        counts[static_cast<std::size_t>(p)];

  // ---- Per-stage bit selection: exact MCKP minimizing indicator omega.
  // Repair loop: if some stage cannot fit its layers even at 3 bits, move
  // boundary layers toward neighbours with headroom and retry.
  const std::int64_t min_layer_bytes =
      layer_weight_bytes(model, 3, cost.format()) + kv_per_layer;
  for (int attempt = 0; attempt < 4 * N + 4; ++attempt) {
    bool all_fit = true;
    for (int p = 0; p < N && all_fit; ++p) {
      const std::int64_t need =
          static_cast<std::int64_t>(plan.stage_size(p)) * min_layer_bytes;
      if (need > budgets[static_cast<std::size_t>(p)]) {
        all_fit = false;
        // Shed one layer to the neighbour with the most absolute headroom.
        const std::int64_t head_prev =
            p > 0 ? budgets[static_cast<std::size_t>(p - 1)] -
                        static_cast<std::int64_t>(plan.stage_size(p - 1)) *
                            min_layer_bytes
                  : -1;
        const std::int64_t head_next =
            p < N - 1 ? budgets[static_cast<std::size_t>(p + 1)] -
                            static_cast<std::int64_t>(plan.stage_size(p + 1)) *
                                min_layer_bytes
                      : -1;
        if (head_prev < min_layer_bytes && head_next < min_layer_bytes)
          throw InfeasibleError(
              "adabits_plan: model does not fit the cluster even at 3-bit");
        if (head_prev >= head_next)
          ++plan.boundaries[static_cast<std::size_t>(p)];  // shed first layer to prev
        else
          --plan.boundaries[static_cast<std::size_t>(p) + 1];  // shed last layer to next
      }
    }
    if (all_fit) break;
  }

  for (int p = 0; p < N; ++p) {
    const auto [b, e] = plan.stage_range(p);
    if (b == e) continue;
    std::vector<std::vector<MckpOption>> items;
    for (int i = b; i < e; ++i) {
      std::vector<MckpOption> options;
      for (int bits : kBitCandidates) {
        options.push_back(
            {layer_weight_bytes(model, bits, cost.format()) + kv_per_layer,
             indicator.at(i, bits)});
      }
      items.push_back(std::move(options));
    }
    const MckpResult sel =
        solve_mckp(items, budgets[static_cast<std::size_t>(p)]);
    if (!sel.feasible)
      throw InfeasibleError("adabits_plan: stage " + std::to_string(p) +
                            " infeasible at all precisions");
    for (int i = b; i < e; ++i)
      plan.layer_bits[static_cast<std::size_t>(i)] =
          kBitCandidates[static_cast<std::size_t>(
              sel.choice[static_cast<std::size_t>(i - b)])];
  }
  return plan;
}

}  // namespace llmpq
