#include "core/ilp_builder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/estimator.hpp"
#include "cost/mem_model.hpp"

namespace llmpq {

IlpBuilder::IlpBuilder(const CostProvider& cost,
                       const IndicatorResult& indicator,
                       std::vector<int> device_order, int prefill_mb,
                       int decode_mb, double theta, int group_size)
    : cost_(cost),
      indicator_(indicator),
      device_order_(std::move(device_order)),
      prefill_mb_(prefill_mb),
      decode_mb_(decode_mb),
      theta_(theta),
      group_size_(std::max(1, group_size)),
      num_positions_(static_cast<int>(device_order_.size())) {
  const int L = cost_.model().layers;
  num_groups_ = (L + group_size_ - 1) / group_size_;
}

int IlpBuilder::num_binaries() const {
  return num_groups_ * num_positions_ *
         static_cast<int>(kBitCandidates.size());
}

int IlpBuilder::z_index(int group, int position, int bit_idx) const {
  return (group * num_positions_ + position) *
             static_cast<int>(kBitCandidates.size()) +
         bit_idx;
}

std::pair<int, int> IlpBuilder::group_range(int group) const {
  const int L = cost_.model().layers;
  const int begin = group * group_size_;
  return {begin, std::min(L, begin + group_size_)};
}

MilpProblem IlpBuilder::build() const {
  const ModelSpec& model = cost_.model();
  const Workload& w = cost_.workload();
  const int N = num_positions_;
  const int G = num_groups_;
  const int B = static_cast<int>(kBitCandidates.size());
  const int n_tokens = w.gen_tokens;
  const int m_pre = (w.global_batch + prefill_mb_ - 1) / prefill_mb_;
  const int m_dec = (w.global_batch + decode_mb_ - 1) / decode_mb_;
  const int dec_ctx = w.prompt_len + w.gen_tokens / 2;

  // Per-position, per-bit single-layer times.
  std::vector<double> t_pre(static_cast<std::size_t>(N * B));
  std::vector<double> t_dec(static_cast<std::size_t>(N * B));
  for (int j = 0; j < N; ++j) {
    const int dev = device_order_[static_cast<std::size_t>(j)];
    for (int bi = 0; bi < B; ++bi) {
      const int bits = kBitCandidates[static_cast<std::size_t>(bi)];
      t_pre[static_cast<std::size_t>(j * B + bi)] = cost_.layer_time(
          dev, bits, Phase::kPrefill, prefill_mb_, w.prompt_len);
      t_dec[static_cast<std::size_t>(j * B + bi)] =
          cost_.layer_time(dev, bits, Phase::kDecode, decode_mb_, dec_ctx);
    }
  }

  // Per-position constant times (embedding on the first position, outbound
  // comm on every non-final position).
  std::vector<double> c_pre(static_cast<std::size_t>(N), 0.0);
  std::vector<double> c_dec(static_cast<std::size_t>(N), 0.0);
  {
    const int dev0 = device_order_.front();
    c_pre[0] += cost_.embedding_time(dev0, prefill_mb_, w.prompt_len);
    c_dec[0] += cost_.embedding_time(dev0, decode_mb_, 1);
    for (int j = 0; j + 1 < N; ++j) {
      const int a = device_order_[static_cast<std::size_t>(j)];
      const int b = device_order_[static_cast<std::size_t>(j + 1)];
      c_pre[static_cast<std::size_t>(j)] +=
          cost_.comm_time(a, b, Phase::kPrefill, prefill_mb_);
      c_dec[static_cast<std::size_t>(j)] +=
          cost_.comm_time(a, b, Phase::kDecode, decode_mb_);
    }
  }

  // Per-group memory and quality coefficients.
  const std::int64_t kv_per_layer =
      layer_kv_bytes(model, w.global_batch, w.max_seq_len());
  std::vector<double> mem_gb(static_cast<std::size_t>(G * B));
  std::vector<double> omega_g(static_cast<std::size_t>(G * B));
  for (int g = 0; g < G; ++g) {
    const auto [lo, hi] = group_range(g);
    for (int bi = 0; bi < B; ++bi) {
      const int bits = kBitCandidates[static_cast<std::size_t>(bi)];
      const double bytes = static_cast<double>(hi - lo) *
                           static_cast<double>(layer_weight_bytes(model, bits,
                                                                  cost_.format()) +
                                               kv_per_layer);
      mem_gb[static_cast<std::size_t>(g * B + bi)] = bytes / 1e9;
      double omega = 0.0;
      for (int i = lo; i < hi; ++i) omega += indicator_.at(i, bits);
      omega_g[static_cast<std::size_t>(g * B + bi)] = omega;
    }
  }

  MilpProblem milp;
  LpProblem& lp = milp.lp;

  // Binaries z_{g,j,b}; objective per (4): the sum-of-stage-times part of
  // both phases lands directly on z, the bubble part on the max variables.
  for (int g = 0; g < G; ++g)
    for (int j = 0; j < N; ++j)
      for (int bi = 0; bi < B; ++bi) {
        // Prefill sum-of-stages lands on z directly; the decode phase is
        // charged through the round variable R_dec below.
        const double obj =
            t_pre[static_cast<std::size_t>(j * B + bi)] *
                static_cast<double>(group_range(g).second -
                                    group_range(g).first) +
            theta_ * omega_g[static_cast<std::size_t>(g * B + bi)];
        const int idx = lp.add_binary(obj);
        check_arg(idx == z_index(g, j, bi), "IlpBuilder: index drift");
        milp.integer_vars.push_back(idx);
      }
  const int v_pre_max =
      lp.add_var(0.0, kLpInf, static_cast<double>(m_pre - 1), "Tpre_max");
  const int v_dec_max = lp.add_var(0.0, kLpInf, 0.0, "Tdec_max");
  // Steady-state decode round time: R >= sum_j Tdec_j and R >= m_dec *
  // Tdec_max (the refined token-serial pipeline bound; see estimator.cpp).
  const int v_dec_round = lp.add_var(
      0.0, kLpInf, static_cast<double>(n_tokens - 1), "Rdec");

  // (9)-(11): each group picks exactly one (device, bit).
  for (int g = 0; g < G; ++g) {
    std::vector<std::pair<int, double>> row;
    for (int j = 0; j < N; ++j)
      for (int bi = 0; bi < B; ++bi) row.push_back({z_index(g, j, bi), 1.0});
    lp.add_row(std::move(row), LpProblem::RowType::kEq, 1.0);
  }

  // (15)-(16): contiguity — group g cannot sit on an earlier position than
  // group g-1: u_{g,j} + u_{g-1,k} <= 1 for k > j.
  for (int g = 1; g < G; ++g)
    for (int j = 0; j < N; ++j)
      for (int k = j + 1; k < N; ++k) {
        std::vector<std::pair<int, double>> row;
        for (int bi = 0; bi < B; ++bi) {
          row.push_back({z_index(g, j, bi), 1.0});
          row.push_back({z_index(g - 1, k, bi), 1.0});
        }
        lp.add_row(std::move(row), LpProblem::RowType::kLe, 1.0);
      }

  // (12)-(13): per-device memory (GB units to keep the tableau scaled).
  for (int j = 0; j < N; ++j) {
    const int dev = device_order_[static_cast<std::size_t>(j)];
    double budget =
        static_cast<double>(
            cost_.cluster().devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
            device_memory_reserve() -
            temp_peak_bytes(model, w, prefill_mb_, decode_mb_)) /
        1e9;
    if (j == 0)
      budget -= static_cast<double>(embedding_weight_bytes(model)) / 1e9;
    else if (j == N - 1)
      budget -= static_cast<double>(lm_head_bytes(model)) / 1e9;
    std::vector<std::pair<int, double>> row;
    for (int g = 0; g < G; ++g)
      for (int bi = 0; bi < B; ++bi)
        row.push_back(
            {z_index(g, j, bi), mem_gb[static_cast<std::size_t>(g * B + bi)]});
    lp.add_row(std::move(row), LpProblem::RowType::kLe, budget);
  }

  // (5)-(8): stage time definitions via the max variables.
  for (int j = 0; j < N; ++j) {
    std::vector<std::pair<int, double>> pre_row, dec_row;
    for (int g = 0; g < G; ++g) {
      const double layers =
          static_cast<double>(group_range(g).second - group_range(g).first);
      for (int bi = 0; bi < B; ++bi) {
        pre_row.push_back(
            {z_index(g, j, bi),
             layers * t_pre[static_cast<std::size_t>(j * B + bi)]});
        dec_row.push_back(
            {z_index(g, j, bi),
             layers * t_dec[static_cast<std::size_t>(j * B + bi)]});
      }
    }
    pre_row.push_back({v_pre_max, -1.0});
    dec_row.push_back({v_dec_max, -1.0});
    lp.add_row(std::move(pre_row), LpProblem::RowType::kLe,
               -c_pre[static_cast<std::size_t>(j)]);
    lp.add_row(std::move(dec_row), LpProblem::RowType::kLe,
               -c_dec[static_cast<std::size_t>(j)]);
  }

  // R_dec >= sum over positions of the decode stage time.
  {
    std::vector<std::pair<int, double>> row;
    double const_sum = 0.0;
    for (int j = 0; j < N; ++j) const_sum += c_dec[static_cast<std::size_t>(j)];
    for (int g = 0; g < G; ++g) {
      const double layers =
          static_cast<double>(group_range(g).second - group_range(g).first);
      for (int j = 0; j < N; ++j)
        for (int bi = 0; bi < B; ++bi)
          row.push_back(
              {z_index(g, j, bi),
               layers * t_dec[static_cast<std::size_t>(j * B + bi)]});
    }
    row.push_back({v_dec_round, -1.0});
    lp.add_row(std::move(row), LpProblem::RowType::kLe, -const_sum);
  }
  // R_dec >= m_dec * Tdec_max.
  lp.add_row({{v_dec_max, static_cast<double>(m_dec)}, {v_dec_round, -1.0}},
             LpProblem::RowType::kLe, 0.0);

  return milp;
}

ExecutionPlan IlpBuilder::extract_plan(const std::vector<double>& x) const {
  const ModelSpec& model = cost_.model();
  const int N = num_positions_;
  const int B = static_cast<int>(kBitCandidates.size());

  ExecutionPlan plan;
  plan.model_name = model.name;
  plan.cluster_name = cost_.cluster().name;
  plan.workload = cost_.workload();
  plan.weight_format = cost_.format();
  plan.device_order = device_order_;
  plan.prefill_micro_batch = prefill_mb_;
  plan.decode_micro_batch = decode_mb_;
  plan.layer_bits.assign(static_cast<std::size_t>(model.layers), 16);
  plan.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);

  std::vector<int> group_pos(static_cast<std::size_t>(num_groups_), -1);
  for (int g = 0; g < num_groups_; ++g) {
    for (int j = 0; j < N; ++j)
      for (int bi = 0; bi < B; ++bi) {
        if (x[static_cast<std::size_t>(z_index(g, j, bi))] > 0.5) {
          group_pos[static_cast<std::size_t>(g)] = j;
          const auto [lo, hi] = group_range(g);
          for (int i = lo; i < hi; ++i)
            plan.layer_bits[static_cast<std::size_t>(i)] =
                kBitCandidates[static_cast<std::size_t>(bi)];
        }
      }
    check_arg(group_pos[static_cast<std::size_t>(g)] >= 0,
              "extract_plan: group unassigned");
    check_arg(g == 0 || group_pos[static_cast<std::size_t>(g)] >=
                            group_pos[static_cast<std::size_t>(g - 1)],
              "extract_plan: non-contiguous assignment");
  }
  // Boundaries: position j covers groups with group_pos == j.
  for (int j = 0; j < N; ++j) {
    int end_layer = plan.boundaries[static_cast<std::size_t>(j)];
    for (int g = 0; g < num_groups_; ++g)
      if (group_pos[static_cast<std::size_t>(g)] == j)
        end_layer = group_range(g).second;
    plan.boundaries[static_cast<std::size_t>(j) + 1] =
        std::max(end_layer, plan.boundaries[static_cast<std::size_t>(j)]);
  }
  plan.boundaries[static_cast<std::size_t>(N)] = model.layers;
  return plan;
}

std::vector<double> IlpBuilder::encode_plan(const ExecutionPlan& plan) const {
  std::vector<double> x(
      static_cast<std::size_t>(num_binaries()) + 3, 0.0);
  // Snap bits to the per-group minimum and boundaries to group granularity
  // (a group straddling a stage boundary moves wholly onto the stage of its
  // first layer), then derive the max-time variables from the *snapped*
  // plan so the warm start satisfies the stage-time rows exactly.
  ExecutionPlan snapped = plan;
  std::vector<int> group_pos(static_cast<std::size_t>(num_groups_));
  for (int g = 0; g < num_groups_; ++g) {
    const auto [lo, hi] = group_range(g);
    int min_bits = 16;
    for (int i = lo; i < hi; ++i)
      min_bits =
          std::min(min_bits, plan.layer_bits[static_cast<std::size_t>(i)]);
    for (int i = lo; i < hi; ++i)
      snapped.layer_bits[static_cast<std::size_t>(i)] = min_bits;
    const int pos = plan.stage_of_layer(lo);
    group_pos[static_cast<std::size_t>(g)] = pos;
    x[static_cast<std::size_t>(z_index(g, pos, bit_index(min_bits)))] = 1.0;
  }
  for (int p = 0; p < num_positions_; ++p) {
    int end_layer = snapped.boundaries[static_cast<std::size_t>(p)];
    for (int g = 0; g < num_groups_; ++g)
      if (group_pos[static_cast<std::size_t>(g)] == p)
        end_layer = group_range(g).second;
    snapped.boundaries[static_cast<std::size_t>(p) + 1] =
        std::max(end_layer, snapped.boundaries[static_cast<std::size_t>(p)]);
  }
  snapped.boundaries[static_cast<std::size_t>(num_positions_)] =
      cost_.model().layers;
  double pre_max = 0.0, dec_max = 0.0, dec_sum = 0.0;
  const PlanEstimate est = estimate_plan(cost_, snapped);
  for (double t : est.stage_prefill_time) pre_max = std::max(pre_max, t);
  for (double t : est.stage_decode_time) {
    dec_max = std::max(dec_max, t);
    dec_sum += t;
  }
  const int m_dec = (cost_.workload().global_batch + decode_mb_ - 1) /
                    decode_mb_;
  // Tiny bump keeps the warm start inside the stage-time rows despite the
  // estimator's slightly different handling of empty-stage comm hops.
  x[static_cast<std::size_t>(num_binaries())] = pre_max + 1e-5;
  x[static_cast<std::size_t>(num_binaries()) + 1] = dec_max + 1e-5;
  x[static_cast<std::size_t>(num_binaries()) + 2] =
      std::max(dec_sum, static_cast<double>(m_dec) * (dec_max + 1e-5)) + 1e-5;
  return x;
}

}  // namespace llmpq
