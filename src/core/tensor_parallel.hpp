#pragma once

#include <vector>

#include "core/assigner.hpp"
#include "hw/cluster.hpp"

namespace llmpq {

/// Tensor-parallel extension (paper Sec. 7, "Search for Tensor
/// Parallelization"): a TP group of k identical same-node GPUs is folded
/// into one *virtual device* with aggregated memory and scaled compute —
/// "we can view the device along the tensor-parallel dimension as a new
/// device with larger memory and different kernel performance (as
/// tensor-parallel will introduce some communication overhead), and it is
/// still a 1-d partition problem along another axis."
///
/// The planner then enumerates the limited set of device meshes (TP degree
/// per GPU type) exactly like it enumerates 1-d device orderings, running
/// the ordinary assigner on each folded cluster.

/// Virtual device modelling a TP group of `degree` GPUs of type `base`
/// connected by `link` (the intra-node NVLink):
///  * memory and peak throughput scale by `degree`,
///  * compute/memory efficiency lose a per-rank synchronization factor,
///  * every layer pass pays two all-reduce latencies on `link`.
GpuSpec make_tp_device(const GpuSpec& base, int degree, const LinkSpec& link);

/// All foldings of `cluster` with a uniform TP degree per GPU type from
/// `degrees` (degree must divide that type's per-node count; degree 1 =
/// no folding). Always includes the unfolded cluster.
std::vector<ClusterSpec> enumerate_tp_foldings(
    const ClusterSpec& cluster, const std::vector<int>& degrees = {1, 2, 4});

struct TpAssignerResult {
  ClusterSpec folded;      ///< the chosen (possibly unfolded) cluster
  AssignerResult result;   ///< the plan over the folded devices
  int meshes_tried = 0;
};

/// Runs the assigner over every TP folding and returns the best plan by
/// planner objective. At least the unfolded mesh is tried, so the result
/// is never worse than pipeline-only planning.
TpAssignerResult assign_with_tensor_parallel(
    const ModelSpec& model, const ClusterSpec& cluster,
    const Workload& workload, const AssignerOptions& options = {},
    const std::vector<int>& degrees = {1, 2, 4});

}  // namespace llmpq
