#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bit_transfer.hpp"
#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "quant/indicator.hpp"

namespace llmpq {

/// Which optimizer backs the bitwidth/partition decision (paper Sec. 4.3 +
/// Table 9): the exact ILP, the bitwidth-transfer heuristic, or a size-based
/// automatic choice.
enum class SolverKind { kAuto, kIlp, kHeuristic };

struct AssignerOptions {
  double theta = 1.0;  ///< user quality scalar (paper's theta)
  IndicatorKind indicator = IndicatorKind::kVariance;
  SolverKind solver = SolverKind::kAuto;
  int group_size = 0;          ///< layers per ILP group; 0 = automatic
  double ilp_time_limit_s = 30.0;  ///< total ILP budget across refinements
  /// The ILP refines only the most promising heuristic combos (the search
  /// first scores every (ordering, micro-batch) pair with the cheap
  /// heuristic, then spends the ILP budget on the leaders).
  int ilp_refine_top = 2;
  int max_orderings = 12;      ///< cap on device-topology enumerations
  int prefill_mb_limit = 8;    ///< xi: prefill micro-batch enumerated in [1, xi]
  CostMode cost_mode = CostMode::kFitted;
  std::uint64_t seed = 7;
  /// Worker threads for the combo search (Pass 1) and the concurrent ILP
  /// refinements (Pass 2): 0 = the shared process pool (LLMPQ_THREADS /
  /// hardware concurrency), 1 = fully serial baseline. Pass 1 tasks are
  /// pure and reduced in combo order, and Pass 2's shared-incumbent
  /// pruning is tie-safe, so the returned plan does not depend on the
  /// thread count (see DESIGN.md "Planner performance & parallel search").
  int num_threads = 0;
};

struct AssignerStats {
  double solve_time_s = 0.0;        ///< wall time of the search
  int combos_tried = 0;             ///< (ordering, micro-batch) pairs
  int ilp_solves = 0;
  int ilp_nodes = 0;
  double indicator_overhead_s = 0;  ///< modelled indicator build cost
  double profiling_overhead_s = 0;  ///< modelled profiling sweep cost
  std::string solver_used;          ///< "ilp(group=2)", "heuristic", ...
  int search_threads = 1;           ///< workers the search ran on
};

struct AssignerResult {
  ExecutionPlan plan;
  PlanEstimate estimate;
  AssignerStats stats;
};

/// The LLM-PQ assigner (paper Alg. 1): enumerates device-topology orderings
/// and (prefill, decode) micro-batch pairs in the pruned search space; for
/// each combination derives the best bit assignment + layer partition via
/// the ILP (warm-started by the heuristic) or the heuristic alone; returns
/// the plan minimizing latency + theta * quality penalty.
/// The weight storage format is taken from the provider (set
/// CostProvider::set_format before calling) and stamped onto the returned
/// plan, keeping its memory estimate exactly equal to the runtime's packed
/// bytes for that format.
/// Throws InfeasibleError when the model cannot be served on the cluster.
AssignerResult assign(const CostProvider& cost,
                      const AssignerOptions& options = {});

/// Enumerate the distinct pipeline orderings of a cluster's devices (two
/// devices of the same GPU model are interchangeable). Deterministically
/// truncated to `max_orderings`, always retaining the compute-ascending and
/// compute-descending orders.
std::vector<std::vector<int>> enumerate_device_orderings(
    const ClusterSpec& cluster, int max_orderings);

/// Micro-batch candidates after the paper's Optimization #1 pruning.
std::vector<int> prefill_microbatch_candidates(const Workload& w, int limit);
std::vector<int> decode_microbatch_candidates(const Workload& w,
                                              int num_devices);

}  // namespace llmpq
