#include "core/tensor_parallel.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "solver/lp.hpp"

namespace llmpq {

GpuSpec make_tp_device(const GpuSpec& base, int degree, const LinkSpec& link) {
  check_arg(degree >= 1, "make_tp_device: degree must be >= 1");
  if (degree == 1) return base;
  GpuSpec tp = base;
  tp.name = std::to_string(degree) + "x" + base.name + "(TP)";
  // Weights, KV and activations shard across ranks.
  tp.mem_bytes = static_cast<std::int64_t>(degree) * base.mem_bytes;
  tp.peak_fp16_tflops = degree * base.peak_fp16_tflops;
  tp.mem_bandwidth = degree * base.mem_bandwidth;
  // Megatron-style sync costs: each rank stalls on partial-sum exchange;
  // modelled as an efficiency haircut growing with the group size.
  const double sync = 1.0 / (1.0 + 0.08 * (degree - 1));
  tp.compute_efficiency = base.compute_efficiency * sync;
  tp.mem_efficiency = base.mem_efficiency * sync;
  // Two all-reduces per decoder layer (after attention and after the MLP);
  // their latency component lands in the per-pass kernel overhead. The
  // bandwidth component is covered by the efficiency haircut above.
  for (auto& kernel : tp.kernels)
    kernel.overhead_s += 2.0 * link.latency_s * degree;
  return tp;
}

std::vector<ClusterSpec> enumerate_tp_foldings(
    const ClusterSpec& cluster, const std::vector<int>& degrees) {
  // Group devices by (node, type): TP only spans identical GPUs that share
  // NVLink.
  std::map<std::pair<int, std::string>, int> group_count;
  for (const auto& slot : cluster.devices)
    ++group_count[{slot.node, slot.gpu_name}];

  // Distinct GPU types, in first-seen order.
  std::vector<std::string> types;
  for (const auto& slot : cluster.devices)
    if (std::find(types.begin(), types.end(), slot.gpu_name) == types.end())
      types.push_back(slot.gpu_name);

  // Per-type feasible degrees: must divide that type's count on every node.
  std::vector<std::vector<int>> feasible(types.size());
  for (std::size_t t = 0; t < types.size(); ++t) {
    for (int d : degrees) {
      bool ok = d >= 1;
      for (const auto& [key, count] : group_count)
        if (key.second == types[t] && count % d != 0) ok = false;
      if (ok) feasible[t].push_back(d);
    }
    if (feasible[t].empty()) feasible[t].push_back(1);
  }

  // Cartesian product of per-type degrees.
  std::vector<ClusterSpec> result;
  std::vector<std::size_t> pick(types.size(), 0);
  for (;;) {
    ClusterSpec folded;
    folded.intra_node = cluster.intra_node;
    folded.inter_node = cluster.inter_node;
    std::string suffix;
    for (std::size_t t = 0; t < types.size(); ++t) {
      const int d = feasible[t][pick[t]];
      if (d > 1)
        suffix += "-" + types[t] + "x" + std::to_string(d);
    }
    folded.name = cluster.name + (suffix.empty() ? "" : "+tp" + suffix);

    // Walk devices node by node, folding runs of `d` same-type devices.
    std::map<std::pair<int, std::string>, int> pending;
    for (const auto& slot : cluster.devices) {
      const std::size_t t = static_cast<std::size_t>(
          std::find(types.begin(), types.end(), slot.gpu_name) -
          types.begin());
      const int d = feasible[t][pick[t]];
      auto& seen = pending[{slot.node, slot.gpu_name}];
      ++seen;
      if (seen % d != 0) continue;  // absorbed into the current TP group
      DeviceSlot folded_slot;
      folded_slot.node = slot.node;
      if (d == 1) {
        folded_slot.gpu_name = slot.gpu_name;
      } else {
        const GpuSpec tp =
            make_tp_device(slot.gpu(), d, cluster.intra_node);
        folded_slot.gpu_name = tp.name;
        folded_slot.custom = std::make_shared<GpuSpec>(tp);
      }
      folded.devices.push_back(std::move(folded_slot));
    }
    result.push_back(std::move(folded));

    // Advance the odometer.
    std::size_t t = 0;
    while (t < types.size() && ++pick[t] == feasible[t].size()) {
      pick[t] = 0;
      ++t;
    }
    if (t == types.size()) break;
  }
  return result;
}

TpAssignerResult assign_with_tensor_parallel(
    const ModelSpec& model, const ClusterSpec& cluster,
    const Workload& workload, const AssignerOptions& options,
    const std::vector<int>& degrees) {
  TpAssignerResult best;
  double best_obj = kLpInf;
  for (const ClusterSpec& folded : enumerate_tp_foldings(cluster, degrees)) {
    ++best.meshes_tried;
    try {
      CostProvider cost(model, folded, options.cost_mode);
      cost.set_workload(workload);
      AssignerResult r = assign(cost, options);
      const double obj = r.estimate.objective;
      if (obj < best_obj) {
        best_obj = obj;
        best.folded = folded;
        best.result = std::move(r);
      }
    } catch (const InfeasibleError& e) {
      LOG_DEBUG << "TP mesh " << folded.name << " infeasible: " << e.what();
    }
  }
  check_arg(best_obj < kLpInf,
            "assign_with_tensor_parallel: no feasible mesh");
  return best;
}

}  // namespace llmpq
