#include "core/bit_transfer.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "hw/gpu_spec.hpp"

namespace llmpq {

namespace {

int lower_bits(int bits) {
  const int idx = bit_index(bits);
  return idx > 0 ? kBitCandidates[static_cast<std::size_t>(idx - 1)] : -1;
}

int higher_bits(int bits) {
  const int idx = bit_index(bits);
  return idx >= 0 && idx + 1 < static_cast<int>(kBitCandidates.size())
             ? kBitCandidates[static_cast<std::size_t>(idx + 1)]
             : -1;
}

/// Objective of a candidate, or nullopt if memory-infeasible.
std::optional<double> score(const CostProvider& cost,
                            const IndicatorResult& indicator, double theta,
                            const ExecutionPlan& plan) {
  const PlanEstimate est = estimate_plan(cost, plan, &indicator, theta);
  if (!est.mem_feasible) return std::nullopt;
  return est.objective;
}

}  // namespace

BitTransferResult bit_transfer(const CostProvider& cost,
                               const IndicatorResult& indicator,
                               ExecutionPlan start,
                               const BitTransferOptions& options) {
  BitTransferResult result;
  result.plan = std::move(start);

  auto current = score(cost, indicator, options.theta, result.plan);
  // An infeasible start can happen when adabits packs a stage right at its
  // KV + weight budget but the temp workspace pushes it over; the moves
  // below can repair it, so give such starts a pessimistic score.
  double current_obj = current.value_or(1e18);

  const int N = result.plan.num_stages();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    ExecutionPlan best_plan;
    double best_obj = current_obj;
    bool found = false;

    auto consider = [&](const ExecutionPlan& cand) {
      const auto s = score(cost, indicator, options.theta, cand);
      if (s && *s < best_obj - 1e-9) {
        best_obj = *s;
        best_plan = cand;
        found = true;
      }
    };

    // ---- Precision transfers: one step up or down anywhere.
    for (int i = 0; i < result.plan.num_layers(); ++i) {
      const int bits = result.plan.layer_bits[static_cast<std::size_t>(i)];
      for (int nb : {lower_bits(bits), higher_bits(bits)}) {
        if (nb < 0) continue;
        ExecutionPlan cand = result.plan;
        cand.layer_bits[static_cast<std::size_t>(i)] = nb;
        consider(cand);
      }
    }

    // ---- Boundary migrations: move one layer across each boundary, both
    // directions, optionally re-quantizing the moved layer one step down
    // so it fits the receiving device.
    for (int p = 0; p + 1 < N; ++p) {
      const int boundary = result.plan.boundaries[static_cast<std::size_t>(p) + 1];
      // Last layer of stage p -> stage p+1.
      if (result.plan.stage_size(p) > 0) {
        ExecutionPlan cand = result.plan;
        --cand.boundaries[static_cast<std::size_t>(p) + 1];
        consider(cand);
        const int moved = boundary - 1;
        const int nb =
            lower_bits(cand.layer_bits[static_cast<std::size_t>(moved)]);
        if (nb > 0) {
          cand.layer_bits[static_cast<std::size_t>(moved)] = nb;
          consider(cand);
        }
      }
      // First layer of stage p+1 -> stage p.
      if (p + 1 < N && result.plan.stage_size(p + 1) > 0) {
        ExecutionPlan cand = result.plan;
        ++cand.boundaries[static_cast<std::size_t>(p) + 1];
        consider(cand);
        const int moved = boundary;
        const int nb =
            lower_bits(cand.layer_bits[static_cast<std::size_t>(moved)]);
        if (nb > 0) {
          cand.layer_bits[static_cast<std::size_t>(moved)] = nb;
          consider(cand);
        }
      }
    }

    if (!found) break;
    result.plan = std::move(best_plan);
    current_obj = best_obj;
    ++result.moves_applied;
  }

  result.estimate =
      estimate_plan(cost, result.plan, &indicator, options.theta);
  return result;
}

}  // namespace llmpq
