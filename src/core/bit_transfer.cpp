#include "core/bit_transfer.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "common/trace.hpp"
#include "hw/gpu_spec.hpp"

namespace llmpq {

namespace {

int lower_bits(int bits) {
  const int idx = bit_index(bits);
  return idx > 0 ? kBitCandidates[static_cast<std::size_t>(idx - 1)] : -1;
}

int higher_bits(int bits) {
  const int idx = bit_index(bits);
  return idx >= 0 && idx + 1 < static_cast<int>(kBitCandidates.size())
             ? kBitCandidates[static_cast<std::size_t>(idx + 1)]
             : -1;
}

/// One candidate move of the local search, replayable onto a plan. The
/// search scores moves through the IncrementalPlanEvaluator (O(1) each)
/// and only materializes the winning plan once per iteration.
struct Move {
  enum Kind { kBitChange, kBoundaryShift } kind = kBitChange;
  int layer = -1;     ///< kBitChange: layer re-quantized
  int bits = -1;      ///< new bitwidth (kBoundaryShift: < 0 keeps bits)
  int boundary = -1;  ///< kBoundaryShift: boundary between p and p+1
  int delta = 0;      ///< kBoundaryShift: -1 last of p -> p+1, +1 reverse
};

ExecutionPlan apply_move(const ExecutionPlan& plan, const Move& move) {
  ExecutionPlan next = plan;
  if (move.kind == Move::kBitChange) {
    next.layer_bits[static_cast<std::size_t>(move.layer)] = move.bits;
    return next;
  }
  const std::size_t b = static_cast<std::size_t>(move.boundary) + 1;
  const int moved =
      move.delta < 0 ? next.boundaries[b] - 1 : next.boundaries[b];
  next.boundaries[b] += move.delta < 0 ? -1 : 1;
  if (move.bits > 0)
    next.layer_bits[static_cast<std::size_t>(moved)] = move.bits;
  return next;
}

}  // namespace

BitTransferResult bit_transfer(const CostProvider& cost,
                               const IndicatorResult& indicator,
                               ExecutionPlan start,
                               const BitTransferOptions& options) {
  TRACE_SPAN("planner", "bit_transfer");
  BitTransferResult result;
  result.plan = std::move(start);

  const int N = result.plan.num_stages();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    ++result.iterations;
    // Rebuilt once per iteration (O(L)); every candidate below re-scores
    // against it in O(1) + an O(N) totals reduction.
    const IncrementalPlanEvaluator eval(cost, &indicator, options.theta,
                                        result.plan);
    // An infeasible current plan can happen when adabits packs a stage
    // right at its KV + weight budget but the temp workspace pushes it
    // over; the moves below can repair it, so give it a pessimistic score.
    const double current_obj =
        eval.base().feasible ? eval.base().objective : 1e18;

    std::optional<Move> best_move;
    double best_obj = current_obj;
    auto consider = [&](const IncrementalPlanEvaluator::Score& s,
                        const Move& move) {
      if (s.feasible && s.objective < best_obj - 1e-9) {
        best_obj = s.objective;
        best_move = move;
      }
    };

    // ---- Precision transfers: one step up or down anywhere.
    for (int i = 0; i < result.plan.num_layers(); ++i) {
      const int bits = result.plan.layer_bits[static_cast<std::size_t>(i)];
      for (int nb : {lower_bits(bits), higher_bits(bits)}) {
        if (nb < 0) continue;
        consider(eval.score_bit_change(i, nb),
                 {Move::kBitChange, i, nb, -1, 0});
      }
    }

    // ---- Boundary migrations: move one layer across each boundary, both
    // directions, optionally re-quantizing the moved layer one step down
    // so it fits the receiving device. Moves that change a stage's
    // emptiness fall back to the full estimator (the incremental path
    // cannot patch the embedding/comm structure).
    auto consider_shift = [&](int p, int delta, int nb) {
      const Move move{Move::kBoundaryShift, -1, nb, p, delta};
      if (const auto s = eval.score_boundary_shift(p, delta, nb)) {
        consider(*s, move);
        return;
      }
      const ExecutionPlan cand = apply_move(result.plan, move);
      const PlanEstimate est =
          estimate_plan(cost, cand, &indicator, options.theta);
      consider({est.mem_feasible, est.objective}, move);
    };
    for (int p = 0; p + 1 < N; ++p) {
      const int boundary =
          result.plan.boundaries[static_cast<std::size_t>(p) + 1];
      // Last layer of stage p -> stage p+1.
      if (result.plan.stage_size(p) > 0) {
        consider_shift(p, -1, -1);
        const int nb = lower_bits(
            result.plan.layer_bits[static_cast<std::size_t>(boundary - 1)]);
        if (nb > 0) consider_shift(p, -1, nb);
      }
      // First layer of stage p+1 -> stage p.
      if (result.plan.stage_size(p + 1) > 0) {
        consider_shift(p, 1, -1);
        const int nb = lower_bits(
            result.plan.layer_bits[static_cast<std::size_t>(boundary)]);
        if (nb > 0) consider_shift(p, 1, nb);
      }
    }

    if (!best_move) break;
    result.plan = apply_move(result.plan, *best_move);
    ++result.moves_applied;
  }

  result.estimate =
      estimate_plan(cost, result.plan, &indicator, options.theta);
  return result;
}

}  // namespace llmpq
