#pragma once

#include <vector>

#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "quant/indicator.hpp"
#include "solver/milp.hpp"

namespace llmpq {

/// Instantiation of the paper's ILP (4)-(16) for one fixed device ordering
/// and micro-batch pair. Binary z_{g,j,b} places layer group g on pipeline
/// position j at bitwidth b; continuous T^pre_max / T^dec_max linearize the
/// pipeline-bubble max terms. Grouping (Optimization #2) shrinks the
/// variable count by `group_size`.
class IlpBuilder {
 public:
  IlpBuilder(const CostProvider& cost, const IndicatorResult& indicator,
             std::vector<int> device_order, int prefill_mb, int decode_mb,
             double theta, int group_size = 1);

  /// Builds the MILP. Objective units are seconds (+ theta * omega).
  MilpProblem build() const;

  /// Decodes a MILP solution vector into an execution plan.
  ExecutionPlan extract_plan(const std::vector<double>& x) const;

  /// Encodes an existing plan as a solution vector (for warm starts).
  /// Bits within a group are snapped to the group's minimum bitwidth and
  /// the group is placed on the stage of its first layer.
  std::vector<double> encode_plan(const ExecutionPlan& plan) const;

  int num_groups() const { return num_groups_; }
  int num_binaries() const;

 private:
  int z_index(int group, int position, int bit_idx) const;
  std::pair<int, int> group_range(int group) const;

  const CostProvider& cost_;
  const IndicatorResult& indicator_;
  std::vector<int> device_order_;
  int prefill_mb_;
  int decode_mb_;
  double theta_;
  int group_size_;
  int num_groups_;
  int num_positions_;
};

}  // namespace llmpq
