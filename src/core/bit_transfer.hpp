#pragma once

#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "quant/indicator.hpp"

namespace llmpq {

struct BitTransferOptions {
  int max_iterations = 400;
  double theta = 1.0;
};

struct BitTransferResult {
  ExecutionPlan plan;
  PlanEstimate estimate;
  int iterations = 0;
  int moves_applied = 0;
};

/// The bitwidth-transfer heuristic (paper Alg. 2): starting from the
/// adabits assignment, repeatedly apply precision-conversion and
/// layer-migration transformations that relieve the straggler stage:
///   * downgrade a layer on the straggler to the next lower precision,
///   * upgrade a layer on an under-utilized stage (quality win at no
///     pipeline cost),
///   * shift a boundary layer off the straggler to a neighbour, re-picking
///     its bitwidth to fit,
/// accepting the best objective-improving move each round until fixpoint.
BitTransferResult bit_transfer(const CostProvider& cost,
                               const IndicatorResult& indicator,
                               ExecutionPlan start,
                               const BitTransferOptions& options = {});

}  // namespace llmpq
