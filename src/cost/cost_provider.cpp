#include "cost/cost_provider.hpp"

#include <mutex>
#include <set>

#include "common/error.hpp"
#include "cost/ground_truth.hpp"
#include "quant/scheme.hpp"

namespace llmpq {

CostProvider::CostProvider(const ModelSpec& model, const ClusterSpec& cluster,
                           CostMode mode, const ProfilerOptions& options)
    : model_(model), cluster_(cluster), mode_(mode), latency_model_(model) {
  if (mode_ == CostMode::kFitted) {
    // Profile each distinct GPU type once.
    std::set<std::string> seen;
    std::vector<ProfileRecord> all;
    for (const auto& slot : cluster_.devices) {
      if (!seen.insert(slot.gpu_name).second) continue;
      const auto records = profile_device(model_, slot.gpu(), options);
      all.insert(all.end(), records.begin(), records.end());
      build_cost_s_ += profiling_cost_s(model_, slot.gpu(), options);
    }
    latency_model_.fit(all);
  }
}

namespace {

/// Packs a layer_time query into one cache key. Fields comfortably cover
/// the planner's ranges (devices < 2^8, 4 bit candidates, 2 phases, 3
/// formats, micro-batch < 2^16, context < 2^32); out-of-range queries
/// return 0 and bypass the cache. seq_or_ctx occupies bits 0-31, the
/// format tag bits 34-35, and bit 36 marks a valid key.
std::uint64_t pack_layer_query(int dev, int bit_idx, Phase phase,
                               int micro_batch, int seq_or_ctx,
                               QuantFormat format) {
  if (dev < 0 || dev >= 256 || bit_idx < 0 || micro_batch < 0 ||
      micro_batch >= (1 << 16) || seq_or_ctx < 0)
    return 0;
  return (static_cast<std::uint64_t>(dev) << 56) |
         (static_cast<std::uint64_t>(bit_idx) << 54) |
         (static_cast<std::uint64_t>(phase == Phase::kDecode ? 1 : 0) << 53) |
         (static_cast<std::uint64_t>(micro_batch) << 37) |
         (static_cast<std::uint64_t>(format) << 34) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(seq_or_ctx)) |
          (1ull << 36));
}

}  // namespace

double CostProvider::layer_time(int dev, int bits, Phase phase,
                                int micro_batch, int seq_or_ctx) const {
  const std::uint64_t key = pack_layer_query(dev, bit_index(bits), phase,
                                             micro_batch, seq_or_ctx, format_);
  if (key == 0)
    return layer_time_uncached(dev, bits, phase, micro_batch, seq_or_ctx);
  {
    std::shared_lock lock(cache_mu_);
    const auto it = layer_time_cache_.find(key);
    if (it != layer_time_cache_.end()) return it->second;
  }
  const double t =
      layer_time_uncached(dev, bits, phase, micro_batch, seq_or_ctx);
  {
    std::unique_lock lock(cache_mu_);
    layer_time_cache_.emplace(key, t);
  }
  return t;
}

std::size_t CostProvider::layer_time_cache_size() const {
  std::shared_lock lock(cache_mu_);
  return layer_time_cache_.size();
}

double CostProvider::layer_time_uncached(int dev, int bits, Phase phase,
                                         int micro_batch,
                                         int seq_or_ctx) const {
  check_arg(dev >= 0 && dev < cluster_.num_devices(),
            "CostProvider::layer_time: bad device");
  const auto& slot = cluster_.devices[static_cast<std::size_t>(dev)];
  if (mode_ == CostMode::kFitted) {
    // The fitted regression was trained on per-channel kernels; scale its
    // answer by the phase's dominant format cost — compute (measured
    // kernel factor) in prefill, weight-byte traffic in decode.
    const double base = latency_model_.predict(slot.gpu_name, bits, phase,
                                               micro_batch, seq_or_ctx);
    if (format_ == QuantFormat::kPerChannel || bits >= 16) return base;
    return phase == Phase::kPrefill
               ? base / format_kernel_factor(bits, format_)
               : base * format_memory_factor(bits, format_);
  }
  const PhaseShape shape = phase == Phase::kPrefill
                               ? prefill_shape(micro_batch, seq_or_ctx)
                               : decode_shape(micro_batch, seq_or_ctx);
  return layer_time_ground_truth(slot.gpu(), model_, shape, bits,
                                 QuantScheme::kGptq, format_);
}

double CostProvider::embedding_time(int dev, int micro_batch,
                                    int tokens_per_seq) const {
  const auto& slot = cluster_.devices[static_cast<std::size_t>(dev)];
  return embedding_time_ground_truth(
      slot.gpu(), model_,
      static_cast<std::int64_t>(micro_batch) * tokens_per_seq);
}

double CostProvider::comm_time(int from_dev, int to_dev, Phase phase,
                               int micro_batch) const {
  if (from_dev == to_dev) return 0.0;
  const PhaseShape shape =
      phase == Phase::kPrefill
          ? prefill_shape(micro_batch, workload_.prompt_len)
          : decode_shape(micro_batch, workload_.max_seq_len());
  return cluster_.link(from_dev, to_dev)
      .transfer_time(activation_bytes(model_, shape));
}

}  // namespace llmpq
