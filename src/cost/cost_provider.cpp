#include "cost/cost_provider.hpp"

#include <set>

#include "common/error.hpp"
#include "cost/ground_truth.hpp"

namespace llmpq {

CostProvider::CostProvider(const ModelSpec& model, const ClusterSpec& cluster,
                           CostMode mode, const ProfilerOptions& options)
    : model_(model), cluster_(cluster), mode_(mode), latency_model_(model) {
  if (mode_ == CostMode::kFitted) {
    // Profile each distinct GPU type once.
    std::set<std::string> seen;
    std::vector<ProfileRecord> all;
    for (const auto& slot : cluster_.devices) {
      if (!seen.insert(slot.gpu_name).second) continue;
      const auto records = profile_device(model_, slot.gpu(), options);
      all.insert(all.end(), records.begin(), records.end());
      build_cost_s_ += profiling_cost_s(model_, slot.gpu(), options);
    }
    latency_model_.fit(all);
  }
}

double CostProvider::layer_time(int dev, int bits, Phase phase,
                                int micro_batch, int seq_or_ctx) const {
  check_arg(dev >= 0 && dev < cluster_.num_devices(),
            "CostProvider::layer_time: bad device");
  const auto& slot = cluster_.devices[static_cast<std::size_t>(dev)];
  if (mode_ == CostMode::kFitted)
    return latency_model_.predict(slot.gpu_name, bits, phase, micro_batch,
                                  seq_or_ctx);
  const PhaseShape shape = phase == Phase::kPrefill
                               ? prefill_shape(micro_batch, seq_or_ctx)
                               : decode_shape(micro_batch, seq_or_ctx);
  return layer_time_ground_truth(slot.gpu(), model_, shape, bits);
}

double CostProvider::embedding_time(int dev, int micro_batch,
                                    int tokens_per_seq) const {
  const auto& slot = cluster_.devices[static_cast<std::size_t>(dev)];
  return embedding_time_ground_truth(
      slot.gpu(), model_,
      static_cast<std::int64_t>(micro_batch) * tokens_per_seq);
}

double CostProvider::comm_time(int from_dev, int to_dev, Phase phase,
                               int micro_batch) const {
  if (from_dev == to_dev) return 0.0;
  const PhaseShape shape =
      phase == Phase::kPrefill
          ? prefill_shape(micro_batch, workload_.prompt_len)
          : decode_shape(micro_batch, workload_.max_seq_len());
  return cluster_.link(from_dev, to_dev)
      .transfer_time(activation_bytes(model_, shape));
}

}  // namespace llmpq
