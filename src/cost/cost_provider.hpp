#pragma once

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "cost/latency_model.hpp"
#include "hw/cluster.hpp"
#include "model/workload.hpp"
#include "quant/format.hpp"

namespace llmpq {

/// The planner's single window onto execution cost. Two modes, matching
/// the paper's `--fit / --use_profiler_prediction` switch:
///   kFitted   — profile every device type once, fit the regression model,
///               answer queries from the fit (fast, slightly inaccurate);
///   kProfiled — answer queries straight from profiled samples (here: the
///               noiseless ground truth), the "use profiled result" path.
enum class CostMode { kFitted, kProfiled };

/// Thread-safety contract: every const member is safe to call from any
/// number of threads concurrently (the planner's parallel combo search
/// shares one provider across all workers). layer_time() memoizes its
/// answers in an internal cache guarded by a shared_mutex — the function
/// is pure in its arguments, so the cache never needs invalidation and is
/// shared across every (ordering, micro-batch) combo of a search.
/// set_workload() / set_format() are NOT thread-safe and must happen-before
/// any concurrent queries (the format participates in the cache key, so a
/// mid-search change would mix regimes).
class CostProvider {
 public:
  CostProvider(const ModelSpec& model, const ClusterSpec& cluster,
               CostMode mode = CostMode::kFitted,
               const ProfilerOptions& options = {});

  /// Predicted time of ONE decoder layer at `bits` on device `dev` of the
  /// cluster for a micro-batch of the given size. Memoized per
  /// (device, bits, phase, micro_batch, seq_or_ctx); thread-safe.
  double layer_time(int dev, int bits, Phase phase, int micro_batch,
                    int seq_or_ctx) const;

  /// Cache observability for tests/benches: number of memoized layer-time
  /// entries currently held.
  std::size_t layer_time_cache_size() const;

  /// Predicted master-engine (embedding + LM head) time per micro-batch,
  /// charged to the first device.
  double embedding_time(int dev, int micro_batch, int tokens_per_seq) const;

  /// Activation-transfer time between consecutive pipeline positions.
  double comm_time(int from_dev, int to_dev, Phase phase,
                   int micro_batch) const;

  /// Total time spent producing the cost model (profiling sweeps), for
  /// overhead reporting.
  double build_cost_s() const { return build_cost_s_; }

  const ModelSpec& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const Workload& workload() const { return workload_; }
  void set_workload(const Workload& w) { workload_ = w; }
  /// Weight storage format the planner is costing (default per-channel).
  /// assign() stamps this onto the plans it produces so memory estimates
  /// and kernel times stay coherent with the runtime's packed layout.
  QuantFormat format() const { return format_; }
  void set_format(QuantFormat format) { format_ = format; }
  CostMode mode() const { return mode_; }
  const LatencyModel& latency_model() const { return latency_model_; }

 private:
  double layer_time_uncached(int dev, int bits, Phase phase, int micro_batch,
                             int seq_or_ctx) const;

  ModelSpec model_;
  ClusterSpec cluster_;
  CostMode mode_;
  Workload workload_;
  QuantFormat format_ = QuantFormat::kPerChannel;
  LatencyModel latency_model_;
  double build_cost_s_ = 0.0;

  // Memoized layer_time answers, keyed by the packed query tuple. Mutable
  // because memoization is not observable state; guarded by cache_mu_
  // (shared for lookups, exclusive for inserts).
  mutable std::shared_mutex cache_mu_;
  mutable std::unordered_map<std::uint64_t, double> layer_time_cache_;
};

}  // namespace llmpq
