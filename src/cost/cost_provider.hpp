#pragma once

#include <memory>

#include "cost/latency_model.hpp"
#include "hw/cluster.hpp"
#include "model/workload.hpp"

namespace llmpq {

/// The planner's single window onto execution cost. Two modes, matching
/// the paper's `--fit / --use_profiler_prediction` switch:
///   kFitted   — profile every device type once, fit the regression model,
///               answer queries from the fit (fast, slightly inaccurate);
///   kProfiled — answer queries straight from profiled samples (here: the
///               noiseless ground truth), the "use profiled result" path.
enum class CostMode { kFitted, kProfiled };

class CostProvider {
 public:
  CostProvider(const ModelSpec& model, const ClusterSpec& cluster,
               CostMode mode = CostMode::kFitted,
               const ProfilerOptions& options = {});

  /// Predicted time of ONE decoder layer at `bits` on device `dev` of the
  /// cluster for a micro-batch of the given size.
  double layer_time(int dev, int bits, Phase phase, int micro_batch,
                    int seq_or_ctx) const;

  /// Predicted master-engine (embedding + LM head) time per micro-batch,
  /// charged to the first device.
  double embedding_time(int dev, int micro_batch, int tokens_per_seq) const;

  /// Activation-transfer time between consecutive pipeline positions.
  double comm_time(int from_dev, int to_dev, Phase phase,
                   int micro_batch) const;

  /// Total time spent producing the cost model (profiling sweeps), for
  /// overhead reporting.
  double build_cost_s() const { return build_cost_s_; }

  const ModelSpec& model() const { return model_; }
  const ClusterSpec& cluster() const { return cluster_; }
  const Workload& workload() const { return workload_; }
  void set_workload(const Workload& w) { workload_ = w; }
  CostMode mode() const { return mode_; }
  const LatencyModel& latency_model() const { return latency_model_; }

 private:
  ModelSpec model_;
  ClusterSpec cluster_;
  CostMode mode_;
  Workload workload_;
  LatencyModel latency_model_;
  double build_cost_s_ = 0.0;
};

}  // namespace llmpq
