#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hw/gpu_spec.hpp"
#include "model/model_spec.hpp"

namespace llmpq {

enum class Phase { kPrefill, kDecode };

const char* phase_name(Phase phase);

/// One measured sample: a single decoder layer of `model` run on `gpu` at
/// `bits` with the given shape. `time_s` includes measurement noise.
struct ProfileRecord {
  std::string gpu_name;
  int bits = 16;
  Phase phase = Phase::kPrefill;
  int batch = 1;
  int seq_or_ctx = 1;  ///< prompt length (prefill) or context length (decode)
  double time_s = 0.0;
};

struct ProfilerOptions {
  std::vector<int> batches = {1, 2, 4, 8, 16, 32};
  std::vector<int> prompt_lens = {64, 128, 256, 512, 1024};
  std::vector<int> contexts = {128, 256, 384, 512, 768, 1024};
  double noise_stddev = 0.01;  ///< multiplicative measurement noise
  std::uint64_t seed = 2024;
};

/// "Runs" the profiling sweep for one (model, gpu) pair: samples the
/// ground-truth kernel model over the grid with measurement noise. This is
/// the only component besides the simulator allowed to touch ground truth.
std::vector<ProfileRecord> profile_device(const ModelSpec& model,
                                          const GpuSpec& gpu,
                                          const ProfilerOptions& options = {});

/// Modelled wall-clock cost of actually running that sweep on hardware
/// (used when reporting planner overheads).
double profiling_cost_s(const ModelSpec& model, const GpuSpec& gpu,
                        const ProfilerOptions& options = {});

}  // namespace llmpq
