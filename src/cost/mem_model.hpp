#pragma once

#include <cstdint>
#include <span>

#include "model/model_spec.hpp"
#include "model/workload.hpp"
#include "quant/format.hpp"

namespace llmpq {

/// Analytic memory model (paper Sec. 4.1): the planner's view of how much
/// GPU memory a model shard needs. Weights depend on per-layer bitwidths;
/// the KV cache is reserved at the maximum sequence length (prompt +
/// generation budget) in FP16; temporary memory is a worst case over the
/// operators of the embedding layer and one decoder layer in both phases.

/// Bytes of one decoder layer's packed linear weights at `bits` in
/// `format` — exactly Σ QuantizedMatrix::packed_bytes_for over the
/// layer's linear ops, so planner estimates reconcile with runtime
/// footprints byte-for-byte (the seed charged 2-byte scales while the
/// runtime stores float32, a systematic underestimate). bits == 16 is
/// the analytic device-FP16 model (2 bytes/param), not the host float
/// staging copy.
std::int64_t layer_quantized_weight_bytes(
    const ModelSpec& model, int bits,
    QuantFormat format = QuantFormat::kPerChannel);

/// Bytes of one decoder layer's weights at `bits` (packed linears as
/// above; norms/biases stay FP16).
std::int64_t layer_weight_bytes(const ModelSpec& model, int bits,
                                QuantFormat format = QuantFormat::kPerChannel);

/// Bytes of one layer's preallocated KV cache for `batch` sequences of up
/// to `max_seq_len` tokens.
std::int64_t layer_kv_bytes(const ModelSpec& model, int batch,
                            int max_seq_len);

/// Bytes of the embedding tables (token + positional, FP16) held by the
/// first stage, and of the (tied) LM head held by the last stage.
std::int64_t embedding_weight_bytes(const ModelSpec& model);
std::int64_t lm_head_bytes(const ModelSpec& model);

/// Worst-case temporary/workspace bytes for a stage processing micro-batch
/// sizes `prefill_mb` / `decode_mb` of the given workload (attention score
/// matrices dominate in prefill).
std::int64_t temp_peak_bytes(const ModelSpec& model, const Workload& w,
                             int prefill_mb, int decode_mb);

/// Total memory demand of a stage holding layers with the given bitwidths.
struct StageMemory {
  std::int64_t weights = 0;
  std::int64_t kv_cache = 0;
  std::int64_t embedding = 0;
  std::int64_t temp = 0;
  std::int64_t total() const { return weights + kv_cache + embedding + temp; }
};

StageMemory stage_memory(const ModelSpec& model,
                         std::span<const int> layer_bits, const Workload& w,
                         int prefill_mb, int decode_mb, bool first_stage,
                         bool last_stage,
                         QuantFormat format = QuantFormat::kPerChannel);

}  // namespace llmpq
