#include "cost/mem_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "hw/gpu_spec.hpp"
#include "quant/quantize.hpp"

namespace llmpq {

std::int64_t layer_quantized_weight_bytes(const ModelSpec& model, int bits,
                                          QuantFormat format) {
  if (bits == 16) {
    // Analytic device-FP16: 2 bytes/param (the runtime's float matrices
    // are a host staging artifact, not what a GPU shard would hold).
    std::int64_t params = 0;
    for (const auto& op : model.layer_linear_ops())
      params += op.weight_params();
    return params * 2;
  }
  std::int64_t total = 0;
  for (const auto& op : model.layer_linear_ops())
    total += static_cast<std::int64_t>(QuantizedMatrix::packed_bytes_for(
        static_cast<std::size_t>(op.out_dim),
        static_cast<std::size_t>(op.in_dim), bits, format));
  return total;
}

std::int64_t layer_weight_bytes(const ModelSpec& model, int bits,
                                QuantFormat format) {
  const std::int64_t fp16_side =
      2 * (4 * model.hidden) +              // two layer norms (w + b)
      2 * (model.hidden * 5 + model.ffn);   // linear biases at FP16
  return layer_quantized_weight_bytes(model, bits, format) + fp16_side;
}

std::int64_t layer_kv_bytes(const ModelSpec& model, int batch,
                            int max_seq_len) {
  // K and V, FP16, reserved at full length (paper follows FasterTransformer).
  return 2LL * batch * max_seq_len * model.hidden * 2;
}

std::int64_t embedding_weight_bytes(const ModelSpec& model) {
  return (model.vocab * model.hidden + model.max_pos * model.hidden +
          2 * model.hidden) *
         2;
}

std::int64_t lm_head_bytes(const ModelSpec& model) {
  // Weight-tied with the token embedding, but a pipeline's last stage must
  // hold its own copy when it differs from the first stage.
  return model.vocab * model.hidden * 2;
}

std::int64_t temp_peak_bytes(const ModelSpec& model, const Workload& w,
                             int prefill_mb, int decode_mb) {
  check_arg(prefill_mb >= 1 && decode_mb >= 1,
            "temp_peak_bytes: micro-batch sizes must be positive");
  const std::int64_t s = w.prompt_len;
  const std::int64_t ctx = w.max_seq_len();
  // Prefill: activations through the widest operator (ffn) + attention
  // score matrix (heads x s x s) in FP16, double-buffered.
  const std::int64_t prefill =
      2 * prefill_mb * s * (model.hidden + model.ffn) * 2 +
      prefill_mb * model.heads * s * s * 2;
  // Decode: one-token activations + scores over the full context.
  const std::int64_t decode =
      2 * decode_mb * (model.hidden + model.ffn) * 2 +
      decode_mb * model.heads * ctx * 2;
  return std::max(prefill, decode);
}

StageMemory stage_memory(const ModelSpec& model,
                         std::span<const int> layer_bits, const Workload& w,
                         int prefill_mb, int decode_mb, bool first_stage,
                         bool last_stage, QuantFormat format) {
  StageMemory mem;
  for (int bits : layer_bits) {
    mem.weights += layer_weight_bytes(model, bits, format);
    mem.kv_cache += layer_kv_bytes(model, w.global_batch, w.max_seq_len());
  }
  if (first_stage) mem.embedding += embedding_weight_bytes(model);
  if (last_stage && !first_stage) mem.embedding += lm_head_bytes(model);
  mem.temp = temp_peak_bytes(model, w, prefill_mb, decode_mb);
  return mem;
}

}  // namespace llmpq
