#pragma once

#include "hw/gpu_spec.hpp"
#include "quant/scheme.hpp"
#include "model/flops.hpp"
#include "model/model_spec.hpp"

namespace llmpq {

/// Roofline-based "real" kernel timing — the stand-in for running kernels
/// on actual GPUs. The profiler samples this (with measurement noise) to
/// fit the latency cost model; the pipeline simulator executes against it.
/// Keeping it in one place makes the planner-vs-reality gap honest: the
/// planner only ever sees fitted regressions, never this function.

/// Wall time of one decoder layer pass at `bits` for a phase shape.
/// `scheme` selects the weight-only kernel family (Sec. 7 extension);
/// `format` the storage layout — group-wise formats pay the per-GPU
/// group_scale on compute and their metadata overhead on weight bytes.
double layer_time_ground_truth(const GpuSpec& gpu, const ModelSpec& model,
                               const PhaseShape& shape, int bits,
                               QuantScheme scheme = QuantScheme::kGptq,
                               QuantFormat format = QuantFormat::kPerChannel);

/// Wall time of embedding lookup + LM-head projection for `tokens` tokens
/// (always FP16).
double embedding_time_ground_truth(const GpuSpec& gpu, const ModelSpec& model,
                                   std::int64_t tokens);

/// Bytes of activations handed to the next pipeline stage for a shape
/// (hidden states at FP16).
double activation_bytes(const ModelSpec& model, const PhaseShape& shape);

}  // namespace llmpq
