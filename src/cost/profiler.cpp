#include "cost/profiler.hpp"

#include "cost/ground_truth.hpp"
#include "model/flops.hpp"

namespace llmpq {

const char* phase_name(Phase phase) {
  return phase == Phase::kPrefill ? "prefill" : "decode";
}

std::vector<ProfileRecord> profile_device(const ModelSpec& model,
                                          const GpuSpec& gpu,
                                          const ProfilerOptions& options) {
  Rng rng(options.seed ^ std::hash<std::string>{}(gpu.name) ^
          std::hash<std::string>{}(model.name));
  std::vector<ProfileRecord> records;
  for (int bits : kBitCandidates) {
    for (int b : options.batches) {
      for (int s : options.prompt_lens) {
        const double t =
            layer_time_ground_truth(gpu, model, prefill_shape(b, s), bits);
        records.push_back({gpu.name, bits, Phase::kPrefill, b, s,
                           t * (1.0 + options.noise_stddev * rng.normal())});
      }
      for (int ctx : options.contexts) {
        const double t =
            layer_time_ground_truth(gpu, model, decode_shape(b, ctx), bits);
        records.push_back({gpu.name, bits, Phase::kDecode, b, ctx,
                           t * (1.0 + options.noise_stddev * rng.normal())});
      }
    }
  }
  return records;
}

double profiling_cost_s(const ModelSpec& model, const GpuSpec& gpu,
                        const ProfilerOptions& options) {
  // Each grid point is timed over ~20 repetitions plus warmup.
  double total = 0.0;
  for (int bits : kBitCandidates) {
    for (int b : options.batches) {
      for (int s : options.prompt_lens)
        total += 25.0 *
                 layer_time_ground_truth(gpu, model, prefill_shape(b, s), bits);
      for (int ctx : options.contexts)
        total += 25.0 *
                 layer_time_ground_truth(gpu, model, decode_shape(b, ctx), bits);
    }
  }
  return total;
}

}  // namespace llmpq
