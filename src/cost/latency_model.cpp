#include "cost/latency_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace llmpq {

std::vector<double> LatencyModel::features(Phase phase, int batch,
                                           int seq_or_ctx) {
  const double b = static_cast<double>(batch);
  const double s = static_cast<double>(seq_or_ctx);
  if (phase == Phase::kPrefill) return {1.0, b * s, b * s * s};
  return {1.0, b, b * s};
}

void LatencyModel::fit(const std::vector<ProfileRecord>& records) {
  std::map<Key, std::pair<std::vector<std::vector<double>>,
                          std::vector<double>>>
      groups;
  for (const auto& r : records) {
    Key key{r.gpu_name, r.bits, static_cast<int>(r.phase)};
    auto& [feats, ys] = groups[key];
    feats.push_back(features(r.phase, r.batch, r.seq_or_ctx));
    ys.push_back(r.time_s);
  }
  for (auto& [key, data] : groups) {
    auto& [feats, ys] = data;
    check_arg(feats.size() >= 4, "LatencyModel::fit: too few samples");
    const OlsFit fit = ols_fit(feats, ys);
    beta_[key] = fit.beta;
    worst_rel_error_ = std::max(worst_rel_error_, fit.mean_abs_rel_error);
    rel_error_sum_ += fit.mean_abs_rel_error;
    ++fit_count_;
  }
}

bool LatencyModel::has(const std::string& gpu_name, int bits,
                       Phase phase) const {
  return beta_.count(Key{gpu_name, bits, static_cast<int>(phase)}) > 0;
}

double LatencyModel::predict(const std::string& gpu_name, int bits,
                             Phase phase, int batch, int seq_or_ctx) const {
  const auto it = beta_.find(Key{gpu_name, bits, static_cast<int>(phase)});
  check_arg(it != beta_.end(),
            "LatencyModel::predict: no fit for " + gpu_name);
  const double pred =
      ols_predict(it->second, features(phase, batch, seq_or_ctx));
  return std::max(pred, 1e-7);  // latencies cannot be negative
}

}  // namespace llmpq
