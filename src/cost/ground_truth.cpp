#include "cost/ground_truth.hpp"

#include <algorithm>

namespace llmpq {

double layer_time_ground_truth(const GpuSpec& gpu, const ModelSpec& model,
                               const PhaseShape& shape, int bits,
                               QuantScheme scheme, QuantFormat format) {
  const double flops = layer_flops(model, shape);
  // Weight-byte traffic scales with the scheme side-car and the group
  // metadata; the hw table's group_scale carries the compute-side format
  // cost (format_kernel_factor stays out of this product to avoid double
  // counting — it is the CPU-measured source that calibrated group_scale).
  const double bytes = layer_mem_ops(
      model, shape,
      bytes_per_param(bits) * scheme_memory_factor(scheme, bits, format));
  const double compute_time =
      flops / (gpu.effective_flops(bits, format) *
               scheme_kernel_speedup(scheme, bits));
  const double memory_time = bytes / gpu.effective_bandwidth(bits);
  return std::max(compute_time, memory_time) + gpu.kernel(bits).overhead_s;
}

double embedding_time_ground_truth(const GpuSpec& gpu, const ModelSpec& model,
                                   std::int64_t tokens) {
  const double flops = embedding_flops(model, tokens);
  // Embedding table gather + logits write, FP16.
  const double bytes =
      static_cast<double>(tokens) *
          (static_cast<double>(model.hidden) + static_cast<double>(model.vocab)) *
          2.0 +
      static_cast<double>(model.vocab) * static_cast<double>(model.hidden) * 2.0;
  const double compute_time = flops / gpu.effective_flops(16);
  const double memory_time = bytes / gpu.effective_bandwidth(16);
  return std::max(compute_time, memory_time) + gpu.kernel(16).overhead_s;
}

double activation_bytes(const ModelSpec& model, const PhaseShape& shape) {
  return static_cast<double>(shape.batch) * static_cast<double>(shape.seq) *
         static_cast<double>(model.hidden) * 2.0;
}

}  // namespace llmpq
