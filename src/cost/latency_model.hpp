#pragma once

#include <map>
#include <string>
#include <vector>

#include "cost/profiler.hpp"
#include "model/flops.hpp"

namespace llmpq {

/// Phase-aware linear-regression latency model (paper Sec. 4.1): per
/// (GPU, bitwidth, phase) an OLS fit over profiled samples of one decoder
/// layer. Features capture the phase's computational character:
///   prefill (compute-bound):  [1, b*s, b*s^2]  — GEMM FLOPs + attention
///   decode  (memory-bound):   [1, b,  b*ctx]   — per-token MOPs + KV reads
/// The model is bound to one ModelSpec (profiles are per model).
class LatencyModel {
 public:
  explicit LatencyModel(const ModelSpec& model) : model_(model) {}

  /// Fits regressions from profiler output. Records from several GPUs can
  /// be mixed; they are keyed by record.gpu_name.
  void fit(const std::vector<ProfileRecord>& records);

  /// True if a fit exists for this (gpu, bits, phase).
  bool has(const std::string& gpu_name, int bits, Phase phase) const;

  /// Predicted single-layer latency.
  double predict(const std::string& gpu_name, int bits, Phase phase,
                 int batch, int seq_or_ctx) const;

  /// Worst mean relative training error across all fitted keys.
  double worst_mean_rel_error() const { return worst_rel_error_; }

  /// Average of the per-key mean relative errors (the quantity Fig. 7
  /// bounds by ~6%).
  double mean_rel_error() const {
    return fit_count_ > 0 ? rel_error_sum_ / static_cast<double>(fit_count_)
                          : 0.0;
  }

  const ModelSpec& model() const { return model_; }

  static std::vector<double> features(Phase phase, int batch, int seq_or_ctx);

 private:
  struct Key {
    std::string gpu;
    int bits;
    int phase;
    bool operator<(const Key& o) const {
      if (gpu != o.gpu) return gpu < o.gpu;
      if (bits != o.bits) return bits < o.bits;
      return phase < o.phase;
    }
  };
  ModelSpec model_;
  std::map<Key, std::vector<double>> beta_;
  double worst_rel_error_ = 0.0;
  double rel_error_sum_ = 0.0;
  int fit_count_ = 0;
};

}  // namespace llmpq
