#pragma once

#include <optional>

#include "core/plan.hpp"
#include "cost/cost_provider.hpp"
#include "sim/offload_sim.hpp"

namespace llmpq {

/// Baseline planners the paper compares against (Sec. 6.1). All of them use
/// *uniform* quantization: starting from FP16, the bitwidth is lowered
/// through {16, 8, 4, 3} until the model fits the devices; if nothing fits
/// they throw InfeasibleError (the "missing results are due to OOM" cells).

/// PipeEdge: heterogeneity-aware layer partition minimizing the maximum
/// *single-phase* (prefill) stage time — the paper's point is precisely
/// that it ignores the decode phase. Tries a few natural device orderings
/// and keeps the best. Micro-batch: global batch split evenly over stages,
/// shared by both phases.
ExecutionPlan pipeedge_plan(const CostProvider& cost);

/// Uniform: even layer split over devices in cluster order (the
/// HF-Transformers / DeepSpeed policy), micro-batch sizes chosen to
/// minimize estimated latency.
ExecutionPlan uniform_plan(const CostProvider& cost);

/// Highest uniform bitwidth whose *even* partition fits every device, or
/// nullopt if even 3-bit overflows. Exposed for tests.
std::optional<int> uniform_bits_that_fit(const CostProvider& cost);

/// FlexGen / FlexGen-int8: offloading execution (Sec. 6.1 baseline 3).
/// FlexGen is OPT-only in the paper; callers skip BLOOM models themselves.
OffloadResult flexgen_run(const CostProvider& cost, int bits);

}  // namespace llmpq
