#include "baselines/baselines.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/assigner.hpp"
#include "core/estimator.hpp"
#include "cost/mem_model.hpp"
#include "solver/dp_partition.hpp"
#include "solver/lp.hpp"

namespace llmpq {

namespace {

/// Builds a plan skeleton with the shared workload/cluster wiring.
ExecutionPlan skeleton(const CostProvider& cost, std::vector<int> order,
                       int prefill_mb, int decode_mb) {
  ExecutionPlan plan;
  plan.model_name = cost.model().name;
  plan.cluster_name = cost.cluster().name;
  plan.workload = cost.workload();
  plan.device_order = std::move(order);
  plan.prefill_micro_batch = prefill_mb;
  plan.decode_micro_batch = decode_mb;
  return plan;
}

std::vector<int> identity_order(int n) {
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  return order;
}

/// Memory budget of pipeline position p in `plan` (weights + KV budget).
std::int64_t stage_weight_kv_budget(const CostProvider& cost,
                                    const ExecutionPlan& plan, int p,
                                    bool first, bool last) {
  const auto& model = cost.model();
  const int dev = plan.device_order[static_cast<std::size_t>(p)];
  std::int64_t budget =
      cost.cluster().devices[static_cast<std::size_t>(dev)].gpu().mem_bytes -
      device_memory_reserve() -
      temp_peak_bytes(model, plan.workload, plan.prefill_micro_batch,
                      plan.decode_micro_batch);
  if (first) budget -= embedding_weight_bytes(model);
  if (last && !first) budget -= lm_head_bytes(model);
  return budget;
}

}  // namespace

std::optional<int> uniform_bits_that_fit(const CostProvider& cost) {
  const ModelSpec& model = cost.model();
  const int N = cost.cluster().num_devices();
  const int L = model.layers;
  const Workload& w = cost.workload();
  const int mb = std::max(1, w.global_batch / N);
  ExecutionPlan probe = skeleton(cost, identity_order(N), mb, mb);
  probe.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);
  for (int p = 0; p < N; ++p)
    probe.boundaries[static_cast<std::size_t>(p) + 1] =
        std::min(L, (p + 1) * ((L + N - 1) / N));
  probe.boundaries[static_cast<std::size_t>(N)] = L;

  const std::int64_t kv = layer_kv_bytes(model, w.global_batch, w.max_seq_len());
  for (int bits : {16, 8, 4, 3}) {
    bool fits = true;
    for (int p = 0; p < N && fits; ++p) {
      const std::int64_t need =
          static_cast<std::int64_t>(probe.stage_size(p)) *
          (layer_weight_bytes(model, bits) + kv);
      fits = need <= stage_weight_kv_budget(cost, probe, p, p == 0, p == N - 1);
    }
    if (fits) return bits;
  }
  return std::nullopt;
}

ExecutionPlan pipeedge_plan(const CostProvider& cost) {
  const ModelSpec& model = cost.model();
  const ClusterSpec& cluster = cost.cluster();
  const int N = cluster.num_devices();
  const int L = model.layers;
  const Workload& w = cost.workload();
  const int mb = std::max(1, w.global_batch / N);
  const std::int64_t kv = layer_kv_bytes(model, w.global_batch, w.max_seq_len());

  // Candidate orderings: cluster order plus compute-ascending/descending.
  std::vector<std::vector<int>> orders{identity_order(N)};
  {
    auto asc = identity_order(N);
    std::stable_sort(asc.begin(), asc.end(), [&](int a, int b) {
      return cluster.devices[static_cast<std::size_t>(a)].gpu().effective_flops(16) <
             cluster.devices[static_cast<std::size_t>(b)].gpu().effective_flops(16);
    });
    orders.push_back(asc);
    orders.emplace_back(asc.rbegin(), asc.rend());
  }

  ExecutionPlan best;
  double best_obj = kLpInf;
  for (int bits : {16, 8, 4, 3}) {
    for (const auto& order : orders) {
      ExecutionPlan plan = skeleton(cost, order, mb, mb);
      plan.layer_bits.assign(static_cast<std::size_t>(L), bits);
      // PipeEdge's DP: minimize the max prefill-stage time subject to
      // per-stage memory.
      const auto stage_cost = [&](int begin, int end, int p) {
        const std::int64_t need =
            static_cast<std::int64_t>(end - begin) *
            (layer_weight_bytes(model, bits) + kv);
        const bool first = p == 0, last = p == N - 1;
        if (need > stage_weight_kv_budget(cost, plan, p, first, last))
          return kLpInf;
        const int dev = order[static_cast<std::size_t>(p)];
        return static_cast<double>(end - begin) *
               cost.layer_time(dev, bits, Phase::kPrefill, mb, w.prompt_len);
      };
      const PartitionResult part = partition_min_max(L, N, stage_cost);
      if (!part.feasible) continue;
      plan.boundaries = part.boundaries;
      const PlanEstimate est = estimate_plan(cost, plan);
      if (est.mem_feasible && est.e2e_latency < best_obj) {
        best_obj = est.e2e_latency;
        best = plan;
      }
    }
    if (best_obj < kLpInf) return best;  // highest bitwidth that works
  }
  throw InfeasibleError("pipeedge_plan: model does not fit at any precision");
}

ExecutionPlan uniform_plan(const CostProvider& cost) {
  const ModelSpec& model = cost.model();
  const int N = cost.cluster().num_devices();
  const int L = model.layers;
  const Workload& w = cost.workload();

  const std::optional<int> bits = uniform_bits_that_fit(cost);
  if (!bits)
    throw InfeasibleError(
        "uniform_plan: even partition does not fit at any precision");

  ExecutionPlan best;
  double best_latency = kLpInf;
  for (int mb_pre : prefill_microbatch_candidates(w, 8)) {
    for (int mb_dec : decode_microbatch_candidates(w, N)) {
      ExecutionPlan plan = skeleton(cost, identity_order(N), mb_pre, mb_dec);
      plan.layer_bits.assign(static_cast<std::size_t>(L), *bits);
      plan.boundaries.assign(static_cast<std::size_t>(N) + 1, 0);
      for (int p = 0; p < N; ++p)
        plan.boundaries[static_cast<std::size_t>(p) + 1] =
            std::min(L, (p + 1) * ((L + N - 1) / N));
      plan.boundaries[static_cast<std::size_t>(N)] = L;
      const PlanEstimate est = estimate_plan(cost, plan);
      if (est.mem_feasible && est.e2e_latency < best_latency) {
        best_latency = est.e2e_latency;
        best = plan;
      }
    }
  }
  if (best_latency == kLpInf)
    throw InfeasibleError("uniform_plan: no feasible micro-batch sizing");
  return best;
}

OffloadResult flexgen_run(const CostProvider& cost, int bits) {
  return simulate_offload(cost.model(), cost.cluster(), cost.workload(),
                          bits);
}

}  // namespace llmpq
