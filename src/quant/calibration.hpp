#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/model_spec.hpp"
#include "quant/rounding.hpp"

namespace llmpq {

/// First and second moments of the input activations of one linear
/// operator, gathered from calibration data (the paper uses 128 C4
/// segments; we use synthetic activations or real tiny-transformer runs).
struct ActivationStats {
  double mean = 0.0;
  double variance = 0.0;
};

/// The G(X) term of Proposition 2:
///   deterministic rounding:  Var[X] / 4
///   stochastic rounding:     (E[X]^2 + Var[X]) / 6
double g_of_x(const ActivationStats& stats, Rounding mode);

/// Computes activation statistics from raw samples.
ActivationStats collect_activation_stats(std::span<const float> samples);

/// Synthetic per-operator weight statistics for a model we do not have a
/// checkpoint for. Deterministic in (model, layer, op): drawn from a hashed
/// lognormal with a mild depth trend, so deeper layers have slightly larger
/// weight scales — the source of the depth-increasing quantization
/// sensitivity the paper's Table 1 observes.
struct WeightStats {
  double std_dev = 0.0;   ///< per-element standard deviation of W
  double max_abs = 0.0;   ///< symmetric quantization range
};

WeightStats synth_weight_stats(const ModelSpec& model, int layer,
                               const std::string& op_name);

/// Symmetric quantization scale for a weight tensor at `bits`:
///   S_W(b) = max|W| / (2^{b-1} - 1).
double weight_scale(const WeightStats& stats, int bits);

/// Synthetic activation statistics per operator input, deterministic in
/// (model, layer, op) like synth_weight_stats.
ActivationStats synth_activation_stats(const ModelSpec& model, int layer,
                                       const std::string& op_name);

}  // namespace llmpq
