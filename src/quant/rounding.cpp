#include "quant/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace llmpq {

std::int32_t round_scaled(double x, Rounding mode, Rng& rng) {
  switch (mode) {
    case Rounding::kDeterministic:
      return static_cast<std::int32_t>(std::lrint(x));
    case Rounding::kStochastic: {
      const double floor_x = std::floor(x);
      const double frac = x - floor_x;
      const double draw = rng.uniform();
      return static_cast<std::int32_t>(floor_x) + (draw < frac ? 1 : 0);
    }
  }
  return 0;  // unreachable
}

std::int32_t qmax_for_bits(int bits) {
  check_arg(bits >= 2 && bits <= 16, "qmax_for_bits: bits out of range");
  return (1 << (bits - 1)) - 1;
}

std::int32_t clamp_to_bits(std::int32_t q, int bits) {
  const std::int32_t qmax = qmax_for_bits(bits);
  return std::clamp(q, -qmax, qmax);
}

}  // namespace llmpq
