// AVX2 + FMA dequant-GEMM microkernel TU. Built only when the compiler
// accepts -mavx2 (see CMakeLists); the dispatcher never selects it on a
// CPU without AVX2/FMA.

#define LLMPQ_SIMD_IMPL_AVX512 0
#include "quant/qgemm_simd_impl.hpp"

namespace llmpq {

void qgemm_rows_avx2(const float* x, std::size_t m, std::size_t cols,
                     const QuantizedMatrix& w, const float* bias, float* y,
                     std::size_t r0, std::size_t r1, float* scratch) {
  qgemm_rows_impl(x, m, cols, w, bias, y, r0, r1, scratch);
}

}  // namespace llmpq
