#pragma once

#include <string>

namespace llmpq {

/// Candidate weight-only quantization schemes (paper Sec. 7, "Other
/// Quantization Schemes"): LLM-PQ treats the kernel family as a pluggable
/// choice. Each scheme trades kernel speed, model quality and memory
/// differently at the same nominal bitwidth:
///   kGptq — the paper's default for 3/4-bit (round-to-nearest with
///           calibration; our baseline traits).
///   kAwq  — activation-aware scaling + reorder-free kernels using tensor
///           cores: noticeably faster dequant-GEMM, quality ~ GPTQ.
///   kSpqr — outliers kept in higher precision: clearly better quality at
///           low bits, a small memory surcharge and slightly slower kernels.
enum class QuantScheme { kGptq, kAwq, kSpqr };

std::string quant_scheme_name(QuantScheme scheme);

/// Multiplier on the kernel's effective compute throughput at `bits`
/// relative to the GPTQ baseline kernels (only sub-16-bit widths differ).
double scheme_kernel_speedup(QuantScheme scheme, int bits);

/// Multiplier on the quality perturbation (PPL delta / omega) at `bits`.
double scheme_quality_factor(QuantScheme scheme, int bits);

/// Multiplier on packed weight bytes at `bits` (SpQR's sparse outlier
/// side-car costs a few percent).
double scheme_memory_factor(QuantScheme scheme, int bits);

}  // namespace llmpq
