#pragma once

#include <string>

#include "quant/format.hpp"

namespace llmpq {

/// Candidate weight-only quantization schemes (paper Sec. 7, "Other
/// Quantization Schemes"): LLM-PQ treats the kernel family as a pluggable
/// choice. Each scheme trades kernel speed, model quality and memory
/// differently at the same nominal bitwidth:
///   kGptq — the paper's default for 3/4-bit (round-to-nearest with
///           calibration; our baseline traits).
///   kAwq  — activation-aware scaling + reorder-free kernels using tensor
///           cores: noticeably faster dequant-GEMM, quality ~ GPTQ.
///   kSpqr — outliers kept in higher precision: clearly better quality at
///           low bits, a small memory surcharge and slightly slower kernels.
enum class QuantScheme { kGptq, kAwq, kSpqr };

std::string quant_scheme_name(QuantScheme scheme);

/// Multiplier on the kernel's effective compute throughput at `bits`
/// relative to the GPTQ baseline kernels (only sub-16-bit widths differ).
double scheme_kernel_speedup(QuantScheme scheme, int bits);

/// Format-aware overload: the scheme speedup times the measured
/// format_kernel_factor, so the planner's compute model tracks what the
/// repo's kernels actually deliver per (bits, format).
double scheme_kernel_speedup(QuantScheme scheme, int bits,
                             QuantFormat format);

/// Relative dequant-GEMM throughput of `format` vs per-channel at the
/// same bitwidth (1.0 for per-channel / 16-bit). The sub-16-bit entries
/// are measured on this repo's kernels with bench_ext_qgemm_kernels
/// (group metadata costs a (scale, min) reload per 32/64 columns); they
/// are what scheme_kernel_speedup feeds into assign()'s bitwidth choices
/// and what calibrated the per-GPU KernelProfile::group_scale entries.
double format_kernel_factor(int bits, QuantFormat format);

/// Packed-bytes multiplier of `format` vs per-channel at the same
/// bitwidth: group formats carry a float32 (scale, min) pair per group,
/// i.e. 64 / (group_size * bits) extra bytes per weight byte. Exact for
/// group-aligned shapes; mem_model uses the exact per-matrix accounting
/// and this factor is for roofline byte-traffic scaling.
double format_memory_factor(int bits, QuantFormat format);

/// Multiplier on the quality perturbation (PPL delta / omega) at `bits`.
double scheme_quality_factor(QuantScheme scheme, int bits);

/// Multiplier on packed weight bytes at `bits` (SpQR's sparse outlier
/// side-car costs a few percent).
double scheme_memory_factor(QuantScheme scheme, int bits);

/// Format-aware overload: scheme factor times format_memory_factor.
double scheme_memory_factor(QuantScheme scheme, int bits,
                            QuantFormat format);

}  // namespace llmpq
