#include "quant/scheme.hpp"

namespace llmpq {

std::string quant_scheme_name(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kGptq:
      return "gptq";
    case QuantScheme::kAwq:
      return "awq";
    case QuantScheme::kSpqr:
      return "spqr";
  }
  return "?";
}

double scheme_kernel_speedup(QuantScheme scheme, int bits) {
  if (bits >= 8) return 1.0;  // the 8-bit path is bitsandbytes either way
  switch (scheme) {
    case QuantScheme::kGptq:
      return 1.0;
    case QuantScheme::kAwq:
      // Reorder-free layout + tensor-core dequant (AWQ paper's kernel
      // claim): ~1.25x over the GPTQ kernels at 3/4-bit.
      return 1.25;
    case QuantScheme::kSpqr:
      // The sparse outlier matmul costs a little throughput.
      return 0.9;
  }
  return 1.0;
}

double scheme_kernel_speedup(QuantScheme scheme, int bits,
                             QuantFormat format) {
  return scheme_kernel_speedup(scheme, bits) *
         format_kernel_factor(bits, format);
}

double format_kernel_factor(int bits, QuantFormat format) {
  if (format == QuantFormat::kPerChannel || bits >= 16) return 1.0;
  // Calibrated from bench_ext_qgemm_kernels (SIMD path of this repo's CPU
  // kernels, ms/call group vs per-channel at the same dispatch level): the
  // per-group (scale, min) broadcast costs most at 3-bit, where codes are
  // decoded element-wise and the extra metadata loads sit on the critical
  // path; at 4/8-bit the vectorized decode hides most of the reload.
  // Wider groups amortize better.
  const bool g32 = format == QuantFormat::kGroup32;
  switch (bits) {
    case 3:
      return g32 ? 0.92 : 0.94;
    case 4:
      return g32 ? 0.95 : 0.97;
    default:  // 8
      return g32 ? 0.96 : 0.98;
  }
}

double format_memory_factor(int bits, QuantFormat format) {
  if (format == QuantFormat::kPerChannel || bits >= 16) return 1.0;
  const double gs = static_cast<double>(format_group_size(format));
  // 8 metadata bytes per group of `gs` weights at bits/8 bytes each.
  return 1.0 + 64.0 / (gs * static_cast<double>(bits));
}

double scheme_quality_factor(QuantScheme scheme, int bits) {
  if (bits >= 8) return 1.0;
  switch (scheme) {
    case QuantScheme::kGptq:
      return 1.0;
    case QuantScheme::kAwq:
      // Activation-aware scaling protects salient channels.
      return 0.85;
    case QuantScheme::kSpqr:
      // Near-lossless at 3-4 bits per its paper.
      return 0.45;
  }
  return 1.0;
}

double scheme_memory_factor(QuantScheme scheme, int bits) {
  if (bits >= 8) return 1.0;
  return scheme == QuantScheme::kSpqr ? 1.04 : 1.0;
}

double scheme_memory_factor(QuantScheme scheme, int bits,
                            QuantFormat format) {
  return scheme_memory_factor(scheme, bits) *
         format_memory_factor(bits, format);
}

}  // namespace llmpq
