#include "quant/scheme.hpp"

namespace llmpq {

std::string quant_scheme_name(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kGptq:
      return "gptq";
    case QuantScheme::kAwq:
      return "awq";
    case QuantScheme::kSpqr:
      return "spqr";
  }
  return "?";
}

double scheme_kernel_speedup(QuantScheme scheme, int bits) {
  if (bits >= 8) return 1.0;  // the 8-bit path is bitsandbytes either way
  switch (scheme) {
    case QuantScheme::kGptq:
      return 1.0;
    case QuantScheme::kAwq:
      // Reorder-free layout + tensor-core dequant (AWQ paper's kernel
      // claim): ~1.25x over the GPTQ kernels at 3/4-bit.
      return 1.25;
    case QuantScheme::kSpqr:
      // The sparse outlier matmul costs a little throughput.
      return 0.9;
  }
  return 1.0;
}

double scheme_quality_factor(QuantScheme scheme, int bits) {
  if (bits >= 8) return 1.0;
  switch (scheme) {
    case QuantScheme::kGptq:
      return 1.0;
    case QuantScheme::kAwq:
      // Activation-aware scaling protects salient channels.
      return 0.85;
    case QuantScheme::kSpqr:
      // Near-lossless at 3-4 bits per its paper.
      return 0.45;
  }
  return 1.0;
}

double scheme_memory_factor(QuantScheme scheme, int bits) {
  if (bits >= 8) return 1.0;
  return scheme == QuantScheme::kSpqr ? 1.04 : 1.0;
}

}  // namespace llmpq
