#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/rounding.hpp"

namespace llmpq {

/// A row-major [rows x cols] weight matrix quantized symmetrically with one
/// scale per output channel (row), stored bit-packed. 16 "bits" means
/// unquantized pass-through (weights kept in float).
///
/// Packing layout for b in {3, 4, 8}: each row is packed independently into
/// 32-bit words, `b` bits per element in little-endian bit order, signed
/// values stored with a bias of qmax (so stored field = q + qmax, always
/// non-negative and < 2^b ... well within b bits since |q| <= qmax).
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  int bits() const { return bits_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const std::vector<float>& scales() const { return scales_; }

  /// Quantizes `weights` ([rows x cols] row-major). For bits == 16 the
  /// weights are stored verbatim.
  static QuantizedMatrix quantize(std::span<const float> weights,
                                  std::size_t rows, std::size_t cols, int bits,
                                  Rounding mode, Rng& rng);

  /// Reconstructs the full matrix in float.
  std::vector<float> dequantize() const;

  /// Reconstructs one row into `out` (size cols). Hot path of the
  /// dequantize-then-GEMM kernel.
  void dequantize_row(std::size_t row, float* out) const;

  /// Direct pointer to row `row`'s float data when bits() == 16 — the
  /// stored fp matrix doubles as a per-layer dequantized-row cache, so the
  /// 16-bit GEMM fast path reads weights in place instead of copying each
  /// row per call. Returns nullptr for packed (bits < 16) matrices.
  const float* fp_row(std::size_t row) const {
    return bits_ == 16 ? fp_.data() + row * cols_ : nullptr;
  }

  /// Raw quantized value at (row, col); only valid for bits < 16.
  std::int32_t quantized_at(std::size_t row, std::size_t col) const;

  /// Storage footprint of the packed representation in bytes.
  std::size_t packed_bytes() const;

 private:
  int bits_ = 16;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<float> scales_;        ///< per-row scale
  std::vector<std::uint32_t> packed_;  ///< bits < 16
  std::vector<float> fp_;              ///< bits == 16
};

}  // namespace llmpq
