#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/format.hpp"
#include "quant/rounding.hpp"

namespace llmpq {

/// A row-major [rows x cols] weight matrix quantized weight-only, stored
/// bit-packed. 16 "bits" means unquantized pass-through (weights kept in
/// float). Two formats (see QuantFormat):
///   * per-channel symmetric — one scale per output channel (row), signed
///     codes stored with a bias of qmax (stored field = q + qmax, always
///     non-negative and < 2^b since |q| <= qmax);
///   * group-wise asymmetric — every group of 32/64 consecutive columns
///     carries a (scale, min) pair; codes are unsigned in [0, 2^b - 1]
///     and reconstruct as code * scale + min.
///
/// Packing layout is format-independent for b in {3, 4, 8}: each row is
/// packed into 32-bit words, `b` bits per element in little-endian bit
/// order, plus one spill word per row so kernels may read the word holding
/// any element without bounds checks.
class QuantizedMatrix {
 public:
  QuantizedMatrix() = default;

  int bits() const { return bits_; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  QuantFormat format() const { return format_; }
  /// Columns per metadata group (0 for per-channel / 16-bit).
  std::size_t group_size() const { return group_size_; }
  std::size_t groups_per_row() const { return groups_per_row_; }
  const std::vector<float>& scales() const { return scales_; }

  /// Quantizes `weights` ([rows x cols] row-major). For bits == 16 the
  /// weights are stored verbatim and `format` is ignored (normalized to
  /// per-channel).
  static QuantizedMatrix quantize(
      std::span<const float> weights, std::size_t rows, std::size_t cols,
      int bits, Rounding mode, Rng& rng,
      QuantFormat format = QuantFormat::kPerChannel);

  /// Reconstructs the full matrix in float.
  std::vector<float> dequantize() const;

  /// Reconstructs one row into `out` (size cols). Hot path of the scalar
  /// dequantize-then-GEMM kernel; bit-defining for the SIMD kernels.
  void dequantize_row(std::size_t row, float* out) const;

  /// Direct pointer to row `row`'s float data when bits() == 16 — the
  /// stored fp matrix doubles as a per-layer dequantized-row cache, so the
  /// 16-bit GEMM fast path reads weights in place instead of copying each
  /// row per call. Returns nullptr for packed (bits < 16) matrices.
  const float* fp_row(std::size_t row) const {
    return bits_ == 16 ? fp_.data() + row * cols_ : nullptr;
  }

  /// Raw quantized value at (row, col); only valid for bits < 16.
  /// Per-channel: the signed code (stored field minus qmax). Group-wise:
  /// the unsigned code in [0, 2^bits - 1].
  std::int32_t quantized_at(std::size_t row, std::size_t col) const;

  /// Storage footprint of the packed representation in bytes. Equal to
  /// packed_bytes_for(rows, cols, bits, format) by construction — the
  /// planner's memory model charges exactly this.
  std::size_t packed_bytes() const;

  /// The single source of truth for quantized-weight byte accounting,
  /// shared with cost/mem_model so planner estimates match runtime
  /// footprints exactly: packed words (incl. the per-row spill word) plus
  /// float32 metadata (per-channel: one scale per row; group-wise: a
  /// (scale, min) pair per group). bits == 16 stores host floats (4 bytes
  /// per param; the planner's *device* model charges FP16 separately).
  static std::size_t packed_bytes_for(std::size_t rows, std::size_t cols,
                                      int bits, QuantFormat format);

  // ---- Raw views for the SIMD kernels (valid for bits < 16).
  const std::uint32_t* packed_row(std::size_t row) const {
    return packed_.data() + row * words_per_row_;
  }
  std::size_t words_per_row() const { return words_per_row_; }
  /// Group metadata for row `row` (group-wise formats only).
  const float* group_scales(std::size_t row) const {
    return gscales_.data() + row * groups_per_row_;
  }
  const float* group_mins(std::size_t row) const {
    return gmins_.data() + row * groups_per_row_;
  }

 private:
  int bits_ = 16;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  QuantFormat format_ = QuantFormat::kPerChannel;
  std::size_t group_size_ = 0;      ///< 0 unless group-wise
  std::size_t groups_per_row_ = 0;  ///< ceil(cols / group_size_)
  std::vector<float> scales_;       ///< per-row scale (per-channel format)
  std::vector<float> gscales_;      ///< [rows x groups] (group formats)
  std::vector<float> gmins_;        ///< [rows x groups] (group formats)
  std::vector<std::uint32_t> packed_;  ///< bits < 16
  std::vector<float> fp_;              ///< bits == 16
};

}  // namespace llmpq
