#include "quant/qgemm.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/thread_pool.hpp"
#include "quant/qgemm_kernels.hpp"

namespace llmpq {

namespace {

/// Below this many multiply-accumulates the fork/join overhead of the pool
/// outweighs the parallel speedup; measured on small CPU hosts.
constexpr std::size_t kParallelWorkThreshold = 64 * 1024;

void check_qgemm_args(std::span<const float> x, std::size_t m,
                      std::size_t cols, const QuantizedMatrix& w,
                      std::span<const float> bias, std::span<float> y) {
  check_arg(w.cols() == cols, "qgemm: inner dimension mismatch");
  check_arg(x.size() == m * cols, "qgemm: x size mismatch");
  check_arg(y.size() == m * w.rows(), "qgemm: y size mismatch");
  check_arg(bias.empty() || bias.size() == w.rows(),
            "qgemm: bias size mismatch");
}

}  // namespace

void qgemm_serial(std::span<const float> x, std::size_t m, std::size_t cols,
                  const QuantizedMatrix& w, std::span<const float> bias,
                  std::span<float> y) {
  check_qgemm_args(x, m, cols, w, bias, y);
  std::vector<float> scratch(cols);
  qgemm_rows_scalar(x.data(), m, cols, w, bias.empty() ? nullptr : bias.data(),
                    y.data(), 0, w.rows(), scratch.data());
}

void qgemm(std::span<const float> x, std::size_t m, std::size_t cols,
           const QuantizedMatrix& w, std::span<const float> bias,
           std::span<float> y) {
  // Chaos-test checkpoint: a throw here exercises the stage workers'
  // poisoned-message protocol from inside a kernel; a delay rule makes
  // this stage a straggler. One relaxed load when no plan is armed.
  FAULT_POINT("stage.qgemm");
  check_qgemm_args(x, m, cols, w, bias, y);
  const std::size_t rows = w.rows();
  // Runtime dispatch: the same row-range contract at every level, so the
  // threading decomposition is independent of the kernel picked.
  const QgemmRowsFn kernel = qgemm_rows_kernel(active_simd_level());
  const float* bias_ptr = bias.empty() ? nullptr : bias.data();
  ThreadPool& pool = ThreadPool::shared();
  if (pool.size() <= 1 || ThreadPool::inside_worker() ||
      m * cols * rows < kParallelWorkThreshold) {
    std::vector<float> scratch(cols);
    kernel(x.data(), m, cols, w, bias_ptr, y.data(), 0, rows, scratch.data());
    return;
  }
  // Output-channel blocks: disjoint writes, no synchronization inside the
  // kernel. Oversplit relative to the pool so stages sharing it interleave.
  const std::size_t blocks = std::min(rows, pool.size() * 4);
  const std::size_t per = (rows + blocks - 1) / blocks;
  pool.parallel_for(blocks, [&](std::size_t blk) {
    thread_local std::vector<float> scratch;
    if (scratch.size() < cols) scratch.resize(cols);
    const std::size_t r0 = blk * per;
    const std::size_t r1 = std::min(rows, r0 + per);
    if (r0 < r1)
      kernel(x.data(), m, cols, w, bias_ptr, y.data(), r0, r1,
             scratch.data());
  });
}

void gemm_f32(std::span<const float> x, std::size_t m, std::size_t cols,
              std::span<const float> w, std::size_t rows,
              std::span<const float> bias, std::span<float> y) {
  check_arg(w.size() == rows * cols, "gemm_f32: w size mismatch");
  check_arg(x.size() == m * cols, "gemm_f32: x size mismatch");
  check_arg(y.size() == m * rows, "gemm_f32: y size mismatch");
  check_arg(bias.empty() || bias.size() == rows,
            "gemm_f32: bias size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x.data() + i * cols;
    float* yi = y.data() + i * rows;
    for (std::size_t r = 0; r < rows; ++r)
      yi[r] = bias.empty() ? 0.0f : bias[r];
    for (std::size_t r = 0; r < rows; ++r) {
      const float* wr = w.data() + r * cols;
      float acc = yi[r];
      for (std::size_t c = 0; c < cols; ++c) acc += xi[c] * wr[c];
      yi[r] = acc;
    }
  }
}

}  // namespace llmpq
