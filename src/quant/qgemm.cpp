#include "quant/qgemm.hpp"

#include "common/error.hpp"

namespace llmpq {

void qgemm(std::span<const float> x, std::size_t m, std::size_t cols,
           const QuantizedMatrix& w, std::span<const float> bias,
           std::span<float> y) {
  const std::size_t rows = w.rows();
  check_arg(w.cols() == cols, "qgemm: inner dimension mismatch");
  check_arg(x.size() == m * cols, "qgemm: x size mismatch");
  check_arg(y.size() == m * rows, "qgemm: y size mismatch");
  check_arg(bias.empty() || bias.size() == rows, "qgemm: bias size mismatch");

  std::vector<float> wrow(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    w.dequantize_row(r, wrow.data());
    const float b = bias.empty() ? 0.0f : bias[r];
    for (std::size_t i = 0; i < m; ++i) {
      const float* xi = x.data() + i * cols;
      float acc = b;
      for (std::size_t c = 0; c < cols; ++c) acc += xi[c] * wrow[c];
      y[i * rows + r] = acc;
    }
  }
}

void gemm_f32(std::span<const float> x, std::size_t m, std::size_t cols,
              std::span<const float> w, std::size_t rows,
              std::span<const float> bias, std::span<float> y) {
  check_arg(w.size() == rows * cols, "gemm_f32: w size mismatch");
  check_arg(x.size() == m * cols, "gemm_f32: x size mismatch");
  check_arg(y.size() == m * rows, "gemm_f32: y size mismatch");
  check_arg(bias.empty() || bias.size() == rows,
            "gemm_f32: bias size mismatch");
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x.data() + i * cols;
    float* yi = y.data() + i * rows;
    for (std::size_t r = 0; r < rows; ++r)
      yi[r] = bias.empty() ? 0.0f : bias[r];
    for (std::size_t r = 0; r < rows; ++r) {
      const float* wr = w.data() + r * cols;
      float acc = yi[r];
      for (std::size_t c = 0; c < cols; ++c) acc += xi[c] * wr[c];
      yi[r] = acc;
    }
  }
}

}  // namespace llmpq
