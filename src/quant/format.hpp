#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace llmpq {

/// Storage format of a quantized weight matrix. Orthogonal to the bitwidth
/// (3/4/8) and to the kernel-family scheme (GPTQ/AWQ/SpQR traits):
///   kPerChannel — one symmetric scale per output channel (row); the
///                 seed format. Codes are signed, stored biased by qmax.
///   kGroup32 /
///   kGroup64  — k-quant-style group-wise asymmetric: every block of
///               32/64 consecutive input columns carries its own
///               (scale, min) pair and codes are unsigned in
///               [0, 2^bits - 1], reconstructed as code * scale + min.
///               Smaller blocks track local weight ranges (better
///               quality at 3/4-bit) at the price of more metadata.
/// 16-bit matrices are float pass-through; any requested format
/// normalizes to kPerChannel there.
enum class QuantFormat { kPerChannel = 0, kGroup32 = 1, kGroup64 = 2 };

inline constexpr std::array<QuantFormat, 3> kQuantFormats = {
    QuantFormat::kPerChannel, QuantFormat::kGroup32, QuantFormat::kGroup64};

/// Columns per metadata block; 0 for the per-channel format (the whole
/// row shares one scale).
inline constexpr std::size_t format_group_size(QuantFormat format) {
  switch (format) {
    case QuantFormat::kPerChannel:
      return 0;
    case QuantFormat::kGroup32:
      return 32;
    case QuantFormat::kGroup64:
      return 64;
  }
  return 0;
}

inline constexpr const char* quant_format_name(QuantFormat format) {
  switch (format) {
    case QuantFormat::kPerChannel:
      return "per_channel";
    case QuantFormat::kGroup32:
      return "group32";
    case QuantFormat::kGroup64:
      return "group64";
  }
  return "?";
}

/// Inverse of quant_format_name; throws InvalidArgumentError on an unknown
/// name (defined in quantize.cpp to keep common/error.hpp out of this
/// header, which hw/ includes).
QuantFormat quant_format_from_name(const std::string& name);

}  // namespace llmpq
