// Shared implementation of the vector dequant-GEMM row microkernels.
// Included (not compiled standalone) by qgemm_avx2.cpp and
// qgemm_avx512.cpp, each built with its own -m... flags; everything here
// has internal linkage so the two TUs cannot collide. The including TU
// defines LLMPQ_SIMD_IMPL_AVX512 (0 or 1) to pick the dot-product width;
// the decode/dequantize step is 256-bit in both.
//
// Contract (see qgemm_kernels.hpp): dequantization is elementwise
// bit-identical to QuantizedMatrix::dequantize_row — same convert,
// multiply and add in the same IEEE order, no FMA contraction (these TUs
// are built with -ffp-contract=off so the compiler cannot fuse the
// `code * scale + min` pair either). Only the dot product reassociates
// (vector lanes + explicit FMA).

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "quant/qgemm_kernels.hpp"
#include "quant/rounding.hpp"

namespace llmpq {
namespace {

// Little-endian bit-order unpack, identical to quantize.cpp's
// unpack_value. The +1 spill word per packed row makes reading
// row_words[word + 1] safe for the last element.
inline std::uint32_t unpack_code(const std::uint32_t* row_words,
                                 std::size_t idx, int bits) {
  const std::size_t bit_pos = idx * static_cast<std::size_t>(bits);
  const std::size_t word = bit_pos / 32;
  const std::size_t offset = bit_pos % 32;
  const std::uint32_t mask = (1u << bits) - 1u;
  std::uint32_t v = row_words[word] >> offset;
  if (offset + static_cast<std::size_t>(bits) > 32)
    v |= row_words[word + 1] << (32 - offset);
  return v & mask;
}

// Decodes 8 consecutive codes starting at element c0 (c0 % 8 == 0) into
// one epi32 vector. 8-bit codes are whole bytes and 4-bit codes are the 8
// nibbles of one word, so both decode branch-free; 3-bit codes straddle
// word boundaries and go through the scalar unpack.
inline __m256i decode8(const std::uint32_t* row_words, std::size_t c0,
                       int bits) {
  if (bits == 8) {
    const std::uint8_t* bytes =
        reinterpret_cast<const std::uint8_t*>(row_words);
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(bytes + c0));
    return _mm256_cvtepu8_epi32(b);
  }
  if (bits == 4) {
    const __m256i shifts = _mm256_setr_epi32(0, 4, 8, 12, 16, 20, 24, 28);
    const __m256i word = _mm256_set1_epi32(
        static_cast<int>(row_words[c0 / 8]));
    return _mm256_and_si256(_mm256_srlv_epi32(word, shifts),
                            _mm256_set1_epi32(0xF));
  }
  alignas(32) std::int32_t tmp[8];
  for (int i = 0; i < 8; ++i)
    tmp[i] = static_cast<std::int32_t>(
        unpack_code(row_words, c0 + static_cast<std::size_t>(i), bits));
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(tmp));
}

// Dequantizes row r of a packed (bits < 16) matrix into `out`,
// bit-identical to QuantizedMatrix::dequantize_row.
inline void dequant_row_vec(const QuantizedMatrix& w, std::size_t r,
                            float* out) {
  const int bits = w.bits();
  const std::size_t cols = w.cols();
  const std::uint32_t* rw = w.packed_row(r);
  if (w.format() == QuantFormat::kPerChannel) {
    const std::int32_t qmax = qmax_for_bits(bits);
    const float scale = w.scales()[r];
    const __m256 vs = _mm256_set1_ps(scale);
    const __m256i vqmax = _mm256_set1_epi32(qmax);
    std::size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256i q = _mm256_sub_epi32(decode8(rw, c, bits), vqmax);
      _mm256_storeu_ps(out + c,
                       _mm256_mul_ps(_mm256_cvtepi32_ps(q), vs));
    }
    for (; c < cols; ++c) {
      const std::int32_t qi =
          static_cast<std::int32_t>(unpack_code(rw, c, bits)) - qmax;
      out[c] = static_cast<float>(qi) * scale;
    }
    return;
  }
  // Group-wise: group boundaries (32/64) are multiples of 8, so within a
  // full group the vector loop stays 8-aligned; only the final, possibly
  // partial group has a scalar tail.
  const std::size_t gs = w.group_size();
  const float* gscale = w.group_scales(r);
  const float* gmin = w.group_mins(r);
  std::size_t c = 0, g = 0;
  while (c < cols) {
    const std::size_t gend = std::min(cols, c + gs);
    const __m256 vs = _mm256_set1_ps(gscale[g]);
    const __m256 vm = _mm256_set1_ps(gmin[g]);
    for (; c + 8 <= gend; c += 8) {
      const __m256 codes = _mm256_cvtepi32_ps(decode8(rw, c, bits));
      _mm256_storeu_ps(out + c,
                       _mm256_add_ps(_mm256_mul_ps(codes, vs), vm));
    }
    for (; c < gend; ++c)
      out[c] = static_cast<float>(unpack_code(rw, c, bits)) * gscale[g] +
               gmin[g];
    ++g;
  }
}

#if LLMPQ_SIMD_IMPL_AVX512

inline float dot_vec(const float* a, const float* b, std::size_t n) {
  __m512 acc0 = _mm512_setzero_ps();
  __m512 acc1 = _mm512_setzero_ps();
  std::size_t c = 0;
  for (; c + 32 <= n; c += 32) {
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + c), _mm512_loadu_ps(b + c),
                           acc0);
    acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + c + 16),
                           _mm512_loadu_ps(b + c + 16), acc1);
  }
  for (; c + 16 <= n; c += 16)
    acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + c), _mm512_loadu_ps(b + c),
                           acc0);
  // Spilled horizontal sum instead of _mm512_reduce_add_ps: GCC's reduce
  // implementation trips -Wmaybe-uninitialized via _mm256_undefined_pd.
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, _mm512_add_ps(acc0, acc1));
  float total = 0.0f;
  for (int i = 0; i < 16; ++i) total += lanes[i];
  for (; c < n; ++c) total += a[c] * b[c];
  return total;
}

#else  // AVX2

inline float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_movehdup_ps(lo));
  return _mm_cvtss_f32(lo);
}

inline float dot_vec(const float* a, const float* b, std::size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + c), _mm256_loadu_ps(b + c),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + c + 8),
                           _mm256_loadu_ps(b + c + 8), acc1);
  }
  for (; c + 8 <= n; c += 8)
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + c), _mm256_loadu_ps(b + c),
                           acc0);
  float total = hsum256(_mm256_add_ps(acc0, acc1));
  for (; c < n; ++c) total += a[c] * b[c];
  return total;
}

#endif  // LLMPQ_SIMD_IMPL_AVX512

inline void qgemm_rows_impl(const float* x, std::size_t m, std::size_t cols,
                            const QuantizedMatrix& w, const float* bias,
                            float* y, std::size_t r0, std::size_t r1,
                            float* scratch) {
  const std::size_t rows = w.rows();
  for (std::size_t r = r0; r < r1; ++r) {
    const float* wrow = w.fp_row(r);
    if (wrow == nullptr) {
      dequant_row_vec(w, r, scratch);
      wrow = scratch;
    }
    const float b = bias == nullptr ? 0.0f : bias[r];
    for (std::size_t i = 0; i < m; ++i)
      y[i * rows + r] = b + dot_vec(x + i * cols, wrow, cols);
  }
}

}  // namespace
}  // namespace llmpq
