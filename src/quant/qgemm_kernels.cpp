#include "quant/qgemm_kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"

namespace llmpq {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

SimdLevel simd_level_from_name(const std::string& name) {
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512})
    if (name == simd_level_name(l)) return l;
  throw InvalidArgumentError("unknown SIMD level: " + name +
                             " (expected scalar|avx2|avx512)");
}

namespace {

bool cpu_supports(SimdLevel level) {
#if defined(__x86_64__) || defined(__i386__)
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case SimdLevel::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vl");
  }
  return false;
#else
  return level == SimdLevel::kScalar;
#endif
}

bool compiled_in(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(LLMPQ_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(LLMPQ_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdLevel clamp_to_available(SimdLevel level) {
  while (level != SimdLevel::kScalar && !simd_level_available(level))
    level = static_cast<SimdLevel>(static_cast<int>(level) - 1);
  return level;
}

/// -1 = unresolved; resolved lazily on first use so tests can set
/// LLMPQ_SIMD before the first qgemm of the process.
std::atomic<int> g_active{-1};

SimdLevel resolve_initial_level() {
  if (const char* env = std::getenv("LLMPQ_SIMD")) {
    return clamp_to_available(simd_level_from_name(env));
  }
  return detected_simd_level();
}

}  // namespace

bool simd_level_available(SimdLevel level) {
  return compiled_in(level) && cpu_supports(level);
}

SimdLevel detected_simd_level() {
  if (simd_level_available(SimdLevel::kAvx512)) return SimdLevel::kAvx512;
  if (simd_level_available(SimdLevel::kAvx2)) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
}

SimdLevel active_simd_level() {
  int v = g_active.load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(resolve_initial_level());
    g_active.store(v, std::memory_order_release);
  }
  return static_cast<SimdLevel>(v);
}

void set_simd_level(SimdLevel level) {
  g_active.store(static_cast<int>(clamp_to_available(level)),
                 std::memory_order_release);
}

QgemmRowsFn qgemm_rows_kernel(SimdLevel level) {
  switch (clamp_to_available(level)) {
#if defined(LLMPQ_HAVE_AVX512)
    case SimdLevel::kAvx512:
      return &qgemm_rows_avx512;
#endif
#if defined(LLMPQ_HAVE_AVX2)
    case SimdLevel::kAvx2:
      return &qgemm_rows_avx2;
#endif
    default:
      return &qgemm_rows_scalar;
  }
}

void qgemm_rows_scalar(const float* x, std::size_t m, std::size_t cols,
                       const QuantizedMatrix& w, const float* bias, float* y,
                       std::size_t r0, std::size_t r1, float* scratch) {
  const std::size_t rows = w.rows();
  for (std::size_t r = r0; r < r1; ++r) {
    const float* wrow = w.fp_row(r);
    if (wrow == nullptr) {
      w.dequantize_row(r, scratch);
      wrow = scratch;
    }
    const float b = bias == nullptr ? 0.0f : bias[r];
    for (std::size_t i = 0; i < m; ++i) {
      const float* xi = x + i * cols;
      float acc = b;
      for (std::size_t c = 0; c < cols; ++c) acc += xi[c] * wrow[c];
      y[i * rows + r] = acc;
    }
  }
}

}  // namespace llmpq
