#include "quant/quality.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "quant/calibration.hpp"
#include "quant/indicator.hpp"

namespace llmpq {

namespace {

double hash_normal(const ModelSpec& model, int layer, std::uint64_t salt) {
  std::uint64_t h = std::hash<std::string>{}(model.name);
  h ^= (static_cast<std::uint64_t>(layer) + 0x9e3779b97f4a7c15ull) +
       (h << 6) + (h >> 2);
  h ^= salt * 0x94d049bb133111ebull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  const double u =
      std::min(std::max(static_cast<double>(h >> 11) * 0x1.0p-53, 1e-9),
               1.0 - 1e-9);
  return std::log(u / (1.0 - u)) / 1.702;
}

// Uniform-4-bit perplexity degradation targets, set from the paper's
// reported PPL gaps (e.g. OPT-13b: PipeEdge@4bit 11.78 vs FP16 11.22).
double target_delta4(const ModelSpec& model) {
  struct Entry {
    const char* name;
    double delta;
  };
  static constexpr Entry kTargets[] = {
      {"opt-125m", 2.10}, {"opt-1.3b", 1.05}, {"opt-13b", 0.56},
      {"opt-30b", 0.10},  {"opt-66b", 0.17},  {"opt-175b", 0.06},
      {"bloom-560m", 1.90}, {"bloom-1b7", 1.30}, {"bloom-3b", 0.80},
      {"bloom-7b1", 0.45},  {"bloom-176b", 0.07},
  };
  for (const auto& e : kTargets)
    if (model.name == e.name) return e.delta;
  // Unknown model: scale inversely with sqrt(model size in billions).
  const double billions =
      static_cast<double>(model.total_params()) / 1e9;
  return 1.0 / std::sqrt(std::max(0.1, billions));
}

// Accuracy points lost at uniform 4-bit.
double target_acc_delta4(const ModelSpec& model) {
  // Table 1 magnitude: OPT-1.3b loses ~2 points when a third of layers is
  // 4-bit, so ~2.5-3 points at uniform 4-bit; scale with the PPL target.
  return 2.8 * target_delta4(model) / 1.05;
}

// Normalized depth-dependent sensitivity: variance-law shape (what the
// indicator can see) times jitter it cannot.
double true_shape(const ModelSpec& model, int layer) {
  const double raw =
      raw_variance_omega(model, layer, 4, Rounding::kDeterministic);
  double mean_raw = 0.0;
  for (int i = 0; i < model.layers; ++i)
    mean_raw += raw_variance_omega(model, i, 4, Rounding::kDeterministic);
  mean_raw /= static_cast<double>(model.layers);
  return raw / mean_raw * std::exp(0.15 * hash_normal(model, layer, 101));
}

// Bitwidth factor relative to 4-bit.
double bit_factor(const ModelSpec& model, int layer, int bits) {
  switch (bits) {
    case 16:
      return 0.0;
    case 8:
      // Nearly free; per-layer jitter can dip slightly below zero
      // (LLM.int8 occasionally regularizes, cf. negative deltas in
      // Tables 4/6).
      return 0.012 + 0.018 * hash_normal(model, layer, 202);
    case 4:
      return 1.0;
    case 3: {
      // (qmax4/qmax3)^2 = (7/3)^2 ~ 5.4, with mild per-layer variation.
      return 5.4 * std::exp(0.10 * hash_normal(model, layer, 303));
    }
    default:
      throw InvalidArgumentError("bit_factor: unsupported bitwidth");
  }
}

}  // namespace

double model_ppl_delta_at_uniform4(const ModelSpec& model) {
  return target_delta4(model);
}

double true_layer_ppl_delta(const ModelSpec& model, int layer, int bits) {
  check_arg(layer >= 0 && layer < model.layers,
            "true_layer_ppl_delta: layer out of range");
  const double unit =
      target_delta4(model) / static_cast<double>(model.layers);
  return unit * true_shape(model, layer) * bit_factor(model, layer, bits);
}

double true_layer_acc_delta(const ModelSpec& model, int layer, int bits) {
  const double unit =
      target_acc_delta4(model) / static_cast<double>(model.layers);
  return unit * true_shape(model, layer) * bit_factor(model, layer, bits);
}

double plan_ppl(const ModelSpec& model, std::span<const int> bits_per_layer) {
  return plan_ppl(model, bits_per_layer, QuantScheme::kGptq);
}

double plan_ppl(const ModelSpec& model, std::span<const int> bits_per_layer,
                QuantScheme scheme) {
  check_arg(static_cast<int>(bits_per_layer.size()) == model.layers,
            "plan_ppl: wrong number of layers");
  double ppl = model.ppl_fp16;
  for (int i = 0; i < model.layers; ++i) {
    const int bits = bits_per_layer[static_cast<std::size_t>(i)];
    ppl += true_layer_ppl_delta(model, i, bits) *
           scheme_quality_factor(scheme, bits);
  }
  return ppl;
}

double plan_accuracy(const ModelSpec& model,
                     std::span<const int> bits_per_layer) {
  check_arg(static_cast<int>(bits_per_layer.size()) == model.layers,
            "plan_accuracy: wrong number of layers");
  double acc = model.acc_fp16;
  for (int i = 0; i < model.layers; ++i)
    acc -= true_layer_acc_delta(model, i, bits_per_layer[static_cast<std::size_t>(i)]);
  return acc;
}

double uniform_ppl(const ModelSpec& model, int bits) {
  std::vector<int> plan(static_cast<std::size_t>(model.layers), bits);
  return plan_ppl(model, plan);
}

double uniform_accuracy(const ModelSpec& model, int bits) {
  std::vector<int> plan(static_cast<std::size_t>(model.layers), bits);
  return plan_accuracy(model, plan);
}

}  // namespace llmpq
