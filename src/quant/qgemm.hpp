#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "quant/quantize.hpp"

namespace llmpq {

/// y[m x rows] = x[m x cols] * W^T where W is [rows x cols]. Weights are
/// stored output-channel-major (each W row produces one output feature),
/// matching the per-row quantization scales. `bias` (size rows) is optional.
///
/// This is the CPU "weight-only kernel": each output channel is dequantized
/// once per call and accumulated in fp32. Work is partitioned over output-
/// channel blocks across the shared ThreadPool when the problem is large
/// enough to amortize the fork/join (small problems and single-core hosts
/// run the serial path). Every output element is produced by exactly one
/// task with the same accumulation order as the serial kernel, so results
/// are bit-for-bit identical regardless of thread count.
void qgemm(std::span<const float> x, std::size_t m, std::size_t cols,
           const QuantizedMatrix& w, std::span<const float> bias,
           std::span<float> y);

/// Single-threaded reference kernel (the seed implementation); kept as the
/// comparison baseline for tests and `bench_micro_quant`.
void qgemm_serial(std::span<const float> x, std::size_t m, std::size_t cols,
                  const QuantizedMatrix& w, std::span<const float> bias,
                  std::span<float> y);

/// Plain fp32 GEMM with the same layout (used as the ground truth in tests).
void gemm_f32(std::span<const float> x, std::size_t m, std::size_t cols,
              std::span<const float> w, std::size_t rows,
              std::span<const float> bias, std::span<float> y);

}  // namespace llmpq
