#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "quant/quantize.hpp"

namespace llmpq {

/// y[m x rows] = x[m x cols] * W^T where W is [rows x cols]. Weights are
/// stored output-channel-major (each W row produces one output feature),
/// matching the per-row quantization scales. `bias` (size rows) is optional.
///
/// This is the CPU reference of the "weight-only kernel": dequantize one
/// output channel at a time and accumulate in fp32. Correctness, not speed,
/// is the point — kernel *timing* on GPUs is modelled in cost/.
void qgemm(std::span<const float> x, std::size_t m, std::size_t cols,
           const QuantizedMatrix& w, std::span<const float> bias,
           std::span<float> y);

/// Plain fp32 GEMM with the same layout (used as the ground truth in tests).
void gemm_f32(std::span<const float> x, std::size_t m, std::size_t cols,
              std::span<const float> w, std::size_t rows,
              std::span<const float> bias, std::span<float> y);

}  // namespace llmpq
