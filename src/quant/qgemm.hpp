#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "quant/quantize.hpp"

namespace llmpq {

/// y[m x rows] = x[m x cols] * W^T where W is [rows x cols]. Weights are
/// stored output-channel-major (each W row produces one output feature),
/// matching the per-row quantization scales. `bias` (size rows) is optional.
///
/// This is the CPU "weight-only kernel": each output channel is dequantized
/// once per call and accumulated in fp32. The row microkernel is picked at
/// runtime (scalar / AVX2 / AVX-512 — see quant/qgemm_kernels.hpp); work
/// is partitioned over output-channel blocks across the shared ThreadPool
/// when the problem is large enough to amortize the fork/join (small
/// problems and single-core hosts run one kernel call inline). Every
/// output element is produced by exactly one task, so results are
/// bit-for-bit identical regardless of thread count at a fixed dispatch
/// level; across levels the dequantization is bit-identical and only the
/// dot-product accumulation order differs (documented tolerance).
void qgemm(std::span<const float> x, std::size_t m, std::size_t cols,
           const QuantizedMatrix& w, std::span<const float> bias,
           std::span<float> y);

/// Single-threaded scalar reference kernel (the seed implementation,
/// always dispatch-independent); the bit-defining baseline for tests and
/// `bench_micro_quant`.
void qgemm_serial(std::span<const float> x, std::size_t m, std::size_t cols,
                  const QuantizedMatrix& w, std::span<const float> bias,
                  std::span<float> y);

/// Plain fp32 GEMM with the same layout (used as the ground truth in tests).
void gemm_f32(std::span<const float> x, std::size_t m, std::size_t cols,
              std::span<const float> w, std::size_t rows,
              std::span<const float> bias, std::span<float> y);

}  // namespace llmpq
