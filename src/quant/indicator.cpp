#include "quant/indicator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "quant/calibration.hpp"
#include "quant/quality.hpp"

namespace llmpq {

std::string indicator_kind_name(IndicatorKind kind) {
  switch (kind) {
    case IndicatorKind::kVariance:
      return "variance";
    case IndicatorKind::kHessian:
      return "hessian";
    case IndicatorKind::kRandom:
      return "random";
  }
  return "?";
}

double IndicatorResult::at(int layer, int bits) const {
  const int idx = bit_index(bits);
  check_arg(idx >= 0, "IndicatorResult::at: unsupported bitwidth");
  check_arg(layer >= 0 && layer < static_cast<int>(omega.size()),
            "IndicatorResult::at: layer out of range");
  return omega[static_cast<std::size_t>(layer)][static_cast<std::size_t>(idx)];
}

double raw_variance_omega(const ModelSpec& model, int layer, int bits,
                          Rounding mode) {
  if (bits == 16) return 0.0;
  double omega = 0.0;
  for (const auto& op : model.layer_linear_ops()) {
    const WeightStats w = synth_weight_stats(model, layer, op.name);
    const ActivationStats a = synth_activation_stats(model, layer, op.name);
    const double s = weight_scale(w, bits);
    // Proposition 2: D_W * S_W(b)^2 * G(X). D_W is the accumulation
    // dimension of the linear operator (its input features).
    omega += static_cast<double>(op.in_dim) * s * s * g_of_x(a, mode);
  }
  return omega;
}

IndicatorResult compute_indicator(const ModelSpec& model, IndicatorKind kind,
                                  Rounding mode, std::uint64_t seed) {
  IndicatorResult result;
  result.kind = kind;
  result.overhead_s = indicator_overhead_s(model, kind);
  result.omega.resize(static_cast<std::size_t>(model.layers));

  Rng rng(seed ^ std::hash<std::string>{}(model.name));

  // Fill raw values per kind.
  for (int i = 0; i < model.layers; ++i) {
    auto& row = result.omega[static_cast<std::size_t>(i)];
    for (std::size_t bi = 0; bi < kBitCandidates.size(); ++bi) {
      const int bits = kBitCandidates[bi];
      switch (kind) {
        case IndicatorKind::kVariance:
          row[bi] = raw_variance_omega(model, i, bits, mode);
          break;
        case IndicatorKind::kHessian:
          // HAWQ-style curvature estimate: tracks the hidden truth closely
          // (it measures actual loss perturbation) at great compute cost.
          row[bi] = std::max(0.0, true_layer_ppl_delta(model, i, bits)) *
                    std::exp(0.03 * rng.normal());
          break;
        case IndicatorKind::kRandom:
          row[bi] = bits == 16 ? 0.0 : rng.uniform(0.1, 2.0);
          break;
      }
    }
  }

  // Normalize: mean omega at 4 bits over layers == kOmegaScale.
  double mean4 = 0.0;
  const std::size_t idx4 = static_cast<std::size_t>(bit_index(4));
  for (const auto& row : result.omega) mean4 += row[idx4];
  mean4 /= static_cast<double>(model.layers);
  if (mean4 > 0.0)
    for (auto& row : result.omega)
      for (double& v : row) v *= kOmegaScale / mean4;
  return result;
}

double indicator_overhead_s(const ModelSpec& model, IndicatorKind kind) {
  // Calibrated to Table 6: variance indicator for OPT-66b ~435 s, OPT-30b
  // ~216 s; the Hessian costs ~58-73x more. Modelled as proportional to
  // total decoder parameters (one calibration sweep over the weights).
  const double layer_params_total =
      static_cast<double>(model.layer_params()) *
      static_cast<double>(model.layers);
  switch (kind) {
    case IndicatorKind::kVariance:
      return 6.7e-9 * layer_params_total;
    case IndicatorKind::kHessian:
      return 4.0e-7 * layer_params_total;
    case IndicatorKind::kRandom:
      return 0.0;
  }
  return 0.0;
}

}  // namespace llmpq
