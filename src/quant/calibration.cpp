#include "quant/calibration.hpp"

#include <cmath>
#include <functional>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace llmpq {

double g_of_x(const ActivationStats& stats, Rounding mode) {
  switch (mode) {
    case Rounding::kDeterministic:
      return stats.variance / 4.0;
    case Rounding::kStochastic:
      return (stats.mean * stats.mean + stats.variance) / 6.0;
  }
  return 0.0;  // unreachable
}

ActivationStats collect_activation_stats(std::span<const float> samples) {
  check_arg(!samples.empty(), "collect_activation_stats: empty sample");
  RunningStats rs;
  for (float s : samples) rs.add(static_cast<double>(s));
  return {rs.mean(), rs.variance()};
}

namespace {

// Deterministic unit-interval hash of (model, layer, op, salt).
double hash_unit(const ModelSpec& model, int layer, const std::string& op,
                 std::uint64_t salt) {
  std::uint64_t h = std::hash<std::string>{}(model.name);
  h ^= 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(layer) +
       (h << 6) + (h >> 2);
  h ^= std::hash<std::string>{}(op) + 0x9e3779b97f4a7c15ull + (h << 6) +
       (h >> 2);
  h ^= salt * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Approximate inverse-normal for hashed gaussians (Acklam-lite; accuracy is
// irrelevant here, determinism is what matters).
double unit_to_normal(double u) {
  u = std::min(std::max(u, 1e-9), 1.0 - 1e-9);
  // Logistic approximation to the probit function.
  return std::log(u / (1.0 - u)) / 1.702;
}

}  // namespace

WeightStats synth_weight_stats(const ModelSpec& model, int layer,
                               const std::string& op_name) {
  check_arg(layer >= 0 && layer < model.layers,
            "synth_weight_stats: layer out of range");
  // Base scale follows the usual 1/sqrt(h) init magnitude; depth trend makes
  // deeper layers ~60% "wider" by the last layer; hashed lognormal jitter
  // differentiates operators and layers.
  const double base = 1.0 / std::sqrt(static_cast<double>(model.hidden));
  const double depth = 1.0 + 0.6 * static_cast<double>(layer) /
                                 static_cast<double>(std::max(1, model.layers - 1));
  const double jitter =
      std::exp(0.25 * unit_to_normal(hash_unit(model, layer, op_name, 1)));
  WeightStats w;
  w.std_dev = base * depth * jitter;
  // LLM weights are heavy-tailed; outliers push the symmetric range to
  // ~6-10 sigma depending on the operator.
  const double tail =
      6.0 + 4.0 * hash_unit(model, layer, op_name, 2);
  w.max_abs = w.std_dev * tail;
  return w;
}

double weight_scale(const WeightStats& stats, int bits) {
  return stats.max_abs / static_cast<double>(qmax_for_bits(bits));
}

ActivationStats synth_activation_stats(const ModelSpec& model, int layer,
                                       const std::string& op_name) {
  check_arg(layer >= 0 && layer < model.layers,
            "synth_activation_stats: layer out of range");
  // Post-layernorm activations: near-unit variance with per-op jitter, a
  // small mean offset, and mild growth with depth (residual stream drift).
  const double depth = 1.0 + 0.3 * static_cast<double>(layer) /
                                 static_cast<double>(std::max(1, model.layers - 1));
  ActivationStats a;
  a.variance = depth *
               std::exp(0.2 * unit_to_normal(hash_unit(model, layer, op_name, 3)));
  a.mean = 0.1 * unit_to_normal(hash_unit(model, layer, op_name, 4));
  return a;
}

}  // namespace llmpq
