#pragma once

#include <cstddef>
#include <string>

#include "quant/quantize.hpp"

namespace llmpq {

/// Dispatch levels of the dequantize-then-GEMM row microkernels, ordered
/// by capability. The scalar kernel is the bit-defining reference: the
/// vector kernels must reproduce its *dequantization* bit-for-bit (the
/// per-element `code * scale (+ min)` is evaluated with the same two
/// IEEE roundings — no FMA contraction there) and may only differ in the
/// dot-product accumulation order (vector lanes + FMA), which tests cover
/// with a documented tolerance.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* simd_level_name(SimdLevel level);
/// Inverse of simd_level_name ("scalar" | "avx2" | "avx512"); throws
/// InvalidArgumentError on anything else.
SimdLevel simd_level_from_name(const std::string& name);

/// True when `level`'s kernel is both compiled in (-mavx2 / -mavx512*)
/// and supported by this CPU. kScalar is always available.
bool simd_level_available(SimdLevel level);

/// Highest available level on this machine.
SimdLevel detected_simd_level();

/// The level qgemm() dispatches to. Resolution order: set_simd_level()
/// override if any, else the LLMPQ_SIMD env var (scalar|avx2|avx512,
/// clamped to what is available), else detected_simd_level().
SimdLevel active_simd_level();

/// Forces the dispatch level (clamped to available); used by tests and
/// benches to pin a kernel. Not thread-safe against concurrent qgemm
/// calls — set it before spawning work.
void set_simd_level(SimdLevel level);

/// RAII pin for tests: forces `level` for the scope, restores on exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(active_simd_level()) {
    set_simd_level(level);
  }
  ~ScopedSimdLevel() { set_simd_level(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prev_;
};

/// Row-range microkernel contract shared by every dispatch level:
/// computes output channels [r0, r1) of y[m x rows] = x[m x cols] * W^T
/// (+ bias), with `scratch` (size cols) available for the dequantized
/// row. 16-bit matrices are read in place via the fp-row cache.
using QgemmRowsFn = void (*)(const float* x, std::size_t m, std::size_t cols,
                             const QuantizedMatrix& w, const float* bias,
                             float* y, std::size_t r0, std::size_t r1,
                             float* scratch);

/// Kernel entry point for `level` (clamped to available).
QgemmRowsFn qgemm_rows_kernel(SimdLevel level);

/// The reference kernel (always present).
void qgemm_rows_scalar(const float* x, std::size_t m, std::size_t cols,
                       const QuantizedMatrix& w, const float* bias, float* y,
                       std::size_t r0, std::size_t r1, float* scratch);

#if defined(LLMPQ_HAVE_AVX2)
void qgemm_rows_avx2(const float* x, std::size_t m, std::size_t cols,
                     const QuantizedMatrix& w, const float* bias, float* y,
                     std::size_t r0, std::size_t r1, float* scratch);
#endif
#if defined(LLMPQ_HAVE_AVX512)
void qgemm_rows_avx512(const float* x, std::size_t m, std::size_t cols,
                       const QuantizedMatrix& w, const float* bias, float* y,
                       std::size_t r0, std::size_t r1, float* scratch);
#endif

}  // namespace llmpq
