#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace llmpq {

/// Rounding mode used when mapping scaled weights to integers. The two
/// modes are exactly the ones Theorem 1 of the paper analyses: deterministic
/// round-to-nearest has error variance s^2/4 (worst case), stochastic
/// rounding is unbiased with variance bounded by s^2/6 terms.
enum class Rounding { kDeterministic, kStochastic };

/// Rounds `x` (already divided by the scale) to an integer.
std::int32_t round_scaled(double x, Rounding mode, Rng& rng);

/// Clamps an integer to the symmetric range of a bitwidth:
/// [-(2^{b-1} - 1), 2^{b-1} - 1].
std::int32_t clamp_to_bits(std::int32_t q, int bits);

/// Largest representable magnitude at a bitwidth: 2^{b-1} - 1.
std::int32_t qmax_for_bits(int bits);

}  // namespace llmpq
