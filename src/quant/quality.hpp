#pragma once

#include <span>
#include <vector>

#include "model/model_spec.hpp"
#include "quant/scheme.hpp"

namespace llmpq {

/// Ground-truth model-quality surrogate.
///
/// The paper evaluates plans by measuring perplexity on WikiText2/PTB/C4
/// with real checkpoints. We have no checkpoints, so this module *defines*
/// the hidden ground truth the rest of the system is evaluated against:
/// each (layer, bitwidth) has a true perplexity contribution derived from
/// the same synthetic weight/activation statistics the variance indicator
/// sees (Theorem 1 says the rounding-variance bound tracks real
/// perturbation well), plus jitter the indicator does NOT see. Indicators
/// are therefore imperfect estimators of this truth, exactly as in reality.
///
/// Calibrated shape facts preserved from the paper:
///  * deeper layers are more sensitive (Table 1),
///  * 3-bit ≈ 5x worse than 4-bit, 8-bit nearly free and occasionally
///    slightly *better* than FP16 (Tables 4/6 show small negative deltas),
///  * larger models degrade less at the same bitwidth (Table 4 magnitudes).

/// True added perplexity of quantizing layer `layer` to `bits`
/// (0 for 16-bit). Deterministic per (model, layer, bits).
double true_layer_ppl_delta(const ModelSpec& model, int layer, int bits);

/// True accuracy drop (percentage points, >= 0 typically) of the same.
double true_layer_acc_delta(const ModelSpec& model, int layer, int bits);

/// Perplexity of a full plan: ppl_fp16 + sum of layer deltas.
/// `bits_per_layer` must have model.layers entries. `scheme` scales the
/// low-bit degradation per the kernel family (Sec. 7 extension).
double plan_ppl(const ModelSpec& model, std::span<const int> bits_per_layer);
double plan_ppl(const ModelSpec& model, std::span<const int> bits_per_layer,
                QuantScheme scheme);

/// Zero-shot accuracy of a full plan (percent).
double plan_accuracy(const ModelSpec& model,
                     std::span<const int> bits_per_layer);

/// Convenience: PPL under uniform quantization at `bits`.
double uniform_ppl(const ModelSpec& model, int bits);
double uniform_accuracy(const ModelSpec& model, int bits);

/// Reference uniform-4-bit total perplexity degradation per model (the
/// calibration target; exposed for tests and documentation).
double model_ppl_delta_at_uniform4(const ModelSpec& model);

}  // namespace llmpq
