#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hw/gpu_spec.hpp"
#include "model/model_spec.hpp"
#include "quant/rounding.hpp"

namespace llmpq {

/// How layer sensitivities are estimated for the optimizer's quality term.
///  kVariance — the paper's contribution: the rounding-variance upper bound
///              of Theorem 1 / Proposition 2. Cheap (one statistics pass).
///  kHessian  — HAWQ-style second-order proxy; most faithful but ~60x more
///              expensive to produce (Table 6).
///  kRandom   — ablation baseline: random positive values.
enum class IndicatorKind { kVariance, kHessian, kRandom };

std::string indicator_kind_name(IndicatorKind kind);

/// Per-layer, per-bitwidth quality-perturbation scores omega_{i,b}, indexed
/// [layer][bit_index] with bit order {3, 4, 8, 16}; omega at 16 bits is 0.
/// Values are normalized so the per-layer mean at 4 bits is kOmegaScale —
/// calibrated so the user quality scalar theta covers the same useful
/// range the paper uses (1 .. 1000) against latencies measured in seconds.
inline constexpr double kOmegaScale = 0.1;

struct IndicatorResult {
  IndicatorKind kind = IndicatorKind::kVariance;
  std::vector<std::array<double, 4>> omega;
  double overhead_s = 0.0;  ///< modelled time to produce the indicator

  double at(int layer, int bits) const;
};

/// Raw (unnormalized) variance-indicator value of Proposition 2 for one
/// layer: sum over the layer's linear operators of D_W * S_W(b)^2 * G(X).
double raw_variance_omega(const ModelSpec& model, int layer, int bits,
                          Rounding mode);

/// Computes the indicator for a whole model. Deterministic given `seed`.
IndicatorResult compute_indicator(const ModelSpec& model, IndicatorKind kind,
                                  Rounding mode = Rounding::kDeterministic,
                                  std::uint64_t seed = 17);

/// Modelled wall-clock cost of producing each indicator, calibrated to the
/// magnitudes in the paper's Table 6 (variance: minutes; Hessian: hours).
double indicator_overhead_s(const ModelSpec& model, IndicatorKind kind);

}  // namespace llmpq
