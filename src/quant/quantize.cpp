#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace llmpq {

namespace {

// Writes `value` (already biased, < 2^bits) at element index `idx` of a
// packed row starting at `row_words`.
void pack_value(std::uint32_t* row_words, std::size_t idx, int bits,
                std::uint32_t value) {
  const std::size_t bit_pos = idx * static_cast<std::size_t>(bits);
  const std::size_t word = bit_pos / 32;
  const std::size_t offset = bit_pos % 32;
  row_words[word] |= value << offset;
  if (offset + static_cast<std::size_t>(bits) > 32)
    row_words[word + 1] |= value >> (32 - offset);
}

std::uint32_t unpack_value(const std::uint32_t* row_words, std::size_t idx,
                           int bits) {
  const std::size_t bit_pos = idx * static_cast<std::size_t>(bits);
  const std::size_t word = bit_pos / 32;
  const std::size_t offset = bit_pos % 32;
  const std::uint32_t mask = (1u << bits) - 1u;
  std::uint32_t v = row_words[word] >> offset;
  if (offset + static_cast<std::size_t>(bits) > 32)
    v |= row_words[word + 1] << (32 - offset);
  return v & mask;
}

}  // namespace

QuantizedMatrix QuantizedMatrix::quantize(std::span<const float> weights,
                                          std::size_t rows, std::size_t cols,
                                          int bits, Rounding mode, Rng& rng) {
  check_arg(weights.size() == rows * cols, "quantize: size mismatch");
  check_arg(bits == 3 || bits == 4 || bits == 8 || bits == 16,
            "quantize: unsupported bitwidth");
  QuantizedMatrix q;
  q.bits_ = bits;
  q.rows_ = rows;
  q.cols_ = cols;

  if (bits == 16) {
    q.fp_.assign(weights.begin(), weights.end());
    return q;
  }

  const std::int32_t qmax = qmax_for_bits(bits);
  q.words_per_row_ =
      (cols * static_cast<std::size_t>(bits) + 31) / 32 + 1;  // +1 spill word
  q.scales_.resize(rows);
  q.packed_.assign(rows * q.words_per_row_, 0u);

  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = weights.data() + r * cols;
    float max_abs = 0.0f;
    for (std::size_t c = 0; c < cols; ++c)
      max_abs = std::max(max_abs, std::fabs(w[c]));
    const float scale =
        max_abs > 0.0f ? max_abs / static_cast<float>(qmax) : 1.0f;
    q.scales_[r] = scale;
    std::uint32_t* row_words = q.packed_.data() + r * q.words_per_row_;
    for (std::size_t c = 0; c < cols; ++c) {
      const std::int32_t qi = clamp_to_bits(
          round_scaled(static_cast<double>(w[c]) / scale, mode, rng), bits);
      pack_value(row_words, c, bits,
                 static_cast<std::uint32_t>(qi + qmax));
    }
  }
  return q;
}

void QuantizedMatrix::dequantize_row(std::size_t row, float* out) const {
  if (bits_ == 16) {
    const float* src = fp_.data() + row * cols_;
    std::copy(src, src + cols_, out);
    return;
  }
  const std::int32_t qmax = qmax_for_bits(bits_);
  const float scale = scales_[row];
  const std::uint32_t* row_words = packed_.data() + row * words_per_row_;
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::int32_t qi =
        static_cast<std::int32_t>(unpack_value(row_words, c, bits_)) - qmax;
    out[c] = static_cast<float>(qi) * scale;
  }
}

std::vector<float> QuantizedMatrix::dequantize() const {
  std::vector<float> out(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    dequantize_row(r, out.data() + r * cols_);
  return out;
}

std::int32_t QuantizedMatrix::quantized_at(std::size_t row,
                                           std::size_t col) const {
  check_arg(bits_ < 16, "quantized_at: matrix is not quantized");
  const std::uint32_t* row_words = packed_.data() + row * words_per_row_;
  return static_cast<std::int32_t>(unpack_value(row_words, col, bits_)) -
         qmax_for_bits(bits_);
}

std::size_t QuantizedMatrix::packed_bytes() const {
  if (bits_ == 16) return fp_.size() * sizeof(float);
  return packed_.size() * sizeof(std::uint32_t) +
         scales_.size() * sizeof(float);
}

}  // namespace llmpq
