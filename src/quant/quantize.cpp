#include "quant/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace llmpq {

QuantFormat quant_format_from_name(const std::string& name) {
  for (QuantFormat f : kQuantFormats)
    if (name == quant_format_name(f)) return f;
  throw InvalidArgumentError("unknown quant format: " + name);
}

namespace {

// Writes `value` (already biased, < 2^bits) at element index `idx` of a
// packed row starting at `row_words`.
void pack_value(std::uint32_t* row_words, std::size_t idx, int bits,
                std::uint32_t value) {
  const std::size_t bit_pos = idx * static_cast<std::size_t>(bits);
  const std::size_t word = bit_pos / 32;
  const std::size_t offset = bit_pos % 32;
  row_words[word] |= value << offset;
  if (offset + static_cast<std::size_t>(bits) > 32)
    row_words[word + 1] |= value >> (32 - offset);
}

std::uint32_t unpack_value(const std::uint32_t* row_words, std::size_t idx,
                           int bits) {
  const std::size_t bit_pos = idx * static_cast<std::size_t>(bits);
  const std::size_t word = bit_pos / 32;
  const std::size_t offset = bit_pos % 32;
  const std::uint32_t mask = (1u << bits) - 1u;
  std::uint32_t v = row_words[word] >> offset;
  if (offset + static_cast<std::size_t>(bits) > 32)
    v |= row_words[word + 1] << (32 - offset);
  return v & mask;
}

}  // namespace

QuantizedMatrix QuantizedMatrix::quantize(std::span<const float> weights,
                                          std::size_t rows, std::size_t cols,
                                          int bits, Rounding mode, Rng& rng,
                                          QuantFormat format) {
  check_arg(weights.size() == rows * cols, "quantize: size mismatch");
  check_arg(bits == 3 || bits == 4 || bits == 8 || bits == 16,
            "quantize: unsupported bitwidth");
  QuantizedMatrix q;
  q.bits_ = bits;
  q.rows_ = rows;
  q.cols_ = cols;

  if (bits == 16) {
    q.fp_.assign(weights.begin(), weights.end());
    return q;
  }

  q.format_ = format;
  q.words_per_row_ =
      (cols * static_cast<std::size_t>(bits) + 31) / 32 + 1;  // +1 spill word
  q.packed_.assign(rows * q.words_per_row_, 0u);

  if (format == QuantFormat::kPerChannel) {
    const std::int32_t qmax = qmax_for_bits(bits);
    q.scales_.resize(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const float* w = weights.data() + r * cols;
      float max_abs = 0.0f;
      for (std::size_t c = 0; c < cols; ++c)
        max_abs = std::max(max_abs, std::fabs(w[c]));
      const float scale =
          max_abs > 0.0f ? max_abs / static_cast<float>(qmax) : 1.0f;
      q.scales_[r] = scale;
      std::uint32_t* row_words = q.packed_.data() + r * q.words_per_row_;
      for (std::size_t c = 0; c < cols; ++c) {
        const std::int32_t qi = clamp_to_bits(
            round_scaled(static_cast<double>(w[c]) / scale, mode, rng), bits);
        pack_value(row_words, c, bits, static_cast<std::uint32_t>(qi + qmax));
      }
    }
    return q;
  }

  // Group-wise asymmetric: per group, map [min, max] onto the full
  // unsigned code range [0, L] (asymmetric — no code is wasted on sign
  // symmetry, which is what buys group formats their quality at 3/4-bit).
  q.group_size_ = format_group_size(format);
  q.groups_per_row_ = (cols + q.group_size_ - 1) / q.group_size_;
  q.gscales_.resize(rows * q.groups_per_row_);
  q.gmins_.resize(rows * q.groups_per_row_);
  const std::int32_t level_max = (1 << bits) - 1;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = weights.data() + r * cols;
    std::uint32_t* row_words = q.packed_.data() + r * q.words_per_row_;
    float* gscale = q.gscales_.data() + r * q.groups_per_row_;
    float* gmin = q.gmins_.data() + r * q.groups_per_row_;
    for (std::size_t g = 0; g < q.groups_per_row_; ++g) {
      const std::size_t c0 = g * q.group_size_;
      const std::size_t c1 = std::min(cols, c0 + q.group_size_);
      float lo = w[c0], hi = w[c0];
      for (std::size_t c = c0 + 1; c < c1; ++c) {
        lo = std::min(lo, w[c]);
        hi = std::max(hi, w[c]);
      }
      const float scale =
          hi > lo ? (hi - lo) / static_cast<float>(level_max) : 1.0f;
      gscale[g] = scale;
      gmin[g] = lo;
      for (std::size_t c = c0; c < c1; ++c) {
        const std::int64_t code = round_scaled(
            (static_cast<double>(w[c]) - static_cast<double>(lo)) /
                static_cast<double>(scale),
            mode, rng);
        const std::int32_t clamped = static_cast<std::int32_t>(std::clamp(
            code, std::int64_t{0}, static_cast<std::int64_t>(level_max)));
        pack_value(row_words, c, bits, static_cast<std::uint32_t>(clamped));
      }
    }
  }
  return q;
}

void QuantizedMatrix::dequantize_row(std::size_t row, float* out) const {
  if (bits_ == 16) {
    const float* src = fp_.data() + row * cols_;
    std::copy(src, src + cols_, out);
    return;
  }
  const std::uint32_t* row_words = packed_.data() + row * words_per_row_;
  if (format_ == QuantFormat::kPerChannel) {
    const std::int32_t qmax = qmax_for_bits(bits_);
    const float scale = scales_[row];
    for (std::size_t c = 0; c < cols_; ++c) {
      const std::int32_t qi =
          static_cast<std::int32_t>(unpack_value(row_words, c, bits_)) - qmax;
      out[c] = static_cast<float>(qi) * scale;
    }
    return;
  }
  const float* gscale = gscales_.data() + row * groups_per_row_;
  const float* gmin = gmins_.data() + row * groups_per_row_;
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t g = c / group_size_;
    const float code =
        static_cast<float>(unpack_value(row_words, c, bits_));
    out[c] = code * gscale[g] + gmin[g];
  }
}

std::vector<float> QuantizedMatrix::dequantize() const {
  std::vector<float> out(rows_ * cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    dequantize_row(r, out.data() + r * cols_);
  return out;
}

std::int32_t QuantizedMatrix::quantized_at(std::size_t row,
                                           std::size_t col) const {
  check_arg(bits_ < 16, "quantized_at: matrix is not quantized");
  const std::uint32_t* row_words = packed_.data() + row * words_per_row_;
  const std::int32_t raw =
      static_cast<std::int32_t>(unpack_value(row_words, col, bits_));
  return format_ == QuantFormat::kPerChannel ? raw - qmax_for_bits(bits_)
                                             : raw;
}

std::size_t QuantizedMatrix::packed_bytes() const {
  return packed_bytes_for(rows_, cols_, bits_, format_);
}

std::size_t QuantizedMatrix::packed_bytes_for(std::size_t rows,
                                              std::size_t cols, int bits,
                                              QuantFormat format) {
  if (bits == 16) return rows * cols * sizeof(float);
  const std::size_t words_per_row =
      (cols * static_cast<std::size_t>(bits) + 31) / 32 + 1;
  const std::size_t packed = rows * words_per_row * sizeof(std::uint32_t);
  if (format == QuantFormat::kPerChannel)
    return packed + rows * sizeof(float);  // one scale per row
  const std::size_t gs = format_group_size(format);
  const std::size_t groups = (cols + gs - 1) / gs;
  return packed + rows * groups * 2 * sizeof(float);  // (scale, min) pairs
}

}  // namespace llmpq
