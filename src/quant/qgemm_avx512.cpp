// AVX-512 dequant-GEMM microkernel TU: 256-bit decode shared with the
// AVX2 kernel, 512-bit FMA dot product. Built only when the compiler
// accepts -mavx512f; the dispatcher requires avx512f+bw+vl at runtime.

#define LLMPQ_SIMD_IMPL_AVX512 1
#include "quant/qgemm_simd_impl.hpp"

namespace llmpq {

void qgemm_rows_avx512(const float* x, std::size_t m, std::size_t cols,
                       const QuantizedMatrix& w, const float* bias, float* y,
                       std::size_t r0, std::size_t r1, float* scratch) {
  qgemm_rows_impl(x, m, cols, w, bias, y, r0, r1, scratch);
}

}  // namespace llmpq
