#include "runtime/kv_cache_manager.hpp"

#include <algorithm>
#include <limits>
#include <new>

#include "common/error.hpp"

namespace llmpq {

KvCacheManager::KvCacheManager(std::size_t hidden,
                               const KvCacheManagerOptions& options)
    : hidden_(hidden), options_(options) {
  check_arg(hidden_ >= 1, "KvCacheManager: hidden must be >= 1");
  check_arg(options_.page_size >= 1,
            "KvCacheManager: page_size must be >= 1");
}

KvCacheManager::Seq& KvCacheManager::seq_at(int seq, const char* who) {
  auto it = seqs_.find(seq);
  if (it == seqs_.end())
    throw InvalidArgumentError(std::string("KvCacheManager::") + who +
                               ": unknown sequence id");
  return it->second;
}

const KvCacheManager::Seq& KvCacheManager::seq_at(int seq,
                                                  const char* who) const {
  auto it = seqs_.find(seq);
  if (it == seqs_.end())
    throw InvalidArgumentError(std::string("KvCacheManager::") + who +
                               ": unknown sequence id");
  return it->second;
}

void KvCacheManager::begin_seq(int seq) {
  check_arg(seqs_.emplace(seq, Seq{}).second,
            "KvCacheManager::begin_seq: sequence id already live");
  seqs_[seq].last_use = ++tick_;
}

void KvCacheManager::free_seq(int seq) {
  auto it = seqs_.find(seq);
  check_arg(it != seqs_.end(),
            "KvCacheManager::free_seq: unknown sequence id");
  for (std::size_t page : it->second.pages) free_.push_back(page);
  seqs_.erase(it);
}

void KvCacheManager::pin(int seq) { ++seq_at(seq, "pin").pinned; }

void KvCacheManager::unpin(int seq) {
  Seq& s = seq_at(seq, "unpin");
  check_arg(s.pinned > 0, "KvCacheManager::unpin: sequence is not pinned");
  --s.pinned;
}

bool KvCacheManager::evict_one(int keep) {
  int victim = 0;
  std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
  bool found = false;
  for (const auto& [id, s] : seqs_) {
    if (id == keep || s.pinned > 0 || s.pages.empty()) continue;
    if (s.last_use < oldest) {
      oldest = s.last_use;
      victim = id;
      found = true;
    }
  }
  if (!found) return false;
  Seq& s = seqs_[victim];
  for (std::size_t page : s.pages) free_.push_back(page);
  s.pages.clear();
  s.filled = 0;
  ++evictions_;
  if (preempt_) preempt_(victim);
  return true;
}

void KvCacheManager::reserve(int seq, std::size_t target_len) {
  Seq& s = seq_at(seq, "reserve");
  s.last_use = ++tick_;
  const std::size_t want = pages_for(target_len, options_.page_size);
  if (want > 0) s.preempted_len = 0;  // snapshot consumed by re-prefill
  while (s.pages.size() < want) {
    if (!free_.empty()) {
      s.pages.push_back(free_.back());
      free_.pop_back();
      continue;
    }
    if (options_.max_pages == 0 || pool_.size() < options_.max_pages) {
      pool_.push_back(std::make_unique<float[]>(page_floats()));
      s.pages.push_back(pool_.size() - 1);
      continue;
    }
    // Pool capped and no free page: preempt the coldest unpinned sequence.
    // `s` itself is protected so a reservation can never cannibalize the
    // sequence it serves.
    if (!evict_one(seq)) throw std::bad_alloc();
  }
}

std::size_t KvCacheManager::filled(int seq) const {
  return seq_at(seq, "filled").filled;
}

void KvCacheManager::append(int seq, const float* k_vec, const float* v_vec) {
  Seq& s = seq_at(seq, "append");
  check_arg(s.filled < s.pages.size() * options_.page_size,
            "KvCacheManager::append: position not reserved (reserve first)");
  float* page = pool_[s.pages[s.filled / options_.page_size]].get();
  const std::size_t slot = s.filled % options_.page_size;
  std::copy(k_vec, k_vec + hidden_, page + slot * hidden_);
  std::copy(v_vec, v_vec + hidden_,
            page + (options_.page_size + slot) * hidden_);
  ++s.filled;
  s.last_use = ++tick_;
}

const float* KvCacheManager::at(int seq, std::size_t pos, bool value,
                                const char* who) const {
  const Seq& s = seq_at(seq, who);
  if (pos >= s.filled)
    throw InvalidArgumentError(std::string("KvCacheManager::") + who +
                               ": position not filled");
  const float* page = pool_[s.pages[pos / options_.page_size]].get();
  const std::size_t slot = pos % options_.page_size;
  return page + (value ? (options_.page_size + slot) : slot) * hidden_;
}

const float* KvCacheManager::k_at(int seq, std::size_t pos) const {
  return at(seq, pos, /*value=*/false, "k_at");
}

const float* KvCacheManager::v_at(int seq, std::size_t pos) const {
  return at(seq, pos, /*value=*/true, "v_at");
}

std::size_t KvCacheManager::preempt(int seq) {
  Seq& s = seq_at(seq, "preempt");
  check_arg(!s.pages.empty(),
            "KvCacheManager::preempt: sequence holds no pages "
            "(double-preempt or never filled)");
  const std::size_t snapshot = s.filled;
  for (std::size_t page : s.pages) free_.push_back(page);
  s.pages.clear();
  s.filled = 0;
  s.preempted_len = snapshot;
  ++preemptions_;
  return snapshot;
}

std::size_t KvCacheManager::preempted_len(int seq) const {
  return seq_at(seq, "preempted_len").preempted_len;
}

void KvCacheManager::truncate(int seq, std::size_t len) {
  Seq& s = seq_at(seq, "truncate");
  check_arg(len <= s.filled,
            "KvCacheManager::truncate: cannot truncate beyond filled");
  s.filled = len;
}

}  // namespace llmpq
