#include "runtime/calibration_runner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "hw/gpu_spec.hpp"

namespace llmpq {

namespace {

class StatsObserver final : public ActivationObserver {
 public:
  explicit StatsObserver(int layers) : stats_(static_cast<std::size_t>(layers)) {}

  void on_linear_input(int layer, int op, std::span<const float> x) override {
    check_arg(layer >= 0 && layer < static_cast<int>(stats_.size()),
              "StatsObserver: layer out of range");
    auto& rs = stats_[static_cast<std::size_t>(layer)]
                     [static_cast<std::size_t>(op)];
    for (float v : x) rs.add(static_cast<double>(v));
  }

  LayerCalibration layer_result(int layer) const {
    const auto& ls = stats_[static_cast<std::size_t>(layer)];
    auto to_stats = [](const RunningStats& rs) {
      return ActivationStats{rs.mean(), rs.variance()};
    };
    return {to_stats(ls[0]), to_stats(ls[1]), to_stats(ls[2]), to_stats(ls[3])};
  }

 private:
  std::vector<std::array<RunningStats, 4>> stats_;
};

/// Mean of the squared per-output-channel quantization scales of a weight
/// matrix at `bits` — the S_W(b)^2 term of Proposition 2, measured from
/// the actual weights instead of synthetic statistics.
double mean_scale_sq(const QuantizedMatrix& w, int bits) {
  const std::vector<float> dense = w.dequantize();
  const std::size_t rows = w.rows(), cols = w.cols();
  const double qmax = static_cast<double>(qmax_for_bits(bits));
  double sum = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    float max_abs = 0.0f;
    for (std::size_t c = 0; c < cols; ++c)
      max_abs = std::max(max_abs, std::fabs(dense[r * cols + c]));
    const double s = static_cast<double>(max_abs) / qmax;
    sum += s * s;
  }
  return sum / static_cast<double>(rows);
}

}  // namespace

std::vector<LayerCalibration> run_calibration(
    const ModelWeights& weights,
    const std::vector<std::vector<TokenId>>& prompts) {
  check_arg(!prompts.empty(), "run_calibration: no prompts");
  const std::size_t batch = prompts.size();
  const std::size_t prompt_len = prompts.front().size();
  for (const auto& p : prompts)
    check_arg(p.size() == prompt_len, "run_calibration: unpadded prompts");

  StatsObserver observer(weights.spec.layers);
  std::vector<KvCache> caches;
  for (int i = 0; i < weights.spec.layers; ++i)
    caches.emplace_back(batch, prompt_len,
                        static_cast<std::size_t>(weights.spec.hidden));

  std::vector<TokenId> flat;
  for (const auto& p : prompts) flat.insert(flat.end(), p.begin(), p.end());
  Tensor2D x = embed(weights, flat, batch, prompt_len, 0);
  for (int i = 0; i < weights.spec.layers; ++i)
    decoder_layer_forward(weights.spec,
                          weights.layers[static_cast<std::size_t>(i)], x,
                          caches[static_cast<std::size_t>(i)], 0, batch,
                          prompt_len, &observer, i);

  std::vector<LayerCalibration> result;
  result.reserve(static_cast<std::size_t>(weights.spec.layers));
  for (int i = 0; i < weights.spec.layers; ++i)
    result.push_back(observer.layer_result(i));
  return result;
}

std::vector<std::array<double, 4>> measured_variance_omega(
    const ModelWeights& weights, const std::vector<LayerCalibration>& calib,
    Rounding mode) {
  check_arg(static_cast<int>(calib.size()) == weights.spec.layers,
            "measured_variance_omega: calibration size mismatch");
  std::vector<std::array<double, 4>> omega(
      static_cast<std::size_t>(weights.spec.layers));
  for (int i = 0; i < weights.spec.layers; ++i) {
    const LayerWeights& lw = weights.layers[static_cast<std::size_t>(i)];
    check_arg(lw.bits == 16,
              "measured_variance_omega: needs the FP16 master model");
    const LayerCalibration& lc = calib[static_cast<std::size_t>(i)];
    const struct {
      const QuantizedMatrix* w;
      const ActivationStats* x;
    } ops[] = {{&lw.qkv, &lc.qkv_in},
               {&lw.out, &lc.out_in},
               {&lw.fc1, &lc.fc1_in},
               {&lw.fc2, &lc.fc2_in}};
    for (std::size_t bi = 0; bi < kBitCandidates.size(); ++bi) {
      const int bits = kBitCandidates[bi];
      double total = 0.0;
      if (bits < 16) {
        for (const auto& op : ops)
          total += static_cast<double>(op.w->cols()) *
                   mean_scale_sq(*op.w, bits) * g_of_x(*op.x, mode);
      }
      omega[static_cast<std::size_t>(i)][bi] = total;
    }
  }
  return omega;
}

double output_mse(const ModelWeights& a, const ModelWeights& b,
                  const std::vector<std::vector<TokenId>>& prompts) {
  check_arg(a.spec.layers == b.spec.layers && a.spec.hidden == b.spec.hidden,
            "output_mse: incompatible models");
  const std::size_t batch = prompts.size();
  const std::size_t prompt_len = prompts.front().size();

  auto forward = [&](const ModelWeights& mw) {
    std::vector<KvCache> caches;
    for (int i = 0; i < mw.spec.layers; ++i)
      caches.emplace_back(batch, prompt_len,
                          static_cast<std::size_t>(mw.spec.hidden));
    std::vector<TokenId> flat;
    for (const auto& p : prompts) flat.insert(flat.end(), p.begin(), p.end());
    Tensor2D x = embed(mw, flat, batch, prompt_len, 0);
    for (int i = 0; i < mw.spec.layers; ++i)
      decoder_layer_forward(mw.spec, mw.layers[static_cast<std::size_t>(i)],
                            x, caches[static_cast<std::size_t>(i)], 0, batch,
                            prompt_len);
    return x;
  };

  const Tensor2D ya = forward(a);
  const Tensor2D yb = forward(b);
  double mse = 0.0;
  const auto fa = ya.flat();
  const auto fb = yb.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    const double d = static_cast<double>(fa[i]) - static_cast<double>(fb[i]);
    mse += d * d;
  }
  return mse / static_cast<double>(fa.size());
}

}  // namespace llmpq
