#include "runtime/microbatch.hpp"

#include "common/error.hpp"

namespace llmpq {

MicrobatchManager::MicrobatchManager(std::size_t global_batch,
                                     std::size_t prefill_mb,
                                     std::size_t decode_mb) {
  check_arg(global_batch >= 1 && prefill_mb >= 1 && decode_mb >= 1,
            "MicrobatchManager: sizes must be positive");
  prefill_ = make_slices(global_batch, prefill_mb);
  decode_ = make_slices(global_batch, decode_mb);
}

std::vector<BatchSlice> MicrobatchManager::make_slices(std::size_t total,
                                                       std::size_t per) {
  std::vector<BatchSlice> slices;
  for (std::size_t start = 0; start < total; start += per)
    slices.push_back({start, std::min(per, total - start)});
  return slices;
}

bool MicrobatchManager::complete_one() {
  std::lock_guard<std::mutex> lock(mutex_);
  check_arg(outstanding_ > 0, "MicrobatchManager: nothing outstanding");
  return --outstanding_ == 0;
}

void MicrobatchManager::begin_phase(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  check_arg(outstanding_ == 0, "MicrobatchManager: phase already running");
  outstanding_ = n;
}

std::size_t MicrobatchManager::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outstanding_;
}

}  // namespace llmpq
