#pragma once

#include <cstddef>
#include <mutex>
#include <vector>

namespace llmpq {

/// One contiguous slice of the global batch.
struct BatchSlice {
  std::size_t start = 0;
  std::size_t count = 0;
};

/// Thread-safe micro-batch bookkeeping (paper Sec. 5: "thread-safe
/// micro-batch manager"): slices the global batch differently per phase
/// (hybrid micro-batch sizing) and tracks in-flight completion so the
/// master engine knows when a phase barrier is reached.
class MicrobatchManager {
 public:
  MicrobatchManager(std::size_t global_batch, std::size_t prefill_mb,
                    std::size_t decode_mb);

  const std::vector<BatchSlice>& prefill_slices() const { return prefill_; }
  const std::vector<BatchSlice>& decode_slices() const { return decode_; }

  /// Marks one slice completed; returns true when the whole phase is done.
  bool complete_one();

  /// Resets the in-flight counter for the next phase/round of `n` slices.
  void begin_phase(std::size_t n);

  std::size_t outstanding() const;

 private:
  static std::vector<BatchSlice> make_slices(std::size_t total,
                                             std::size_t per);
  std::vector<BatchSlice> prefill_;
  std::vector<BatchSlice> decode_;
  mutable std::mutex mutex_;
  std::size_t outstanding_ = 0;
};

}  // namespace llmpq
