#include "runtime/transformer.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "quant/qgemm.hpp"

namespace llmpq {

namespace {

void apply_norm(const ModelSpec& spec, Tensor2D& x,
                std::span<const float> gamma, std::span<const float> beta) {
  if (spec.use_rms_norm)
    rms_norm(x, gamma);
  else
    layer_norm(x, gamma, beta);
}

float silu(float v) { return v / (1.0f + std::exp(-v)); }

/// Per-thread memo of the inverse-frequency table: the head dimension is
/// constant per model, so after the first layer pass this is a branch and
/// a pointer read instead of dh/2 calls to std::pow per (token, head) —
/// the seed recomputed the pow for every rotated pair, which dominated
/// RoPE models' attention prologue.
const std::vector<float>& rope_inv_freq_cache(std::size_t dh) {
  thread_local std::size_t cached_dh = 0;
  thread_local std::vector<float> table;
  if (cached_dh != dh) {
    table = rope_inv_freqs(dh);
    cached_dh = dh;
  }
  return table;
}

}  // namespace

std::vector<float> rope_inv_freqs(std::size_t dh) {
  const std::size_t half = dh / 2;
  std::vector<float> table(half);
  for (std::size_t i = 0; i < half; ++i)
    table[i] = std::pow(10000.0f, -2.0f * static_cast<float>(i) /
                                      static_cast<float>(dh));
  return table;
}

void apply_rope(float* v, std::size_t dh, std::size_t pos,
                const float* inv_freq) {
  const std::size_t half = dh / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const float angle = static_cast<float>(pos) * inv_freq[i];
    const float c = std::cos(angle), sn = std::sin(angle);
    const float a = v[i], b = v[i + half];
    v[i] = a * c - b * sn;
    v[i + half] = a * sn + b * c;
  }
}

/// Shared layer body for the uniform (KvCache, [batch, max_seq] slots) and
/// ragged (KvCacheManager, per-sequence page tables) paths. `Cache` only
/// needs filled/append/k_at/v_at; per-sequence K/V pointers are gathered
/// once per sequence so the per-head inner loops cost the same for both
/// backends (the paged lookup is a map find, not pointer arithmetic).
template <typename Cache>
void layer_forward_core(const ModelSpec& spec, const LayerWeights& w,
                        Tensor2D& x, Cache& cache,
                        std::span<const SeqSpan> spans,
                        ActivationObserver* observer, int layer_index,
                        StageMetrics* metrics) {
  // Times one qgemm call (or the attention block) into `metrics`; a null
  // metrics pointer compiles down to the plain call.
  StopwatchNs sw;
  auto timed_qgemm = [&](std::span<const float> in, std::size_t m,
                         std::size_t k, const QuantizedMatrix& qw,
                         std::span<const float> bias, std::span<float> out) {
    TRACE_SPAN1("engine", "qgemm", "n", qw.rows());
    if (metrics == nullptr) {
      qgemm(in, m, k, qw, bias, out);
      return;
    }
    sw.restart();
    qgemm(in, m, k, qw, bias, out);
    metrics->add_qgemm_ns(sw.elapsed_ns());
  };

  const std::size_t h = static_cast<std::size_t>(spec.hidden);
  const std::size_t heads = static_cast<std::size_t>(spec.heads);
  const std::size_t dh = h / heads;
  const std::size_t f = static_cast<std::size_t>(spec.ffn);
  std::size_t rows = 0;
  for (const SeqSpan& sp : spans) rows += sp.len;
  check_arg(x.rows() == rows && x.cols() == h,
            "decoder_layer_forward: activation shape mismatch");

  // ---- Self-attention (pre-LN).
  Tensor2D normed = x;
  apply_norm(spec, normed, w.ln1_gamma, w.ln1_beta);
  if (observer != nullptr)
    observer->on_linear_input(layer_index, 0, normed.flat());
  Tensor2D qkv(rows, 3 * h);
  timed_qgemm(normed.flat(), rows, h, w.qkv, w.qkv_bias, qkv.flat());

  // Append K/V to the cache, then attend over everything cached. Each
  // sequence attends only over its own filled positions — a ragged batch
  // has no pad rows, so there is nothing wrong to attend to.
  std::optional<TraceSpan> attn_span;
  attn_span.emplace("engine", "attn", "rows", static_cast<double>(rows));
  if (metrics != nullptr) sw.restart();
  Tensor2D attn_ctx(rows, h, 0.0f);
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));
  std::vector<float> scores;
  std::vector<const float*> k_rows, v_rows;
  std::size_t row_base = 0;
  for (const SeqSpan& sp : spans) {
    const auto sid = sp.seq;
    for (std::size_t t = 0; t < sp.len; ++t) {
      float* qkv_row = qkv.row(row_base + t);
      if (spec.use_rope) {
        const std::size_t pos = cache.filled(sid);  // this token's position
        const float* inv_freq = rope_inv_freq_cache(dh).data();
        for (std::size_t head = 0; head < heads; ++head) {
          apply_rope(qkv_row + head * dh, dh, pos, inv_freq);      // q
          apply_rope(qkv_row + h + head * dh, dh, pos, inv_freq);  // k
        }
      }
      cache.append(sid, qkv_row + h, qkv_row + 2 * h);
    }
    const std::size_t ctx_len = cache.filled(sid);
    k_rows.resize(ctx_len);
    v_rows.resize(ctx_len);
    for (std::size_t p = 0; p < ctx_len; ++p) {
      k_rows[p] = cache.k_at(sid, p);
      v_rows[p] = cache.v_at(sid, p);
    }
    for (std::size_t t = 0; t < sp.len; ++t) {
      const std::size_t row = row_base + t;
      const float* q = qkv.row(row);
      // Causal span: this token may attend to cache positions
      // [0, ctx_len - sp.len + t].
      const std::size_t span = ctx_len - sp.len + t + 1;
      scores.resize(span);
      float* ctx_out = attn_ctx.row(row);
      for (std::size_t head = 0; head < heads; ++head) {
        const std::size_t off = head * dh;
        for (std::size_t p = 0; p < span; ++p) {
          const float* k = k_rows[p] + off;
          float dot = 0.0f;
          for (std::size_t d = 0; d < dh; ++d) dot += q[off + d] * k[d];
          scores[p] = dot * inv_sqrt_dh;
        }
        softmax(std::span<float>(scores.data(), span));
        for (std::size_t p = 0; p < span; ++p) {
          const float* v = v_rows[p] + off;
          const float sp_w = scores[p];
          for (std::size_t d = 0; d < dh; ++d) ctx_out[off + d] += sp_w * v[d];
        }
      }
    }
    row_base += sp.len;
  }

  if (metrics != nullptr) metrics->add_attn_ns(sw.elapsed_ns());
  attn_span.reset();

  if (observer != nullptr)
    observer->on_linear_input(layer_index, 1, attn_ctx.flat());
  Tensor2D attn_out(rows, h);
  timed_qgemm(attn_ctx.flat(), rows, h, w.out, w.out_bias, attn_out.flat());
  for (std::size_t r = 0; r < rows; ++r) {
    float* xr = x.row(r);
    const float* ar = attn_out.row(r);
    for (std::size_t c = 0; c < h; ++c) xr[c] += ar[c];
  }

  // ---- MLP (pre-LN).
  normed = x;
  apply_norm(spec, normed, w.ln2_gamma, w.ln2_beta);
  if (observer != nullptr)
    observer->on_linear_input(layer_index, 2, normed.flat());
  Tensor2D inter(rows, f);
  timed_qgemm(normed.flat(), rows, h, w.fc1, w.fc1_bias, inter.flat());
  if (spec.gated_mlp) {
    // SwiGLU: down(silu(gate(x)) * up(x)).
    Tensor2D up(rows, f);
    timed_qgemm(normed.flat(), rows, h, w.fc3, w.fc3_bias, up.flat());
    auto gate = inter.flat();
    auto up_flat = up.flat();
    for (std::size_t i = 0; i < gate.size(); ++i)
      gate[i] = silu(gate[i]) * up_flat[i];
  } else {
    relu(inter.flat());
  }
  if (observer != nullptr)
    observer->on_linear_input(layer_index, 3, inter.flat());
  Tensor2D mlp_out(rows, h);
  timed_qgemm(inter.flat(), rows, f, w.fc2, w.fc2_bias, mlp_out.flat());
  for (std::size_t r = 0; r < rows; ++r) {
    float* xr = x.row(r);
    const float* mr = mlp_out.row(r);
    for (std::size_t c = 0; c < h; ++c) xr[c] += mr[c];
  }
}

/// Uniform spans for the legacy [batch_start, seqs, seq_len] calling
/// convention: sequence s maps to cache slot batch_start + s.
std::vector<SeqSpan> uniform_spans(std::size_t batch_start, std::size_t seqs,
                                   std::size_t seq_len) {
  std::vector<SeqSpan> spans(seqs);
  for (std::size_t s = 0; s < seqs; ++s)
    spans[s] = SeqSpan{static_cast<int>(batch_start + s), seq_len};
  return spans;
}

void decoder_layer_forward(const ModelSpec& spec, const LayerWeights& w,
                           Tensor2D& x, KvCache& cache,
                           std::size_t batch_start, std::size_t seqs,
                           std::size_t seq_len, ActivationObserver* observer,
                           int layer_index, StageMetrics* metrics) {
  const std::vector<SeqSpan> spans =
      uniform_spans(batch_start, seqs, seq_len);
  layer_forward_core(spec, w, x, cache, spans, observer, layer_index,
                     metrics);
}

void decoder_layer_forward(const ModelSpec& spec, const LayerWeights& w,
                           Tensor2D& x, KvCacheManager& cache,
                           std::span<const SeqSpan> spans,
                           ActivationObserver* observer, int layer_index,
                           StageMetrics* metrics) {
  layer_forward_core(spec, w, x, cache, spans, observer, layer_index,
                     metrics);
}

Tensor2D embed(const ModelWeights& mw, const std::vector<TokenId>& tokens,
               std::span<const SeqSpan> spans,
               std::span<const std::size_t> pos_offsets) {
  const std::size_t h = static_cast<std::size_t>(mw.spec.hidden);
  check_arg(spans.size() == pos_offsets.size(),
            "embed: spans/pos_offsets size mismatch");
  std::size_t rows = 0;
  for (const SeqSpan& sp : spans) rows += sp.len;
  check_arg(tokens.size() == rows, "embed: token count mismatch");
  Tensor2D x(rows, h);
  std::size_t row = 0;
  for (std::size_t s = 0; s < spans.size(); ++s) {
    for (std::size_t t = 0; t < spans[s].len; ++t, ++row) {
      const TokenId tok = tokens[row];
      check_arg(tok >= 0 && tok < mw.spec.vocab, "embed: token out of range");
      const std::size_t pos = pos_offsets[s] + t;
      check_arg(pos < static_cast<std::size_t>(mw.spec.max_pos),
                "embed: position out of range");
      const float* te =
          mw.token_embedding.data() + static_cast<std::size_t>(tok) * h;
      float* out = x.row(row);
      if (mw.spec.use_rope) {
        // Rotary models carry position inside attention, not the embedding.
        for (std::size_t c = 0; c < h; ++c) out[c] = te[c];
      } else {
        const float* pe = mw.pos_embedding.data() + pos * h;
        for (std::size_t c = 0; c < h; ++c) out[c] = te[c] + pe[c];
      }
    }
  }
  return x;
}

Tensor2D embed(const ModelWeights& mw, const std::vector<TokenId>& tokens,
               std::size_t seqs, std::size_t seq_len,
               std::size_t pos_offset) {
  const std::vector<SeqSpan> spans = uniform_spans(0, seqs, seq_len);
  const std::vector<std::size_t> offsets(seqs, pos_offset);
  return embed(mw, tokens, spans, offsets);
}

std::vector<TokenId> project_and_sample(const ModelWeights& mw,
                                        const Tensor2D& hidden,
                                        std::span<const SeqSpan> spans) {
  const std::size_t h = static_cast<std::size_t>(mw.spec.hidden);
  const std::size_t vocab = static_cast<std::size_t>(mw.spec.vocab);
  const std::size_t seqs = spans.size();
  std::vector<TokenId> out(seqs);
  // Final norm applied to a copy of each span's last row only.
  Tensor2D last(seqs, h);
  std::size_t row_base = 0;
  for (std::size_t s = 0; s < seqs; ++s) {
    check_arg(spans[s].len >= 1, "project_and_sample: empty span");
    const float* src = hidden.row(row_base + spans[s].len - 1);
    std::copy(src, src + h, last.row(s));
    row_base += spans[s].len;
  }
  if (mw.spec.use_rms_norm)
    rms_norm(last, mw.final_gamma);
  else
    layer_norm(last, mw.final_gamma, mw.final_beta);
  for (std::size_t s = 0; s < seqs; ++s) {
    const float* v = last.row(s);
    std::size_t best = 0;
    float best_logit = -1e30f;
    for (std::size_t tok = 0; tok < vocab; ++tok) {
      const float* te = mw.token_embedding.data() + tok * h;
      float logit = 0.0f;
      for (std::size_t c = 0; c < h; ++c) logit += v[c] * te[c];
      if (logit > best_logit) {
        best_logit = logit;
        best = tok;
      }
    }
    out[s] = static_cast<TokenId>(best);
  }
  return out;
}

std::vector<TokenId> project_and_sample(const ModelWeights& mw,
                                        const Tensor2D& hidden,
                                        std::size_t seqs,
                                        std::size_t seq_len) {
  return project_and_sample(mw, hidden, uniform_spans(0, seqs, seq_len));
}

std::vector<std::vector<TokenId>> reference_generate(
    const ModelWeights& mw, const std::vector<std::vector<TokenId>>& prompts,
    int gen_tokens) {
  check_arg(!prompts.empty() && gen_tokens >= 1,
            "reference_generate: bad arguments");
  const std::size_t batch = prompts.size();
  const std::size_t prompt_len = prompts.front().size();
  for (const auto& p : prompts)
    check_arg(p.size() == prompt_len,
              "reference_generate: prompts must be padded to equal length");
  const std::size_t max_seq =
      prompt_len + static_cast<std::size_t>(gen_tokens);

  std::vector<KvCache> caches;
  caches.reserve(mw.layers.size());
  for (std::size_t i = 0; i < mw.layers.size(); ++i)
    caches.emplace_back(batch, max_seq,
                        static_cast<std::size_t>(mw.spec.hidden));

  std::vector<std::vector<TokenId>> generated(batch);

  // ---- Prefill.
  std::vector<TokenId> flat;
  flat.reserve(batch * prompt_len);
  for (const auto& p : prompts) flat.insert(flat.end(), p.begin(), p.end());
  Tensor2D x = embed(mw, flat, batch, prompt_len, 0);
  for (std::size_t i = 0; i < mw.layers.size(); ++i)
    decoder_layer_forward(mw.spec, mw.layers[i], x, caches[i], 0, batch,
                          prompt_len);
  std::vector<TokenId> next = project_and_sample(mw, x, batch, prompt_len);
  for (std::size_t b = 0; b < batch; ++b) generated[b].push_back(next[b]);

  // ---- Decode.
  for (int step = 1; step < gen_tokens; ++step) {
    Tensor2D xd =
        embed(mw, next, batch, 1, prompt_len + static_cast<std::size_t>(step) - 1);
    for (std::size_t i = 0; i < mw.layers.size(); ++i)
      decoder_layer_forward(mw.spec, mw.layers[i], xd, caches[i], 0, batch, 1);
    next = project_and_sample(mw, xd, batch, 1);
    for (std::size_t b = 0; b < batch; ++b) generated[b].push_back(next[b]);
  }
  return generated;
}

}  // namespace llmpq
