#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "model/model_spec.hpp"
#include "quant/quantize.hpp"

namespace llmpq {

/// Weights of one decoder layer. Linear weights are stored through the
/// quantization layer (16 bits = float pass-through), biases and layer
/// norm parameters stay in float — mirroring weight-only LLM quantization.
struct LayerWeights {
  int bits = 16;
  QuantFormat format = QuantFormat::kPerChannel;
  QuantizedMatrix qkv;  ///< [3h x h]
  QuantizedMatrix out;  ///< [h x h]
  QuantizedMatrix fc1;  ///< [ffn x h]  (the *gate* projection when gated)
  QuantizedMatrix fc2;  ///< [h x ffn]  (the *down* projection when gated)
  QuantizedMatrix fc3;  ///< [ffn x h]  *up* projection, gated MLPs only
  std::vector<float> qkv_bias, out_bias, fc1_bias, fc2_bias, fc3_bias;
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;

  std::size_t footprint_bytes() const;
};

/// Full-model weights: embeddings (FP16-equivalent, stored float) + layers.
struct ModelWeights {
  ModelSpec spec;
  std::vector<float> token_embedding;  ///< [vocab x h]
  std::vector<float> pos_embedding;    ///< [max_pos x h]
  std::vector<float> final_gamma, final_beta;
  std::vector<LayerWeights> layers;
};

/// The float master copy of one layer (pre-quantization). Kept separate so
/// the on-the-fly quantizer can requantize a layer at a different width
/// without reloading.
struct LayerMaster {
  std::vector<float> qkv, out, fc1, fc2, fc3;
  std::vector<float> qkv_bias, out_bias, fc1_bias, fc2_bias, fc3_bias;
  std::vector<float> ln1_gamma, ln1_beta, ln2_gamma, ln2_beta;
};

/// Deterministic random master weights for a spec (the checkpoint stand-in).
LayerMaster random_layer_master(const ModelSpec& spec, int layer, Rng& rng);

/// Quantizes a master layer at `bits` in `format` (ignored at 16 bits).
LayerWeights quantize_layer(const ModelSpec& spec, const LayerMaster& master,
                            int bits, Rounding mode, Rng& rng,
                            QuantFormat format = QuantFormat::kPerChannel);

/// Builds a complete model with random weights, quantized per
/// `bits_per_layer` (size = spec.layers) in `format`. The master RNG
/// stream is format-independent, so two builds with the same seed hold
/// the same underlying weights requantized — what the serve degrade
/// ladder relies on when it sheds group metadata under memory pressure.
ModelWeights build_random_model(const ModelSpec& spec,
                                const std::vector<int>& bits_per_layer,
                                std::uint64_t seed,
                                QuantFormat format = QuantFormat::kPerChannel);

}  // namespace llmpq
