#include "runtime/weights_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace llmpq {

namespace {

constexpr char kMagic[4] = {'L', 'P', 'Q', 'W'};
constexpr std::uint32_t kVersion = 1;

void write_array(std::ofstream& out, const std::string& name,
                 const std::vector<float>& data) {
  const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(name.data(), name_len);
  const std::uint64_t count = data.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
}

std::pair<std::string, std::vector<float>> read_array(std::ifstream& in) {
  std::uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  check_arg(in.good() && name_len < 256, "shard: corrupt array header");
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  check_arg(in.good() && count < (1ull << 32), "shard: corrupt array size");
  std::vector<float> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  check_arg(in.good(), "shard: truncated array data");
  return {std::move(name), std::move(data)};
}

}  // namespace

std::string shard_filename(const std::string& dir, int layer) {
  return dir + "/layer_" + std::to_string(layer) + ".lpqw";
}

void save_layer_shard(const std::string& path, const ModelSpec& spec,
                      int layer, const LayerMaster& master) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  check_arg(out.good(), "save_layer_shard: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const std::uint32_t layer_u = static_cast<std::uint32_t>(layer);
  out.write(reinterpret_cast<const char*>(&layer_u), sizeof(layer_u));
  write_array(out, "qkv", master.qkv);
  write_array(out, "qkv_bias", master.qkv_bias);
  write_array(out, "out", master.out);
  write_array(out, "out_bias", master.out_bias);
  write_array(out, "fc1", master.fc1);
  write_array(out, "fc1_bias", master.fc1_bias);
  write_array(out, "fc2", master.fc2);
  write_array(out, "fc2_bias", master.fc2_bias);
  if (spec.gated_mlp) {
    write_array(out, "fc3", master.fc3);
    write_array(out, "fc3_bias", master.fc3_bias);
  }
  write_array(out, "ln1_gamma", master.ln1_gamma);
  write_array(out, "ln1_beta", master.ln1_beta);
  write_array(out, "ln2_gamma", master.ln2_gamma);
  write_array(out, "ln2_beta", master.ln2_beta);
  check_arg(out.good(), "save_layer_shard: write failure to " + path);
}

LayerMaster load_layer_shard(const std::string& path, const ModelSpec& spec,
                             int layer) {
  std::ifstream in(path, std::ios::binary);
  check_arg(in.good(), "load_layer_shard: cannot open " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  check_arg(in.good() && std::memcmp(magic, kMagic, 4) == 0,
            "load_layer_shard: bad magic in " + path);
  std::uint32_t version = 0, layer_u = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&layer_u), sizeof(layer_u));
  check_arg(version == kVersion, "load_layer_shard: unsupported version");
  check_arg(layer_u == static_cast<std::uint32_t>(layer),
            "load_layer_shard: layer index mismatch");

  LayerMaster m;
  const auto h = static_cast<std::size_t>(spec.hidden);
  const auto f = static_cast<std::size_t>(spec.ffn);
  auto expect = [&](const char* name, std::vector<float>& dst,
                    std::size_t size) {
    auto [got_name, data] = read_array(in);
    check_arg(got_name == name, "load_layer_shard: expected array " +
                                    std::string(name) + ", got " + got_name);
    check_arg(data.size() == size,
              "load_layer_shard: size mismatch for " + got_name);
    dst = std::move(data);
  };
  expect("qkv", m.qkv, 3 * h * h);
  expect("qkv_bias", m.qkv_bias, 3 * h);
  expect("out", m.out, h * h);
  expect("out_bias", m.out_bias, h);
  expect("fc1", m.fc1, f * h);
  expect("fc1_bias", m.fc1_bias, f);
  expect("fc2", m.fc2, h * f);
  expect("fc2_bias", m.fc2_bias, h);
  if (spec.gated_mlp) {
    expect("fc3", m.fc3, f * h);
    expect("fc3_bias", m.fc3_bias, f);
  }
  expect("ln1_gamma", m.ln1_gamma, h);
  expect("ln1_beta", m.ln1_beta, h);
  expect("ln2_gamma", m.ln2_gamma, h);
  expect("ln2_beta", m.ln2_beta, h);
  return m;
}

std::size_t write_random_checkpoint(const std::string& dir,
                                    const ModelSpec& spec,
                                    std::uint64_t seed) {
  Rng rng(seed);
  // Burn the embedding draws so layer masters land at the same RNG offsets
  // as build_random_model(seed) — checkpoints and directly-built models
  // must agree bit-for-bit.
  const std::size_t embed_draws =
      static_cast<std::size_t>(spec.vocab + spec.max_pos) *
      static_cast<std::size_t>(spec.hidden);
  for (std::size_t i = 0; i < embed_draws; ++i) (void)rng.normal();
  std::size_t total = 0;
  for (int layer = 0; layer < spec.layers; ++layer) {
    const LayerMaster master = random_layer_master(spec, layer, rng);
    const std::string path = shard_filename(dir, layer);
    save_layer_shard(path, spec, layer, master);
    total += (master.qkv.size() + master.out.size() + master.fc1.size() +
              master.fc2.size()) *
             sizeof(float);
  }
  return total;
}

}  // namespace llmpq
