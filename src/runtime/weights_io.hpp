#pragma once

#include <string>

#include "runtime/weights.hpp"

namespace llmpq {

/// Module-level checkpoint layout (paper Sec. 5, "On-The-Fly Quantizer"):
/// the integrated model weight is decoupled into per-layer shard files so a
/// worker can stream, quantize and discard one module at a time instead of
/// staging the whole FP16 model in DRAM.
///
/// File format (little-endian): magic "LPQW", u32 version, u32 layer index,
/// then for each named array: u32 name length, name bytes, u64 element
/// count, float data.

/// Writes one layer's master weights to `path`.
void save_layer_shard(const std::string& path, const ModelSpec& spec,
                      int layer, const LayerMaster& master);

/// Reads a layer shard; validates magic/shape against `spec`.
LayerMaster load_layer_shard(const std::string& path, const ModelSpec& spec,
                             int layer);

/// Conventional shard filename inside a checkpoint directory.
std::string shard_filename(const std::string& dir, int layer);

/// Writes all layer shards of a randomly initialized model (the checkpoint
/// stand-in used by tests and examples). Returns the number of bytes
/// written.
std::size_t write_random_checkpoint(const std::string& dir,
                                    const ModelSpec& spec,
                                    std::uint64_t seed);

}  // namespace llmpq
