#include "runtime/weights.hpp"

#include <cmath>

#include "common/error.hpp"

namespace llmpq {

std::size_t LayerWeights::footprint_bytes() const {
  std::size_t total = qkv.packed_bytes() + out.packed_bytes() +
                      fc1.packed_bytes() + fc2.packed_bytes() +
                      fc3.packed_bytes();
  total += (qkv_bias.size() + out_bias.size() + fc1_bias.size() +
            fc2_bias.size() + fc3_bias.size() + ln1_gamma.size() +
            ln1_beta.size() + ln2_gamma.size() + ln2_beta.size()) *
           sizeof(float);
  return total;
}

namespace {

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 float scale, Rng& rng) {
  std::vector<float> w(rows * cols);
  for (float& v : w) v = scale * static_cast<float>(rng.normal());
  return w;
}

std::vector<float> ones(std::size_t n) { return std::vector<float>(n, 1.0f); }
std::vector<float> zeros(std::size_t n) { return std::vector<float>(n, 0.0f); }

}  // namespace

LayerMaster random_layer_master(const ModelSpec& spec, int layer, Rng& rng) {
  (void)layer;
  const auto h = static_cast<std::size_t>(spec.hidden);
  const auto f = static_cast<std::size_t>(spec.ffn);
  const float scale = 1.0f / std::sqrt(static_cast<float>(spec.hidden));
  LayerMaster m;
  m.qkv = random_matrix(3 * h, h, scale, rng);
  m.out = random_matrix(h, h, scale, rng);
  m.fc1 = random_matrix(f, h, scale, rng);
  m.fc2 = random_matrix(h, f, scale, rng);
  if (spec.gated_mlp) m.fc3 = random_matrix(f, h, scale, rng);
  m.qkv_bias = zeros(3 * h);
  m.out_bias = zeros(h);
  m.fc1_bias = zeros(f);
  m.fc2_bias = zeros(h);
  if (spec.gated_mlp) m.fc3_bias = zeros(f);
  m.ln1_gamma = ones(h);
  m.ln1_beta = zeros(h);
  m.ln2_gamma = ones(h);
  m.ln2_beta = zeros(h);
  return m;
}

LayerWeights quantize_layer(const ModelSpec& spec, const LayerMaster& master,
                            int bits, Rounding mode, Rng& rng,
                            QuantFormat format) {
  const auto h = static_cast<std::size_t>(spec.hidden);
  const auto f = static_cast<std::size_t>(spec.ffn);
  LayerWeights w;
  w.bits = bits;
  w.format = bits == 16 ? QuantFormat::kPerChannel : format;
  w.qkv =
      QuantizedMatrix::quantize(master.qkv, 3 * h, h, bits, mode, rng, format);
  w.out =
      QuantizedMatrix::quantize(master.out, h, h, bits, mode, rng, format);
  w.fc1 =
      QuantizedMatrix::quantize(master.fc1, f, h, bits, mode, rng, format);
  w.fc2 =
      QuantizedMatrix::quantize(master.fc2, h, f, bits, mode, rng, format);
  if (spec.gated_mlp)
    w.fc3 =
        QuantizedMatrix::quantize(master.fc3, f, h, bits, mode, rng, format);
  w.qkv_bias = master.qkv_bias;
  w.out_bias = master.out_bias;
  w.fc1_bias = master.fc1_bias;
  w.fc2_bias = master.fc2_bias;
  w.fc3_bias = master.fc3_bias;
  w.ln1_gamma = master.ln1_gamma;
  w.ln1_beta = master.ln1_beta;
  w.ln2_gamma = master.ln2_gamma;
  w.ln2_beta = master.ln2_beta;
  return w;
}

ModelWeights build_random_model(const ModelSpec& spec,
                                const std::vector<int>& bits_per_layer,
                                std::uint64_t seed, QuantFormat format) {
  check_arg(static_cast<int>(bits_per_layer.size()) == spec.layers,
            "build_random_model: bits size mismatch");
  Rng rng(seed);
  ModelWeights mw;
  mw.spec = spec;
  const auto h = static_cast<std::size_t>(spec.hidden);
  const float scale = 1.0f / std::sqrt(static_cast<float>(spec.hidden));
  mw.token_embedding =
      random_matrix(static_cast<std::size_t>(spec.vocab), h, scale, rng);
  mw.pos_embedding =
      random_matrix(static_cast<std::size_t>(spec.max_pos), h, scale, rng);
  mw.final_gamma = ones(h);
  mw.final_beta = zeros(h);
  for (int i = 0; i < spec.layers; ++i) {
    const LayerMaster master = random_layer_master(spec, i, rng);
    // Quantization rounding shares the master RNG stream: deterministic.
    mw.layers.push_back(quantize_layer(
        spec, master, bits_per_layer[static_cast<std::size_t>(i)],
        Rounding::kDeterministic, rng, format));
  }
  return mw;
}

}  // namespace llmpq
