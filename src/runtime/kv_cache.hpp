#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace llmpq {

/// Pre-allocated key/value cache for one decoder layer: [batch, max_seq,
/// hidden] for K and V each, written once per generated position and read
/// by every subsequent attention call — the paper's FasterTransformer-style
/// reservation (Sec. 4.1, "KV Storage Modeling").
class KvCache {
 public:
  KvCache() = default;
  KvCache(std::size_t batch, std::size_t max_seq, std::size_t hidden)
      : batch_(batch),
        max_seq_(max_seq),
        hidden_(hidden),
        k_(batch * max_seq * hidden, 0.0f),
        v_(batch * max_seq * hidden, 0.0f),
        filled_(batch, 0) {}

  std::size_t batch() const { return batch_; }
  std::size_t max_seq() const { return max_seq_; }
  std::size_t hidden() const { return hidden_; }

  /// Number of positions stored for sequence `b`.
  std::size_t filled(std::size_t b) const {
    check_arg(b < batch_, "KvCache::filled: sequence id out of range");
    return filled_[b];
  }

  /// Forgets every cached position while keeping the allocation — lets a
  /// persistent engine reuse its K/V buffers across generate() calls.
  void reset() { std::fill(filled_.begin(), filled_.end(), 0); }

  /// Appends one position's K/V vectors for sequence `b`.
  void append(std::size_t b, const float* k_vec, const float* v_vec) {
    check_arg(b < batch_, "KvCache::append: sequence id out of range");
    check_arg(filled_[b] < max_seq_, "KvCache: overflow");
    const std::size_t off = (b * max_seq_ + filled_[b]) * hidden_;
    std::copy(k_vec, k_vec + hidden_, k_.begin() + static_cast<std::ptrdiff_t>(off));
    std::copy(v_vec, v_vec + hidden_, v_.begin() + static_cast<std::ptrdiff_t>(off));
    ++filled_[b];
  }

  /// K/V vector of sequence `b` at position `pos`. Only written positions
  /// are readable (`pos < filled(b)`): an out-of-range read would silently
  /// return zeros (or another sequence's entries), so it is rejected with
  /// the same check_arg contract append()/filled() follow.
  const float* k_at(std::size_t b, std::size_t pos) const {
    check_arg(b < batch_, "KvCache::k_at: sequence id out of range");
    check_arg(pos < filled_[b], "KvCache::k_at: position not filled");
    return k_.data() + (b * max_seq_ + pos) * hidden_;
  }
  const float* v_at(std::size_t b, std::size_t pos) const {
    check_arg(b < batch_, "KvCache::v_at: sequence id out of range");
    check_arg(pos < filled_[b], "KvCache::v_at: position not filled");
    return v_.data() + (b * max_seq_ + pos) * hidden_;
  }

  std::size_t footprint_bytes() const {
    return (k_.size() + v_.size()) * sizeof(float);
  }

 private:
  std::size_t batch_ = 0, max_seq_ = 0, hidden_ = 0;
  std::vector<float> k_, v_;
  std::vector<std::size_t> filled_;
};

}  // namespace llmpq
