#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/kv_cache.hpp"
#include "runtime/kv_cache_manager.hpp"
#include "runtime/tensor.hpp"
#include "runtime/weights.hpp"

namespace llmpq {

using TokenId = std::int32_t;

/// One sequence's share of a ragged batch: `len` new token rows for cache
/// sequence `seq`. A ragged pass concatenates spans sequence-major with no
/// padding at all, so every row is a real token — per-sequence math is
/// bit-identical to running that sequence unbatched (row-wise norms,
/// row-independent GEMMs, per-sequence attention).
struct SeqSpan {
  int seq = 0;          ///< cache sequence id
  std::size_t len = 0;  ///< token rows this pass contributes for `seq`
};

/// Observer for the inputs of a decoder layer's linear operators (op index:
/// 0 = qkv, 1 = out, 2 = fc1, 3 = fc2). Used by the calibration runner to
/// gather real activation statistics; a null observer costs nothing.
class ActivationObserver {
 public:
  virtual ~ActivationObserver() = default;
  virtual void on_linear_input(int layer, int op,
                               std::span<const float> x) = 0;
};

/// Runs one decoder layer over a batch slice. `x` holds `seqs * seq_len`
/// token rows (sequence-major). For each sequence s (global index
/// `batch_start + s`), the new K/V entries are appended to `cache`, and
/// attention spans everything cached so far (causal by construction).
/// A non-null `metrics` receives the layer's qgemm/attention time split
/// (the per-stage instrumentation behind PipelineEngine::stats()); a null
/// pointer costs nothing.
void decoder_layer_forward(const ModelSpec& spec, const LayerWeights& w,
                           Tensor2D& x, KvCache& cache,
                           std::size_t batch_start, std::size_t seqs,
                           std::size_t seq_len,
                           ActivationObserver* observer = nullptr,
                           int layer_index = -1,
                           StageMetrics* metrics = nullptr);

/// Ragged-batch layer forward over a paged cache: `x` holds the spans'
/// rows concatenated sequence-major (sum of span lens), each span appends
/// its K/V to its own sequence and attends only over that sequence's
/// filled positions — there is no padding to mask, which is what makes
/// mixed-length batches exact (the fidelity bug the step-level session API
/// fixes). Every span's positions must be reserve()d beforehand.
void decoder_layer_forward(const ModelSpec& spec, const LayerWeights& w,
                           Tensor2D& x, KvCacheManager& cache,
                           std::span<const SeqSpan> spans,
                           ActivationObserver* observer = nullptr,
                           int layer_index = -1,
                           StageMetrics* metrics = nullptr);

/// Token + positional embedding for a batch slice. `tokens` is
/// sequence-major [seqs x seq_len]; `pos_offset` is the position of the
/// first token of this pass within each sequence.
Tensor2D embed(const ModelWeights& mw, const std::vector<TokenId>& tokens,
               std::size_t seqs, std::size_t seq_len, std::size_t pos_offset);

/// Ragged embedding: `tokens` concatenates the spans' tokens
/// sequence-major; `pos_offsets[i]` is the position of span i's first
/// token within its sequence (its cache fill level).
Tensor2D embed(const ModelWeights& mw, const std::vector<TokenId>& tokens,
               std::span<const SeqSpan> spans,
               std::span<const std::size_t> pos_offsets);

/// Final layer norm + tied LM head + greedy sampling, returning one token
/// per sequence (from each sequence's last position row).
std::vector<TokenId> project_and_sample(const ModelWeights& mw,
                                        const Tensor2D& hidden,
                                        std::size_t seqs,
                                        std::size_t seq_len);

/// Ragged sampling: one token per span, from each span's last row.
std::vector<TokenId> project_and_sample(const ModelWeights& mw,
                                        const Tensor2D& hidden,
                                        std::span<const SeqSpan> spans);

/// Inverse-frequency table of rotary position embeddings for head
/// dimension `dh`: entry i = 10000^(-2i/dh), i < dh/2. Computed once per
/// thread and reused across every (token, head) rotation — the seed
/// recomputed the pow per rotated pair. Entries are bit-identical to the
/// inline expression (same float pow), so rotations are unchanged.
std::vector<float> rope_inv_freqs(std::size_t dh);

/// In-place rotary position embedding on one head-sized vector at absolute
/// position `pos`: rotate feature pairs (i, i + dh/2) by
/// pos * inv_freq[i], with `inv_freq` from rope_inv_freqs(dh).
void apply_rope(float* v, std::size_t dh, std::size_t pos,
                const float* inv_freq);

/// Single-threaded reference generation: prefill the prompts then decode
/// `gen_tokens - 1` further tokens greedily. Returns [batch x gen_tokens]
/// generated tokens (the first generated token comes from prefill).
/// This is the ground truth the pipelined engine must reproduce exactly.
std::vector<std::vector<TokenId>> reference_generate(
    const ModelWeights& mw, const std::vector<std::vector<TokenId>>& prompts,
    int gen_tokens);

}  // namespace llmpq
