#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace llmpq {

struct KvCacheManagerOptions {
  /// Tokens per KV page. Every page holds page_size K rows and page_size V
  /// rows of `hidden` floats each, so the allocation unit is
  /// 2 * page_size * hidden * sizeof(float) bytes.
  std::size_t page_size = 16;
  /// Pool cap in pages. 0 = unbounded: the pool grows on demand and
  /// reserve() never evicts (the engine's configuration — feasibility was
  /// already checked by the planner's memory model). A positive cap turns
  /// reserve() into alloc-or-evict-LRU-or-throw, the vLLM-style preemption
  /// regime the unit tests exercise.
  std::size_t max_pages = 0;
};

/// Paged key/value cache for one decoder layer: fixed-size pages owned by a
/// shared pool, mapped to sequences through per-sequence page tables —
/// replacing the monolithic [batch, max_seq, hidden] `KvCache` reservation
/// so the serving loop can admit/retire sequences of different lengths
/// without reshaping or copying anything.
///
/// Contract notes:
///   * Pages are stable in memory once allocated (unique_ptr<float[]>), so
///     k_at()/v_at() pointers stay valid across append()s to any sequence.
///   * reserve() is the only allocation choke point. Under a pool cap it
///     evicts least-recently-used unpinned sequences (firing the preempt
///     hook so the owner knows to re-prefill) and throws std::bad_alloc
///     when nothing evictable remains — the signal the serving layer's
///     degradation ladder consumes.
///   * k_at()/v_at() validate like the legacy KvCache: unknown sequence or
///     `pos >= filled()` throws InvalidArgumentError instead of reading
///     stale pool memory.
///   * truncate() rolls `filled` back without releasing pages — the
///     engine's rollback path after a failed pipeline pass, cheap to redo.
///   * Freed pages return to the pool's free list, never to the OS, so
///     footprint_bytes() is monotonic — matching how the planner's
///     `layer_kv_bytes` reserves for the peak, not the instant.
class KvCacheManager {
 public:
  KvCacheManager() = default;
  explicit KvCacheManager(std::size_t hidden,
                          const KvCacheManagerOptions& options = {});

  std::size_t hidden() const { return hidden_; }
  std::size_t page_size() const { return options_.page_size; }

  /// Creates an empty page table for `seq`. Ids are caller-chosen and
  /// single-use while the sequence lives; reusing a live id throws.
  void begin_seq(int seq);
  /// Returns every page of `seq` to the free list and forgets it. Unknown
  /// ids throw (freeing twice is a lifecycle bug worth surfacing).
  void free_seq(int seq);
  bool has_seq(int seq) const { return seqs_.count(seq) != 0; }
  std::size_t num_seqs() const { return seqs_.size(); }

  /// Ensures `seq` owns enough pages for `target_len` tokens, growing the
  /// pool (unbounded) or evicting LRU unpinned sequences (capped) as
  /// needed. Throws std::bad_alloc when the cap is reached and nothing can
  /// be evicted. Never shrinks.
  void reserve(int seq, std::size_t target_len);

  /// Pin/unpin `seq` against eviction (counted: nested pins require
  /// matching unpins). The engine pins every live session.
  void pin(int seq);
  void unpin(int seq);

  /// Number of positions stored for `seq`.
  std::size_t filled(int seq) const;

  /// Appends one position's K/V vectors (hidden() floats each). The
  /// position must already be reserve()d — append never allocates, so the
  /// hot loop cannot hit the eviction machinery mid-pass.
  void append(int seq, const float* k_vec, const float* v_vec);

  /// K/V vector of `seq` at position `pos` (`pos < filled(seq)`).
  const float* k_at(int seq, std::size_t pos) const;
  const float* v_at(int seq, std::size_t pos) const;

  /// Rolls `filled` back to `len` (<= filled), keeping the pages — the
  /// rollback primitive for a pipeline pass that died after some layers
  /// already appended.
  void truncate(int seq, std::size_t len);

  /// Voluntary eviction, the serving layer's preemption primitive: snapshots
  /// the committed length (returned, and readable via preempted_len() until
  /// the sequence regrows), returns every page to the free list, and resets
  /// `filled` to zero so the owner can re-prefill exactly. Unlike reserve()'s
  /// LRU eviction this ignores pins (the caller owns the decision) and does
  /// not fire the preempt hook (the caller already knows). Preempting a
  /// sequence that holds no pages — never filled, or already preempted —
  /// throws InvalidArgumentError: double-preempt is a scheduler bug.
  std::size_t preempt(int seq);

  /// Length snapshotted by the last preempt() of `seq`; 0 once reserve()
  /// grows the sequence again (the snapshot is consumed by re-prefill).
  std::size_t preempted_len(int seq) const;

  /// Sequences voluntarily preempted via preempt() since construction.
  std::int64_t preemptions() const { return preemptions_; }

  /// Called with the victim's id whenever reserve() evicts a sequence; the
  /// owner must re-prefill that sequence before using it again (its filled
  /// count is reset to zero, its pages are gone).
  using PreemptHook = std::function<void(int seq)>;
  void set_preempt_hook(PreemptHook hook) { preempt_ = std::move(hook); }

  /// Pages needed to hold `tokens` positions at `page_size` tokens each.
  static std::size_t pages_for(std::size_t tokens, std::size_t page_size) {
    return (tokens + page_size - 1) / page_size;
  }

  /// Pool-level bytes this layer's manager would hold with `batch`
  /// sequences reserved to `max_seq` tokens — the runtime (FP32) mirror of
  /// the planner's FP16 `layer_kv_bytes`: exactly 2x it whenever page_size
  /// divides max_seq, plus page-granularity rounding otherwise (the
  /// reconciliation test in tests/test_session.cpp pins this).
  static std::size_t planned_bytes(std::size_t batch, std::size_t max_seq,
                                   std::size_t hidden,
                                   std::size_t page_size) {
    return batch * pages_for(max_seq, page_size) * 2 * page_size * hidden *
           sizeof(float);
  }

  std::size_t pool_pages() const { return pool_.size(); }
  std::size_t free_pages() const { return free_.size(); }
  /// Bytes the pool holds (allocated pages, in use or free). Monotonic.
  std::size_t footprint_bytes() const { return pool_.size() * page_bytes(); }
  /// Bytes of pages currently mapped to sequences.
  std::size_t used_bytes() const {
    return (pool_.size() - free_.size()) * page_bytes();
  }
  /// Sequences evicted by reserve() since construction.
  std::int64_t evictions() const { return evictions_; }

 private:
  struct Seq {
    std::vector<std::size_t> pages;  ///< indices into pool_
    std::size_t filled = 0;
    std::size_t preempted_len = 0;  ///< snapshot from the last preempt()
    int pinned = 0;
    std::uint64_t last_use = 0;
  };

  std::size_t page_bytes() const {
    return 2 * options_.page_size * hidden_ * sizeof(float);
  }
  std::size_t page_floats() const { return 2 * options_.page_size * hidden_; }
  Seq& seq_at(int seq, const char* who);
  const Seq& seq_at(int seq, const char* who) const;
  const float* at(int seq, std::size_t pos, bool value, const char* who) const;
  /// Evicts the LRU unpinned sequence other than `keep`; false if none.
  bool evict_one(int keep);

  std::size_t hidden_ = 0;
  KvCacheManagerOptions options_;
  std::vector<std::unique_ptr<float[]>> pool_;  ///< stable page storage
  std::vector<std::size_t> free_;               ///< free page indices
  std::unordered_map<int, Seq> seqs_;
  PreemptHook preempt_;
  std::uint64_t tick_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t preemptions_ = 0;
};

}  // namespace llmpq
