#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/weights.hpp"

namespace llmpq {

/// On-the-fly quantized model loading (paper Sec. 5): instead of staging
/// the full FP16 checkpoint in host DRAM and quantizing afterwards, layer
/// shards are streamed with a bounded prefetch window — while layer i is
/// being quantized, layer i+1 is already loading on a background thread.
/// This bounds peak DRAM at ~`prefetch_depth` master layers and overlaps
/// disk IO with quantization, which is also what makes precision changes
/// and failure recovery cheap.
struct OtfLoadStats {
  std::size_t peak_master_bytes = 0;  ///< max simultaneously-held FP32 bytes
  std::size_t total_loaded_bytes = 0;
  double load_wall_s = 0.0;
};

struct OtfOptions {
  int prefetch_depth = 2;  ///< layers in flight (>= 1)
  Rounding rounding = Rounding::kDeterministic;
  std::uint64_t seed = 29;
  /// Storage format for the quantized layers (plan.weight_format).
  QuantFormat format = QuantFormat::kPerChannel;
};

/// Loads layers [layer_begin, layer_end) from `checkpoint_dir`, quantizing
/// layer i to `bits_per_layer[i]` (indexed globally). Only the requested
/// range is read — a pipeline stage loads just its own shard. Embeddings
/// are generated from `seed` (they are not part of the shard files).
ModelWeights otf_load_model(const std::string& checkpoint_dir,
                            const ModelSpec& spec,
                            const std::vector<int>& bits_per_layer,
                            int layer_begin, int layer_end,
                            const OtfOptions& options = {},
                            OtfLoadStats* stats = nullptr);

}  // namespace llmpq
