#include "runtime/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace llmpq {

void layer_norm(Tensor2D& x, std::span<const float> gamma,
                std::span<const float> beta, float eps) {
  check_arg(gamma.size() == x.cols() && beta.size() == x.cols(),
            "layer_norm: parameter size mismatch");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    float mean = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) mean += row[c];
    mean /= static_cast<float>(x.cols());
    float var = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const float d = row[c] - mean;
      var += d * d;
    }
    var /= static_cast<float>(x.cols());
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t c = 0; c < x.cols(); ++c)
      row[c] = (row[c] - mean) * inv * gamma[c] + beta[c];
  }
}

void rms_norm(Tensor2D& x, std::span<const float> gamma, float eps) {
  check_arg(gamma.size() == x.cols(), "rms_norm: parameter size mismatch");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    float* row = x.row(r);
    float ms = 0.0f;
    for (std::size_t c = 0; c < x.cols(); ++c) ms += row[c] * row[c];
    ms /= static_cast<float>(x.cols());
    const float inv = 1.0f / std::sqrt(ms + eps);
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] *= inv * gamma[c];
  }
}

void relu(std::span<float> x) {
  for (float& v : x) v = std::max(v, 0.0f);
}

void softmax(std::span<float> x) {
  if (x.empty()) return;
  const float mx = *std::max_element(x.begin(), x.end());
  float sum = 0.0f;
  for (float& v : x) {
    v = std::exp(v - mx);
    sum += v;
  }
  const float inv = 1.0f / sum;
  for (float& v : x) v *= inv;
}

}  // namespace llmpq
