#pragma once

#include <array>
#include <vector>

#include "quant/calibration.hpp"
#include "runtime/transformer.hpp"

namespace llmpq {

/// Real calibration path: where the paper runs 128 C4 segments through the
/// checkpoint to gather the activation statistics G(X) behind the variance
/// indicator, we run calibration prompts through the (tiny) real
/// transformer and measure the inputs of every linear operator. This
/// closes the loop between the analytic indicator (quant/indicator) and
/// actual numerics: tests verify that the *measured* indicator orders real
/// quantization damage correctly.

/// Measured input statistics of one decoder layer's four linears.
struct LayerCalibration {
  ActivationStats qkv_in;
  ActivationStats out_in;
  ActivationStats fc1_in;
  ActivationStats fc2_in;
};

/// Runs the prompts through `weights` (prefill only — calibration does not
/// generate) and collects per-layer, per-operator activation statistics.
std::vector<LayerCalibration> run_calibration(
    const ModelWeights& weights,
    const std::vector<std::vector<TokenId>>& prompts);

/// Variance-indicator values computed from *measured* quantities: actual
/// per-channel weight scales of `weights` (which must be an FP16 model) and
/// the measured activation statistics. Indexed [layer][bit_index], bit
/// order {3, 4, 8, 16}; not normalized.
std::vector<std::array<double, 4>> measured_variance_omega(
    const ModelWeights& weights, const std::vector<LayerCalibration>& calib,
    Rounding mode = Rounding::kDeterministic);

/// Mean squared difference between the final hidden states of two models
/// on the same prompts (the "real damage" a quantization plan causes).
double output_mse(const ModelWeights& a, const ModelWeights& b,
                  const std::vector<std::vector<TokenId>>& prompts);

}  // namespace llmpq
