#include "runtime/otf_quantizer.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/mpmc_queue.hpp"
#include "runtime/weights_io.hpp"

namespace llmpq {

namespace {

std::size_t master_bytes(const LayerMaster& m) {
  return (m.qkv.size() + m.out.size() + m.fc1.size() + m.fc2.size() +
          m.qkv_bias.size() + m.out_bias.size() + m.fc1_bias.size() +
          m.fc2_bias.size()) *
         sizeof(float);
}

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 float scale, Rng& rng) {
  std::vector<float> w(rows * cols);
  for (float& v : w) v = scale * static_cast<float>(rng.normal());
  return w;
}

}  // namespace

ModelWeights otf_load_model(const std::string& checkpoint_dir,
                            const ModelSpec& spec,
                            const std::vector<int>& bits_per_layer,
                            int layer_begin, int layer_end,
                            const OtfOptions& options, OtfLoadStats* stats) {
  check_arg(static_cast<int>(bits_per_layer.size()) == spec.layers,
            "otf_load_model: bits size mismatch");
  check_arg(0 <= layer_begin && layer_begin <= layer_end &&
                layer_end <= spec.layers,
            "otf_load_model: bad layer range");
  check_arg(options.prefetch_depth >= 1,
            "otf_load_model: prefetch depth must be >= 1");

  const auto start = std::chrono::steady_clock::now();

  ModelWeights mw;
  mw.spec = spec;
  // Embeddings are derived from the seed in the exact order
  // build_random_model uses, so an OTF-loaded model is bit-identical to a
  // directly built one (tests rely on this).
  Rng emb_rng(options.seed);
  const auto h = static_cast<std::size_t>(spec.hidden);
  const float scale = 1.0f / std::sqrt(static_cast<float>(spec.hidden));
  mw.token_embedding =
      random_matrix(static_cast<std::size_t>(spec.vocab), h, scale, emb_rng);
  mw.pos_embedding =
      random_matrix(static_cast<std::size_t>(spec.max_pos), h, scale, emb_rng);
  mw.final_gamma.assign(h, 1.0f);
  mw.final_beta.assign(h, 0.0f);
  mw.layers.resize(static_cast<std::size_t>(spec.layers));

  // Bounded prefetch pipeline: the IO thread stays at most `prefetch_depth`
  // layers ahead of the quantizer.
  MpmcQueue<std::pair<int, LayerMaster>> prefetched(
      static_cast<std::size_t>(options.prefetch_depth));
  std::atomic<std::size_t> in_flight_bytes{0};
  std::atomic<std::size_t> peak_bytes{0};
  std::atomic<std::size_t> total_bytes{0};

  std::thread loader([&] {
    for (int layer = layer_begin; layer < layer_end; ++layer) {
      LayerMaster m =
          load_layer_shard(shard_filename(checkpoint_dir, layer), spec, layer);
      const std::size_t bytes = master_bytes(m);
      const std::size_t now =
          in_flight_bytes.fetch_add(bytes) + bytes;
      std::size_t prev = peak_bytes.load();
      while (prev < now && !peak_bytes.compare_exchange_weak(prev, now)) {
      }
      total_bytes.fetch_add(bytes);
      if (!prefetched.push({layer, std::move(m)})) break;  // aborted
    }
    prefetched.close();
  });

  Rng qrng(options.seed ^ 0x5151);
  while (auto item = prefetched.pop()) {
    auto& [layer, master] = *item;
    mw.layers[static_cast<std::size_t>(layer)] = quantize_layer(
        spec, master, bits_per_layer[static_cast<std::size_t>(layer)],
        options.rounding, qrng, options.format);
    in_flight_bytes.fetch_sub(master_bytes(master));
  }
  loader.join();

  if (stats != nullptr) {
    stats->peak_master_bytes = peak_bytes.load();
    stats->total_loaded_bytes = total_bytes.load();
    stats->load_wall_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  }
  return mw;
}

}  // namespace llmpq
