#include "runtime/engine.hpp"

#include <thread>

#include "common/error.hpp"
#include "common/mpmc_queue.hpp"

namespace llmpq {

namespace {

struct StageMsg {
  std::size_t batch_start = 0;
  std::size_t seqs = 0;
  std::size_t seq_len = 0;
  Tensor2D acts;
};

}  // namespace

struct PipelineEngine::Impl {
  const ModelWeights& weights;
  std::vector<std::pair<int, int>> stages;  ///< non-empty ranges only
  int prefill_mb;
  int decode_mb;

  std::vector<std::unique_ptr<MpmcQueue<StageMsg>>> inboxes;
  std::unique_ptr<MpmcQueue<StageMsg>> outbox;
  std::vector<std::thread> workers;

  // Per stage, per local layer: KV caches (rebuilt each generate() call).
  std::vector<std::vector<KvCache>> caches;

  Impl(const ModelWeights& w, std::vector<std::pair<int, int>> ranges,
       int pre_mb, int dec_mb)
      : weights(w),
        prefill_mb(pre_mb),
        decode_mb(dec_mb),
        outbox(std::make_unique<MpmcQueue<StageMsg>>(64)) {
    for (const auto& r : ranges) {
      check_arg(r.first >= 0 && r.second <= w.spec.layers &&
                    r.first <= r.second,
                "PipelineEngine: bad stage range");
      if (r.first < r.second) stages.push_back(r);
    }
    check_arg(!stages.empty(), "PipelineEngine: no layers assigned");
    int covered = 0;
    for (std::size_t p = 0; p < stages.size(); ++p) {
      check_arg(stages[p].first == covered,
                "PipelineEngine: stage ranges must tile the model");
      covered = stages[p].second;
    }
    check_arg(covered == w.spec.layers,
              "PipelineEngine: stage ranges must cover the model");
    for (std::size_t p = 0; p < stages.size(); ++p)
      inboxes.push_back(std::make_unique<MpmcQueue<StageMsg>>(64));
    caches.resize(stages.size());
  }

  void start_workers() {
    for (std::size_t p = 0; p < stages.size(); ++p) {
      workers.emplace_back([this, p] { stage_loop(p); });
    }
  }

  void stop_workers() {
    for (auto& inbox : inboxes) inbox->close();
    for (auto& t : workers) t.join();
    workers.clear();
  }

  void stage_loop(std::size_t p) {
    auto& inbox = *inboxes[p];
    while (auto msg = inbox.pop()) {
      StageMsg m = std::move(*msg);
      const auto [begin, end] = stages[p];
      for (int layer = begin; layer < end; ++layer) {
        decoder_layer_forward(
            weights.spec, weights.layers[static_cast<std::size_t>(layer)],
            m.acts, caches[p][static_cast<std::size_t>(layer - begin)],
            m.batch_start, m.seqs, m.seq_len);
      }
      if (p + 1 < stages.size())
        inboxes[p + 1]->push(std::move(m));
      else
        outbox->push(std::move(m));
    }
  }
};

PipelineEngine::PipelineEngine(const ModelWeights& weights,
                               std::vector<std::pair<int, int>> stage_layers,
                               int prefill_micro_batch,
                               int decode_micro_batch)
    : impl_(std::make_unique<Impl>(weights, std::move(stage_layers),
                                   prefill_micro_batch, decode_micro_batch)) {
}

PipelineEngine::~PipelineEngine() = default;

int PipelineEngine::num_stages() const {
  return static_cast<int>(impl_->stages.size());
}

std::vector<std::vector<TokenId>> PipelineEngine::generate(
    const std::vector<std::vector<TokenId>>& prompts, int gen_tokens) {
  check_arg(!prompts.empty() && gen_tokens >= 1,
            "PipelineEngine::generate: bad arguments");
  const std::size_t batch = prompts.size();
  const std::size_t prompt_len = prompts.front().size();
  for (const auto& p : prompts)
    check_arg(p.size() == prompt_len,
              "PipelineEngine::generate: unpadded prompts");

  Impl& im = *impl_;
  const ModelWeights& mw = im.weights;
  const std::size_t max_seq = prompt_len + static_cast<std::size_t>(gen_tokens);

  // Fresh preallocated caches for this call.
  for (std::size_t p = 0; p < im.stages.size(); ++p) {
    im.caches[p].clear();
    const auto [begin, end] = im.stages[p];
    for (int layer = begin; layer < end; ++layer) {
      (void)layer;
      im.caches[p].emplace_back(batch, max_seq,
                                static_cast<std::size_t>(mw.spec.hidden));
    }
  }

  im.start_workers();

  MicrobatchManager mbm(batch, static_cast<std::size_t>(im.prefill_mb),
                        static_cast<std::size_t>(im.decode_mb));
  std::vector<std::vector<TokenId>> generated(batch);
  std::vector<TokenId> last_token(batch);

  // ---- Prefill: stream micro-batches through the pipeline.
  mbm.begin_phase(mbm.prefill_slices().size());
  for (const BatchSlice& slice : mbm.prefill_slices()) {
    std::vector<TokenId> flat;
    flat.reserve(slice.count * prompt_len);
    for (std::size_t s = 0; s < slice.count; ++s) {
      const auto& prompt = prompts[slice.start + s];
      flat.insert(flat.end(), prompt.begin(), prompt.end());
    }
    StageMsg msg;
    msg.batch_start = slice.start;
    msg.seqs = slice.count;
    msg.seq_len = prompt_len;
    msg.acts = embed(mw, flat, slice.count, prompt_len, 0);
    im.inboxes.front()->push(std::move(msg));
  }
  while (mbm.outstanding() > 0) {
    auto out = im.outbox->pop();
    check_arg(out.has_value(), "PipelineEngine: pipeline closed early");
    const std::vector<TokenId> toks =
        project_and_sample(mw, out->acts, out->seqs, out->seq_len);
    for (std::size_t s = 0; s < out->seqs; ++s) {
      generated[out->batch_start + s].push_back(toks[s]);
      last_token[out->batch_start + s] = toks[s];
    }
    mbm.complete_one();
  }

  // ---- Decode rounds with re-sized micro-batches.
  for (int step = 1; step < gen_tokens; ++step) {
    const std::size_t pos = prompt_len + static_cast<std::size_t>(step) - 1;
    mbm.begin_phase(mbm.decode_slices().size());
    for (const BatchSlice& slice : mbm.decode_slices()) {
      std::vector<TokenId> toks(last_token.begin() +
                                    static_cast<std::ptrdiff_t>(slice.start),
                                last_token.begin() +
                                    static_cast<std::ptrdiff_t>(slice.start +
                                                                slice.count));
      StageMsg msg;
      msg.batch_start = slice.start;
      msg.seqs = slice.count;
      msg.seq_len = 1;
      msg.acts = embed(mw, toks, slice.count, 1, pos);
      im.inboxes.front()->push(std::move(msg));
    }
    while (mbm.outstanding() > 0) {
      auto out = im.outbox->pop();
      check_arg(out.has_value(), "PipelineEngine: pipeline closed early");
      const std::vector<TokenId> toks =
          project_and_sample(mw, out->acts, out->seqs, out->seq_len);
      for (std::size_t s = 0; s < out->seqs; ++s) {
        generated[out->batch_start + s].push_back(toks[s]);
        last_token[out->batch_start + s] = toks[s];
      }
      mbm.complete_one();
    }
  }

  im.stop_workers();
  // Reopen mailboxes for a potential next generate() call.
  for (std::size_t p = 0; p < im.stages.size(); ++p)
    im.inboxes[p] = std::make_unique<MpmcQueue<StageMsg>>(64);
  im.outbox = std::make_unique<MpmcQueue<StageMsg>>(64);
  return generated;
}

}  // namespace llmpq
