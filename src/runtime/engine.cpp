#include "runtime/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/mpmc_queue.hpp"
#include "common/trace.hpp"
#include "runtime/kv_cache_manager.hpp"

namespace llmpq {

namespace {

using Clock = std::chrono::steady_clock;

/// One micro-batch travelling down the pipeline. `spans` names the cache
/// sequences the rows belong to (ragged: spans may have different lengths);
/// `batch_start` is the first row's index within the pass's session list,
/// which is what the master's in-flight accounting and lost-row reporting
/// key on. A message that hit an exception inside a stage carries the
/// error instead of valid activations; downstream stages forward it
/// untouched so the accounting stays exact and the pipeline never wedges.
struct StageMsg {
  std::size_t batch_start = 0;
  std::size_t seqs = 0;
  bool decode = false;  ///< decode round (one token per span)
  std::vector<SeqSpan> spans;
  Tensor2D acts;
  std::exception_ptr error;
};

Clock::time_point deadline_from(const GenerateOptions& options,
                                Clock::time_point start) {
  if (!std::isfinite(options.deadline_s)) return Clock::time_point::max();
  return start + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(
                         options.deadline_s < 0.0 ? 0.0 : options.deadline_s));
}

}  // namespace

struct PipelineEngine::Impl {
  const ModelWeights& weights;
  std::vector<std::pair<int, int>> stages;  ///< non-empty ranges only
  std::vector<std::string> stage_sites;     ///< "stage.<p>.layer" fault sites
  int prefill_mb;
  int decode_mb;

  // Mailboxes live as long as the engine; they are closed exactly once, in
  // shutdown(). Stage p owns (pops) inboxes[p]; the master owns the outbox.
  std::vector<std::unique_ptr<MpmcQueue<StageMsg>>> inboxes;
  std::unique_ptr<MpmcQueue<StageMsg>> outbox;

  // Per stage, per local layer: paged KV pools. Sequences are session ids;
  // the pool is unbounded here because plan feasibility was already gated
  // by the planner's memory model — eviction/preemption is exercised at
  // the KvCacheManager level (capped pools) by its unit suite.
  std::vector<std::vector<KvCacheManager>> kv;

  /// Master-side session table. `tokens` is prompt + committed sampled
  /// tokens; `committed` counts KV positions present in every manager.
  /// Invariant after a successful prefill/decode pass:
  /// tokens.size() == committed + 1 (the last token is sampled but not yet
  /// fed back).
  struct Session {
    std::vector<TokenId> tokens;
    std::size_t committed = 0;
  };
  std::unordered_map<int, Session> sessions;
  int next_session = 1;

  // KV mutations that must wait for restart(): while the engine is broken,
  // stranded workers may still be touching the caches, so truncation
  // (rollback of a half-appended pass) and page frees are queued here and
  // applied after the workers are joined.
  std::vector<std::pair<int, std::size_t>> deferred_truncate;
  std::vector<int> deferred_free;

  // Observability (written by workers, read by stats()).
  std::vector<std::unique_ptr<StageMetrics>> stage_metrics;
  PhaseMetrics prefill_metrics;
  PhaseMetrics decode_metrics;
  std::atomic<std::uint64_t> generate_calls{0};

  // Workers are started last in the constructor and joined in shutdown();
  // the Impl destructor is the RAII joiner, so no exception path can leak a
  // running std::thread (whose destructor would std::terminate).
  std::vector<std::thread> workers;

  // Broken = an abort (deadline/cancel) or failed drain left micro-batches
  // stranded inside the pipeline; every generate() is rejected until
  // restart() rebuilds the workers and mailboxes. `failure` describes the
  // most recent failed call for callers that re-enqueue lost work.
  std::atomic<bool> broken{false};
  mutable std::mutex failure_mu;
  EngineFailureInfo failure;

  Impl(const ModelWeights& w, std::vector<std::pair<int, int>> ranges,
       int pre_mb, int dec_mb)
      : weights(w),
        prefill_mb(pre_mb),
        decode_mb(dec_mb),
        outbox(std::make_unique<MpmcQueue<StageMsg>>(64)) {
    check_arg(pre_mb >= 1 && dec_mb >= 1,
              "PipelineEngine: micro-batch sizes must be >= 1");
    for (const auto& r : ranges) {
      check_arg(r.first >= 0 && r.second <= w.spec.layers &&
                    r.first <= r.second,
                "PipelineEngine: bad stage range");
      if (r.first < r.second) stages.push_back(r);
    }
    check_arg(!stages.empty(), "PipelineEngine: no layers assigned");
    int covered = 0;
    for (std::size_t p = 0; p < stages.size(); ++p) {
      check_arg(stages[p].first == covered,
                "PipelineEngine: stage ranges must tile the model");
      covered = stages[p].second;
    }
    check_arg(covered == w.spec.layers,
              "PipelineEngine: stage ranges must cover the model");
    const std::size_t hidden = static_cast<std::size_t>(w.spec.hidden);
    kv.resize(stages.size());
    for (std::size_t p = 0; p < stages.size(); ++p) {
      inboxes.push_back(std::make_unique<MpmcQueue<StageMsg>>(64));
      stage_metrics.push_back(std::make_unique<StageMetrics>());
      // Per-stage straggler site, evaluated once per layer per micro-batch:
      // a slow rule on "stage.<p>.layer" drags stage p in proportion to its
      // layer count, so migrating layers off the stage measurably helps.
      stage_sites.push_back("stage." + std::to_string(p) + ".layer");
      const int layers = stages[p].second - stages[p].first;
      for (int l = 0; l < layers; ++l) kv[p].emplace_back(hidden);
    }
    // Everything the workers touch is in place; start them last so a
    // constructor failure above never leaves a thread running.
    launch_workers();
  }

  ~Impl() { shutdown(); }

  void launch_workers() {
    workers.reserve(stages.size());
    for (std::size_t p = 0; p < stages.size(); ++p)
      workers.emplace_back([this, p] { stage_loop(p); });
  }

  /// Closes every mailbox and joins the workers. Idempotent.
  void shutdown() noexcept {
    for (auto& inbox : inboxes) inbox->close();
    outbox->close();
    for (auto& t : workers)
      if (t.joinable()) t.join();
  }

  // ---- Session/KV plumbing (master thread only; the workers never touch
  // the session table, only the managers through in-flight messages).

  void throw_if_broken() const {
    if (broken.load(std::memory_order_acquire))
      throw Error(
          "PipelineEngine::generate: engine is broken after a fault; "
          "restart() required");
  }

  Session& session_at(int id) {
    auto it = sessions.find(id);
    check_arg(it != sessions.end(), "PipelineEngine: unknown session id");
    return it->second;
  }
  const Session& session_at(int id) const {
    auto it = sessions.find(id);
    check_arg(it != sessions.end(), "PipelineEngine: unknown session id");
    return it->second;
  }

  int create_session(std::vector<TokenId> prompt) {
    const int id = next_session++;
    for (auto& stage : kv)
      for (KvCacheManager& m : stage) {
        m.begin_seq(id);
        m.pin(id);  // engine sessions are never evictable
      }
    Session s;
    s.tokens = std::move(prompt);
    sessions.emplace(id, std::move(s));
    return id;
  }

  void reserve_session(int id, std::size_t target_len) {
    for (auto& stage : kv)
      for (KvCacheManager& m : stage) m.reserve(id, target_len);
  }

  void free_session_pages(int id) {
    for (auto& stage : kv)
      for (KvCacheManager& m : stage)
        if (m.has_seq(id)) m.free_seq(id);
  }

  void truncate_session(int id, std::size_t len) {
    for (auto& stage : kv)
      for (KvCacheManager& m : stage)
        if (m.has_seq(id) && m.filled(id) > len) m.truncate(id, len);
  }

  /// Erases the session entry now; frees (or defers freeing) its pages.
  void release_session(int id) {
    sessions.erase(id);
    if (broken.load(std::memory_order_acquire))
      deferred_free.push_back(id);
    else
      free_session_pages(id);
  }

  /// Applies rollbacks/frees queued while the engine was broken. Only safe
  /// with the workers joined (restart() calls this after shutdown()).
  void apply_deferred() {
    for (const auto& [id, len] : deferred_truncate) truncate_session(id, len);
    deferred_truncate.clear();
    for (int id : deferred_free) free_session_pages(id);
    deferred_free.clear();
  }

  std::vector<TokenId> run_pass(const std::vector<int>& ids,
                                bool decode_phase,
                                Clock::time_point deadline_tp,
                                const CancelToken& cancel);

  void stage_loop(std::size_t p) {
    auto& inbox = *inboxes[p];
    StageMetrics& metrics = *stage_metrics[p];
    const auto [begin, end] = stages[p];
    for (;;) {
      StopwatchNs idle;
      std::optional<StageMsg> msg;
      {
        // The mailbox wait is its own span so pipeline bubbles are visible
        // on the stage track (long waits between requests included).
        TRACE_SPAN("engine", "wait");
        msg = inbox.pop();
      }
      if (!msg) break;  // inbox closed and drained: engine shutting down
      metrics.add_idle_ns(idle.elapsed_ns());
      StageMsg m = std::move(*msg);
      if (TraceSession::enabled())
        TraceSession::set_thread_name("stage " + std::to_string(p));
      if (!m.error) {
        TRACE_SPAN1("engine",
                    m.decode ? "decode-microbatch" : "prefill-microbatch",
                    "seqs", m.seqs);
        StopwatchNs busy;
        try {
          FAULT_POINT("stage.work");
          for (int layer = begin; layer < end; ++layer) {
            FAULT_POINT(stage_sites[p].c_str());
            decoder_layer_forward(
                weights.spec, weights.layers[static_cast<std::size_t>(layer)],
                m.acts, kv[p][static_cast<std::size_t>(layer - begin)],
                m.spans, /*observer=*/nullptr,
                /*layer_index=*/layer, &metrics);
          }
        } catch (...) {
          // Poison the message instead of letting the exception escape the
          // thread (which would std::terminate). The master rethrows it.
          m.error = std::current_exception();
        }
        metrics.add_busy_ns(busy.elapsed_ns());
        metrics.add_microbatch();
      }
      // Chaos site for lost messages: a drop rule silently swallows the
      // micro-batch (the master's deadline is the only way out — exactly
      // the failure a flaky interconnect produces). The check runs inside
      // its own try so a throw/alloc_fail rule on this site poisons the
      // message instead of escaping the worker thread (std::terminate).
      bool dropped = false;
      try {
        dropped = FAULT_DROP("engine.mailbox");
      } catch (...) {
        m.error = std::current_exception();
      }
      if (dropped) continue;
      // A failed push means the next mailbox was closed mid-shutdown;
      // dropping the message is correct then — the master is gone.
      if (p + 1 < stages.size())
        (void)inboxes[p + 1]->push(std::move(m));
      else
        (void)outbox->push(std::move(m));
    }
  }
};

/// One ragged pass (prefill: each session's pending tokens; decode: one
/// token per session) through the pipeline. Returns one sampled token per
/// session in `ids` order and commits it (tokens/committed advance) only
/// after every micro-batch came back clean. On failure, every
/// participating session's KV is truncated back to its committed length —
/// immediately when the pipeline drained (engine stays healthy), deferred
/// to restart() when it did not.
std::vector<TokenId> PipelineEngine::Impl::run_pass(
    const std::vector<int>& ids, bool decode_phase,
    Clock::time_point deadline_tp, const CancelToken& cancel) {
  // Poll granularity for the deadline/cancel checks in pop_msg; with no
  // deadline and no cancel token armed we still use it so a cancel issued
  // mid-wait is observed promptly.
  constexpr std::chrono::milliseconds kPoll{20};

  // Exact in-flight accounting: every micro-batch pushed into the pipeline
  // comes back on the outbox exactly once (worker exceptions travel as
  // poisoned messages), so on any failure we can drain to a clean state and
  // keep the engine usable. `pending` mirrors in_flight at slice
  // granularity so a failure can report exactly which rows were lost.
  std::size_t in_flight = 0;
  std::vector<std::pair<std::size_t, std::size_t>> pending;  // (start, count)

  auto record_failure = [&](const std::string& what, bool needs_restart) {
    EngineFailureInfo info;
    info.failed = true;
    info.needs_restart = needs_restart;
    info.what = what;
    for (const auto& [s, n] : pending)
      for (std::size_t r = 0; r < n; ++r)
        info.lost_rows.push_back(static_cast<int>(s + r));
    std::sort(info.lost_rows.begin(), info.lost_rows.end());
    std::lock_guard<std::mutex> lock(failure_mu);
    failure = std::move(info);
  };
  auto mark_broken = [&](const std::string& what) {
    record_failure(what, /*needs_restart=*/true);
    broken.store(true, std::memory_order_release);
    TRACE_INSTANT("engine", "broken");
  };
  auto rollback = [&](bool immediate) {
    for (int id : ids) {
      auto it = sessions.find(id);
      if (it == sessions.end()) continue;
      if (immediate)
        truncate_session(id, it->second.committed);
      else
        deferred_truncate.emplace_back(id, it->second.committed);
    }
  };

  auto push_msg = [&](StageMsg msg) {
    const std::pair<std::size_t, std::size_t> slice{msg.batch_start, msg.seqs};
    if (!inboxes.front()->push(std::move(msg)))
      throw Error("PipelineEngine: pipeline is shut down (mailbox closed)");
    pending.push_back(slice);
    ++in_flight;
  };
  auto pop_msg = [&]() -> StageMsg {
    for (;;) {
      if (cancel.cancelled()) {
        mark_broken("PipelineEngine: generate cancelled");
        throw PipelineAbortError("PipelineEngine: generate cancelled",
                                 /*timed_out=*/false);
      }
      if (Clock::now() >= deadline_tp) {
        mark_broken("PipelineEngine: generate deadline exceeded");
        throw PipelineAbortError("PipelineEngine: generate deadline exceeded",
                                 /*timed_out=*/true);
      }
      auto out = outbox->pop_for(kPoll);
      if (!out) {
        if (outbox->closed())
          throw Error("PipelineEngine: pipeline closed early");
        continue;  // timed out waiting; re-check deadline/cancel
      }
      --in_flight;
      StageMsg m = std::move(*out);
      // A poisoned message did come back, but its rows produced no usable
      // output this round — keep its slice in `pending` so last_failure()
      // reports those rows as lost alongside any still in flight.
      if (m.error) std::rethrow_exception(m.error);
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->first == m.batch_start && it->second == m.seqs) {
          pending.erase(it);
          break;
        }
      }
      return m;
    }
  };

  MicrobatchManager mbm(ids.size(), static_cast<std::size_t>(prefill_mb),
                        static_cast<std::size_t>(decode_mb));
  std::vector<TokenId> out(ids.size());
  if (TraceSession::enabled()) TraceSession::set_thread_name("master");

  try {
    const std::vector<BatchSlice> slices =
        decode_phase ? mbm.decode_slices() : mbm.prefill_slices();
    StopwatchNs pass_timer;
    std::size_t pass_tokens = 0;
    std::optional<TraceSpan> phase_span;
    phase_span.emplace("engine", decode_phase ? "decode-round" : "prefill",
                       "seqs", static_cast<double>(ids.size()));
    mbm.begin_phase(slices.size());
    for (const BatchSlice& slice : slices) {
      StageMsg msg;
      msg.batch_start = slice.start;
      msg.seqs = slice.count;
      msg.decode = decode_phase;
      msg.spans.reserve(slice.count);
      std::vector<TokenId> flat;
      std::vector<std::size_t> offsets;
      offsets.reserve(slice.count);
      for (std::size_t s = 0; s < slice.count; ++s) {
        const int id = ids[slice.start + s];
        const Session& sess = session_at(id);
        if (decode_phase) {
          msg.spans.push_back(SeqSpan{id, 1});
          flat.push_back(sess.tokens.back());
        } else {
          msg.spans.push_back(
              SeqSpan{id, sess.tokens.size() - sess.committed});
          flat.insert(flat.end(),
                      sess.tokens.begin() +
                          static_cast<std::ptrdiff_t>(sess.committed),
                      sess.tokens.end());
        }
        offsets.push_back(sess.committed);
      }
      pass_tokens += flat.size();
      FAULT_POINT("engine.embed");
      msg.acts = embed(weights, flat, msg.spans, offsets);
      push_msg(std::move(msg));
    }
    while (mbm.outstanding() > 0) {
      const StageMsg m = pop_msg();
      const std::vector<TokenId> toks =
          project_and_sample(weights, m.acts, m.spans);
      for (std::size_t s = 0; s < m.seqs; ++s) out[m.batch_start + s] = toks[s];
      mbm.complete_one();
    }
    (decode_phase ? decode_metrics : prefill_metrics)
        .add(pass_tokens, pass_timer.elapsed_ns());
    phase_span.reset();
  } catch (const PipelineAbortError&) {
    // Deadline/cancel: micro-batches may be stuck inside the pipeline (or
    // silently dropped), so draining could block forever and the caches
    // cannot be touched yet. mark_broken already ran; the rollback waits
    // for restart(), the only road back.
    rollback(/*immediate=*/false);
    throw;
  } catch (...) {
    // Swallow every in-flight micro-batch (poisoned or not) so the next
    // pass starts from an empty pipeline. Workers forward each message
    // exactly once, so this terminates unless a message was lost — the
    // grace budget converts that hang into a broken engine instead.
    std::string what = "unknown error";
    try {
      throw;
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    const Clock::time_point grace = Clock::now() + std::chrono::seconds(2);
    bool drained = true;
    while (in_flight > 0) {
      auto out_msg = outbox->pop_for(kPoll);
      if (out_msg) {
        --in_flight;
        continue;
      }
      if (outbox->closed()) break;  // engine shut down concurrently
      if (Clock::now() >= grace) {
        drained = false;
        break;
      }
    }
    if (drained) {
      record_failure("PipelineEngine: generate failed: " + what,
                     /*needs_restart=*/false);
      rollback(/*immediate=*/true);
    } else {
      mark_broken("PipelineEngine: drain after failure timed out (" + what +
                  ")");
      rollback(/*immediate=*/false);
    }
    throw;
  }

  // Commit: the pass fully succeeded, so every session's KV now holds its
  // processed tokens; record that and append the sampled token.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Session& sess = session_at(ids[i]);
    sess.committed = sess.tokens.size();
    sess.tokens.push_back(out[i]);
  }
  {
    std::lock_guard<std::mutex> lock(failure_mu);
    failure = EngineFailureInfo{};
  }
  return out;
}

PipelineEngine::PipelineEngine(const ModelWeights& weights,
                               std::vector<std::pair<int, int>> stage_layers,
                               int prefill_micro_batch,
                               int decode_micro_batch)
    : impl_(std::make_unique<Impl>(weights, std::move(stage_layers),
                                   prefill_micro_batch, decode_micro_batch)) {
}

PipelineEngine::~PipelineEngine() = default;

int PipelineEngine::num_stages() const {
  return static_cast<int>(impl_->stages.size());
}

const ModelSpec& PipelineEngine::spec() const { return impl_->weights.spec; }

const std::vector<std::pair<int, int>>& PipelineEngine::stage_layers() const {
  return impl_->stages;
}

EngineStats PipelineEngine::stats() const {
  const Impl& im = *impl_;
  EngineStats s;
  s.stages.reserve(im.stages.size());
  for (std::size_t p = 0; p < im.stages.size(); ++p) {
    StageStats st = im.stage_metrics[p]->snapshot();
    st.inbox_high_water = im.inboxes[p]->high_water();
    s.stages.push_back(st);
  }
  s.prefill = im.prefill_metrics.snapshot();
  s.decode = im.decode_metrics.snapshot();
  s.generate_calls = im.generate_calls.load(std::memory_order_relaxed);
  return s;
}

bool PipelineEngine::healthy() const {
  return !impl_->broken.load(std::memory_order_acquire);
}

EngineFailureInfo PipelineEngine::last_failure() const {
  std::lock_guard<std::mutex> lock(impl_->failure_mu);
  return impl_->failure;
}

void PipelineEngine::restart() {
  Impl& im = *impl_;
  // Joining first makes the mailbox swap below single-threaded: after
  // shutdown() no worker can touch the old queues or the KV pools. Weights
  // and surviving sessions' KV pages are untouched — recovery never
  // repeats the load or prefill work; only rollbacks/frees that were
  // deferred while workers could still be running are applied now.
  im.shutdown();
  im.workers.clear();
  im.apply_deferred();
  for (auto& inbox : im.inboxes)
    inbox = std::make_unique<MpmcQueue<StageMsg>>(64);
  im.outbox = std::make_unique<MpmcQueue<StageMsg>>(64);
  {
    std::lock_guard<std::mutex> lock(im.failure_mu);
    im.failure = EngineFailureInfo{};
  }
  im.broken.store(false, std::memory_order_release);
  im.launch_workers();
  TRACE_INSTANT("engine", "restart");
}

// ---- Step-level session API.

int PipelineEngine::begin_session(std::vector<TokenId> prompt) {
  check_arg(!prompt.empty(),
            "PipelineEngine::begin_session: empty prompt");
  impl_->throw_if_broken();
  return impl_->create_session(std::move(prompt));
}

void PipelineEngine::end_session(int session) {
  Impl& im = *impl_;
  check_arg(im.sessions.count(session) != 0,
            "PipelineEngine::end_session: unknown session id");
  im.release_session(session);
}

bool PipelineEngine::has_session(int session) const {
  return impl_->sessions.count(session) != 0;
}

std::size_t PipelineEngine::session_length(int session) const {
  return impl_->session_at(session).tokens.size();
}

std::size_t PipelineEngine::session_committed(int session) const {
  return impl_->session_at(session).committed;
}

TokenId PipelineEngine::session_back(int session) const {
  return impl_->session_at(session).tokens.back();
}

std::size_t PipelineEngine::preempt_session(int session) {
  Impl& im = *impl_;
  im.throw_if_broken();
  Impl::Session& s = im.session_at(session);
  if (s.committed == 0) return 0;  // nothing materialized, nothing to free
  const std::size_t released = s.committed;
  for (auto& stage : im.kv)
    for (KvCacheManager& m : stage)
      if (m.has_seq(session)) m.preempt(session);
  // Back to the un-prefilled state: the tokens (prompt + sampled) stay, so
  // the next prefill() replays the full history and — greedy sampling being
  // deterministic — resumes the continuation bit-identically.
  s.committed = 0;
  return released;
}

std::size_t PipelineEngine::kv_footprint_bytes() const {
  std::size_t total = 0;
  for (const auto& stage : impl_->kv)
    for (const KvCacheManager& m : stage) total += m.footprint_bytes();
  return total;
}

std::vector<TokenId> PipelineEngine::prefill(const std::vector<int>& sessions,
                                             const GenerateOptions& options) {
  Impl& im = *impl_;
  check_arg(!sessions.empty(), "PipelineEngine::prefill: no sessions");
  im.throw_if_broken();
  for (int id : sessions) {
    const Impl::Session& s = im.session_at(id);
    check_arg(s.committed == 0,
              "PipelineEngine::prefill: session already prefilled");
  }
  // Reservation is the allocation choke point: it throws (std::bad_alloc
  // under a simulated allocation failure) before anything is in flight,
  // so the engine stays healthy — the serving layer turns repeated
  // failures here into graceful bitwidth degradation.
  FAULT_POINT("engine.kv_alloc");
  for (int id : sessions)
    im.reserve_session(id, im.session_at(id).tokens.size());
  return im.run_pass(sessions, /*decode_phase=*/false,
                     deadline_from(options, Clock::now()), options.cancel);
}

std::vector<TokenId> PipelineEngine::decode_step(
    const std::vector<int>& sessions, const GenerateOptions& options) {
  Impl& im = *impl_;
  check_arg(!sessions.empty(), "PipelineEngine::decode_step: no sessions");
  im.throw_if_broken();
  for (int id : sessions) {
    const Impl::Session& s = im.session_at(id);
    check_arg(s.committed + 1 == s.tokens.size(),
              "PipelineEngine::decode_step: session not prefilled");
  }
  FAULT_POINT("engine.kv_alloc");
  for (int id : sessions)
    im.reserve_session(id, im.session_at(id).committed + 1);
  return im.run_pass(sessions, /*decode_phase=*/true,
                     deadline_from(options, Clock::now()), options.cancel);
}

// ---- Batch generate(), expressed over ephemeral sessions.

std::vector<std::vector<TokenId>> PipelineEngine::generate(
    const std::vector<std::vector<TokenId>>& prompts, int gen_tokens) {
  return generate(prompts, gen_tokens, GenerateOptions{});
}

std::vector<std::vector<TokenId>> PipelineEngine::generate(
    const std::vector<std::vector<TokenId>>& prompts, int gen_tokens,
    const GenerateOptions& options) {
  check_arg(!prompts.empty(), "PipelineEngine::generate: no prompts");
  check_arg(gen_tokens >= 1, "PipelineEngine::generate: gen_tokens must be >= 1");
  const std::size_t batch = prompts.size();
  const std::size_t prompt_len = prompts.front().size();
  check_arg(prompt_len >= 1,
            "PipelineEngine::generate: zero-length prompts are not allowed");
  for (const auto& p : prompts)
    check_arg(p.size() == prompt_len,
              "PipelineEngine::generate: unpadded prompts");

  Impl& im = *impl_;
  im.throw_if_broken();
  const std::size_t max_seq = prompt_len + static_cast<std::size_t>(gen_tokens);

  // Ephemeral sessions with the whole shape reserved up front. Throws
  // before anything is in flight (std::bad_alloc under a simulated
  // allocation failure), leaving the engine healthy with no sessions —
  // same pre-flight contract the old monolithic KV reservation had.
  std::vector<int> ids;
  ids.reserve(batch);
  try {
    FAULT_POINT("engine.kv_alloc");
    for (const auto& p : prompts) {
      const int id = im.create_session(p);
      ids.push_back(id);
      im.reserve_session(id, max_seq);
    }
  } catch (...) {
    for (int id : ids) im.release_session(id);
    throw;
  }

  const Clock::time_point deadline_tp =
      deadline_from(options, Clock::now());

  if (TraceSession::enabled()) TraceSession::set_thread_name("master");
  TRACE_SPAN1("engine", "generate", "batch", batch);

  std::vector<std::vector<TokenId>> generated(batch);
  try {
    std::vector<TokenId> toks =
        im.run_pass(ids, /*decode_phase=*/false, deadline_tp, options.cancel);
    for (std::size_t b = 0; b < batch; ++b) generated[b].push_back(toks[b]);
    for (int step = 1; step < gen_tokens; ++step) {
      toks =
          im.run_pass(ids, /*decode_phase=*/true, deadline_tp, options.cancel);
      for (std::size_t b = 0; b < batch; ++b) generated[b].push_back(toks[b]);
    }
  } catch (...) {
    for (int id : ids) im.release_session(id);
    throw;
  }
  for (int id : ids) im.release_session(id);
  im.generate_calls.fetch_add(1, std::memory_order_relaxed);
  return generated;
}

}  // namespace llmpq
