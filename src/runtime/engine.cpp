#include "runtime/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/mpmc_queue.hpp"
#include "common/trace.hpp"

namespace llmpq {

namespace {

/// One micro-batch travelling down the pipeline. A message that hit an
/// exception inside a stage carries the error instead of valid activations;
/// downstream stages forward it untouched so the master's in-flight
/// accounting stays exact and the pipeline never wedges.
struct StageMsg {
  std::size_t batch_start = 0;
  std::size_t seqs = 0;
  std::size_t seq_len = 0;
  Tensor2D acts;
  std::exception_ptr error;
};

}  // namespace

struct PipelineEngine::Impl {
  const ModelWeights& weights;
  std::vector<std::pair<int, int>> stages;  ///< non-empty ranges only
  int prefill_mb;
  int decode_mb;

  // Mailboxes live as long as the engine; they are closed exactly once, in
  // shutdown(). Stage p owns (pops) inboxes[p]; the master owns the outbox.
  std::vector<std::unique_ptr<MpmcQueue<StageMsg>>> inboxes;
  std::unique_ptr<MpmcQueue<StageMsg>> outbox;

  // Per stage, per local layer: KV caches. Allocated lazily on the first
  // generate() and reused while (batch, max_seq) stay the same; only the
  // position counters are reset between calls.
  std::vector<std::vector<KvCache>> caches;
  std::size_t cache_batch = 0;
  std::size_t cache_max_seq = 0;

  // Observability (written by workers, read by stats()).
  std::vector<std::unique_ptr<StageMetrics>> stage_metrics;
  PhaseMetrics prefill_metrics;
  PhaseMetrics decode_metrics;
  std::atomic<std::uint64_t> generate_calls{0};

  // Workers are started last in the constructor and joined in shutdown();
  // the Impl destructor is the RAII joiner, so no exception path can leak a
  // running std::thread (whose destructor would std::terminate).
  std::vector<std::thread> workers;

  // Broken = an abort (deadline/cancel) or failed drain left micro-batches
  // stranded inside the pipeline; every generate() is rejected until
  // restart() rebuilds the workers and mailboxes. `failure` describes the
  // most recent failed call for callers that re-enqueue lost work.
  std::atomic<bool> broken{false};
  mutable std::mutex failure_mu;
  EngineFailureInfo failure;

  Impl(const ModelWeights& w, std::vector<std::pair<int, int>> ranges,
       int pre_mb, int dec_mb)
      : weights(w),
        prefill_mb(pre_mb),
        decode_mb(dec_mb),
        outbox(std::make_unique<MpmcQueue<StageMsg>>(64)) {
    check_arg(pre_mb >= 1 && dec_mb >= 1,
              "PipelineEngine: micro-batch sizes must be >= 1");
    for (const auto& r : ranges) {
      check_arg(r.first >= 0 && r.second <= w.spec.layers &&
                    r.first <= r.second,
                "PipelineEngine: bad stage range");
      if (r.first < r.second) stages.push_back(r);
    }
    check_arg(!stages.empty(), "PipelineEngine: no layers assigned");
    int covered = 0;
    for (std::size_t p = 0; p < stages.size(); ++p) {
      check_arg(stages[p].first == covered,
                "PipelineEngine: stage ranges must tile the model");
      covered = stages[p].second;
    }
    check_arg(covered == w.spec.layers,
              "PipelineEngine: stage ranges must cover the model");
    for (std::size_t p = 0; p < stages.size(); ++p) {
      inboxes.push_back(std::make_unique<MpmcQueue<StageMsg>>(64));
      stage_metrics.push_back(std::make_unique<StageMetrics>());
    }
    caches.resize(stages.size());
    // Everything the workers touch is in place; start them last so a
    // constructor failure above never leaves a thread running.
    launch_workers();
  }

  ~Impl() { shutdown(); }

  void launch_workers() {
    workers.reserve(stages.size());
    for (std::size_t p = 0; p < stages.size(); ++p)
      workers.emplace_back([this, p] { stage_loop(p); });
  }

  /// Closes every mailbox and joins the workers. Idempotent.
  void shutdown() noexcept {
    for (auto& inbox : inboxes) inbox->close();
    outbox->close();
    for (auto& t : workers)
      if (t.joinable()) t.join();
  }

  /// Resets (or re-allocates) the per-stage KV caches for a generate()
  /// call of shape (batch, max_seq).
  void prepare_caches(std::size_t batch, std::size_t max_seq) {
    // Chaos site for simulated allocation failure: an alloc_fail rule here
    // surfaces as std::bad_alloc before any micro-batch is in flight, which
    // is what drives the serving layer's graceful-degradation ladder.
    FAULT_POINT("engine.kv_alloc");
    if (batch == cache_batch && max_seq == cache_max_seq) {
      for (auto& stage : caches)
        for (KvCache& c : stage) c.reset();
      return;
    }
    const std::size_t hidden = static_cast<std::size_t>(weights.spec.hidden);
    for (std::size_t p = 0; p < stages.size(); ++p) {
      caches[p].clear();
      const auto [begin, end] = stages[p];
      for (int layer = begin; layer < end; ++layer) {
        (void)layer;
        caches[p].emplace_back(batch, max_seq, hidden);
      }
    }
    cache_batch = batch;
    cache_max_seq = max_seq;
  }

  void stage_loop(std::size_t p) {
    auto& inbox = *inboxes[p];
    StageMetrics& metrics = *stage_metrics[p];
    const auto [begin, end] = stages[p];
    for (;;) {
      StopwatchNs idle;
      std::optional<StageMsg> msg;
      {
        // The mailbox wait is its own span so pipeline bubbles are visible
        // on the stage track (long waits between requests included).
        TRACE_SPAN("engine", "wait");
        msg = inbox.pop();
      }
      if (!msg) break;  // inbox closed and drained: engine shutting down
      metrics.add_idle_ns(idle.elapsed_ns());
      StageMsg m = std::move(*msg);
      if (TraceSession::enabled())
        TraceSession::set_thread_name("stage " + std::to_string(p));
      if (!m.error) {
        TRACE_SPAN1("engine",
                    m.seq_len == 1 ? "decode-microbatch" : "prefill-microbatch",
                    "seqs", m.seqs);
        StopwatchNs busy;
        try {
          FAULT_POINT("stage.work");
          for (int layer = begin; layer < end; ++layer) {
            decoder_layer_forward(
                weights.spec, weights.layers[static_cast<std::size_t>(layer)],
                m.acts, caches[p][static_cast<std::size_t>(layer - begin)],
                m.batch_start, m.seqs, m.seq_len, /*observer=*/nullptr,
                /*layer_index=*/layer, &metrics);
          }
        } catch (...) {
          // Poison the message instead of letting the exception escape the
          // thread (which would std::terminate). The master rethrows it.
          m.error = std::current_exception();
        }
        metrics.add_busy_ns(busy.elapsed_ns());
        metrics.add_microbatch();
      }
      // Chaos site for lost messages: a drop rule silently swallows the
      // micro-batch (the master's deadline is the only way out — exactly
      // the failure a flaky interconnect produces). The check runs inside
      // its own try so a throw/alloc_fail rule on this site poisons the
      // message instead of escaping the worker thread (std::terminate).
      bool dropped = false;
      try {
        dropped = FAULT_DROP("engine.mailbox");
      } catch (...) {
        m.error = std::current_exception();
      }
      if (dropped) continue;
      // A failed push means the next mailbox was closed mid-shutdown;
      // dropping the message is correct then — the master is gone.
      if (p + 1 < stages.size())
        (void)inboxes[p + 1]->push(std::move(m));
      else
        (void)outbox->push(std::move(m));
    }
  }
};

PipelineEngine::PipelineEngine(const ModelWeights& weights,
                               std::vector<std::pair<int, int>> stage_layers,
                               int prefill_micro_batch,
                               int decode_micro_batch)
    : impl_(std::make_unique<Impl>(weights, std::move(stage_layers),
                                   prefill_micro_batch, decode_micro_batch)) {
}

PipelineEngine::~PipelineEngine() = default;

int PipelineEngine::num_stages() const {
  return static_cast<int>(impl_->stages.size());
}

EngineStats PipelineEngine::stats() const {
  const Impl& im = *impl_;
  EngineStats s;
  s.stages.reserve(im.stages.size());
  for (std::size_t p = 0; p < im.stages.size(); ++p) {
    StageStats st = im.stage_metrics[p]->snapshot();
    st.inbox_high_water = im.inboxes[p]->high_water();
    s.stages.push_back(st);
  }
  s.prefill = im.prefill_metrics.snapshot();
  s.decode = im.decode_metrics.snapshot();
  s.generate_calls = im.generate_calls.load(std::memory_order_relaxed);
  return s;
}

bool PipelineEngine::healthy() const {
  return !impl_->broken.load(std::memory_order_acquire);
}

EngineFailureInfo PipelineEngine::last_failure() const {
  std::lock_guard<std::mutex> lock(impl_->failure_mu);
  return impl_->failure;
}

void PipelineEngine::restart() {
  Impl& im = *impl_;
  // Joining first makes the mailbox swap below single-threaded: after
  // shutdown() no worker can touch the old queues. Weights and KV caches
  // are untouched — recovery never repeats the load or allocation work.
  im.shutdown();
  im.workers.clear();
  for (auto& inbox : im.inboxes)
    inbox = std::make_unique<MpmcQueue<StageMsg>>(64);
  im.outbox = std::make_unique<MpmcQueue<StageMsg>>(64);
  {
    std::lock_guard<std::mutex> lock(im.failure_mu);
    im.failure = EngineFailureInfo{};
  }
  im.broken.store(false, std::memory_order_release);
  im.launch_workers();
  TRACE_INSTANT("engine", "restart");
}

std::vector<std::vector<TokenId>> PipelineEngine::generate(
    const std::vector<std::vector<TokenId>>& prompts, int gen_tokens) {
  return generate(prompts, gen_tokens, GenerateOptions{});
}

std::vector<std::vector<TokenId>> PipelineEngine::generate(
    const std::vector<std::vector<TokenId>>& prompts, int gen_tokens,
    const GenerateOptions& options) {
  check_arg(!prompts.empty(), "PipelineEngine::generate: no prompts");
  check_arg(gen_tokens >= 1, "PipelineEngine::generate: gen_tokens must be >= 1");
  const std::size_t batch = prompts.size();
  const std::size_t prompt_len = prompts.front().size();
  check_arg(prompt_len >= 1,
            "PipelineEngine::generate: zero-length prompts are not allowed");
  for (const auto& p : prompts)
    check_arg(p.size() == prompt_len,
              "PipelineEngine::generate: unpadded prompts");

  Impl& im = *impl_;
  if (im.broken.load(std::memory_order_acquire))
    throw Error(
        "PipelineEngine::generate: engine is broken after a fault; "
        "restart() required");
  const ModelWeights& mw = im.weights;
  const std::size_t max_seq = prompt_len + static_cast<std::size_t>(gen_tokens);

  // Throws before anything is in flight (std::bad_alloc under a simulated
  // allocation failure), so the engine stays healthy — the serving layer
  // turns repeated failures here into graceful bitwidth degradation.
  im.prepare_caches(batch, max_seq);

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const bool has_deadline = std::isfinite(options.deadline_s);
  const Clock::time_point deadline_tp =
      has_deadline ? start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     options.deadline_s < 0.0
                                         ? 0.0
                                         : options.deadline_s))
                   : Clock::time_point::max();
  // Poll granularity for the deadline/cancel checks in pop_msg; with no
  // deadline and no cancel token armed we still use it so a cancel issued
  // mid-wait is observed promptly.
  constexpr std::chrono::milliseconds kPoll{20};

  // Exact in-flight accounting: every micro-batch pushed into the pipeline
  // comes back on the outbox exactly once (worker exceptions travel as
  // poisoned messages), so on any failure we can drain to a clean state and
  // keep the engine usable. `pending` mirrors in_flight at slice
  // granularity so a failure can report exactly which batch rows were lost.
  std::size_t in_flight = 0;
  std::vector<std::pair<std::size_t, std::size_t>> pending;  // (start, count)

  auto record_failure = [&](const std::string& what, bool needs_restart) {
    EngineFailureInfo info;
    info.failed = true;
    info.needs_restart = needs_restart;
    info.what = what;
    for (const auto& [s, n] : pending)
      for (std::size_t r = 0; r < n; ++r)
        info.lost_rows.push_back(static_cast<int>(s + r));
    std::sort(info.lost_rows.begin(), info.lost_rows.end());
    std::lock_guard<std::mutex> lock(im.failure_mu);
    im.failure = std::move(info);
  };
  auto mark_broken = [&](const std::string& what) {
    record_failure(what, /*needs_restart=*/true);
    im.broken.store(true, std::memory_order_release);
    TRACE_INSTANT("engine", "broken");
  };

  auto push_msg = [&](StageMsg msg) {
    const std::pair<std::size_t, std::size_t> slice{msg.batch_start, msg.seqs};
    if (!im.inboxes.front()->push(std::move(msg)))
      throw Error("PipelineEngine: pipeline is shut down (mailbox closed)");
    pending.push_back(slice);
    ++in_flight;
  };
  auto pop_msg = [&]() -> StageMsg {
    for (;;) {
      if (options.cancel.cancelled()) {
        mark_broken("PipelineEngine: generate cancelled");
        throw PipelineAbortError("PipelineEngine: generate cancelled",
                                 /*timed_out=*/false);
      }
      if (Clock::now() >= deadline_tp) {
        mark_broken("PipelineEngine: generate deadline exceeded");
        throw PipelineAbortError("PipelineEngine: generate deadline exceeded",
                                 /*timed_out=*/true);
      }
      auto out = im.outbox->pop_for(kPoll);
      if (!out) {
        if (im.outbox->closed())
          throw Error("PipelineEngine: pipeline closed early");
        continue;  // timed out waiting; re-check deadline/cancel
      }
      --in_flight;
      StageMsg m = std::move(*out);
      // A poisoned message did come back, but its rows produced no usable
      // output this round — keep its slice in `pending` so last_failure()
      // reports those rows as lost alongside any still in flight.
      if (m.error) std::rethrow_exception(m.error);
      for (auto it = pending.begin(); it != pending.end(); ++it) {
        if (it->first == m.batch_start && it->second == m.seqs) {
          pending.erase(it);
          break;
        }
      }
      return m;
    }
  };

  MicrobatchManager mbm(batch, static_cast<std::size_t>(im.prefill_mb),
                        static_cast<std::size_t>(im.decode_mb));
  std::vector<std::vector<TokenId>> generated(batch);
  std::vector<TokenId> last_token(batch);

  if (TraceSession::enabled()) TraceSession::set_thread_name("master");
  TRACE_SPAN1("engine", "generate", "batch", batch);

  // Phase spans close mid-scope, so they live in optionals (reset = end).
  std::optional<TraceSpan> phase_span;

  try {
    // ---- Prefill: stream micro-batches through the pipeline.
    phase_span.emplace("engine", "prefill", "tokens",
                       static_cast<double>(batch * prompt_len));
    StopwatchNs prefill_timer;
    mbm.begin_phase(mbm.prefill_slices().size());
    for (const BatchSlice& slice : mbm.prefill_slices()) {
      std::vector<TokenId> flat;
      flat.reserve(slice.count * prompt_len);
      for (std::size_t s = 0; s < slice.count; ++s) {
        const auto& prompt = prompts[slice.start + s];
        flat.insert(flat.end(), prompt.begin(), prompt.end());
      }
      StageMsg msg;
      msg.batch_start = slice.start;
      msg.seqs = slice.count;
      msg.seq_len = prompt_len;
      FAULT_POINT("engine.embed");
      msg.acts = embed(mw, flat, slice.count, prompt_len, 0);
      push_msg(std::move(msg));
    }
    while (mbm.outstanding() > 0) {
      const StageMsg out = pop_msg();
      const std::vector<TokenId> toks =
          project_and_sample(mw, out.acts, out.seqs, out.seq_len);
      for (std::size_t s = 0; s < out.seqs; ++s) {
        generated[out.batch_start + s].push_back(toks[s]);
        last_token[out.batch_start + s] = toks[s];
      }
      mbm.complete_one();
    }
    im.prefill_metrics.add(batch * prompt_len, prefill_timer.elapsed_ns());
    phase_span.reset();

    // ---- Decode rounds with re-sized micro-batches.
    if (gen_tokens > 1)
      phase_span.emplace("engine", "decode", "rounds",
                         static_cast<double>(gen_tokens - 1));
    StopwatchNs decode_timer;
    for (int step = 1; step < gen_tokens; ++step) {
      const std::size_t pos = prompt_len + static_cast<std::size_t>(step) - 1;
      TRACE_SPAN1("engine", "decode-round", "step", step);
      mbm.begin_phase(mbm.decode_slices().size());
      for (const BatchSlice& slice : mbm.decode_slices()) {
        std::vector<TokenId> toks(
            last_token.begin() + static_cast<std::ptrdiff_t>(slice.start),
            last_token.begin() +
                static_cast<std::ptrdiff_t>(slice.start + slice.count));
        StageMsg msg;
        msg.batch_start = slice.start;
        msg.seqs = slice.count;
        msg.seq_len = 1;
        FAULT_POINT("engine.embed");
        msg.acts = embed(mw, toks, slice.count, 1, pos);
        push_msg(std::move(msg));
      }
      while (mbm.outstanding() > 0) {
        const StageMsg out = pop_msg();
        const std::vector<TokenId> toks =
            project_and_sample(mw, out.acts, out.seqs, out.seq_len);
        for (std::size_t s = 0; s < out.seqs; ++s) {
          generated[out.batch_start + s].push_back(toks[s]);
          last_token[out.batch_start + s] = toks[s];
        }
        mbm.complete_one();
      }
    }
    if (gen_tokens > 1)
      im.decode_metrics.add(batch * static_cast<std::size_t>(gen_tokens - 1),
                            decode_timer.elapsed_ns());
    phase_span.reset();
  } catch (const PipelineAbortError&) {
    // Deadline/cancel: micro-batches may be stuck inside the pipeline (or
    // silently dropped), so draining could block forever. mark_broken
    // already ran; restart() is the only road back.
    throw;
  } catch (...) {
    // Swallow every in-flight micro-batch (poisoned or not) so the next
    // generate() starts from an empty pipeline. Workers forward each
    // message exactly once, so this terminates unless a message was lost —
    // the grace budget converts that hang into a broken engine instead.
    std::string what = "unknown error";
    try {
      throw;
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
    }
    const Clock::time_point grace = Clock::now() + std::chrono::seconds(2);
    bool drained = true;
    while (in_flight > 0) {
      auto out = im.outbox->pop_for(kPoll);
      if (out) {
        --in_flight;
        continue;
      }
      if (im.outbox->closed()) break;  // engine shut down concurrently
      if (Clock::now() >= grace) {
        drained = false;
        break;
      }
    }
    if (drained) {
      record_failure("PipelineEngine: generate failed: " + what,
                     /*needs_restart=*/false);
    } else {
      mark_broken("PipelineEngine: drain after failure timed out (" + what +
                  ")");
    }
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(im.failure_mu);
    im.failure = EngineFailureInfo{};
  }
  im.generate_calls.fetch_add(1, std::memory_order_relaxed);
  return generated;
}

}  // namespace llmpq
