#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace llmpq {

/// Minimal 2-D float tensor: `rows` token vectors of width `cols`,
/// row-major. The runtime treats every activation as a flat token batch
/// ([batch*seq, hidden]); batch/sequence bookkeeping lives in the messages.
class Tensor2D {
 public:
  Tensor2D() = default;
  Tensor2D(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  float* row(std::size_t r) { return data_.data() + r * cols_; }
  const float* row(std::size_t r) const { return data_.data() + r * cols_; }

  float& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::span<float> flat() { return data_; }
  std::span<const float> flat() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// In-place layer norm over each row: y = (x - mean) / sqrt(var + eps) * g + b.
void layer_norm(Tensor2D& x, std::span<const float> gamma,
                std::span<const float> beta, float eps = 1e-5f);

/// In-place root-mean-square norm (Zhang & Sennrich; LLaMA's norm):
/// y = x / sqrt(mean(x^2) + eps) * g — no recentring, no bias.
void rms_norm(Tensor2D& x, std::span<const float> gamma, float eps = 1e-5f);

/// In-place ReLU.
void relu(std::span<float> x);

/// Numerically stable in-place softmax of a row segment.
void softmax(std::span<float> x);

}  // namespace llmpq
