#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "runtime/microbatch.hpp"
#include "runtime/transformer.hpp"

namespace llmpq {

/// Shared-state cancellation handle: copy it into GenerateOptions, keep a
/// copy, and cancel() from any thread to abort the in-flight generate().
/// Cancellation (like a deadline) leaves micro-batches stranded inside the
/// pipeline, so the engine marks itself broken and requires restart().
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  void reset() { flag_->store(false, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct GenerateOptions {
  /// Wall-clock budget for the whole generate() call. On expiry the master
  /// stops waiting for in-flight micro-batches and throws
  /// PipelineAbortError (needs_restart) — the guard that converts a
  /// dropped message or an unbounded straggler into a recoverable fault.
  double deadline_s = std::numeric_limits<double>::infinity();
  CancelToken cancel;
};

/// generate() was aborted by its deadline or its cancel token. In-flight
/// micro-batches may still be inside the pipeline, so the engine is broken
/// until restart().
class PipelineAbortError : public Error {
 public:
  PipelineAbortError(const std::string& what, bool timed_out)
      : Error(what), timed_out_(timed_out) {}
  bool timed_out() const { return timed_out_; }

 private:
  bool timed_out_;
};

/// What the last failed generate() call lost, for callers (the serving
/// loop) that re-enqueue work: `lost_rows` are the batch row indices whose
/// in-progress round never completed — under the engine's all-or-nothing
/// output contract every row of a failed call loses its output, but
/// lost_rows pinpoints the micro-batches that were actually in flight.
struct EngineFailureInfo {
  bool failed = false;
  bool needs_restart = false;  ///< restart() required before reuse
  std::string what;
  std::vector<int> lost_rows;
};

/// Distributed (multi-threaded) pipeline inference engine — the runtime
/// half of LLM-PQ (paper Sec. 3/5), scaled to CPU threads: one persistent
/// worker thread per pipeline stage, message-passing via bounded mailboxes,
/// a master engine handling embedding, logits and micro-batch sizing, and a
/// paged KV cache (`KvCacheManager`) per stage and layer. Token output is
/// bit-for-bit identical to the single-threaded reference (tests enforce
/// this).
///
/// Two execution surfaces share one pipeline:
///   * generate() — the batch call: ephemeral sessions are created for the
///     prompts, prefilled, decoded `gen_tokens - 1` further rounds, and
///     released. Prompts must share one padded length (legacy contract).
///   * the step-level session API — begin_session / prefill / decode_step /
///     end_session: sessions persist across calls with their KV pages
///     intact, so a serving loop can advance the *active set* one token per
///     iteration with KV reuse instead of replaying full contexts, and
///     sessions of different lengths batch together exactly (ragged
///     passes have no pad tokens to attend to).
///
/// Session calls are master-side: they must come from one thread at a time
/// (the serving loop owns its engine). Failure semantics match generate():
/// an ordinary stage error drains in-flight work, rolls every
/// participating session's KV back to its last committed length, and
/// rethrows with the engine healthy; deadline/cancel marks the engine
/// broken and defers the same rollback to restart(). Tokens are committed
/// to a session only after its pass fully succeeds, so a retried pass
/// never double-advances a session.
///
/// Lifecycle: stage workers and mailboxes are created once in the
/// constructor and joined in the destructor (RAII), so repeated generate()
/// calls reuse threads and KV-cache allocations. generate() is
/// exception-safe: an error in the master (bad token, cache overflow) or in
/// any stage worker drains the in-flight micro-batches, rethrows to the
/// caller, and leaves the engine ready for the next call — no terminate, no
/// hang, no leaked threads.
class PipelineEngine {
 public:
  /// `stage_layers[p]` = [begin, end) layer range of stage p (empty ranges
  /// allowed and skipped). Weights are shared, not copied, and must outlive
  /// the engine. Micro-batch sizes must be >= 1.
  PipelineEngine(const ModelWeights& weights,
                 std::vector<std::pair<int, int>> stage_layers,
                 int prefill_micro_batch, int decode_micro_batch);
  ~PipelineEngine();

  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// Generates `gen_tokens` tokens per prompt (greedy). Prompts must be
  /// non-empty and share one padded length. Reusable across calls (caches
  /// reset per call, buffers reused when the shape matches).
  std::vector<std::vector<TokenId>> generate(
      const std::vector<std::vector<TokenId>>& prompts, int gen_tokens);

  /// As above, with a per-call deadline and cancellation token. Deadline
  /// expiry or cancellation throws PipelineAbortError and leaves the
  /// engine broken (healthy() == false) until restart(); ordinary stage
  /// exceptions still drain and rethrow without breaking the engine.
  std::vector<std::vector<TokenId>> generate(
      const std::vector<std::vector<TokenId>>& prompts, int gen_tokens,
      const GenerateOptions& options);

  // ---- Step-level session API (continuous batching). Sessions keep
  // their KV pages across calls and across restart(); only pages a failed
  // pass partially appended are rolled back.

  /// Registers a session holding `prompt` (non-empty) and reserves nothing
  /// yet — pages are reserved by prefill()/decode_step(). Returns the
  /// session id.
  int begin_session(std::vector<TokenId> prompt);

  /// Releases a session and returns its KV pages to the pool (deferred to
  /// restart() while the engine is broken, when stranded workers may still
  /// touch the caches).
  void end_session(int session);

  bool has_session(int session) const;
  /// Tokens the session holds (prompt + sampled): committed KV plus the
  /// one sampled-but-not-yet-fed token after a successful pass.
  std::size_t session_length(int session) const;
  /// Tokens whose KV is materialized (0 until prefill succeeds). Together
  /// with session_length this tells a retrying caller exactly where a
  /// session stands: committed == 0 needs prefill, length == committed + 1
  /// is mid-generation.
  std::size_t session_committed(int session) const;
  /// The session's most recent token (the one decode_step would feed).
  TokenId session_back(int session) const;

  /// Runs each session's full pending prompt through the pipeline (ragged:
  /// sessions need not share a length) and returns one greedily sampled
  /// token per session, in `sessions` order. Sessions must be freshly
  /// begun (nothing committed). On failure no session advances.
  std::vector<TokenId> prefill(const std::vector<int>& sessions,
                               const GenerateOptions& options = {});

  /// Advances each prefilled session by one token: feeds its last token at
  /// its committed position, reusing all cached KV, and returns the next
  /// sampled token per session. On failure no session advances — a retry
  /// repeats the same round exactly.
  std::vector<TokenId> decode_step(const std::vector<int>& sessions,
                                   const GenerateOptions& options = {});

  /// Preempts a live session under memory pressure: releases its KV pages
  /// in every stage/layer manager (snapshotting the committed length via
  /// KvCacheManager::preempt) and resets the session to the un-prefilled
  /// state while keeping its tokens. Resume is exactly prefill() — the
  /// session re-runs its full history (prompt + sampled tokens) and, greedy
  /// sampling being deterministic, continues bit-identically. Returns the
  /// number of KV positions released (0 for a session with nothing
  /// committed — preempting it is a no-op, not an error).
  std::size_t preempt_session(int session);

  /// Bytes held by the paged KV pools across all stages and layers
  /// (monotonic; pages return to the pool, not the OS).
  std::size_t kv_footprint_bytes() const;

  /// False after an abort (deadline/cancel) or a failed drain left
  /// micro-batches stranded in the pipeline; generate() then throws until
  /// restart() is called.
  bool healthy() const;

  /// Details of the most recent failed generate() (cleared by the next
  /// successful call and by restart()).
  EngineFailureInfo last_failure() const;

  /// Tears down the stage workers and mailboxes and rebuilds them,
  /// clearing the broken state. Loaded weights and KV-cache allocations
  /// are reused — recovery does not repeat model load or cache setup.
  void restart();

  int num_stages() const;

  /// The model the engine was built over (the shared weights' spec). Lets
  /// the serving loop validate a replacement engine — same vocab, same
  /// layer count — before swapping it in during degrade or migration.
  const ModelSpec& spec() const;

  /// The constructor's stage ranges with empty stages filtered out —
  /// `stage_layers()[p]` is the [begin, end) layer range worker p runs.
  const std::vector<std::pair<int, int>>& stage_layers() const;

  /// Cumulative runtime metrics since construction: per-stage busy/idle
  /// split, qgemm/attention breakdown, inbox high-water marks, and
  /// per-phase token throughput. Safe to call concurrently with generate().
  EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llmpq
