#pragma once

#include <memory>
#include <vector>

#include "runtime/microbatch.hpp"
#include "runtime/transformer.hpp"

namespace llmpq {

/// Distributed (multi-threaded) pipeline inference engine — the runtime
/// half of LLM-PQ (paper Sec. 3/5), scaled to CPU threads: one worker
/// thread per pipeline stage, message-passing via bounded mailboxes, a
/// master engine handling embedding, logits and micro-batch sizing, and a
/// preallocated KV cache per stage. Token output is bit-for-bit identical
/// to the single-threaded reference (tests enforce this).
class PipelineEngine {
 public:
  /// `stage_layers[p]` = [begin, end) layer range of stage p (empty ranges
  /// allowed and skipped). Weights are shared, not copied.
  PipelineEngine(const ModelWeights& weights,
                 std::vector<std::pair<int, int>> stage_layers,
                 int prefill_micro_batch, int decode_micro_batch);
  ~PipelineEngine();

  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// Generates `gen_tokens` tokens per prompt (greedy). Prompts must share
  /// one padded length. Reusable across calls (caches reset per call).
  std::vector<std::vector<TokenId>> generate(
      const std::vector<std::vector<TokenId>>& prompts, int gen_tokens);

  int num_stages() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llmpq
