#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "runtime/microbatch.hpp"
#include "runtime/transformer.hpp"

namespace llmpq {

/// Shared-state cancellation handle: copy it into GenerateOptions, keep a
/// copy, and cancel() from any thread to abort the in-flight generate().
/// Cancellation (like a deadline) leaves micro-batches stranded inside the
/// pipeline, so the engine marks itself broken and requires restart().
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}
  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  void reset() { flag_->store(false, std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

struct GenerateOptions {
  /// Wall-clock budget for the whole generate() call. On expiry the master
  /// stops waiting for in-flight micro-batches and throws
  /// PipelineAbortError (needs_restart) — the guard that converts a
  /// dropped message or an unbounded straggler into a recoverable fault.
  double deadline_s = std::numeric_limits<double>::infinity();
  CancelToken cancel;
};

/// generate() was aborted by its deadline or its cancel token. In-flight
/// micro-batches may still be inside the pipeline, so the engine is broken
/// until restart().
class PipelineAbortError : public Error {
 public:
  PipelineAbortError(const std::string& what, bool timed_out)
      : Error(what), timed_out_(timed_out) {}
  bool timed_out() const { return timed_out_; }

 private:
  bool timed_out_;
};

/// What the last failed generate() call lost, for callers (the serving
/// loop) that re-enqueue work: `lost_rows` are the batch row indices whose
/// in-progress round never completed — under the engine's all-or-nothing
/// output contract every row of a failed call loses its output, but
/// lost_rows pinpoints the micro-batches that were actually in flight.
struct EngineFailureInfo {
  bool failed = false;
  bool needs_restart = false;  ///< restart() required before reuse
  std::string what;
  std::vector<int> lost_rows;
};

/// Distributed (multi-threaded) pipeline inference engine — the runtime
/// half of LLM-PQ (paper Sec. 3/5), scaled to CPU threads: one persistent
/// worker thread per pipeline stage, message-passing via bounded mailboxes,
/// a master engine handling embedding, logits and micro-batch sizing, and a
/// preallocated KV cache per stage. Token output is bit-for-bit identical
/// to the single-threaded reference (tests enforce this).
///
/// Lifecycle: stage workers and mailboxes are created once in the
/// constructor and joined in the destructor (RAII), so repeated generate()
/// calls reuse threads and KV-cache allocations. generate() is
/// exception-safe: an error in the master (bad token, cache overflow) or in
/// any stage worker drains the in-flight micro-batches, rethrows to the
/// caller, and leaves the engine ready for the next call — no terminate, no
/// hang, no leaked threads.
class PipelineEngine {
 public:
  /// `stage_layers[p]` = [begin, end) layer range of stage p (empty ranges
  /// allowed and skipped). Weights are shared, not copied, and must outlive
  /// the engine. Micro-batch sizes must be >= 1.
  PipelineEngine(const ModelWeights& weights,
                 std::vector<std::pair<int, int>> stage_layers,
                 int prefill_micro_batch, int decode_micro_batch);
  ~PipelineEngine();

  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// Generates `gen_tokens` tokens per prompt (greedy). Prompts must be
  /// non-empty and share one padded length. Reusable across calls (caches
  /// reset per call, buffers reused when the shape matches).
  std::vector<std::vector<TokenId>> generate(
      const std::vector<std::vector<TokenId>>& prompts, int gen_tokens);

  /// As above, with a per-call deadline and cancellation token. Deadline
  /// expiry or cancellation throws PipelineAbortError and leaves the
  /// engine broken (healthy() == false) until restart(); ordinary stage
  /// exceptions still drain and rethrow without breaking the engine.
  std::vector<std::vector<TokenId>> generate(
      const std::vector<std::vector<TokenId>>& prompts, int gen_tokens,
      const GenerateOptions& options);

  /// False after an abort (deadline/cancel) or a failed drain left
  /// micro-batches stranded in the pipeline; generate() then throws until
  /// restart() is called.
  bool healthy() const;

  /// Details of the most recent failed generate() (cleared by the next
  /// successful call and by restart()).
  EngineFailureInfo last_failure() const;

  /// Tears down the stage workers and mailboxes and rebuilds them,
  /// clearing the broken state. Loaded weights and KV-cache allocations
  /// are reused — recovery does not repeat model load or cache setup.
  void restart();

  int num_stages() const;

  /// Cumulative runtime metrics since construction: per-stage busy/idle
  /// split, qgemm/attention breakdown, inbox high-water marks, and
  /// per-phase token throughput. Safe to call concurrently with generate().
  EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llmpq
