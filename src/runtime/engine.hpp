#pragma once

#include <memory>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/microbatch.hpp"
#include "runtime/transformer.hpp"

namespace llmpq {

/// Distributed (multi-threaded) pipeline inference engine — the runtime
/// half of LLM-PQ (paper Sec. 3/5), scaled to CPU threads: one persistent
/// worker thread per pipeline stage, message-passing via bounded mailboxes,
/// a master engine handling embedding, logits and micro-batch sizing, and a
/// preallocated KV cache per stage. Token output is bit-for-bit identical
/// to the single-threaded reference (tests enforce this).
///
/// Lifecycle: stage workers and mailboxes are created once in the
/// constructor and joined in the destructor (RAII), so repeated generate()
/// calls reuse threads and KV-cache allocations. generate() is
/// exception-safe: an error in the master (bad token, cache overflow) or in
/// any stage worker drains the in-flight micro-batches, rethrows to the
/// caller, and leaves the engine ready for the next call — no terminate, no
/// hang, no leaked threads.
class PipelineEngine {
 public:
  /// `stage_layers[p]` = [begin, end) layer range of stage p (empty ranges
  /// allowed and skipped). Weights are shared, not copied, and must outlive
  /// the engine. Micro-batch sizes must be >= 1.
  PipelineEngine(const ModelWeights& weights,
                 std::vector<std::pair<int, int>> stage_layers,
                 int prefill_micro_batch, int decode_micro_batch);
  ~PipelineEngine();

  PipelineEngine(const PipelineEngine&) = delete;
  PipelineEngine& operator=(const PipelineEngine&) = delete;

  /// Generates `gen_tokens` tokens per prompt (greedy). Prompts must be
  /// non-empty and share one padded length. Reusable across calls (caches
  /// reset per call, buffers reused when the shape matches).
  std::vector<std::vector<TokenId>> generate(
      const std::vector<std::vector<TokenId>>& prompts, int gen_tokens);

  int num_stages() const;

  /// Cumulative runtime metrics since construction: per-stage busy/idle
  /// split, qgemm/attention breakdown, inbox high-water marks, and
  /// per-phase token throughput. Safe to call concurrently with generate().
  EngineStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace llmpq
