// Reproduces Table 8: optimizer scalability — exact ILP at group=1 vs
// group=2 vs the bitwidth-transfer heuristic, under a 60 s solver budget,
// on clusters 3, 4, 6 and 10. Reports resulting throughput and solve
// overhead. Expected shape: grouping cuts solve time at little throughput
// cost; the heuristic is the cheapest and competitive (best on some
// clusters, per the paper's clusters 4/10).
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Table 8: grouping and heuristic under a 60 s solver "
              "budget ===\n\n");
  Table t({"Model", "Cluster", "Method", "Throughput (tok/s)",
           "Solve overhead (s)"});
  for (int cluster_index : {3, 4, 6, 10}) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    CostProvider cost(model, pc.cluster, CostMode::kFitted);
    struct Method {
      const char* name;
      SolverKind solver;
      int group;
    };
    for (const Method& method : {Method{"Group=2", SolverKind::kIlp, 2},
                                 Method{"Group=1", SolverKind::kIlp, 1},
                                 Method{"Heuristic", SolverKind::kHeuristic, 0}}) {
      AssignerOptions opt;
      opt.solver = method.solver;
      opt.group_size = method.group;
      opt.ilp_time_limit_s = 60.0;
      opt.ilp_refine_top = 1;  // the 60 s budget goes to the top combo
      opt.max_orderings = 4;
      const AssignerResult r = assign(cost, opt);
      const SimResult sim = simulate_plan(model, pc.cluster, r.plan);
      t.add_row({pc.model_name, std::to_string(cluster_index), method.name,
                 sim.ok ? Table::fmt(sim.throughput_tokens_per_s) : "-",
                 Table::fmt(r.stats.solve_time_s)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: the heuristic reaches the same throughput at a "
              "fraction of the solver overhead; the ILP burns its budget "
              "whenever it cannot prove optimality (the paper saw the same "
              "with Gurobi on cluster 4).\n");
  return 0;
}
