// Reproduces Table 8: optimizer scalability — exact ILP at group=1 vs
// group=2 vs the bitwidth-transfer heuristic, under a fixed solver budget,
// on clusters 3, 4, 6 and 10. Reports resulting throughput and solve
// overhead. Expected shape: grouping cuts solve time at little throughput
// cost; the heuristic is the cheapest and competitive (best on some
// clusters, per the paper's clusters 4/10).
//
// Flags:
//   --clusters 3,4     subset of paper clusters to run (default: 3,4,6,10)
//   --methods a,b      subset of group=2,group=1,heuristic (default: all)
//   --budget SECONDS   ILP solver budget per method (default: 60)
//   --json PATH        also write the rows as "llmpq-bench/v1" JSON. The
//                      committed baseline keeps the deterministic heuristic
//                      rows only; `solve_s` is informational and never
//                      gated (scripts/check_bench_regression.py).
#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace llmpq;
  using namespace llmpq::bench;

  const ArgParser args(argc, argv);
  for (const std::string& key : args.keys()) {
    if (key != "clusters" && key != "methods" && key != "budget" &&
        key != "json") {
      std::fprintf(stderr,
                   "unknown option --%s (known: --clusters, --methods, "
                   "--budget, --json)\n",
                   key.c_str());
      return 2;
    }
  }

  std::vector<int> clusters;
  if (const auto csv = args.get("clusters")) {
    for (const std::string& tok : split_csv(*csv)) {
      const int c = parse_int_token(tok, "--clusters");
      check_arg(c >= 1 && c <= 11, "--clusters: cluster index out of range");
      clusters.push_back(c);
    }
  } else {
    clusters = {3, 4, 6, 10};
  }

  struct Method {
    std::string name;
    SolverKind solver;
    int group;
  };
  const std::vector<Method> kAllMethods{
      {"Group=2", SolverKind::kIlp, 2},
      {"Group=1", SolverKind::kIlp, 1},
      {"Heuristic", SolverKind::kHeuristic, 0}};
  std::vector<Method> methods;
  if (const auto csv = args.get("methods")) {
    for (const std::string& tok : split_csv(*csv)) {
      bool found = false;
      for (const Method& m : kAllMethods) {
        std::string lower = m.name;
        for (char& c : lower) c = static_cast<char>(std::tolower(c));
        if (tok == lower || tok == m.name) {
          methods.push_back(m);
          found = true;
          break;
        }
      }
      check_arg(found,
                "--methods: expected group=2, group=1 or heuristic");
    }
  } else {
    methods = kAllMethods;
  }

  double budget_s = 60.0;
  if (const auto b = args.get("budget"))
    budget_s = static_cast<double>(parse_int_token(*b, "--budget"));

  std::printf("=== Table 8: grouping and heuristic under a %.0f s solver "
              "budget ===\n\n",
              budget_s);
  Table t({"Model", "Cluster", "Method", "Throughput (tok/s)",
           "Solve overhead (s)"});
  std::vector<ClusterReport> reports;
  for (const int cluster_index : clusters) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    CostProvider cost(model, pc.cluster, CostMode::kFitted);
    ClusterReport report;
    report.cluster_index = cluster_index;
    report.model_name = pc.model_name;
    report.devices = pc.cluster.describe_devices();
    for (const Method& method : methods) {
      AssignerOptions opt;
      opt.solver = method.solver;
      opt.group_size = method.group;
      opt.ilp_time_limit_s = budget_s;
      opt.ilp_refine_top = 1;  // the whole budget goes to the top combo
      opt.max_orderings = 4;
      SchemeRow row;
      row.scheme = method.name;
      try {
        const AssignerResult r = assign(cost, opt);
        row.solve_s = r.stats.solve_time_s;
        const SimResult sim = simulate_plan(model, pc.cluster, r.plan);
        if (sim.ok) {
          row.ok = true;
          row.ppl = plan_ppl(model, r.plan.layer_bits);
          row.latency_s = sim.e2e_latency_s;
          row.throughput = sim.throughput_tokens_per_s;
        } else {
          row.note = sim.error;
        }
      } catch (const InfeasibleError& e) {
        row.note = e.what();
      }
      t.add_row({pc.model_name, std::to_string(cluster_index), method.name,
                 row.ok ? Table::fmt(row.throughput) : "-",
                 Table::fmt(row.solve_s)});
      report.rows.push_back(std::move(row));
    }
    reports.push_back(std::move(report));
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: the heuristic reaches the same throughput at a "
              "fraction of the solver overhead; the ILP burns its budget "
              "whenever it cannot prove optimality (the paper saw the same "
              "with Gurobi on cluster 4).\n");

  int rc = 0;
  if (const auto json_path = args.get("json")) {
    if (write_reports_json(*json_path, "table8_optimizer_speed", reports))
      std::printf("wrote %s\n", json_path->c_str());
    else
      rc = 1;
  }
  return rc;
}
