// Dequant-GEMM microkernel bench: times every available dispatch level
// (scalar / AVX2 / AVX-512) against the scalar reference across the
// bits x format matrix, on a serving-sized decode projection. The
// speedup_vs_scalar numbers are what CI gates (scripts/ci.sh stage_bench
// vs bench/baselines/ext_qgemm_kernels.json) and what calibrated the
// format_kernel_factor table in quant/scheme.cpp — re-run with --json and
// re-bake both when the kernels change.
//
// Kernels are driven directly (qgemm_rows_kernel, single thread) so the
// measurement isolates SIMD gain from thread-pool scaling.
//
// Flags:
//   --json PATH   write a "llmpq-kernels/v1" artifact
//   --min_ms N    minimum measured wall time per cell (default 50)
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/json_writer.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "quant/format.hpp"
#include "quant/qgemm_kernels.hpp"
#include "quant/quantize.hpp"

namespace {

using namespace llmpq;

std::vector<float> random_values(std::size_t n, std::uint64_t seed,
                                 float scale) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = scale * static_cast<float>(rng.normal());
  return v;
}

struct Cell {
  int bits;
  QuantFormat format;
  SimdLevel dispatch;
  double ms_per_call;
  double gflops;
  double speedup_vs_scalar;
};

// Median-of-reps wall time of one full [m x k] * W^T[n x k] pass.
double time_ms(QgemmRowsFn fn, const std::vector<float>& x, std::size_t m,
               std::size_t k, const QuantizedMatrix& w, std::vector<float>& y,
               std::vector<float>& scratch, double min_ms) {
  // Warm up, then grow the repetition count until the batch is long
  // enough to be timer-noise-free.
  fn(x.data(), m, k, w, nullptr, y.data(), 0, w.rows(), scratch.data());
  int reps = 1;
  for (;;) {
    StopwatchNs sw;
    for (int i = 0; i < reps; ++i)
      fn(x.data(), m, k, w, nullptr, y.data(), 0, w.rows(), scratch.data());
    const double ms = static_cast<double>(sw.elapsed_ns()) / 1e6;
    if (ms >= min_ms || reps >= (1 << 20)) return ms / reps;
    reps = ms <= 0.0 ? reps * 8 : reps * 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const double min_ms = std::stod(args.get_or("min_ms", "50"));

  // OPT-350m-scale decode projection: micro-batch 4, [3h x h] at h = 768.
  const std::size_t m = 4, k = 768, n = 3 * 768;
  const auto x = random_values(m * k, 1, 1.0f);
  const auto w = random_values(n * k, 2, 0.05f);
  std::vector<float> y(m * n), scratch(k);
  const double flop = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                      static_cast<double>(k);

  std::vector<SimdLevel> levels;
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kAvx512})
    if (simd_level_available(l)) levels.push_back(l);

  std::printf("dequant-GEMM kernels, [%zu x %zu] * W^T[%zu x %zu], "
              "detected %s\n\n",
              m, k, n, k, simd_level_name(detected_simd_level()));
  std::printf("%5s %12s %8s %10s %9s %9s\n", "bits", "format", "dispatch",
              "ms/call", "GFLOP/s", "vs scalar");

  std::vector<Cell> cells;
  for (const QuantFormat format : kQuantFormats) {
    for (const int bits : {3, 4, 8}) {
      Rng rng(3);
      const QuantizedMatrix qw = QuantizedMatrix::quantize(
          w, n, k, bits, Rounding::kDeterministic, rng, format);
      double scalar_ms = 0.0;
      for (const SimdLevel level : levels) {
        const double ms = time_ms(qgemm_rows_kernel(level), x, m, k, qw, y,
                                  scratch, min_ms);
        if (level == SimdLevel::kScalar) scalar_ms = ms;
        Cell c;
        c.bits = bits;
        c.format = format;
        c.dispatch = level;
        c.ms_per_call = ms;
        c.gflops = flop / (ms * 1e6);
        c.speedup_vs_scalar = scalar_ms / ms;
        cells.push_back(c);
        std::printf("%5d %12s %8s %10.3f %9.2f %8.2fx\n", bits,
                    quant_format_name(format), simd_level_name(level), ms,
                    c.gflops, c.speedup_vs_scalar);
      }
    }
  }

  if (const auto json_path = args.get("json")) {
    std::ofstream os(*json_path);
    if (!os) {
      std::fprintf(stderr, "cannot open %s\n", json_path->c_str());
      return 1;
    }
    JsonWriter jw(os, 1);
    jw.begin_object();
    jw.kv("schema", "llmpq-kernels/v1");
    jw.kv("bench", "ext_qgemm_kernels");
    jw.kv("m", static_cast<std::int64_t>(m));
    jw.kv("n", static_cast<std::int64_t>(n));
    jw.kv("k", static_cast<std::int64_t>(k));
    jw.key("rows");
    jw.begin_array();
    for (const Cell& c : cells) {
      jw.begin_object();
      jw.kv("bits", c.bits);
      jw.kv("format", quant_format_name(c.format));
      jw.kv("dispatch", simd_level_name(c.dispatch));
      jw.kv("ms_per_call", c.ms_per_call);
      jw.kv("gflops", c.gflops);
      jw.kv("speedup_vs_scalar", c.speedup_vs_scalar);
      jw.end_object();
    }
    jw.end_array();
    jw.end_object();
    os << "\n";
    std::printf("\nwrote %s\n", json_path->c_str());
  }
  return 0;
}
