// Reproduces Fig. 9: LLM-PQ vs pure adaptive quantization ("adabits" —
// the latency-blind memory/quality-only assignment of Sec. 6.9). Run on
// clusters 3, 5, 6, 9 (s=512) and cluster 4 (s=128): jointly optimizing
// bits + partition + micro-batching must win everywhere.
#include <cstdio>

#include "common/error.hpp"

#include "common/table.hpp"
#include "core/adabits.hpp"
#include "core/assigner.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Fig 9: LLM-PQ vs pure adaptive quantization ===\n\n");
  Table t({"Cluster", "Model", "adabits (tok/s)", "LLM-PQ (tok/s)",
           "speedup"});
  for (int cluster_index : {3, 4, 5, 6, 9}) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    Workload w;
    if (cluster_index == 4) {
      w.prompt_len = 128;
      w.gen_tokens = 200;
    }
    CostProvider cost(model, pc.cluster, CostMode::kFitted);
    cost.set_workload(w);

    // adabits: identity ordering, even micro-batch, no latency term.
    const IndicatorResult ind =
        compute_indicator(model, IndicatorKind::kVariance);
    std::vector<int> order;
    for (int d = 0; d < pc.cluster.num_devices(); ++d) order.push_back(d);
    const int mb = std::max(1, w.global_batch / pc.cluster.num_devices());
    double ada_tput = 0.0;
    try {
      const ExecutionPlan ada = adabits_plan(cost, ind, order, mb, mb);
      const SimResult sim = simulate_plan(model, pc.cluster, ada);
      if (sim.ok) ada_tput = sim.throughput_tokens_per_s;
    } catch (const InfeasibleError&) {
    }

    AssignerOptions opt;
    opt.solver = SolverKind::kHeuristic;
    const AssignerResult r = assign(cost, opt);
    const SimResult sim = simulate_plan(model, pc.cluster, r.plan);
    const double pq_tput = sim.ok ? sim.throughput_tokens_per_s : 0.0;
    t.add_row({std::to_string(cluster_index), pc.model_name,
               ada_tput > 0 ? Table::fmt(ada_tput) : "-",
               Table::fmt(pq_tput),
               ada_tput > 0 ? Table::fmt_ratio(pq_tput / ada_tput) : "-"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: LLM-PQ >= adabits in every cluster.\n");
  return 0;
}
