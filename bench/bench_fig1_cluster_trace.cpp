// Reproduces Fig. 1: GPU portions and monthly utilization rates in a
// production AI cluster (synthetic trace standing in for the proprietary
// one — the motivating observation is that high-calibre GPUs are scarce
// and saturated while the plentiful inference GPUs idle).
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "hw/trace.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Fig 1: production cluster composition & utilization ===\n\n");
  Rng rng(2024);
  const ClusterTrace trace = generate_cluster_trace(rng, 30);

  std::printf("(a) GPU portions of the fleet\n");
  Table portions({"GPU", "Share (%)"});
  for (const auto& s : trace.shares)
    portions.add_row({s.gpu_name, Table::fmt(100.0 * s.fraction, 1)});
  std::printf("%s\n", portions.to_string().c_str());

  std::printf("(b) average utilization over one month\n");
  Table util({"GPU", "Avg utilization (%)", "Min day (%)", "Max day (%)"});
  for (const auto& s : average_utilization(trace)) {
    double lo = 1.0, hi = 0.0;
    for (const auto& sample : trace.samples) {
      if (sample.gpu_name != s.gpu_name) continue;
      lo = std::min(lo, sample.util);
      hi = std::max(hi, sample.util);
    }
    util.add_row({s.gpu_name, Table::fmt(100.0 * s.mean_utilization, 1),
                  Table::fmt(100.0 * lo, 1), Table::fmt(100.0 * hi, 1)});
  }
  std::printf("%s", util.to_string().c_str());
  std::printf("\nshape check: A100 utilization should be several times the "
              "T4/P100 utilization while T4 dominates the fleet.\n");
  return 0;
}
