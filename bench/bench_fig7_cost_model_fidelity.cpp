// Reproduces Fig. 7: fidelity of the cost models. Memory: predicted
// weights+KV vs the simulator's accounting over randomized mixed-precision
// workloads (error should be ~0). Latency: the fitted regression vs
// ground-truth kernel time on 50 *unseen* workloads per device (paper:
// average error < 6%).
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "cost/ground_truth.hpp"
#include "cost/latency_model.hpp"
#include "cost/mem_model.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Fig 7: cost model fidelity ===\n\n");
  Rng rng(42);

  // ---- Memory model across models/workloads (weights + KV, as in 6.2).
  std::printf("memory cost model (predicted vs accounted, weights+KV)\n");
  Table mem_table({"Model", "Samples", "Mean |err| (%)", "Max |err| (%)"});
  for (const char* name :
       {"bloom-560m", "bloom-1b7", "opt-13b", "opt-30b", "opt-66b"}) {
    const ModelSpec& m = model_registry_get(name);
    RunningStats err;
    for (int trial = 0; trial < 40; ++trial) {
      Workload w;
      w.prompt_len = static_cast<int>(rng.uniform_int(128, 512));
      w.global_batch = static_cast<int>(1 << rng.uniform_int(1, 3));
      w.gen_tokens = static_cast<int>(rng.uniform_int(100, 200));
      std::vector<int> bits;
      for (int i = 0; i < m.layers; ++i)
        bits.push_back(
            kBitCandidates[static_cast<std::size_t>(rng.uniform_int(0, 3))]);
      // Prediction: analytic model. "Measurement": independent per-layer
      // accounting of packed weights + reserved cache.
      const StageMemory predicted =
          stage_memory(m, bits, w, 1, 1, false, false);
      std::int64_t measured = 0;
      for (int i = 0; i < m.layers; ++i) {
        measured += layer_weight_bytes(m, bits[static_cast<std::size_t>(i)]);
        measured += layer_kv_bytes(m, w.global_batch, w.max_seq_len());
      }
      const double rel =
          std::fabs(static_cast<double>(predicted.weights +
                                        predicted.kv_cache - measured)) /
          static_cast<double>(measured);
      err.add(100.0 * rel);
    }
    mem_table.add_row({name, "40", Table::fmt(err.mean(), 4),
                       Table::fmt(err.max(), 4)});
  }
  std::printf("%s\n", mem_table.to_string().c_str());

  // ---- Latency model on unseen workloads (paper Sec 6.2's setup).
  std::printf("latency cost model on 50 unseen workloads per device\n");
  Table lat_table({"GPU", "Mean |err| (%)", "P95 |err| (%)", "Max |err| (%)"});
  const ModelSpec& m = model_registry_get("opt-30b");
  for (const char* gpu_name :
       {"T4-16G", "V100-32G", "P100-12G", "A100-40G", "A800-80G"}) {
    const GpuSpec& gpu = gpu_registry_get(gpu_name);
    LatencyModel lm(m);
    lm.fit(profile_device(m, gpu));
    std::vector<double> errs;
    for (int trial = 0; trial < 50; ++trial) {
      const int bits =
          kBitCandidates[static_cast<std::size_t>(rng.uniform_int(0, 3))];
      const int batch = 2 * static_cast<int>(rng.uniform_int(1, 3)) + 1;
      const bool prefill = rng.uniform() < 0.5;
      const int seq = prefill ? static_cast<int>(rng.uniform_int(96, 640))
                              : (rng.uniform() < 0.5 ? 384 : 768);
      const double pred =
          lm.predict(gpu.name, bits,
                     prefill ? Phase::kPrefill : Phase::kDecode, batch, seq);
      const double truth = layer_time_ground_truth(
          gpu, m, prefill ? prefill_shape(batch, seq) : decode_shape(batch, seq),
          bits);
      errs.push_back(100.0 * std::fabs(pred - truth) / truth);
    }
    lat_table.add_row({gpu_name, Table::fmt(mean(errs)),
                       Table::fmt(percentile(errs, 95)),
                       Table::fmt(percentile(errs, 100))});
  }
  std::printf("%s", lat_table.to_string().c_str());
  std::printf("\npaper reference: memory error negligible, average latency "
              "error < 6%%.\n");
  return 0;
}
