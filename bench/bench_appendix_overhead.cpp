// Reproduces appendix Tables 9/10: the per-cluster solver configuration
// (theta, grouping, heuristic) and the end-to-end plan-generation overhead
// for every cluster 1-11, plus the average and the slowest cluster.
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Tables 9/10: solver setup and plan-generation overhead "
              "per cluster ===\n\n");
  Table t({"Cluster", "Model", "Solver", "theta", "Combos", "ILP nodes",
           "Overhead (s)"});
  double total = 0.0, slowest = 0.0;
  int n = 0;
  for (int cluster_index = 1; cluster_index <= 11; ++cluster_index) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    CostProvider cost(model, pc.cluster, CostMode::kFitted);

    AssignerOptions opt;
    // Table 9: heuristic for clusters 4, 5, 10, 11, ILP elsewhere (we run
    // the ILP where our branch-and-bound affords it, heuristic otherwise).
    switch (cluster_index) {
      case 1:
      case 2:
        opt.solver = SolverKind::kIlp;
        opt.group_size = 1;
        opt.ilp_time_limit_s = 10.0;
        break;
      case 3:
        opt.solver = SolverKind::kIlp;
        opt.group_size = 2;
        opt.ilp_time_limit_s = 10.0;
        opt.ilp_refine_top = 1;
        break;
      default:
        opt.solver = SolverKind::kHeuristic;
    }
    switch (cluster_index) {
      case 4: opt.theta = 1000; break;
      case 5: opt.theta = 50; break;
      case 6: opt.theta = 100; break;
      case 7: case 8: case 11: opt.theta = 10; break;
      default: opt.theta = 1; break;
    }
    opt.max_orderings = 6;
    const AssignerResult r = assign(cost, opt);
    total += r.stats.solve_time_s;
    slowest = std::max(slowest, r.stats.solve_time_s);
    ++n;
    t.add_row({std::to_string(cluster_index), pc.model_name,
               r.stats.solver_used, Table::fmt(opt.theta, 0),
               std::to_string(r.stats.combos_tried),
               std::to_string(r.stats.ilp_nodes),
               Table::fmt(r.stats.solve_time_s)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nAVG %.2f s, SLOWEST %.2f s (paper: avg 18.4 s, slowest "
              "116.0 s with Gurobi-scale ILPs)\n",
              total / n, slowest);
  return 0;
}
