// Ablations of the three design choices DESIGN.md calls out, on the
// heterogeneous clusters 3, 4 and 6:
//   (1) phase-aware objective  — plan as if generation were 1 token
//       (prefill-only, PipeEdge's view), then serve the real workload;
//   (2) adaptive mixed precision — collapse the plan's bitwidths to the
//       single lowest width it used, keeping the partition;
//   (3) hybrid micro-batch sizing — force one shared micro-batch size for
//       both phases (global batch / stages).
// Each ablated plan is re-simulated under the full workload.
#include <algorithm>
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace llmpq;

double simulate_tput(const ModelSpec& model, const ClusterSpec& cluster,
                     const ExecutionPlan& plan) {
  const SimResult sim = simulate_plan(model, cluster, plan);
  return sim.ok ? sim.throughput_tokens_per_s : 0.0;
}

}  // namespace

int main() {
  using namespace llmpq;
  std::printf("=== Ablation: phase awareness, adaptive precision, hybrid "
              "micro-batching ===\n\n");
  Table t({"Cluster", "Full LLM-PQ", "no phase-aware", "no mixed-precision",
           "no hybrid micro-batch"});
  for (int cluster_index : {3, 4, 6}) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    const Workload full;
    AssignerOptions opt;
    opt.solver = SolverKind::kHeuristic;
    opt.theta = 1.0;

    // Full system.
    CostProvider cost(model, pc.cluster, CostMode::kFitted);
    cost.set_workload(full);
    const AssignerResult full_plan = assign(cost, opt);
    const double tput_full = simulate_tput(model, pc.cluster, full_plan.plan);

    // (1) Phase-blind: plan against a 2-token generation (decode term
    // vanishes), then run the real workload with that partition/bits.
    Workload blind = full;
    blind.gen_tokens = 2;
    CostProvider blind_cost(model, pc.cluster, CostMode::kFitted);
    blind_cost.set_workload(blind);
    const AssignerResult blind_plan = assign(blind_cost, opt);
    ExecutionPlan degraded = blind_plan.plan;
    degraded.workload = full;
    degraded.decode_micro_batch =
        std::max(1, full.global_batch / pc.cluster.num_devices());
    const double tput_blind = simulate_tput(model, pc.cluster, degraded);

    // (2) Uniform-precision: keep partition and micro-batches, quantize
    // every layer to the lowest width the adaptive plan used (the uniform
    // setting guaranteed to still fit).
    ExecutionPlan uniform = full_plan.plan;
    const int min_bits = *std::min_element(uniform.layer_bits.begin(),
                                           uniform.layer_bits.end());
    std::fill(uniform.layer_bits.begin(), uniform.layer_bits.end(), min_bits);
    const double tput_uniform = simulate_tput(model, pc.cluster, uniform);

    // (3) Single micro-batch size for both phases.
    ExecutionPlan mono = full_plan.plan;
    mono.prefill_micro_batch =
        std::max(1, full.global_batch / pc.cluster.num_devices());
    mono.decode_micro_batch = mono.prefill_micro_batch;
    const double tput_mono = simulate_tput(model, pc.cluster, mono);

    auto cell = [&](double v) {
      return v > 0 ? Table::fmt(v) + " (" +
                         Table::fmt_ratio(v / tput_full) + ")"
                   : std::string("OOM");
    };
    t.add_row({std::to_string(cluster_index), Table::fmt(tput_full),
               cell(tput_blind), cell(tput_uniform), cell(tput_mono)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\n(ratios < 1.00x quantify what each design element "
              "contributes. Caveats: uniform-low-bit can be faster at a "
              "quality cost — pair with Table 4's PPL columns; the "
              "phase-blind column can sit within the bitwidth-transfer "
              "heuristic's ~5%% local-search tolerance on small clusters, "
              "but OOMs outright where decode-phase memory pressure "
              "matters.)\n");
  return 0;
}
