// Extension bench: multi-tenant SLO-aware fair-share serving on an LLM-PQ
// plan. Three tenant profiles share one cluster under virtual-time
// weighted fair sharing (serve/scheduler.hpp, DESIGN.md "Multi-tenant
// serving & fair sharing"):
//
//   interactive  weight 4, tight SLO     — chat-style traffic
//   standard     weight 2, moderate SLO  — API traffic
//   batch        weight 1, loose SLO     — offline jobs, served on the
//                degraded-bit class-1 engine variant in the live leg
//
// Leg 1 (gated): the deterministic virtual-clock simulator serves a
// trace-driven tenant workload (hw/trace.hpp utilization modulates the
// Poisson rate) through continuous batching with the starvation bound
// armed. Per-tenant rows are diffed against
// bench/baselines/ext_multi_tenant.json, and CI floors the min-tenant SLO
// attainment (--floor-value) so no tenant can be starved to prop up the
// aggregate. The same leg scales to the nightly 10^6-request smoke
// (--requests 1000000: decision log off, bounded admission scan).
//
// Leg 2 (reported, not gated — wall clock): the same tenant mix served
// live through OnlineEngine on a tiny real pipeline, with the batch
// tenant's class routed to a DegradeLadder engine variant
// (OnlineEngineOptions::class_engine). Skipped with --live 0, which is
// how the baseline is generated.
//
// Flags:
//   --json PATH      write the "llmpq-bench/v1" artifact CI diffs
//   --slo-json PATH  write the per-tenant SLO attainment export the
//                    nightly scale smoke archives
//   --requests N     simulator leg request count        (default 20000)
//   --live N         live-leg request count, 0 = skip   (default 2000)
//   --rate R         base arrival rate, req/s           (default 2.0)
//   --seed S         workload seed                      (default 2024)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/json_writer.hpp"
#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "runtime/transformer.hpp"
#include "serve/degrade.hpp"
#include "serve/online_engine.hpp"
#include "sim/online_sim.hpp"

namespace {

using namespace llmpq;

std::vector<TenantSpec> tenant_mix() {
  TenantSpec interactive;
  interactive.id = 1;
  interactive.name = "interactive";
  interactive.weight = 4.0;
  interactive.slo_s = 60.0;
  TenantSpec standard;
  standard.id = 2;
  standard.name = "standard";
  standard.weight = 2.0;
  standard.slo_s = 180.0;
  TenantSpec batch;
  batch.id = 3;
  batch.name = "batch";
  batch.weight = 1.0;
  batch.slo_s = 900.0;
  batch.default_class = 1;  // live leg: degraded-bit engine variant
  return {interactive, standard, batch};
}

/// One per-tenant measurement row. ppl/latency_s/throughput_tok_s are the
/// gated triple (see scripts/check_bench_regression.py); slo_attainment is
/// gated separately via --floor-value on the min-tenant row.
struct TenantRow {
  std::string scheme;
  bool ok = false;
  std::string note;
  double ppl = 0.0;
  double latency_s = 0.0;  ///< mean, completed requests of this tenant
  double throughput = 0.0; ///< tenant tokens_out / run makespan
  double p99_s = 0.0;
  double slo_attainment = 0.0;
};

struct LegReport {
  int index = 0;
  std::string tag;
  std::vector<TenantRow> rows;
};

std::vector<TenantRow> rows_from_summaries(
    const std::vector<TenantSummary>& sums, double makespan_s, double ppl,
    const std::string& note) {
  std::vector<TenantRow> rows;
  const TenantSummary* worst = nullptr;
  for (const TenantSummary& ts : sums) {
    TenantRow row;
    row.scheme = ts.name.empty() ? "tenant-" + std::to_string(ts.tenant)
                                 : ts.name;
    row.ok = ts.submitted > 0;
    row.note = note;
    row.ppl = ppl;
    row.latency_s = ts.latency.mean_s;
    row.p99_s = ts.latency.p99_s;
    row.throughput = makespan_s > 0.0
                         ? static_cast<double>(ts.tokens_out) / makespan_s
                         : 0.0;
    row.slo_attainment = ts.slo_attainment;
    rows.push_back(row);
    if (worst == nullptr || ts.slo_attainment < worst->slo_attainment)
      worst = &ts;
  }
  if (worst != nullptr) {
    // The fairness-floor row CI gates with --floor-value: the worst
    // tenant's numbers under its own scheme name, re-keyed "min-tenant".
    TenantRow floor;
    floor.scheme = "min-tenant";
    floor.ok = worst->submitted > 0;
    floor.note = "worst attainment: " +
                 (worst->name.empty() ? std::to_string(worst->tenant)
                                      : worst->name);
    floor.ppl = ppl;
    floor.latency_s = worst->latency.mean_s;
    floor.p99_s = worst->latency.p99_s;
    floor.throughput = makespan_s > 0.0
                           ? static_cast<double>(worst->tokens_out) /
                                 makespan_s
                           : 0.0;
    floor.slo_attainment = worst->slo_attainment;
    rows.push_back(floor);
  }
  return rows;
}

bool write_json_artifact(const std::string& path, const std::string& model,
                         const std::string& devices,
                         const std::vector<LegReport>& reports) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  JsonWriter w(os, /*indent=*/1);
  w.begin_object();
  w.kv("schema", "llmpq-bench/v1");
  w.kv("bench", "ext_multi_tenant");
  w.key("clusters");
  w.begin_array();
  for (const LegReport& rep : reports) {
    w.begin_object();
    w.kv("cluster", rep.index);
    w.kv("model", model);
    w.kv("devices", devices + " " + rep.tag);
    w.key("rows");
    w.begin_array();
    for (const TenantRow& row : rep.rows) {
      w.begin_object();
      w.kv("scheme", row.scheme);
      w.kv("ok", row.ok);
      w.kv("note", row.note);
      w.kv("ppl", row.ppl);
      w.kv("latency_s", row.latency_s);
      w.kv("throughput_tok_s", row.throughput);
      w.kv("p99_s", row.p99_s);
      w.kv("slo_attainment", row.slo_attainment);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  os.flush();
  return static_cast<bool>(os);
}

/// Per-tenant SLO export for the nightly scale smoke: one row per tenant
/// plus the run's conservation totals, so a regression in fairness or
/// accounting is visible in the archived artifact without re-running.
bool write_slo_json(const std::string& path, int requests, double rate,
                    long seed, const OnlineSimResult& res) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  JsonWriter w(os, /*indent=*/1);
  w.begin_object();
  w.kv("schema", "llmpq-tenant-slo/v1");
  w.kv("requests", requests);
  w.kv("base_rate_per_s", rate);
  w.kv("seed", static_cast<double>(seed));
  w.kv("makespan_s", res.makespan_s);
  w.kv("completed", res.completed);
  w.kv("timed_out", res.timed_out);
  w.kv("rejected", res.rejected);
  w.kv("failed", res.failed);
  w.kv("preemptions", res.preemptions);
  w.kv("forced_joins", res.forced_joins);
  w.kv("min_slo_attainment", min_slo_attainment(res.tenants));
  w.key("tenants");
  w.begin_array();
  for (const TenantSummary& ts : res.tenants) {
    w.begin_object();
    w.kv("tenant", ts.tenant);
    w.kv("name", ts.name);
    w.kv("weight", ts.weight);
    w.kv("slo_s", ts.slo_s);
    w.kv("submitted", ts.submitted);
    w.kv("completed", ts.completed);
    w.kv("timed_out", ts.timed_out);
    w.kv("rejected", ts.rejected);
    w.kv("failed", ts.failed);
    w.kv("tokens_out", static_cast<double>(ts.tokens_out));
    w.kv("mean_latency_s", ts.latency.mean_s);
    w.kv("p99_latency_s", ts.latency.p99_s);
    w.kv("slo_attainment", ts.slo_attainment);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  os.flush();
  return static_cast<bool>(os);
}

void print_rows(Table& t, const std::string& leg,
                const std::vector<TenantRow>& rows) {
  for (const TenantRow& row : rows)
    t.add_row({leg, row.scheme, row.ok ? Table::fmt(row.throughput) : "-",
               row.ok ? Table::fmt(row.latency_s) : "-",
               row.ok ? Table::fmt(row.p99_s) : "-",
               row.ok ? Table::fmt(row.slo_attainment) : "-"});
}

ModelSpec tiny_spec() {
  ModelSpec m;
  m.name = "tiny-serve";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 6;
  m.vocab = 96;
  m.max_pos = 160;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llmpq;

  const ArgParser args(argc, argv);
  for (const std::string& key : args.keys()) {
    if (key != "json" && key != "slo-json" && key != "requests" &&
        key != "live" && key != "rate" && key != "seed") {
      std::fprintf(stderr,
                   "unknown option --%s (known: --json --slo-json "
                   "--requests --live --rate --seed)\n",
                   key.c_str());
      return 2;
    }
  }
  const int requests = static_cast<int>(args.get_long("requests", 20000));
  const int live = static_cast<int>(args.get_long("live", 2000));
  const double rate = args.get_double("rate", 2.0);
  const long seed = args.get_long("seed", 2024);

  std::printf("=== Extension: multi-tenant SLO-aware serving ===\n\n");

  const std::vector<TenantSpec> tenants = tenant_mix();
  const std::vector<double> load = {0.2, 0.3, 0.5};  // batch-heavy mix

  const PaperCluster pc = paper_cluster(3);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  AssignerOptions aopt;
  aopt.solver = SolverKind::kHeuristic;
  const AssignerResult planned = assign(cost, aopt);
  const double ppl = plan_ppl(model, planned.plan.layer_bits);

  // ---- Leg 1: deterministic virtual-clock simulator (gated).
  Rng trng(static_cast<std::uint64_t>(seed));
  const ClusterTrace trace = generate_cluster_trace(trng, 10);
  Rng wrng(static_cast<std::uint64_t>(seed) + 1);
  const auto reqs = generate_tenant_workload(wrng, trace, tenants, requests,
                                             rate, load, 256, 64);

  OnlineSimOptions sopt;
  sopt.policy = SchedulerPolicy::kIterationLevel;
  sopt.exec = DecodeExec::kContinuous;
  sopt.max_batch = 16;
  sopt.kv_page_size = 16;
  sopt.kv_pages = 512;
  sopt.tenants = tenants;
  // join_starvation_rounds stays auto (16 with tenants configured).
  // Scale levers for the nightly 10^6-request smoke: no decision log,
  // bounded waiting-list scan. Both are decision-neutral at this batch
  // size, so the CI-sized run and the scale run share one baseline shape.
  sopt.record_decisions = false;
  sopt.admit_scan_limit = 256;

  const OnlineSimResult sim =
      simulate_online(model, pc.cluster, planned.plan, reqs, sopt);
  if (!sim.ok) {
    std::fprintf(stderr, "simulator leg failed: %s\n", sim.error.c_str());
    return 1;
  }

  std::printf(
      "sim leg: %d requests @ base %.1f req/s on cluster 3 (%s)\n"
      "  completed %d, timed_out %d, rejected %d, failed %d, "
      "preemptions %d, forced_joins %d, makespan %.1fs\n\n",
      requests, rate, pc.cluster.describe_devices().c_str(), sim.completed,
      sim.timed_out, sim.rejected, sim.failed, sim.preemptions,
      sim.forced_joins, sim.makespan_s);

  std::vector<LegReport> reports;
  LegReport sim_rep;
  sim_rep.index = 1;
  sim_rep.tag = "@ sim, base rate " + Table::fmt(rate, 1) + " req/s, " +
                std::to_string(requests) + " requests";
  sim_rep.rows = rows_from_summaries(sim.tenants, sim.makespan_s, ppl, "");
  reports.push_back(sim_rep);

  Table t({"Leg", "Tenant", "Throughput (tok/s)", "Mean latency (s)",
           "P99 (s)", "SLO attainment"});
  print_rows(t, "sim", sim_rep.rows);

  // ---- Leg 2: live serving through OnlineEngine with per-class engine
  // routing (wall clock — reported, never gated).
  if (live > 0) {
    const ModelSpec spec = tiny_spec();
    const std::vector<std::pair<int, int>> stages = {{0, 3}, {3, 6}};
    const std::vector<int> bits(static_cast<std::size_t>(spec.layers), 8);
    ModelWeights weights = build_random_model(spec, bits, 2024);
    PipelineEngine engine(weights, stages, 2, 2);
    // Class 1 (the batch tenant) executes on the first degradation rung —
    // the adaptive-quantization story applied per request class.
    DegradeLadder ladder(
        spec, stages, 2024,
        default_degrade_ladder(bits, QuantFormat::kPerChannel, 2, 2));

    OnlineEngineOptions eopt;
    eopt.scheduler.policy = SchedulerPolicy::kIterationLevel;
    eopt.scheduler.exec = DecodeExec::kContinuous;
    eopt.scheduler.max_batch = 8;
    eopt.scheduler.kv_page_size = 16;
    eopt.scheduler.kv_pages = 256;
    eopt.scheduler.tenants = tenants;
    eopt.scheduler.record_decisions = false;
    eopt.class_engine = [&ladder](int cls) {
      return ladder.engine_for_level(cls);
    };

    OnlineEngine server(engine, eopt);
    Rng prng(static_cast<std::uint64_t>(seed) + 2);
    Rng lrng(static_cast<std::uint64_t>(seed) + 3);
    const auto live_reqs =
        generate_tenant_workload(lrng, trace, tenants, live, 1.0, load, 24, 8);
    for (const OnlineRequest& r : live_reqs) {
      std::vector<TokenId> prompt;
      const int len = std::max(4, r.prompt_len % 24);
      for (int k = 0; k < len; ++k)
        prompt.push_back(
            static_cast<TokenId>(prng.uniform_int(0, spec.vocab - 1)));
      server.submit(std::move(prompt), std::max(2, r.gen_tokens % 8),
                    r.tenant_id, r.req_class);
    }
    server.close();
    const OnlineReport rep = server.wait();
    std::printf("live leg: %d requests through OnlineEngine "
                "(class 1 -> degraded-bit variant): completed %d, "
                "preemptions %d, makespan %.2fs\n\n",
                live, rep.completed, rep.preemptions, rep.makespan_s);

    LegReport live_rep;
    live_rep.index = 2;
    live_rep.tag = "@ live tiny-pipeline (wall clock, ungated), " +
                   std::to_string(live) + " requests";
    live_rep.rows = rows_from_summaries(rep.tenants, rep.makespan_s, 0.0,
                                        "wall clock, not gated");
    reports.push_back(live_rep);
    print_rows(t, "live", live_rep.rows);
  }

  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: the weight-4 interactive tenant sees the "
              "lowest latency, every tenant clears its own SLO floor "
              "(weighted fair sharing plus the starvation bound keep the "
              "batch tenant from being starved out), and the per-class "
              "routing serves the batch tenant on a cheaper engine "
              "variant without changing batching decisions.\n");

  int rc = 0;
  if (const auto json_path = args.get("json")) {
    if (write_json_artifact(*json_path, pc.model_name,
                            pc.cluster.describe_devices(), reports))
      std::printf("wrote %s\n", json_path->c_str());
    else
      rc = 1;
  }
  if (const auto slo_path = args.get("slo-json")) {
    if (write_slo_json(*slo_path, requests, rate, seed, sim))
      std::printf("wrote %s\n", slo_path->c_str());
    else
      rc = 1;
  }
  return rc;
}
