// Reproduces Table 4: serving performance on the heterogeneous clusters
// 1-8 (PPL / end-to-end latency / token throughput for LLM-PQ vs PipeEdge,
// Uniform, FlexGen and FlexGen-int8) under the default workload: prompts
// padded to 512 tokens, batch 32, 100 generated tokens.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace llmpq;
  using namespace llmpq::bench;
  std::printf("=== Table 4: serving in heterogeneous clusters "
              "(s=512, n=100, batch=32) ===\n\n");
  Workload w;  // defaults match the paper
  double speedup_sum = 0.0;
  int speedup_n = 0;
  for (int cluster = 1; cluster <= 8; ++cluster) {
    const ClusterReport report = evaluate_cluster(cluster, w);
    print_report(report);
    const SchemeRow* pq = report.find("LLM-PQ");
    const SchemeRow* pe = report.find("PipeEdge");
    if (pq != nullptr && pe != nullptr && pq->ok && pe->ok) {
      speedup_sum += pq->throughput / pe->throughput;
      ++speedup_n;
    }
  }
  if (speedup_n > 0)
    std::printf("LLM-PQ mean throughput speedup vs PipeEdge over %d "
                "clusters: %.2fx\n",
                speedup_n, speedup_sum / speedup_n);
  return 0;
}
