// Reproduces Table 4: serving performance on the heterogeneous clusters
// 1-8 (PPL / end-to-end latency / token throughput for LLM-PQ vs PipeEdge,
// Uniform, FlexGen and FlexGen-int8) under the default workload: prompts
// padded to 512 tokens, batch 32, 100 generated tokens.
//
// Flags:
//   --clusters 1,2,5   subset of paper clusters to run (default: 1-8)
//   --json PATH        also write the rows as "llmpq-bench/v1" JSON — the
//                      artifact CI's bench-regression gate diffs against
//                      bench/baselines/ (scripts/check_bench_regression.py)
//   --trace PATH       record the simulated timelines as Chrome trace JSON
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/trace.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace llmpq;
  using namespace llmpq::bench;

  const ArgParser args(argc, argv);
  for (const std::string& key : args.keys()) {
    if (key != "clusters" && key != "json" && key != "trace") {
      std::fprintf(stderr,
                   "unknown option --%s (known: --clusters, --json, "
                   "--trace)\n",
                   key.c_str());
      return 2;
    }
  }

  std::vector<int> clusters;
  if (const auto csv = args.get("clusters")) {
    for (const std::string& tok : split_csv(*csv)) {
      const int c = parse_int_token(tok, "--clusters");
      check_arg(c >= 1 && c <= 11, "--clusters: cluster index out of range");
      clusters.push_back(c);
    }
  } else {
    for (int c = 1; c <= 8; ++c) clusters.push_back(c);
  }

  const auto trace_path = args.get("trace");
  if (trace_path) TraceSession::instance().start();

  std::printf("=== Table 4: serving in heterogeneous clusters "
              "(s=512, n=100, batch=32) ===\n\n");
  Workload w;  // defaults match the paper
  double speedup_sum = 0.0;
  int speedup_n = 0;
  std::vector<ClusterReport> reports;
  for (const int cluster : clusters) {
    ClusterReport report = evaluate_cluster(cluster, w);
    print_report(report);
    const SchemeRow* pq = report.find("LLM-PQ");
    const SchemeRow* pe = report.find("PipeEdge");
    if (pq != nullptr && pe != nullptr && pq->ok && pe->ok) {
      speedup_sum += pq->throughput / pe->throughput;
      ++speedup_n;
    }
    reports.push_back(std::move(report));
  }
  if (speedup_n > 0)
    std::printf("LLM-PQ mean throughput speedup vs PipeEdge over %d "
                "clusters: %.2fx\n",
                speedup_n, speedup_sum / speedup_n);

  int rc = 0;
  if (const auto json_path = args.get("json")) {
    if (write_reports_json(*json_path, "table4_hetero_serving", reports))
      std::printf("wrote %s\n", json_path->c_str());
    else
      rc = 1;
  }
  if (trace_path) {
    TraceSession::instance().stop();
    if (TraceSession::instance().write_chrome_trace_file(*trace_path))
      std::printf("wrote %s\n", trace_path->c_str());
    else
      rc = 1;
  }
  return rc;
}
