// google-benchmark micro benchmarks for the optimization substrates:
// simplex LP solves, MILP branch-and-bound, the partition DP and MCKP —
// the planner's inner loops.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "solver/dp_partition.hpp"
#include "solver/mckp.hpp"
#include "solver/milp.hpp"

namespace {

using namespace llmpq;

LpProblem random_lp(int vars, int rows, std::uint64_t seed) {
  Rng rng(seed);
  LpProblem p;
  for (int j = 0; j < vars; ++j)
    p.add_var(0.0, rng.uniform(1.0, 4.0), rng.uniform(-2.0, 2.0));
  for (int i = 0; i < rows; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < vars; ++j)
      if (rng.uniform() < 0.4) coeffs.push_back({j, rng.uniform(-1.0, 1.0)});
    if (coeffs.empty()) coeffs.push_back({0, 1.0});
    p.add_row(std::move(coeffs), LpProblem::RowType::kLe,
              rng.uniform(1.0, 6.0));
  }
  return p;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LpProblem p = random_lp(n, n / 2, 7);
  for (auto _ : state) {
    const LpSolution s = solve_lp(p);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  MilpProblem p;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < n; ++i) {
    const int v = p.lp.add_binary(-rng.uniform(1.0, 2.0));
    p.integer_vars.push_back(v);
    row.push_back({v, rng.uniform(1.0, 3.0)});
  }
  p.lp.add_row(std::move(row), LpProblem::RowType::kLe, n / 3.0);
  MilpOptions opt;
  opt.time_limit_s = 5.0;
  for (auto _ : state) {
    const MilpSolution s = solve_milp(p, opt);
    benchmark::DoNotOptimize(s.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(12)->Arg(20);

void BM_PartitionDp(benchmark::State& state) {
  const int layers = static_cast<int>(state.range(0));
  const auto cost = [](int b, int e, int dev) {
    return static_cast<double>(e - b) * (1.0 + 0.3 * dev);
  };
  for (auto _ : state) {
    const PartitionResult r = partition_min_max(layers, 8, cost);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_PartitionDp)->Arg(48)->Arg(96);

void BM_Mckp(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<MckpOption>> items;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    std::vector<MckpOption> opts;
    for (int o = 0; o < 4; ++o)
      opts.push_back({rng.uniform_int(1 << 20, 1 << 26), rng.uniform(0, 3)});
    items.push_back(std::move(opts));
  }
  for (auto _ : state) {
    const MckpResult r = solve_mckp(items, 1LL << 30);
    benchmark::DoNotOptimize(r.total_value);
  }
}
BENCHMARK(BM_Mckp)->Arg(24)->Arg(70);

}  // namespace

BENCHMARK_MAIN();
