// Extension bench (paper Sec. 2.3 / Sec. 7): LLM-PQ plans under *online*
// load. Reports (a) the ShareGPT-shaped prompt-length distribution that
// motivates phase awareness (Sec 2.1), and (b) continuous-batching serving
// over the same LLM-PQ plan across arrival rates: static batching vs
// ORCA-style iteration-level scheduling, with the iteration-level decode
// executed both ways — the historical replay strategy (one prefill-shaped
// pass over the padded contexts per generated token) and the step-level
// session strategy over the paged KV cache (one decode-shaped pass per
// token) — plus fully continuous batching (kContinuous), where arrivals
// join the running decode batch mid-flight instead of waiting for it to
// drain. The session-vs-replay throughput ratio is the headline number
// the KV-reuse work is gated on; continuous-vs-static at the highest
// arrival rate is the floor CI gates the continuous-batching work on.
//
// Slot 4 is the self-healing row pair: the same plan served while one
// stage drags under an injected kSlow straggler, once tolerating the drag
// (straggler-tolerate) and once with the health-monitor + re-planner
// control loop migrating layers off the slow stage mid-run
// (straggler-replan). CI floors straggler-replan >= straggler-tolerate,
// pinning "the control loop never makes a degraded run worse".
//
// Flags:
//   --json PATH   also write the rows as "llmpq-bench/v1" JSON — the
//                 artifact CI's bench-regression gate diffs against
//                 bench/baselines/ext_online_serving.json. All rows come
//                 from the deterministic simulator, so the artifact is
//                 reproducible and every row is gated.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/json_writer.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/online_sim.hpp"

namespace {

using namespace llmpq;

/// One (rate, scheme) measurement. Mirrors the harness SchemeRow fields the
/// regression gate checks (ppl / latency_s / throughput_tok_s) and adds the
/// tail-latency percentiles this bench exists to report; extra fields ride
/// along ungated.
struct ServingRow {
  std::string scheme;
  bool ok = false;
  std::string note;
  double ppl = 0.0;
  double latency_s = 0.0;  ///< mean, arrival -> last token
  double throughput = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
};

struct RateReport {
  int index = 0;  ///< JSON "cluster" slot: 1-based rate index
  double rate = 0.0;
  std::string tag;  ///< extra context appended to the devices string
  std::vector<ServingRow> rows;
};

ServingRow run_scheme(const std::string& scheme, const ModelSpec& model,
                      const PaperCluster& pc, const ExecutionPlan& plan,
                      double ppl, const std::vector<OnlineRequest>& reqs,
                      SchedulerPolicy policy, DecodeExec exec,
                      const FaultPlan& faults = {},
                      const OnlineReplanOptions* replan = nullptr) {
  ServingRow row;
  row.scheme = scheme;
  row.ppl = ppl;
  OnlineSimOptions oopt;
  oopt.policy = policy;
  oopt.exec = exec;
  const OnlineSimResult r =
      simulate_online(model, pc.cluster, plan, reqs, oopt, faults, replan);
  if (!r.ok) {
    row.note = r.error;
    return row;
  }
  row.ok = true;
  if (replan != nullptr)
    row.note = std::to_string(r.migrations) + " migration(s) over " +
               std::to_string(r.replans.size()) + " replan event(s)";
  row.throughput = r.throughput_tokens_per_s;
  row.latency_s = r.mean_latency_s;
  std::vector<double> lat;
  lat.reserve(r.requests.size());
  for (const RequestStats& s : r.requests)
    if (s.outcome == RequestOutcome::kCompleted)
      lat.push_back(s.finish_s - s.arrival_s);
  if (!lat.empty()) {
    row.p50_s = percentile(lat, 50);
    row.p99_s = percentile(lat, 99);
  }
  return row;
}

bool write_json_artifact(const std::string& path, const std::string& model,
                         const std::string& devices,
                         const std::vector<RateReport>& reports) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  JsonWriter w(os, /*indent=*/1);
  w.begin_object();
  w.kv("schema", "llmpq-bench/v1");
  w.kv("bench", "ext_online_serving");
  w.key("clusters");
  w.begin_array();
  for (const RateReport& rep : reports) {
    w.begin_object();
    w.kv("cluster", rep.index);
    w.kv("model", model);
    // The regression gate keys rows on (cluster, scheme); the devices
    // string documents what the slot actually sweeps.
    w.kv("devices", devices + " @ rate=" + Table::fmt(rep.rate, 1) +
                        " req/s" + (rep.tag.empty() ? "" : " " + rep.tag));
    w.key("rows");
    w.begin_array();
    for (const ServingRow& row : rep.rows) {
      w.begin_object();
      w.kv("scheme", row.scheme);
      w.kv("ok", row.ok);
      w.kv("note", row.note);
      w.kv("ppl", row.ppl);
      w.kv("latency_s", row.latency_s);
      w.kv("throughput_tok_s", row.throughput);
      w.kv("p50_s", row.p50_s);
      w.kv("p99_s", row.p99_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llmpq;

  const ArgParser args(argc, argv);
  for (const std::string& key : args.keys()) {
    if (key != "json") {
      std::fprintf(stderr, "unknown option --%s (known: --json)\n",
                   key.c_str());
      return 2;
    }
  }

  std::printf("=== Extension: online serving on LLM-PQ plans ===\n\n");

  Rng rng(2024);
  const auto sample = generate_sharegpt_workload(rng, 5000, 1.0);
  std::printf("ShareGPT-like prompt lengths (5000 samples): %.0f%% < 128 "
              "tokens, %.0f%% < 512, max %d\n\n",
              100.0 * fraction_below(sample, 128),
              100.0 * fraction_below(sample, 512),
              [&] {
                int mx = 0;
                for (const auto& r : sample) mx = std::max(mx, r.prompt_len);
                return mx;
              }());

  const PaperCluster pc = paper_cluster(3);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  const AssignerResult planned = assign(cost, opt);
  const double ppl = plan_ppl(model, planned.plan.layer_bits);
  std::printf("plan: LLM-PQ on cluster 3 (%s)\n\n",
              pc.cluster.describe_devices().c_str());

  Table t({"Arrival rate (req/s)", "Scheduler", "Throughput (tok/s)",
           "Mean latency (s)", "P50 (s)", "P99 (s)"});
  std::vector<RateReport> reports;
  const std::vector<double> rates = {0.5, 2.0, 8.0};
  for (std::size_t ri = 0; ri < rates.size(); ++ri) {
    const double rate = rates[ri];
    Rng wrng(7);
    const auto reqs = generate_sharegpt_workload(wrng, 120, rate, 512, 128);
    RateReport rep;
    rep.index = static_cast<int>(ri) + 1;
    rep.rate = rate;
    rep.rows.push_back(run_scheme("static", model, pc, planned.plan, ppl,
                                  reqs, SchedulerPolicy::kStaticBatching,
                                  DecodeExec::kSession));
    rep.rows.push_back(run_scheme("iter-replay", model, pc, planned.plan,
                                  ppl, reqs, SchedulerPolicy::kIterationLevel,
                                  DecodeExec::kReplay));
    rep.rows.push_back(run_scheme("iter-session", model, pc, planned.plan,
                                  ppl, reqs, SchedulerPolicy::kIterationLevel,
                                  DecodeExec::kSession));
    rep.rows.push_back(run_scheme("continuous", model, pc, planned.plan,
                                  ppl, reqs, SchedulerPolicy::kIterationLevel,
                                  DecodeExec::kContinuous));
    for (const ServingRow& row : rep.rows)
      t.add_row({Table::fmt(rate, 1), row.scheme,
                 row.ok ? Table::fmt(row.throughput) : "-",
                 row.ok ? Table::fmt(row.latency_s) : "-",
                 row.ok ? Table::fmt(row.p50_s) : "-",
                 row.ok ? Table::fmt(row.p99_s) : "-"});
    reports.push_back(std::move(rep));
  }

  // Slot 4: self-healing under a sustained straggler. A kSlow fault on one
  // stage's serve site charges a per-layer delay on the virtual clock from
  // decision `after` onwards. straggler-tolerate serves through the drag;
  // straggler-replan adds the health-monitor + re-planner mirror, which
  // migrates layers off the slow stage so the per-dispatch drag shrinks
  // with every repair. Both rows are deterministic simulator output; CI
  // floors replan >= tolerate (see scripts/ci.sh).
  {
    Rng wrng(7);
    const auto reqs = generate_sharegpt_workload(wrng, 60, 2.0, 512, 128);
    const int slow_stage = planned.plan.num_stages() > 1 ? 1 : 0;
    FaultPlan chaos;
    FaultRule slow;
    slow.site = "serve.stage." + std::to_string(slow_stage);
    slow.kind = FaultKind::kSlow;
    slow.delay_ms = 250.0;  // x stage layers per dispatch on the sim clock
    slow.after = 12;        // past the health monitor's baseline window
    chaos.rules.push_back(slow);

    OnlineReplanOptions ropt;
    ropt.health.straggler_ratio = 2.0;  // the drag is unambiguous
    ropt.health.cooldown = 4;           // let several repairs land
    ropt.cost = &cost;

    RateReport rep;
    rep.index = static_cast<int>(rates.size()) + 1;
    rep.rate = 2.0;
    rep.tag = "+ kSlow straggler on stage " + std::to_string(slow_stage);
    rep.rows.push_back(run_scheme("straggler-tolerate", model, pc,
                                  planned.plan, ppl, reqs,
                                  SchedulerPolicy::kIterationLevel,
                                  DecodeExec::kSession, chaos));
    rep.rows.push_back(run_scheme("straggler-replan", model, pc,
                                  planned.plan, ppl, reqs,
                                  SchedulerPolicy::kIterationLevel,
                                  DecodeExec::kSession, chaos, &ropt));
    for (const ServingRow& row : rep.rows)
      t.add_row({"2.0 (straggler)", row.scheme,
                 row.ok ? Table::fmt(row.throughput) : "-",
                 row.ok ? Table::fmt(row.latency_s) : "-",
                 row.ok ? Table::fmt(row.p50_s) : "-",
                 row.ok ? Table::fmt(row.p99_s) : "-"});
    reports.push_back(std::move(rep));
  }
  std::printf("%s", t.to_string().c_str());

  double ratio_sum = 0.0;
  int ratio_n = 0;
  for (const RateReport& rep : reports) {
    const ServingRow* replay = nullptr;
    const ServingRow* session = nullptr;
    for (const ServingRow& row : rep.rows) {
      if (row.scheme == "iter-replay") replay = &row;
      if (row.scheme == "iter-session") session = &row;
    }
    if (replay != nullptr && session != nullptr && replay->ok &&
        session->ok && replay->throughput > 0.0) {
      ratio_sum += session->throughput / replay->throughput;
      ++ratio_n;
    }
  }
  if (ratio_n > 0)
    std::printf("\nsession decode mean throughput speedup vs replay decode "
                "over %d rates: %.2fx\n",
                ratio_n, ratio_sum / ratio_n);
  {
    // Continuous-vs-static at the highest arrival rate and replan-vs-
    // tolerate under the straggler: the two ratios CI's floor-ratio gates
    // check (see scripts/check_bench_regression.py).
    const ServingRow* stat = nullptr;
    const ServingRow* cont = nullptr;
    const ServingRow* tolerate = nullptr;
    const ServingRow* replan = nullptr;
    double cont_rate = 0.0;
    for (const RateReport& rep : reports) {
      for (const ServingRow& row : rep.rows) {
        if (row.scheme == "static") stat = &row, cont_rate = rep.rate;
        if (row.scheme == "continuous") cont = &row;
        if (row.scheme == "straggler-tolerate") tolerate = &row;
        if (row.scheme == "straggler-replan") replan = &row;
      }
    }
    if (stat != nullptr && cont != nullptr && stat->ok && cont->ok &&
        stat->throughput > 0.0)
      std::printf("continuous vs static throughput at %.1f req/s: %.2fx\n",
                  cont_rate, cont->throughput / stat->throughput);
    if (tolerate != nullptr && replan != nullptr && tolerate->ok &&
        replan->ok && tolerate->throughput > 0.0)
      std::printf("self-healing vs tolerating the straggler: %.2fx "
                  "throughput (%s)\n",
                  replan->throughput / tolerate->throughput,
                  replan->note.c_str());
  }
  std::printf("\nshape check: iteration-level scheduling cuts mean/P99 "
              "latency at every load, step-level KV-reuse sessions beat "
              "replaying the full context every round, and continuous "
              "batching (mid-flight joins + capacity preemption) holds or "
              "beats static batching at high load (the ORCA/vLLM "
              "argument the paper's discussion defers to).\n");

  int rc = 0;
  if (const auto json_path = args.get("json")) {
    if (write_json_artifact(*json_path, pc.model_name,
                            pc.cluster.describe_devices(), reports))
      std::printf("wrote %s\n", json_path->c_str());
    else
      rc = 1;
  }
  return rc;
}
