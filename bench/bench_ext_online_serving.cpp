// Extension bench (paper Sec. 2.3 / Sec. 7): LLM-PQ plans under *online*
// load. Reports (a) the ShareGPT-shaped prompt-length distribution that
// motivates phase awareness (Sec 2.1), and (b) static batching vs
// ORCA-style iteration-level scheduling over the same LLM-PQ plan across
// arrival rates.
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "sim/online_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Extension: online serving on LLM-PQ plans ===\n\n");

  Rng rng(2024);
  const auto sample = generate_sharegpt_workload(rng, 5000, 1.0);
  std::printf("ShareGPT-like prompt lengths (5000 samples): %.0f%% < 128 "
              "tokens, %.0f%% < 512, max %d\n\n",
              100.0 * fraction_below(sample, 128),
              100.0 * fraction_below(sample, 512),
              [&] {
                int mx = 0;
                for (const auto& r : sample) mx = std::max(mx, r.prompt_len);
                return mx;
              }());

  const PaperCluster pc = paper_cluster(3);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  const AssignerResult planned = assign(cost, opt);
  std::printf("plan: LLM-PQ on cluster 3 (%s)\n\n",
              pc.cluster.describe_devices().c_str());

  Table t({"Arrival rate (req/s)", "Scheduler", "Throughput (tok/s)",
           "Mean latency (s)", "P95 latency (s)", "Queue delay (s)"});
  for (double rate : {0.5, 2.0, 8.0}) {
    Rng wrng(7);
    const auto reqs = generate_sharegpt_workload(wrng, 120, rate, 512, 128);
    for (SchedulerPolicy policy : {SchedulerPolicy::kStaticBatching,
                                   SchedulerPolicy::kIterationLevel}) {
      OnlineSimOptions oopt;
      oopt.policy = policy;
      const OnlineSimResult r =
          simulate_online(model, pc.cluster, planned.plan, reqs, oopt);
      t.add_row({Table::fmt(rate, 1),
                 policy == SchedulerPolicy::kStaticBatching
                     ? "static batching"
                     : "iteration-level",
                 r.ok ? Table::fmt(r.throughput_tokens_per_s) : "-",
                 r.ok ? Table::fmt(r.mean_latency_s) : "-",
                 r.ok ? Table::fmt(r.p95_latency_s) : "-",
                 r.ok ? Table::fmt(r.mean_queue_delay_s) : "-"});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: iteration-level scheduling cuts mean/P95 "
              "latency at every load (the ORCA/vLLM argument the paper's "
              "discussion defers to).\n");
  return 0;
}
