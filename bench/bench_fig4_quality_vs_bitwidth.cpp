// Reproduces Fig. 4: perplexity (BLOOM-3b) and zero-shot accuracy
// (OPT-1.3b) under uniform and randomly mixed precision schemes. The
// shape: mixed4-8 sits between uniform-8 and uniform-4, mixed3-4 between
// uniform-4 and uniform-3 — i.e. mixing in higher-precision layers always
// buys back model quality.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "quant/quality.hpp"

namespace {

std::vector<int> mixed_bits(const llmpq::ModelSpec& m, int lo, int hi,
                            std::uint64_t seed) {
  llmpq::Rng rng(seed);
  std::vector<int> bits(static_cast<std::size_t>(m.layers));
  for (auto& b : bits) b = rng.uniform() < 0.5 ? lo : hi;
  return bits;
}

}  // namespace

int main() {
  using namespace llmpq;
  std::printf("=== Fig 4: model quality vs quantization scheme ===\n\n");

  {
    const ModelSpec& m = model_registry_get("bloom-3b");
    std::printf("(a) BLOOM-3b average perplexity (WikiText2/PTB/C4 "
                "surrogate)\n");
    Table t({"Scheme", "PPL"});
    t.add_row({"fp16", Table::fmt(uniform_ppl(m, 16))});
    t.add_row({"int8", Table::fmt(uniform_ppl(m, 8))});
    t.add_row({"mixed4-8", Table::fmt(plan_ppl(m, mixed_bits(m, 4, 8, 1)))});
    t.add_row({"int4", Table::fmt(uniform_ppl(m, 4))});
    t.add_row({"mixed3-4", Table::fmt(plan_ppl(m, mixed_bits(m, 3, 4, 2)))});
    t.add_row({"int3", Table::fmt(uniform_ppl(m, 3))});
    std::printf("%s\n", t.to_string().c_str());
  }
  {
    const ModelSpec& m = model_registry_get("opt-1.3b");
    std::printf("(b) OPT-1.3b zero-shot accuracy (LAMBADA/ARC/PIQA "
                "surrogate, %%)\n");
    Table t({"Scheme", "Accuracy"});
    t.add_row({"fp16", Table::fmt(uniform_accuracy(m, 16))});
    t.add_row({"int8", Table::fmt(uniform_accuracy(m, 8))});
    t.add_row({"mixed4-8",
               Table::fmt(plan_accuracy(m, mixed_bits(m, 4, 8, 3)))});
    t.add_row({"int4", Table::fmt(uniform_accuracy(m, 4))});
    t.add_row({"mixed3-4",
               Table::fmt(plan_accuracy(m, mixed_bits(m, 3, 4, 4)))});
    t.add_row({"int3", Table::fmt(uniform_accuracy(m, 3))});
    std::printf("%s", t.to_string().c_str());
  }
  return 0;
}
