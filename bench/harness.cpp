#include "harness.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "common/table.hpp"

namespace llmpq::bench {

AssignerOptions bench_assigner_options(int cluster_index) {
  AssignerOptions opt;
  // theta per the paper's Table 9.
  switch (cluster_index) {
    case 4:
      opt.theta = 1000.0;
      break;
    case 5:
      opt.theta = 50.0;
      break;
    case 6:
      opt.theta = 100.0;
      break;
    case 7:
      // Table 9 says 10, but against our normalized omega that saturates
      // the quality term for a 70-layer model; 1 plays the same relative
      // role (quality as a strong tiebreak, not the dominant objective).
      opt.theta = 1.0;
      break;
    case 8:
    case 11:
      opt.theta = 10.0;
      break;
    default:
      opt.theta = 1.0;
  }
  // Solver per Table 9, at the scales our branch-and-bound affords: exact
  // ILP on the single-GPU clusters, heuristic elsewhere (the paper runs
  // Gurobi further up; Table 8's bench explores that trade-off directly).
  if (cluster_index == 1 || cluster_index == 2) {
    opt.solver = SolverKind::kIlp;
    opt.group_size = 1;
    opt.ilp_time_limit_s = 10.0;
  } else {
    opt.solver = SolverKind::kHeuristic;
  }
  opt.max_orderings = 6;
  return opt;
}

namespace {

SchemeRow simulate_scheme(const std::string& name, const ModelSpec& model,
                          const ClusterSpec& cluster,
                          const ExecutionPlan& plan) {
  SchemeRow row;
  row.scheme = name;
  const SimResult sim = simulate_plan(model, cluster, plan);
  if (!sim.ok) {
    row.note = sim.error;
    return row;
  }
  row.ok = true;
  row.ppl = plan_ppl(model, plan.layer_bits);
  row.latency_s = sim.e2e_latency_s;
  row.throughput = sim.throughput_tokens_per_s;
  return row;
}

}  // namespace

ClusterReport evaluate_cluster(int cluster_index, const Workload& workload,
                               std::optional<AssignerOptions> opts) {
  const PaperCluster pc = paper_cluster(cluster_index);
  const ModelSpec& model = model_registry_get(pc.model_name);
  ClusterReport report;
  report.cluster_index = cluster_index;
  report.model_name = pc.model_name;
  report.devices = pc.cluster.describe_devices();

  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  cost.set_workload(workload);

  // ---- PipeEdge.
  {
    SchemeRow row;
    row.scheme = "PipeEdge";
    try {
      const ExecutionPlan plan = pipeedge_plan(cost);
      row = simulate_scheme("PipeEdge", model, pc.cluster, plan);
    } catch (const InfeasibleError& e) {
      row.note = e.what();
    }
    report.rows.push_back(row);
  }
  // ---- Uniform.
  {
    SchemeRow row;
    row.scheme = "Uniform";
    try {
      const ExecutionPlan plan = uniform_plan(cost);
      row = simulate_scheme("Uniform", model, pc.cluster, plan);
    } catch (const InfeasibleError& e) {
      row.note = "OOM";
    }
    report.rows.push_back(row);
  }
  // ---- FlexGen variants (OPT only, as in the paper).
  if (model.family == "opt") {
    for (const auto& [name, bits] :
         std::vector<std::pair<std::string, int>>{{"FlexGen", 16},
                                                  {"FlexGen-int8", 8}}) {
      SchemeRow row;
      row.scheme = name;
      const OffloadResult r = flexgen_run(cost, bits);
      if (r.ok) {
        row.ok = true;
        row.ppl = uniform_ppl(model, bits);
        row.latency_s = r.e2e_latency_s;
        row.throughput = r.throughput_tokens_per_s;
      } else {
        row.note = r.error;
      }
      report.rows.push_back(row);
    }
  }
  // ---- LLM-PQ.
  {
    SchemeRow row;
    row.scheme = "LLM-PQ";
    try {
      const AssignerOptions options =
          opts ? *opts : bench_assigner_options(cluster_index);
      const AssignerResult result = assign(cost, options);
      row = simulate_scheme("LLM-PQ", model, pc.cluster, result.plan);
    } catch (const InfeasibleError& e) {
      row.note = e.what();
    }
    report.rows.push_back(row);
  }
  return report;
}

void print_report(const ClusterReport& report) {
  std::printf("cluster %d: %s serving %s (total mem %.0f GB)\n",
              report.cluster_index, report.devices.c_str(),
              report.model_name.c_str(),
              static_cast<double>(
                  paper_cluster(report.cluster_index).cluster.total_mem_bytes()) /
                  1e9);
  Table table({"Scheme", "PPL", "Latency (s)", "Throughput (tok/s)", "vs PipeEdge"});
  const SchemeRow* pipeedge = report.find("PipeEdge");
  for (const auto& row : report.rows) {
    if (!row.ok) {
      table.add_row({row.scheme, "-", "-", "-", row.note.empty() ? "OOM" : "OOM"});
      continue;
    }
    std::string speedup = "-";
    if (pipeedge != nullptr && pipeedge->ok)
      speedup = Table::fmt_ratio(row.throughput / pipeedge->throughput);
    table.add_row({row.scheme, Table::fmt(row.ppl), Table::fmt(row.latency_s),
                   Table::fmt(row.throughput), speedup});
  }
  std::printf("%s\n", table.to_string().c_str());
}

void write_json(JsonWriter& w, const SchemeRow& row) {
  w.begin_object();
  w.kv("scheme", row.scheme);
  w.kv("ok", row.ok);
  w.kv("note", row.note);
  w.kv("ppl", row.ppl);
  w.kv("latency_s", row.latency_s);
  w.kv("throughput_tok_s", row.throughput);
  w.kv("solve_s", row.solve_s);
  w.end_object();
}

void write_json(JsonWriter& w, const ClusterReport& report) {
  w.begin_object();
  w.kv("cluster", report.cluster_index);
  w.kv("model", report.model_name);
  w.kv("devices", report.devices);
  w.key("rows");
  w.begin_array();
  for (const SchemeRow& row : report.rows) write_json(w, row);
  w.end_array();
  w.end_object();
}

bool write_reports_json(const std::string& path, const std::string& bench_name,
                        const std::vector<ClusterReport>& reports) {
  std::ofstream os(path);
  if (!os) {
    LOG_WARN << "bench: cannot open " << path << " for writing";
    return false;
  }
  JsonWriter w(os, /*indent=*/1);
  w.begin_object();
  w.kv("schema", "llmpq-bench/v1");
  w.kv("bench", bench_name);
  w.key("clusters");
  w.begin_array();
  for (const ClusterReport& r : reports) write_json(w, r);
  w.end_array();
  w.end_object();
  os << '\n';
  os.flush();
  if (!os) {
    LOG_WARN << "bench: short write to " << path;
    return false;
  }
  return true;
}

}  // namespace llmpq::bench
