// Reproduces Table 1: quantizing different layer ranges of OPT-1.3b /
// BLOOM-3b to 4-bit yields different quality — deeper layers are more
// sensitive, which motivates an indicator that ranks layers instead of
// treating them uniformly.
#include <cstdio>

#include "common/table.hpp"
#include "quant/quality.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Table 1: model quality vs which layers are quantized "
              "to 4-bit (rest FP16) ===\n\n");
  Table t({"Model", "Layers quantized", "Avg PPL", "Avg Accuracy (%)"});
  const struct {
    const char* model;
    int lo, hi;
  } cases[] = {
      {"opt-1.3b", 0, 8},   {"opt-1.3b", 8, 16},  {"opt-1.3b", 16, 24},
      {"bloom-3b", 0, 10},  {"bloom-3b", 10, 20}, {"bloom-3b", 20, 30},
  };
  for (const auto& c : cases) {
    const ModelSpec& m = model_registry_get(c.model);
    std::vector<int> bits(static_cast<std::size_t>(m.layers), 16);
    for (int i = c.lo; i < c.hi; ++i) bits[static_cast<std::size_t>(i)] = 4;
    t.add_row({c.model, std::to_string(c.lo) + "-" + std::to_string(c.hi),
               Table::fmt(plan_ppl(m, bits)),
               Table::fmt(plan_accuracy(m, bits))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: within each model, later ranges should show "
              "higher PPL / lower accuracy (paper Table 1).\n");
  return 0;
}
