// Reproduces Fig. 8: sensitivity to the user quality scalar theta on
// cluster 9 (OPT-30b) and cluster 5 (OPT-66b). Increasing theta shifts the
// plan toward higher precision: perplexity improves monotonically while
// token throughput decreases.
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Fig 8: sensitivity to the quality scalar theta ===\n\n");
  for (int cluster_index : {9, 5}) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    CostProvider cost(model, pc.cluster, CostMode::kFitted);
    std::printf("cluster %d (%s, %s)\n", cluster_index,
                pc.cluster.describe_devices().c_str(), pc.model_name.c_str());
    Table t({"theta", "PPL", "Throughput (tok/s)", "Mean bits"});
    for (double theta : {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0}) {
      AssignerOptions opt;
      opt.solver = SolverKind::kHeuristic;
      opt.theta = theta;
      const AssignerResult r = assign(cost, opt);
      const SimResult sim = simulate_plan(model, pc.cluster, r.plan);
      double mean_bits = 0.0;
      for (int b : r.plan.layer_bits) mean_bits += b;
      mean_bits /= model.layers;
      t.add_row({Table::fmt(theta, 2), Table::fmt(plan_ppl(model, r.plan.layer_bits)),
                 sim.ok ? Table::fmt(sim.throughput_tokens_per_s) : "-",
                 Table::fmt(mean_bits, 1)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("shape check: PPL falls and throughput falls as theta "
              "grows.\n");
  return 0;
}
