// google-benchmark micro benchmarks for the quantization substrate: the
// pack/dequant kernels and the weight-only GEMM at each candidate width.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "quant/qgemm.hpp"
#include "quant/quantize.hpp"

namespace {

using namespace llmpq;

std::vector<float> random_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w(n);
  for (float& v : w) v = 0.05f * static_cast<float>(rng.normal());
  return w;
}

void BM_Quantize(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const std::size_t rows = 256, cols = 256;
  const auto w = random_weights(rows * cols, 1);
  Rng rng(2);
  for (auto _ : state) {
    const QuantizedMatrix q = QuantizedMatrix::quantize(
        w, rows, cols, bits, Rounding::kDeterministic, rng);
    benchmark::DoNotOptimize(q.packed_bytes());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * cols * 4));
}
BENCHMARK(BM_Quantize)->Arg(3)->Arg(4)->Arg(8);

void BM_DequantizeRow(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const std::size_t rows = 64, cols = 4096;
  const auto w = random_weights(rows * cols, 3);
  Rng rng(4);
  const QuantizedMatrix q = QuantizedMatrix::quantize(
      w, rows, cols, bits, Rounding::kDeterministic, rng);
  std::vector<float> out(cols);
  std::size_t r = 0;
  for (auto _ : state) {
    q.dequantize_row(r % rows, out.data());
    ++r;
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_DequantizeRow)->Arg(3)->Arg(4)->Arg(8)->Arg(16);

// Threaded kernel (output-channel blocks across the shared ThreadPool)
// vs the single-threaded seed kernel, at each candidate width. On a
// multi-core host BM_Qgemm should beat BM_QgemmSerial by ~#cores on
// this compute-bound shape; on one core it falls back to the serial path.
template <bool kSerial>
void BM_QgemmImpl(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const std::size_t m = 8, k = 512, n = 512;
  const auto x = random_weights(m * k, 5);
  const auto w = random_weights(n * k, 6);
  Rng rng(7);
  const QuantizedMatrix qw =
      QuantizedMatrix::quantize(w, n, k, bits, Rounding::kDeterministic, rng);
  std::vector<float> y(m * n);
  for (auto _ : state) {
    if constexpr (kSerial)
      qgemm_serial(x, m, k, qw, {}, y);
    else
      qgemm(x, m, k, qw, {}, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
}

void BM_Qgemm(benchmark::State& state) { BM_QgemmImpl<false>(state); }
BENCHMARK(BM_Qgemm)->Arg(3)->Arg(4)->Arg(8)->Arg(16);

void BM_QgemmSerial(benchmark::State& state) { BM_QgemmImpl<true>(state); }
BENCHMARK(BM_QgemmSerial)->Arg(3)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
