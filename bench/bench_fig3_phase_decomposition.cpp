// Reproduces Fig. 3: per-layer execution time of the prefill and decode
// phases under each precision, on P100 vs V100 (OPT-30b layer, prompt 512,
// batch 8). The headline ratio: FP16 prefill on P100 is ~14.5x V100, while
// the decode-phase gap is much smaller — the reason partitioning on
// prefill time alone (PipeEdge) misjudges heterogeneous clusters.
#include <cstdio>

#include "common/table.hpp"
#include "cost/ground_truth.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Fig 3: phase time decomposition across precisions "
              "(OPT-30b layer, s=512, b=8) ===\n\n");
  const ModelSpec& model = model_registry_get("opt-30b");
  const PhaseShape pre = prefill_shape(8, 512);
  const PhaseShape dec = decode_shape(8, 512);

  Table table({"GPU", "Bits", "Prefill (ms)", "Decode (ms)",
               "Prefill xV100", "Decode xV100"});
  const GpuSpec& v100 = gpu_registry_get("V100-32G");
  for (const char* gpu_name : {"V100-32G", "P100-12G", "T4-16G", "A100-40G"}) {
    const GpuSpec& gpu = gpu_registry_get(gpu_name);
    for (int bits : kBitCandidates) {
      const double tp = layer_time_ground_truth(gpu, model, pre, bits);
      const double td = layer_time_ground_truth(gpu, model, dec, bits);
      const double vp = layer_time_ground_truth(v100, model, pre, bits);
      const double vd = layer_time_ground_truth(v100, model, dec, bits);
      table.add_row({gpu_name, std::to_string(bits), Table::fmt(tp * 1e3),
                     Table::fmt(td * 1e3), Table::fmt_ratio(tp / vp),
                     Table::fmt_ratio(td / vd)});
    }
  }
  std::printf("%s", table.to_string().c_str());
  const double headline =
      layer_time_ground_truth(gpu_registry_get("P100-12G"), model, pre, 16) /
      layer_time_ground_truth(v100, model, pre, 16);
  std::printf("\nheadline: P100/V100 FP16 prefill ratio = %.2fx "
              "(paper: 14.53x)\n", headline);
  return 0;
}
