#pragma once

// Shared harness for the paper-reproduction benchmark binaries: runs LLM-PQ
// and the baselines on one paper cluster and returns rows shaped like the
// evaluation tables (scheme, PPL, latency, throughput). All "measured"
// numbers come from the discrete-event simulator / offloading simulator;
// PPL comes from the quality model.

#include <optional>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "common/json_writer.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

namespace llmpq::bench {

struct SchemeRow {
  std::string scheme;
  bool ok = false;
  std::string note;  ///< "OOM", exception text, ...
  double ppl = 0.0;
  double latency_s = 0.0;
  double throughput = 0.0;
  /// Planner wall-clock overhead (Table 8). Informational: exported to
  /// JSON as `solve_s` but never gated by check_bench_regression.py —
  /// wall-clock is machine-dependent, unlike the simulated metrics above.
  double solve_s = 0.0;
};

struct ClusterReport {
  int cluster_index = 0;
  std::string model_name;
  std::string devices;
  std::vector<SchemeRow> rows;

  const SchemeRow* find(const std::string& scheme) const {
    for (const auto& r : rows)
      if (r.scheme == scheme) return &r;
    return nullptr;
  }
};

/// Assigner options sized so a full multi-cluster sweep finishes in
/// benchmark time; scale-sensitive knobs follow the paper's Table 9 where
/// our branch-and-bound can afford it.
AssignerOptions bench_assigner_options(int cluster_index);

/// Runs LLM-PQ, PipeEdge, Uniform, FlexGen and FlexGen-int8 on one paper
/// cluster (FlexGen rows only for OPT models, as in the paper) under the
/// given workload.
ClusterReport evaluate_cluster(int cluster_index, const Workload& workload,
                               std::optional<AssignerOptions> opts = {});

/// Renders a report as paper-style table rows into stdout, with speedups
/// computed against the PipeEdge row like Table 4.
void print_report(const ClusterReport& report);

/// JSON projections of the bench rows — the stable machine-readable schema
/// ("llmpq-bench/v1") that CI's bench-regression gate diffs against the
/// committed baselines (scripts/check_bench_regression.py). Field renames
/// here are schema changes: bump the version and regenerate the baselines.
void write_json(JsonWriter& w, const SchemeRow& row);
void write_json(JsonWriter& w, const ClusterReport& report);

/// Writes `{"schema":"llmpq-bench/v1","bench":<name>,"clusters":[...]}` to
/// `path` (pretty-printed). Returns false on I/O failure.
bool write_reports_json(const std::string& path, const std::string& bench_name,
                        const std::vector<ClusterReport>& reports);

}  // namespace llmpq::bench
