// google-benchmark micro benchmarks for the execution substrates: the
// discrete-event pipeline simulator, the planner's analytic estimator and
// the threaded runtime engine on a tiny real transformer.
#include <benchmark/benchmark.h>

#include "core/adabits.hpp"
#include "core/estimator.hpp"
#include "runtime/engine.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

using namespace llmpq;

ExecutionPlan cluster3_plan() {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& model = model_registry_get(model_name);
  CostProvider cost(model, cluster, CostMode::kProfiled);
  const IndicatorResult ind =
      compute_indicator(model, IndicatorKind::kVariance);
  return adabits_plan(cost, ind, {0, 1, 2, 3}, 4, 8);
}

void BM_PipelineSimulation(benchmark::State& state) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& model = model_registry_get(model_name);
  const ExecutionPlan plan = cluster3_plan();
  for (auto _ : state) {
    const SimResult r = simulate_plan(model, cluster, plan);
    benchmark::DoNotOptimize(r.e2e_latency_s);
  }
}
BENCHMARK(BM_PipelineSimulation);

void BM_PlanEstimate(benchmark::State& state) {
  const auto [cluster, model_name] = paper_cluster(3);
  const ModelSpec& model = model_registry_get(model_name);
  CostProvider cost(model, cluster, CostMode::kProfiled);
  const IndicatorResult ind =
      compute_indicator(model, IndicatorKind::kVariance);
  const ExecutionPlan plan = cluster3_plan();
  for (auto _ : state) {
    const PlanEstimate est = estimate_plan(cost, plan, &ind, 1.0);
    benchmark::DoNotOptimize(est.objective);
  }
}
BENCHMARK(BM_PlanEstimate);

void BM_RuntimeGenerate(benchmark::State& state) {
  ModelSpec spec;
  spec.name = "tiny-bench";
  spec.family = "opt";
  spec.hidden = 64;
  spec.ffn = 256;
  spec.heads = 4;
  spec.layers = 4;
  spec.vocab = 128;
  spec.max_pos = 64;
  std::vector<int> bits = {16, 8, 4, 16};
  const ModelWeights mw = build_random_model(spec, bits, 11);
  std::vector<std::vector<TokenId>> prompts(4,
                                            std::vector<TokenId>(8, 1));
  PipelineEngine engine(mw, {{0, 2}, {2, 4}}, 2, 2);
  for (auto _ : state) {
    auto out = engine.generate(prompts, 8);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4 *
                          8);
}
BENCHMARK(BM_RuntimeGenerate);

}  // namespace

BENCHMARK_MAIN();
