// Extension bench (paper Sec. 7, "Search for Tensor Parallelization"):
// folds TP groups into virtual devices and lets the assigner search device
// meshes alongside orderings. Compares pipeline-only planning with the
// TP-extended search on the two 8-GPU-scale clusters.
#include <cstdio>

#include "common/table.hpp"
#include "core/tensor_parallel.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Extension: tensor-parallel mesh search (Sec. 7) ===\n\n");
  Table t({"Cluster", "Model", "Mesh", "Stages", "Est. tok/s",
           "Sim tok/s"});
  for (int cluster_index : {6, 7}) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    Workload w;
    AssignerOptions opt;
    opt.solver = SolverKind::kHeuristic;
    opt.theta = 1.0;
    opt.max_orderings = 4;

    // Pipeline-only.
    CostProvider pp_cost(model, pc.cluster, CostMode::kFitted);
    pp_cost.set_workload(w);
    const AssignerResult pp = assign(pp_cost, opt);
    const SimResult pp_sim = simulate_plan(model, pc.cluster, pp.plan);
    t.add_row({std::to_string(cluster_index), pc.model_name, "PP only",
               std::to_string(pp.plan.num_stages()),
               Table::fmt(pp.estimate.throughput_tokens_per_s),
               pp_sim.ok ? Table::fmt(pp_sim.throughput_tokens_per_s) : "-"});

    // TP x PP search.
    const TpAssignerResult tp =
        assign_with_tensor_parallel(model, pc.cluster, w, opt, {1, 2, 4});
    const SimResult tp_sim =
        simulate_plan(model, tp.folded, tp.result.plan);
    t.add_row({std::to_string(cluster_index), pc.model_name,
               tp.folded.describe_devices(),
               std::to_string(tp.result.plan.num_stages()),
               Table::fmt(tp.result.estimate.throughput_tokens_per_s),
               tp_sim.ok ? Table::fmt(tp_sim.throughput_tokens_per_s) : "-"});
    std::printf("cluster %d: tried %d meshes, best = %s\n", cluster_index,
                tp.meshes_tried, tp.folded.name.c_str());
  }
  std::printf("\n%s", t.to_string().c_str());
  std::printf("\nshape check: the TP-extended search never returns a worse "
              "plan. On these NVLink-rich clusters folding whole nodes into "
              "TP groups wins outright: fewer, fatter pipeline stages cut "
              "the decode-round critical path more than the modelled "
              "all-reduce cost (a ~8%%/rank sync haircut; real TP overheads "
              "can be larger, so treat the magnitude as optimistic).\n");
  return 0;
}
