// Reproduces Fig. 5: single-layer prefill/decode execution time across
// precisions and batch sizes (OPT-30b layer, prompt 512) on T4, V100 and
// A100. The shape the paper stresses: low-precision kernels are NOT
// uniformly faster — FP16 often wins the compute-bound prefill, while
// weight-only 3/4-bit wins the memory-bound decode; V100's INT8 loses both.
#include <cstdio>

#include "common/table.hpp"
#include "cost/ground_truth.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Fig 5: kernel latency vs precision and batch "
              "(OPT-30b layer, s=512) ===\n\n");
  const ModelSpec& model = model_registry_get("opt-30b");
  for (const char* gpu_name : {"T4-16G", "V100-32G", "A100-40G"}) {
    const GpuSpec& gpu = gpu_registry_get(gpu_name);
    std::printf("%s\n", gpu_name);
    Table t({"Batch", "Phase", "fp16 (ms)", "int8 (ms)", "int4 (ms)",
             "int3 (ms)", "fastest"});
    for (int batch : {1, 4, 8, 16, 32}) {
      for (int phase = 0; phase < 2; ++phase) {
        const PhaseShape shape = phase == 0 ? prefill_shape(batch, 512)
                                            : decode_shape(batch, 512);
        double best = 1e30;
        int best_bits = 0;
        std::vector<std::string> cells{std::to_string(batch),
                                       phase == 0 ? "prefill" : "decode"};
        for (int bits : {16, 8, 4, 3}) {
          const double t_ms =
              layer_time_ground_truth(gpu, model, shape, bits) * 1e3;
          cells.push_back(Table::fmt(t_ms, 3));
          if (t_ms < best) {
            best = t_ms;
            best_bits = bits;
          }
        }
        cells.push_back(std::to_string(best_bits) + "-bit");
        t.add_row(cells);
      }
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  return 0;
}
