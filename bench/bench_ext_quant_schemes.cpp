// Extension bench (paper Sec. 7, "Other Quantization Schemes"): AWQ and
// SpQR as drop-in candidate kernel families next to the default GPTQ.
// The same LLM-PQ plan is re-evaluated under each scheme on the
// quantization-heavy cluster 4 (3x P100 + V100), showing the speed /
// quality / memory trade surface a scheme choice spans.
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Extension: candidate quantization schemes (Sec. 7) ===\n\n");

  const PaperCluster pc = paper_cluster(4);
  const ModelSpec& model = model_registry_get(pc.model_name);
  CostProvider cost(model, pc.cluster, CostMode::kFitted);
  AssignerOptions opt;
  opt.solver = SolverKind::kHeuristic;
  opt.theta = 10.0;
  const AssignerResult planned = assign(cost, opt);
  std::printf("fixed LLM-PQ plan on cluster 4 (%s, %s), re-run per "
              "scheme:\n\n",
              pc.cluster.describe_devices().c_str(), pc.model_name.c_str());

  Table t({"Scheme", "PPL", "Latency (s)", "Throughput (tok/s)"});
  for (QuantScheme scheme :
       {QuantScheme::kGptq, QuantScheme::kAwq, QuantScheme::kSpqr}) {
    SimOptions sopt;
    sopt.scheme = scheme;
    const SimResult sim = simulate_plan(model, pc.cluster, planned.plan, sopt);
    t.add_row({quant_scheme_name(scheme),
               Table::fmt(plan_ppl(model, planned.plan.layer_bits, scheme), 3),
               sim.ok ? Table::fmt(sim.e2e_latency_s) : "-",
               sim.ok ? Table::fmt(sim.throughput_tokens_per_s) : "-"});
  }
  std::printf("%s", t.to_string().c_str());

  // Uniform 4-bit (where schemes differ most).
  std::printf("\nuniform 4-bit on the same partition:\n\n");
  Table u({"Scheme", "PPL", "Throughput (tok/s)"});
  ExecutionPlan uni = planned.plan;
  std::fill(uni.layer_bits.begin(), uni.layer_bits.end(), 4);
  for (QuantScheme scheme :
       {QuantScheme::kGptq, QuantScheme::kAwq, QuantScheme::kSpqr}) {
    SimOptions sopt;
    sopt.scheme = scheme;
    const SimResult sim = simulate_plan(model, pc.cluster, uni, sopt);
    u.add_row({quant_scheme_name(scheme),
               Table::fmt(plan_ppl(model, uni.layer_bits, scheme), 3),
               sim.ok ? Table::fmt(sim.throughput_tokens_per_s) : "-"});
  }
  std::printf("%s", u.to_string().c_str());
  std::printf("\nshape check: AWQ fastest at ~GPTQ quality; SpQR best "
              "quality at a small speed/memory cost.\n");
  return 0;
}
