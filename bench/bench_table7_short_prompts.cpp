// Reproduces Table 7: serving with shorter prompts (s=128) and a longer
// generation budget (n=200) on clusters 1, 4 and 6. With small prompts the
// decode phase dominates even more, and the workload approaches the
// single-phase regime PipeEdge was designed for — gains narrow on cluster 4
// exactly as the paper observes.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace llmpq;
  using namespace llmpq::bench;
  std::printf("=== Table 7: shorter prompts (s=128, n=200, batch=32) ===\n\n");
  Workload w;
  w.prompt_len = 128;
  w.gen_tokens = 200;
  for (int cluster : {1, 4, 6}) {
    const ClusterReport report = evaluate_cluster(cluster, w);
    print_report(report);
  }
  return 0;
}
