// Reproduces Table 5: serving performance on the homogeneous clusters
// 9-11. Gains over the baselines should be present but visibly smaller
// than on the heterogeneous clusters (Table 4) — with identical devices
// there is no partition asymmetry for LLM-PQ to exploit, only adaptive
// precision and micro-batch sizing.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace llmpq;
  using namespace llmpq::bench;
  std::printf("=== Table 5: serving in homogeneous clusters "
              "(s=512, n=100, batch=32) ===\n\n");
  Workload w;
  for (int cluster = 9; cluster <= 11; ++cluster) {
    const ClusterReport report = evaluate_cluster(cluster, w);
    print_report(report);
  }
  return 0;
}
