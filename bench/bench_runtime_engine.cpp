// Runtime engine micro-bench: drives the persistent pipeline engine with
// repeated generate() calls (the serving pattern: one long-lived engine,
// many requests) and prints the per-stage metrics the engine now exposes —
// busy/idle split, qgemm/attention breakdown, inbox high-water marks and
// per-phase tokens/s. Also times the threaded qgemm kernel against the
// single-threaded seed kernel on a serving-sized layer so the speedup on a
// multi-core host is visible in isolation.
//
// Flags:
//   --json PATH    write the measurements as "llmpq-metrics/v1" JSON
//   --trace PATH   record the engine's stage/qgemm/attention spans as
//                  Chrome trace JSON (chrome://tracing / ui.perfetto.dev)
#include <cstdio>
#include <string>

#include "common/args.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "quant/qgemm.hpp"
#include "runtime/engine.hpp"

namespace {

using namespace llmpq;

std::vector<float> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = 0.05f * static_cast<float>(rng.normal());
  return v;
}

void bench_qgemm_kernel(MetricsRegistry& metrics) {
  // One OPT-350m-scale projection: [3h x h] at h = 1024, decode batch 8.
  const std::size_t m = 8, k = 1024, n = 3 * 1024;
  const auto x = random_values(m * k, 1);
  const auto w = random_values(n * k, 2);
  std::vector<float> y(m * n);
  std::printf("qgemm kernel, [%zu x %zu] * W^T[%zu x %zu], pool size %zu\n",
              m, k, n, k, ThreadPool::shared().size());
  for (const int bits : {3, 4, 8, 16}) {
    Rng rng(3);
    const QuantizedMatrix qw =
        QuantizedMatrix::quantize(w, n, k, bits, Rounding::kDeterministic, rng);
    const int reps = 20;
    StopwatchNs serial;
    for (int i = 0; i < reps; ++i) qgemm_serial(x, m, k, qw, {}, y);
    const double serial_ms =
        static_cast<double>(serial.elapsed_ns()) / 1e6 / reps;
    StopwatchNs threaded;
    for (int i = 0; i < reps; ++i) qgemm(x, m, k, qw, {}, y);
    const double threaded_ms =
        static_cast<double>(threaded.elapsed_ns()) / 1e6 / reps;
    std::printf("  %2d-bit: serial %7.2f ms  threaded %7.2f ms  (%.2fx)\n",
                bits, serial_ms, threaded_ms, serial_ms / threaded_ms);
    const std::string prefix = "qgemm." + std::to_string(bits) + "bit.";
    metrics.set_value(prefix + "serial_ms", serial_ms);
    metrics.set_value(prefix + "threaded_ms", threaded_ms);
  }
}

void bench_engine(MetricsRegistry& metrics) {
  ModelSpec spec;
  spec.name = "bench-engine";
  spec.family = "opt";
  spec.hidden = 128;
  spec.ffn = 512;
  spec.heads = 8;
  spec.layers = 8;
  spec.vocab = 256;
  spec.max_pos = 128;
  std::vector<int> bits = {8, 8, 4, 4, 16, 16, 8, 8};
  const ModelWeights mw = build_random_model(spec, bits, 42);

  Rng rng(7);
  std::vector<std::vector<TokenId>> prompts(8);
  for (auto& p : prompts)
    for (int t = 0; t < 16; ++t)
      p.push_back(static_cast<TokenId>(rng.uniform_int(0, spec.vocab - 1)));

  PipelineEngine engine(mw, {{0, 3}, {3, 6}, {6, 8}}, /*prefill_mb=*/2,
                        /*decode_mb=*/4);
  const int requests = 4, gen_tokens = 32;
  StopwatchNs total;
  for (int r = 0; r < requests; ++r)
    (void)engine.generate(prompts, gen_tokens);
  const double total_s = static_cast<double>(total.elapsed_ns()) / 1e9;
  const double tok =
      static_cast<double>(requests) * static_cast<double>(prompts.size()) *
      gen_tokens;
  std::printf(
      "\npersistent engine: %d generate() calls, %zu prompts x %d tokens "
      "each -> %.1f generated tok/s end to end\n\n",
      requests, prompts.size(), gen_tokens, tok / total_s);
  std::printf("%s", format_engine_stats(engine.stats()).c_str());
  metrics.set_value("engine.generated_tok_per_s", tok / total_s);
  metrics.set_engine("pipeline", engine.stats());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llmpq;
  const ArgParser args(argc, argv);
  for (const std::string& key : args.keys()) {
    if (key != "json" && key != "trace") {
      std::fprintf(stderr, "unknown option --%s (known: --json, --trace)\n",
                   key.c_str());
      return 2;
    }
  }
  const auto trace_path = args.get("trace");
  if (trace_path) TraceSession::instance().start();

  MetricsRegistry metrics;
  bench_qgemm_kernel(metrics);
  bench_engine(metrics);

  int rc = 0;
  if (const auto json_path = args.get("json")) {
    if (metrics.write_json_file(*json_path))
      std::printf("\nwrote %s\n", json_path->c_str());
    else
      rc = 1;
  }
  if (trace_path) {
    TraceSession::instance().stop();
    if (TraceSession::instance().write_chrome_trace_file(*trace_path))
      std::printf("wrote %s\n", trace_path->c_str());
    else
      rc = 1;
  }
  return rc;
}
