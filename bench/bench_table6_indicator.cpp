// Reproduces Table 6: effectiveness of the variance indicator. Random /
// Hessian / LLM-PQ (variance) indicators drive the same planner on
// OPT-66b @ cluster 6 and OPT-30b @ cluster 9; report resulting PPL and
// the indicator-construction overhead (variance should match Hessian's
// quality at ~58-73x lower cost).
#include <cstdio>

#include "common/table.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

int main() {
  using namespace llmpq;
  std::printf("=== Table 6: variance indicator vs Random / Hessian ===\n\n");
  Table t({"Model", "Cluster", "Indicator", "PPL", "Indicator overhead (s)",
           "Speedup vs Hessian"});
  for (int cluster_index : {6, 9}) {
    const PaperCluster pc = paper_cluster(cluster_index);
    const ModelSpec& model = model_registry_get(pc.model_name);
    CostProvider cost(model, pc.cluster, CostMode::kFitted);
    const double hessian_cost =
        indicator_overhead_s(model, IndicatorKind::kHessian);
    for (IndicatorKind kind : {IndicatorKind::kRandom,
                               IndicatorKind::kHessian,
                               IndicatorKind::kVariance}) {
      AssignerOptions opt;
      opt.solver = SolverKind::kHeuristic;
      opt.indicator = kind;
      // Strong quality weighting isolates the indicator's effect
      // (the paper matches latency across indicators for fairness).
      opt.theta = cluster_index == 9 ? 100.0 : 200.0;
      const AssignerResult r = assign(cost, opt);
      const double ppl = plan_ppl(model, r.plan.layer_bits);
      const double overhead = r.stats.indicator_overhead_s;
      t.add_row({pc.model_name, std::to_string(cluster_index),
                 indicator_kind_name(kind), Table::fmt(ppl),
                 Table::fmt(overhead),
                 overhead > 0 ? Table::fmt_ratio(hessian_cost / overhead)
                              : "-"});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nshape check: variance PPL <= random PPL, ~= hessian PPL, "
              "at ~58-73x less overhead than Hessian.\n");
  return 0;
}
