#!/usr/bin/env bash
# Full CI gate: the tier-1 build + test sweep, then the sanitizer pass over
# the concurrency-heavy suites. Run from anywhere:
#
#   scripts/ci.sh
#
# The tier-1 half is exactly ROADMAP.md's check; `-LE sanitize` keeps the
# optional sanitizer ctest (registered with -DLLMPQ_SANITIZE_TESTS=ON) out
# of the plain-build run — check_sanitizers.sh owns its own builds.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==== tier-1: configure + build ===="
cmake -B build -S . > /dev/null
cmake --build build -j

echo "==== tier-1: ctest ===="
(cd build && ctest --output-on-failure -j "$(nproc)" -LE sanitize)

echo "==== sanitizers ===="
scripts/check_sanitizers.sh

echo "==== ci green ===="
