#!/usr/bin/env bash
# Staged CI gate. Run from anywhere:
#
#   scripts/ci.sh [stage ...]
#
# Stages (default: all, in this order):
#   build      configure + compile the tier-1 tree
#   test       tier-1 ctest sweep (ROADMAP.md's check; -LE sanitize keeps
#              the optional sanitizer ctest out of the plain-build run)
#   format     clang-format gate (skips when the tool is absent)
#   bench      run the JSON-emitting benches and diff the deterministic
#              table4 rows against bench/baselines/ (±15%); gate the
#              dequant-GEMM kernel speedup floors (--kind kernels)
#   scalar     rebuild with -DLLMPQ_ENABLE_SIMD=OFF and rerun the
#              quant/runtime suites (scalar-reference matrix leg)
#   sanitize   ASan+UBSan and TSan ctest passes (own build trees)
#
# Environment:
#   BUILD_DIR   build directory (default: build)
#   JOBS        parallelism (default: online CPUs; nproc is Linux-only, so
#               fall back to getconf, then 2)
#   CMAKE_ARGS  extra configure arguments, e.g. -DCMAKE_BUILD_TYPE=Debug
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
BUILD_DIR="${BUILD_DIR:-build}"
if [[ -z "${JOBS:-}" ]]; then
  JOBS="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 2)"
fi

configure() {
  # A build tree copied from another checkout (or a renamed repo root)
  # poisons every later cmake call with "the source directory does not
  # appear to contain CMakeLists.txt"; detect the mismatch and start over.
  local cache="${BUILD_DIR}/CMakeCache.txt"
  if [[ -f "${cache}" ]]; then
    local home
    home="$(sed -n 's/^CMAKE_HOME_DIRECTORY:INTERNAL=//p' "${cache}")"
    if [[ "${home}" != "${ROOT}" ]]; then
      echo "stale build cache (${home:-unset} != ${ROOT}); wiping ${BUILD_DIR}"
      rm -rf "${BUILD_DIR}"
    fi
  fi
  # shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split.
  cmake -B "${BUILD_DIR}" -S . ${CMAKE_ARGS:-} > /dev/null
}

stage_build() {
  echo "==== build (${BUILD_DIR}, -j ${JOBS}) ===="
  configure
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
}

stage_test() {
  echo "==== test ===="
  # --timeout is the per-test hang guard: an injected fault (or a real
  # deadlock) that wedges a suite fails it after 300s instead of hanging
  # the whole pipeline. Suites with their own TIMEOUT property keep it.
  (cd "${BUILD_DIR}" && ctest --output-on-failure -j "${JOBS}" -LE sanitize \
    --timeout 300)
}

stage_format() {
  echo "==== format ===="
  scripts/check_format.sh
}

stage_bench() {
  echo "==== bench ===="
  cmake --build "${BUILD_DIR}" -j "${JOBS}" \
    --target bench_table4_hetero_serving bench_table8_optimizer_speed \
             bench_ext_online_serving bench_ext_multi_tenant \
             bench_runtime_engine bench_ext_qgemm_kernels
  "${BUILD_DIR}/bench/bench_table4_hetero_serving" \
    --json "${BUILD_DIR}/BENCH_table4_hetero_serving.json" > /dev/null
  # Table 8's gated artifact keeps the heuristic rows only: they are
  # deterministic regardless of solver budget, while the ILP rows depend on
  # wall-clock truncation (run those interactively, without --methods).
  "${BUILD_DIR}/bench/bench_table8_optimizer_speed" \
    --methods heuristic \
    --json "${BUILD_DIR}/BENCH_table8_optimizer_speed.json" > /dev/null
  # Continuous-batching serving: the replay-vs-session decode comparison
  # over the paged KV cache. Sim-backed and deterministic, so every row
  # (including the session speedup the KV work is gated on) is diffed.
  "${BUILD_DIR}/bench/bench_ext_online_serving" \
    --json "${BUILD_DIR}/BENCH_ext_online_serving.json" > /dev/null
  # Multi-tenant fair-share serving: the virtual-clock simulator leg only
  # (--live 0 skips the wall-clock OnlineEngine leg, which is never
  # gated). Deterministic, so every per-tenant row is diffed.
  "${BUILD_DIR}/bench/bench_ext_multi_tenant" --live 0 \
    --json "${BUILD_DIR}/BENCH_ext_multi_tenant.json" > /dev/null
  "${BUILD_DIR}/bench/bench_runtime_engine" \
    --json "${BUILD_DIR}/BENCH_runtime_engine.json" > /dev/null
  # Only the simulator-backed benches are gated: their numbers are
  # deterministic (jitter=0 roofline model), so the committed baselines are
  # reproducible; `solve_s` rides along uncompared. The runtime-engine
  # artifact is wall-clock and machine-dependent — it is uploaded for
  # inspection, not diffed.
  python3 scripts/check_bench_regression.py \
    --baseline bench/baselines/table4_hetero_serving.json \
    --current "${BUILD_DIR}/BENCH_table4_hetero_serving.json"
  python3 scripts/check_bench_regression.py \
    --baseline bench/baselines/table8_optimizer_speed.json \
    --current "${BUILD_DIR}/BENCH_table8_optimizer_speed.json"
  # The floor ratios pin the ordering claims directly, independent of
  # baseline drift tolerance: at the highest arrival rate (cluster slot 3)
  # continuous throughput must be >= static batching, and under the
  # injected straggler (slot 4) the self-healing control loop must serve
  # at least as fast as tolerating the drag — a baseline refresh cannot
  # quietly bless a replanner that makes a degraded run worse.
  python3 scripts/check_bench_regression.py \
    --baseline bench/baselines/ext_online_serving.json \
    --current "${BUILD_DIR}/BENCH_ext_online_serving.json" \
    --floor-ratio 3/continuous/static/1.0 \
    --floor-ratio 4/straggler-replan/straggler-tolerate/1.0
  # Multi-tenant fairness floor: the worst tenant's SLO attainment is
  # gated as an absolute value, so weighted fair sharing can never be
  # "tuned" into starving a tenant to make the aggregate look better.
  python3 scripts/check_bench_regression.py \
    --baseline bench/baselines/ext_multi_tenant.json \
    --current "${BUILD_DIR}/BENCH_ext_multi_tenant.json" \
    --floor-value 1/min-tenant/slo_attainment/0.95
  # Dequant-GEMM kernel dispatch: wall-clock, but gated on the
  # speedup-vs-scalar *ratio* (same box runs both kernels back to back),
  # against committed floors far below the measured values. This is what
  # catches a silent dispatch regression to the scalar path.
  "${BUILD_DIR}/bench/bench_ext_qgemm_kernels" \
    --json "${BUILD_DIR}/BENCH_ext_qgemm_kernels.json" > /dev/null
  python3 scripts/check_bench_regression.py --kind kernels \
    --baseline bench/baselines/ext_qgemm_kernels.json \
    --current "${BUILD_DIR}/BENCH_ext_qgemm_kernels.json"
}

stage_scalar() {
  echo "==== scalar (SIMD compiled out) ===="
  # Matrix leg with the vector kernels absent at compile time
  # (-DLLMPQ_ENABLE_SIMD=OFF): proves the scalar reference is
  # self-sufficient and that nothing links against an ISA symbol
  # unconditionally. Quant + runtime suites cover every kernel consumer.
  local dir="${BUILD_DIR}-nosimd"
  # shellcheck disable=SC2086
  cmake -B "${dir}" -S . -DLLMPQ_ENABLE_SIMD=OFF ${CMAKE_ARGS:-} > /dev/null
  cmake --build "${dir}" -j "${JOBS}" \
    --target llmpq_tests_quant llmpq_tests_runtime
  (cd "${dir}" && ctest -R "quant|runtime" --output-on-failure \
    --timeout 300)
}

stage_sanitize() {
  echo "==== sanitize ===="
  scripts/check_sanitizers.sh
}

run_stage() {
  case "$1" in
    build) stage_build ;;
    test) stage_test ;;
    format) stage_format ;;
    bench) stage_bench ;;
    scalar) stage_scalar ;;
    sanitize) stage_sanitize ;;
    all) stage_build; stage_test; stage_format; stage_bench; stage_scalar; stage_sanitize ;;
    *)
      echo "unknown stage '$1' (known: build test format bench scalar sanitize all)" >&2
      exit 2
      ;;
  esac
}

if [[ $# -eq 0 ]]; then
  run_stage all
else
  for s in "$@"; do run_stage "$s"; done
fi

echo "==== ci green ===="
