#!/usr/bin/env python3
"""Bench-regression gate: diff a fresh "llmpq-bench/v1" artifact against a
committed baseline.

Usage:
    scripts/check_bench_regression.py \
        --baseline bench/baselines/table4_hetero_serving.json \
        --current build/BENCH_table4_hetero_serving.json \
        [--tolerance 0.15]

The gated bench numbers come from the deterministic discrete-event
simulator (jitter=0 roofline model), so on one toolchain the artifact
reproduces the baseline bit-for-bit; the relative tolerance (default 15%)
absorbs float variance across compilers and libm versions. Wall-clock
benches are machine-dependent and must not be gated here.

Checks, per (cluster, scheme) row of the *baseline*:
  * the row exists in the current artifact;
  * ok/OOM status matches (a scheme newly fitting or newly OOMing is a
    behavior change, not noise);
  * for ok rows, ppl / latency_s / throughput_tok_s are each within the
    relative tolerance of the baseline value.

Rows present only in the current artifact are reported but do not fail the
gate (new clusters/schemes land first, the baseline is regenerated after).

--floor-ratio CLUSTER/NUM_SCHEME/DEN_SCHEME/MIN (repeatable) adds an
absolute floor on the *current* artifact: throughput_tok_s of NUM_SCHEME
must be >= MIN x throughput_tok_s of DEN_SCHEME within that cluster slot.
This is how CI pins "continuous batching >= static batching at the highest
arrival rate" — a ratio of deterministic simulator rows, gated directly
rather than via drift from a baseline (a baseline refresh cannot quietly
bless an ordering regression).

--floor-value CLUSTER/SCHEME/FIELD/MIN (repeatable) adds an absolute floor
on a single field of a *current* row: the named field must be >= MIN. This
is how CI pins the multi-tenant fairness floor — the min-tenant row's
slo_attainment may never fall below the committed floor, independent of
baseline drift (a baseline refresh cannot quietly bless a starved tenant).

--kind kernels switches to the "llmpq-kernels/v1" schema written by
bench_ext_qgemm_kernels: the baseline holds a floor
(`min_speedup_vs_scalar`) per (bits, format, dispatch) cell and the gate
requires the fresh measurement to clear it. Speedup ratios are
machine-portable (both kernels run back to back on the same box), which is
what makes a wall-clock bench gateable at all. Baseline cells whose
dispatch level the host lacks (e.g. avx512 on an AVX2-only runner) are
skipped, so one committed baseline serves the whole CI matrix.

Stdlib only. Exit codes: 0 pass, 1 regression, 2 usage/bad input.
"""

import argparse
import json
import sys

SCHEMA = "llmpq-bench/v1"
KERNELS_SCHEMA = "llmpq-kernels/v1"
METRICS = ("ppl", "latency_s", "throughput_tok_s")


def load(path, schema=SCHEMA):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if doc.get("schema") != schema:
        sys.exit(
            f"error: {path}: schema {doc.get('schema')!r} != {schema!r} "
            "(regenerate the baseline after schema bumps)"
        )
    return doc


def check_kernels(baseline_path, current_path):
    """Gate kernel speedups: measured speedup_vs_scalar >= baseline floor
    per (bits, format, dispatch); cells absent from the current artifact
    (dispatch level not available on this host) are skipped."""
    base = load(baseline_path, KERNELS_SCHEMA)
    cur = load(current_path, KERNELS_SCHEMA)
    cur_rows = {
        (r.get("bits"), r.get("format"), r.get("dispatch")): r
        for r in cur.get("rows", [])
    }
    if not base.get("rows"):
        sys.exit(f"error: {baseline_path} contains no rows")

    failures = []
    checked = skipped = 0
    for row in base["rows"]:
        key = (row.get("bits"), row.get("format"), row.get("dispatch"))
        label = "{}b/{}/{}".format(*key)
        floor = row.get("min_speedup_vs_scalar")
        if not isinstance(floor, (int, float)):
            failures.append(f"{label}: baseline floor is not numeric")
            continue
        cur_row = cur_rows.get(key)
        if cur_row is None:
            skipped += 1  # dispatch level unavailable on this host
            continue
        got = cur_row.get("speedup_vs_scalar")
        if not isinstance(got, (int, float)):
            failures.append(f"{label}: speedup_vs_scalar is not numeric")
        elif got < floor:
            failures.append(
                f"{label}: speedup {got:.2f}x below floor {floor:.2f}x"
            )
        checked += 1

    if failures:
        print(f"kernel regression: {len(failures)} failure(s) "
              f"vs {baseline_path}:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"kernel regression: {checked} cell(s) above their floors "
          f"({skipped} skipped: dispatch unavailable) vs {baseline_path}")
    return 0


def index_rows(doc):
    """{(cluster_index, scheme): row} over every cluster in the artifact."""
    rows = {}
    for cluster in doc.get("clusters", []):
        for row in cluster.get("rows", []):
            rows[(cluster.get("cluster"), row.get("scheme"))] = row
    return rows


def rel_diff(base, cur):
    denom = max(abs(base), 1e-12)
    return abs(cur - base) / denom


def parse_floor_ratio(spec):
    """CLUSTER/NUM_SCHEME/DEN_SCHEME/MIN -> (int, str, str, float)."""
    parts = spec.split("/")
    if len(parts) != 4:
        sys.exit(f"error: --floor-ratio {spec!r}: expected "
                 "CLUSTER/NUM_SCHEME/DEN_SCHEME/MIN")
    try:
        return int(parts[0]), parts[1], parts[2], float(parts[3])
    except ValueError as e:
        sys.exit(f"error: --floor-ratio {spec!r}: {e}")


def parse_floor_value(spec):
    """CLUSTER/SCHEME/FIELD/MIN -> (int, str, str, float)."""
    parts = spec.split("/")
    if len(parts) != 4:
        sys.exit(f"error: --floor-value {spec!r}: expected "
                 "CLUSTER/SCHEME/FIELD/MIN")
    try:
        return int(parts[0]), parts[1], parts[2], float(parts[3])
    except ValueError as e:
        sys.exit(f"error: --floor-value {spec!r}: {e}")


def check_floor_values(current, specs, failures):
    """Absolute per-field floors on current rows. Appends to `failures`;
    returns the number of floors checked."""
    checked = 0
    for cluster, scheme, field, floor in specs:
        label = f"cluster {cluster}: {scheme}.{field} >= {floor:g}"
        row = current.get((cluster, scheme))
        if row is None:
            failures.append(f"{label}: scheme missing from current artifact")
            continue
        if not row.get("ok"):
            failures.append(f"{label}: scheme not ok "
                            f"(note: {row.get('note')!r})")
            continue
        value = row.get(field)
        if not isinstance(value, (int, float)):
            failures.append(f"{label}: field {field!r} not numeric "
                            f"(got {value!r})")
            continue
        if value < floor:
            failures.append(f"{label}: value {value:.6g} below floor")
        else:
            print(f"floor-value ok: {label} (got {value:.6g})")
        checked += 1
    return checked


def check_floor_ratios(current, specs, failures):
    """Appends to `failures`; returns the number of ratios checked."""
    checked = 0
    for cluster, num_scheme, den_scheme, floor in specs:
        label = (f"cluster {cluster}: {num_scheme}/{den_scheme} "
                 f">= {floor:.2f}")
        num = current.get((cluster, num_scheme))
        den = current.get((cluster, den_scheme))
        if num is None or den is None:
            failures.append(f"{label}: scheme missing from current artifact")
            continue
        if not num.get("ok") or not den.get("ok"):
            failures.append(f"{label}: scheme not ok "
                            f"({num.get('note')!r} / {den.get('note')!r})")
            continue
        num_v = num.get("throughput_tok_s")
        den_v = den.get("throughput_tok_s")
        if not isinstance(num_v, (int, float)) or not isinstance(
                den_v, (int, float)) or den_v <= 0:
            failures.append(f"{label}: throughput_tok_s not usable")
            continue
        ratio = num_v / den_v
        if ratio < floor:
            failures.append(
                f"{label}: ratio {ratio:.3f} below floor "
                f"({num_v:.6g} vs {den_v:.6g} tok/s)"
            )
        else:
            print(f"floor-ratio ok: {label} (got {ratio:.2f})")
        checked += 1
    return checked


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative drift per metric (default 0.15)")
    ap.add_argument("--kind", choices=("bench", "kernels"), default="bench",
                    help="artifact schema: simulator bench rows (default) "
                         "or kernel speedup floors")
    ap.add_argument("--floor-ratio", action="append", default=[],
                    metavar="CLUSTER/NUM_SCHEME/DEN_SCHEME/MIN",
                    help="require throughput(NUM) >= MIN*throughput(DEN) in "
                         "the current artifact's cluster slot (repeatable)")
    ap.add_argument("--floor-value", action="append", default=[],
                    metavar="CLUSTER/SCHEME/FIELD/MIN",
                    help="require the current row's FIELD >= MIN "
                         "(repeatable; e.g. the min-tenant SLO-attainment "
                         "fairness floor)")
    args = ap.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        ap.error("--tolerance must be in [0, 1)")
    if args.kind == "kernels":
        if args.floor_ratio or args.floor_value:
            ap.error("--floor-ratio/--floor-value apply to --kind bench only")
        return check_kernels(args.baseline, args.current)

    baseline = index_rows(load(args.baseline))
    current = index_rows(load(args.current))
    if not baseline:
        sys.exit(f"error: {args.baseline} contains no rows")

    failures = []
    checked = 0
    for key, base_row in sorted(baseline.items()):
        cluster, scheme = key
        label = f"cluster {cluster} / {scheme}"
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{label}: missing from current artifact")
            continue
        if bool(base_row.get("ok")) != bool(cur_row.get("ok")):
            failures.append(
                f"{label}: ok changed {base_row.get('ok')} -> "
                f"{cur_row.get('ok')} (note: {cur_row.get('note')!r})"
            )
            continue
        if not base_row.get("ok"):
            checked += 1
            continue
        for metric in METRICS:
            base_v = base_row.get(metric)
            cur_v = cur_row.get(metric)
            if not isinstance(base_v, (int, float)) or not isinstance(
                    cur_v, (int, float)):
                failures.append(f"{label}: {metric} is not numeric")
                continue
            d = rel_diff(base_v, cur_v)
            if d > args.tolerance:
                failures.append(
                    f"{label}: {metric} drifted {d * 100:.1f}% "
                    f"({base_v:.6g} -> {cur_v:.6g}, tol "
                    f"{args.tolerance * 100:.0f}%)"
                )
        checked += 1

    checked += check_floor_ratios(
        current, [parse_floor_ratio(s) for s in args.floor_ratio], failures)
    checked += check_floor_values(
        current, [parse_floor_value(s) for s in args.floor_value], failures)

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"note: {len(extra)} row(s) not in baseline "
              f"(regenerate it to gate them): "
              + ", ".join(f"{c}/{s}" for c, s in extra))

    if failures:
        print(f"bench regression: {len(failures)} failure(s) "
              f"vs {args.baseline}:")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"bench regression: {checked} row(s) within "
          f"{args.tolerance * 100:.0f}% of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
