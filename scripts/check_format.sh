#!/usr/bin/env bash
# clang-format gate over the tracked C++ sources (.clang-format at the repo
# root pins the style). Skips with exit 0 when clang-format is not
# installed, so scripts/ci.sh stays runnable in minimal containers; the CI
# runners have the tool and enforce it.
#
#   scripts/check_format.sh         # check, fail on diffs
#   FIX=1 scripts/check_format.sh   # rewrite files in place
#
# CLANG_FORMAT overrides the binary (e.g. CLANG_FORMAT=clang-format-18).
set -euo pipefail

cd "$(dirname "$0")/.."
CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"

if ! command -v "${CLANG_FORMAT}" > /dev/null 2>&1; then
  echo "check_format: ${CLANG_FORMAT} not found; skipping" \
       "(install clang-format to enable this gate locally)"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cpp' '*.hpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no tracked C++ files"
  exit 0
fi

if [[ "${FIX:-0}" == "1" ]]; then
  "${CLANG_FORMAT}" -i "${files[@]}"
  echo "check_format: reformatted ${#files[@]} files"
else
  "${CLANG_FORMAT}" --dry-run -Werror "${files[@]}"
  echo "check_format: ${#files[@]} files clean"
fi
