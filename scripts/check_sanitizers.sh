#!/usr/bin/env bash
# Sanitizer ctest pass for the threaded runtime: builds the tree twice
# (ASan+UBSan, then TSan) and runs the concurrency-heavy test binaries —
# common (queues, thread pool), core (parallel assigner search incl. the
# shared-incumbent ILP refinements and the CostProvider layer-time cache),
# runtime (pipeline engine, threaded qgemm), serve (online engine admission
# thread), session (step-level decode over the paged KV cache), continuous
# (in-flight batching with KV preemption), fault (chaos suite: injected
# faults through the threaded engine and serving loop), replan (live
# migration: engine swaps under injected stragglers) and trace
# (multi-threaded span recording) — under each.
# Run from the repo root:
#
#   scripts/check_sanitizers.sh [extra ctest -R pattern]
#
# CI invokes this via scripts/ci.sh, or register it as a labeled ctest
# with -DLLMPQ_SANITIZE_TESTS=ON and run `ctest -L sanitize`.
set -euo pipefail

cd "$(dirname "$0")/.."
pattern="${1:-common|^core$|quant|runtime|serve|session|continuous|fault|replan|trace}"

for mode in address thread; do
  build="build-${mode}san"
  echo "==== LLMPQ_SANITIZE=${mode} -> ${build} ===="
  cmake -B "${build}" -S . -DLLMPQ_SANITIZE="${mode}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build "${build}" -j \
    --target llmpq_tests_common llmpq_tests_core llmpq_tests_quant \
             llmpq_tests_runtime llmpq_tests_serve llmpq_tests_session \
             llmpq_tests_continuous llmpq_tests_fault llmpq_tests_replan \
             llmpq_tests_trace
  (cd "${build}" && ctest -R "${pattern}" --output-on-failure)
  # Sweep the quant suite across every kernel dispatch level: the SIMD
  # dequant-GEMM paths (unaligned word reads over packed rows, per-group
  # metadata indexing) must be clean under each sanitizer too, not just
  # whichever level the host auto-detects.
  for simd in scalar avx2 avx512; do
    echo "---- LLMPQ_SIMD=${simd} quant suite (${mode}san) ----"
    (cd "${build}" && LLMPQ_SIMD="${simd}" ctest -R quant       --output-on-failure)
  done
done

echo "==== sanitizer pass clean (address+undefined, thread) ===="
