// llmpq-algo — the paper's plan-generation entry point (Sec. 5, "API and
// Commands"):
//
//   llmpq-algo --model-name opt --model_size 30b \
//       --device_names T4-16G,V100-32G --device_numbers 3,1 \
//       --global_bz 32 --s 512 --n 100 --theta 1 \
//       [--group 2] [--shaq-efficient] [--fit | --use_profiler_prediction] \
//       [--omega_file FILE] [--strat_file_name OUT]
//
// Decides quantization bitwidths, layer partition and micro-batch sizes
// for the given model/cluster/workload, prints the plan summary and
// planner estimate, and writes the strategy file `llmpq-dist` consumes.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "common/args.hpp"
#include "common/error.hpp"
#include "core/assigner.hpp"
#include "quant/quality.hpp"

namespace {

constexpr const char* kUsage = R"(usage: llmpq_algo
  --model-name NAME          model family: opt | bloom (or full name like opt-30b)
  --model_size SIZE          e.g. 13b, 30b, 66b, 176b (ignored if full name given)
  --device_names LIST        comma-separated GPU types, e.g. T4-16G,V100-32G
  --device_numbers LIST      comma-separated counts, same arity
  --global_bz N              global batch size            (default 32)
  --s N                      padded prompt length          (default 512)
  --n N                      tokens to generate            (default 100)
  --theta X                  user quality scalar           (default 1)
  --group N                  ILP layer-group size, forces the ILP solver
  --shaq-efficient           force the bitwidth-transfer heuristic
  --fit                      use the fitted latency cost model (default)
  --use_profiler_prediction  answer cost queries from profiled samples
  --indicator KIND           variance | hessian | random   (default variance)
  --weight_format F          per_channel | group32 | group64 (default per_channel)
  --omega_file FILE          write the indicator omega values to FILE
  --strat_file_name FILE     write the strategy file       (default stdout)
  --time_limit S             ILP time budget in seconds    (default 30)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace llmpq;
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    // ---- Model.
    std::string model_name = args.get_or("model-name", "");
    check_arg(!model_name.empty(), "--model-name is required");
    if (const auto size = args.get("model_size"); size && !size->empty())
      if (model_name.find('-') == std::string::npos)
        model_name += "-" + *size;
    const ModelSpec& model = model_registry_get(model_name);

    // ---- Cluster.
    const auto names = split_csv(args.get_or("device_names", ""));
    const auto numbers = split_csv(args.get_or("device_numbers", ""));
    check_arg(!names.empty() && names.size() == numbers.size(),
              "--device_names and --device_numbers must be non-empty and "
              "of equal arity");
    std::vector<std::pair<std::string, int>> gpus;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const int count = parse_int_token(numbers[i], "--device_numbers");
      check_arg(count >= 1, "--device_numbers: counts must be >= 1, got " +
                                numbers[i]);
      gpus.emplace_back(names[i], count);
    }
    const ClusterSpec cluster = make_cluster("cli-cluster", gpus);

    // ---- Workload + options.
    Workload workload;
    workload.global_batch = static_cast<int>(args.get_long("global_bz", 32));
    workload.prompt_len = static_cast<int>(args.get_long("s", 512));
    workload.gen_tokens = static_cast<int>(args.get_long("n", 100));

    AssignerOptions options;
    options.theta = args.get_double("theta", 1.0);
    options.ilp_time_limit_s = args.get_double("time_limit", 30.0);
    if (args.has("group")) {
      options.solver = SolverKind::kIlp;
      options.group_size = static_cast<int>(args.get_long("group", 1));
    }
    if (args.has("shaq-efficient")) options.solver = SolverKind::kHeuristic;
    const std::string ind = args.get_or("indicator", "variance");
    if (ind == "hessian")
      options.indicator = IndicatorKind::kHessian;
    else if (ind == "random")
      options.indicator = IndicatorKind::kRandom;
    else
      check_arg(ind == "variance", "unknown --indicator " + ind);
    options.cost_mode = args.has("use_profiler_prediction")
                            ? CostMode::kProfiled
                            : CostMode::kFitted;

    // ---- Plan.
    CostProvider cost(model, cluster, options.cost_mode);
    cost.set_workload(workload);
    cost.set_format(
        quant_format_from_name(args.get_or("weight_format", "per_channel")));
    const AssignerResult result = assign(cost, options);

    std::fprintf(stderr, "%s", result.plan.to_string().c_str());
    std::fprintf(stderr,
                 "estimate: %.2f s end-to-end, %.1f tokens/s, PPL %.3f\n",
                 result.estimate.e2e_latency,
                 result.estimate.throughput_tokens_per_s,
                 plan_ppl(model, result.plan.layer_bits));
    std::fprintf(stderr, "solver %s: %d combos, %.2f s\n",
                 result.stats.solver_used.c_str(), result.stats.combos_tried,
                 result.stats.solve_time_s);

    if (const auto omega_file = args.get("omega_file")) {
      const IndicatorResult indicator =
          compute_indicator(model, options.indicator);
      std::ofstream out(*omega_file);
      check_arg(out.good(), "cannot open " + *omega_file);
      out << "# layer";
      for (int bits : kBitCandidates) out << " omega@" << bits;
      out << "\n";
      for (int i = 0; i < model.layers; ++i) {
        out << i;
        for (int bits : kBitCandidates) out << ' ' << indicator.at(i, bits);
        out << "\n";
      }
    }

    const std::string strat = result.plan.serialize();
    if (const auto path = args.get("strat_file_name")) {
      std::ofstream out(*path);
      check_arg(out.good(), "cannot open " + *path);
      out << strat;
      std::fprintf(stderr, "strategy written to %s\n", path->c_str());
    } else {
      std::fputs(strat.c_str(), stdout);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "llmpq-algo: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
