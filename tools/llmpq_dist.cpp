// llmpq-dist — the paper's strategy launcher (Sec. 5):
//
//   llmpq-dist --strat_file_name plan.strat \
//       --device_names T4-16G,V100-32G --device_numbers 3,1 \
//       [--jitter 0.02] [--csv]
//
// Loads a strategy file produced by llmpq-algo, derives the pipeline
// configuration ("ranks are derived automatically and registered to the
// distributed runtime"), executes the plan on the simulated cluster and
// reports per-stage utilization, memory and serving metrics.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/args.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "quant/quality.hpp"
#include "sim/pipeline_sim.hpp"

namespace {

constexpr const char* kUsage = R"(usage: llmpq_dist
  --strat_file_name FILE   strategy file from llmpq-algo (required)
  --device_names LIST      comma-separated GPU types, e.g. T4-16G,V100-32G
  --device_numbers LIST    comma-separated counts, same arity
  --jitter X               multiplicative timing jitter stddev (default 0)
  --seed N                 jitter seed                         (default 11)
  --csv                    emit the stage table as CSV
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace llmpq;
  const ArgParser args(argc, argv);
  if (args.has("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    const auto path = args.get("strat_file_name");
    check_arg(path.has_value(), "--strat_file_name is required");
    std::ifstream in(*path);
    check_arg(in.good(), "cannot open " + *path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const ExecutionPlan plan = ExecutionPlan::deserialize(buffer.str());
    const ModelSpec& model = model_registry_get(plan.model_name);

    const auto names = split_csv(args.get_or("device_names", ""));
    const auto numbers = split_csv(args.get_or("device_numbers", ""));
    check_arg(!names.empty() && names.size() == numbers.size(),
              "--device_names/--device_numbers are required and must match");
    std::vector<std::pair<std::string, int>> gpus;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const int count = parse_int_token(numbers[i], "--device_numbers");
      check_arg(count >= 1, "--device_numbers: counts must be >= 1, got " +
                                numbers[i]);
      gpus.emplace_back(names[i], count);
    }
    const ClusterSpec cluster = make_cluster(plan.cluster_name, gpus);
    plan.validate(model.layers, cluster.num_devices());

    SimOptions sim_options;
    sim_options.jitter = args.get_double("jitter", 0.0);
    sim_options.seed = static_cast<std::uint64_t>(args.get_long("seed", 11));
    const SimResult sim = simulate_plan(model, cluster, plan, sim_options);
    if (!sim.ok) {
      std::fprintf(stderr, "llmpq-dist: launch failed: %s\n",
                   sim.error.c_str());
      return 2;
    }

    std::printf("%s", plan.to_string().c_str());
    std::printf("\nserving run (%s, batch %d, s=%d, n=%d):\n",
                cluster.describe_devices().c_str(),
                plan.workload.global_batch, plan.workload.prompt_len,
                plan.workload.gen_tokens);
    std::printf("  prefill latency: %.2f s\n", sim.prefill_latency_s);
    std::printf("  end-to-end:      %.2f s\n", sim.e2e_latency_s);
    std::printf("  throughput:      %.1f tokens/s\n",
                sim.throughput_tokens_per_s);
    std::printf("  perplexity:      %.3f (FP16 reference %.3f)\n\n",
                plan_ppl(model, plan.layer_bits), model.ppl_fp16);

    Table stages({"Stage", "Device", "Layers", "Busy (s)", "Utilization",
                  "Peak mem (GiB)"});
    for (int p = 0; p < plan.num_stages(); ++p) {
      const int dev = plan.device_order[static_cast<std::size_t>(p)];
      stages.add_row(
          {std::to_string(p),
           cluster.devices[static_cast<std::size_t>(dev)].gpu_name,
           std::to_string(plan.stage_size(p)),
           Table::fmt(sim.stage_busy_s[static_cast<std::size_t>(p)]),
           Table::fmt(sim.stage_utilization[static_cast<std::size_t>(p)], 3),
           Table::fmt(static_cast<double>(
                          sim.stage_peak_mem[static_cast<std::size_t>(p)]) /
                          static_cast<double>(GiB),
                      2)});
    }
    std::printf("%s", args.has("csv") ? stages.to_csv().c_str()
                                      : stages.to_string().c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "llmpq-dist: %s\n%s", e.what(), kUsage);
    return 1;
  }
}
