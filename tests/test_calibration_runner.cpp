#include <gtest/gtest.h>

#include "common/error.hpp"
#include "hw/gpu_spec.hpp"
#include "runtime/calibration_runner.hpp"

namespace llmpq {
namespace {

ModelSpec tiny() {
  ModelSpec m;
  m.name = "tiny-calib";
  m.family = "opt";
  m.hidden = 32;
  m.ffn = 128;
  m.heads = 4;
  m.layers = 5;
  m.vocab = 96;
  m.max_pos = 64;
  return m;
}

std::vector<std::vector<TokenId>> prompts(const ModelSpec& m,
                                          std::size_t batch, std::size_t len,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<TokenId>> out(batch);
  for (auto& p : out)
    for (std::size_t t = 0; t < len; ++t)
      p.push_back(static_cast<TokenId>(rng.uniform_int(0, m.vocab - 1)));
  return out;
}

TEST(CalibrationRunner, CollectsPlausibleStats) {
  const ModelSpec spec = tiny();
  const std::vector<int> fp16(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, fp16, 7);
  const auto calib = run_calibration(mw, prompts(spec, 6, 12, 3));
  ASSERT_EQ(calib.size(), 5u);
  for (const auto& lc : calib) {
    // Layer-normed inputs: near-unit variance, near-zero mean.
    EXPECT_NEAR(lc.qkv_in.variance, 1.0, 0.1);
    EXPECT_NEAR(lc.qkv_in.mean, 0.0, 0.1);
    // ReLU output: non-negative mean, positive variance.
    EXPECT_GT(lc.fc2_in.mean, 0.0);
    EXPECT_GT(lc.fc2_in.variance, 0.0);
  }
}

TEST(CalibrationRunner, DeterministicAcrossRuns) {
  const ModelSpec spec = tiny();
  const std::vector<int> fp16(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, fp16, 9);
  const auto ps = prompts(spec, 4, 10, 5);
  const auto a = run_calibration(mw, ps);
  const auto b = run_calibration(mw, ps);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].qkv_in.variance, b[i].qkv_in.variance);
    EXPECT_DOUBLE_EQ(a[i].fc1_in.mean, b[i].fc1_in.mean);
  }
}

TEST(CalibrationRunner, MeasuredOmegaMonotoneInBits) {
  const ModelSpec spec = tiny();
  const std::vector<int> fp16(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights mw = build_random_model(spec, fp16, 11);
  const auto calib = run_calibration(mw, prompts(spec, 4, 10, 1));
  const auto omega = measured_variance_omega(mw, calib);
  for (const auto& row : omega) {
    EXPECT_GT(row[0], row[1]);  // 3-bit worse than 4-bit
    EXPECT_GT(row[1], row[2]);  // 4-bit worse than 8-bit
    EXPECT_GT(row[2], 0.0);
    EXPECT_EQ(row[3], 0.0);     // 16-bit lossless
  }
}

TEST(CalibrationRunner, MeasuredOmegaOrdersRealQuantizationDamage) {
  // The end-to-end claim behind the paper's indicator: a plan with a
  // larger measured omega sum inflicts a larger *real* output perturbation.
  const ModelSpec spec = tiny();
  const std::vector<int> fp16(static_cast<std::size_t>(spec.layers), 16);
  const ModelWeights reference = build_random_model(spec, fp16, 21);
  const auto ps = prompts(spec, 4, 10, 2);
  const auto calib = run_calibration(reference, ps);
  const auto omega = measured_variance_omega(reference, calib);

  double prev_mse = -1.0;
  double prev_omega = -1.0;
  for (int bits : {8, 4, 3}) {
    std::vector<int> plan(static_cast<std::size_t>(spec.layers), bits);
    const ModelWeights quantized = build_random_model(spec, plan, 21);
    const double mse = output_mse(reference, quantized, ps);
    double omega_sum = 0.0;
    for (const auto& row : omega)
      omega_sum += row[static_cast<std::size_t>(bit_index(bits))];
    EXPECT_GT(mse, prev_mse) << bits;      // lower bits -> more damage
    EXPECT_GT(omega_sum, prev_omega) << bits;  // indicator agrees
    prev_mse = mse;
    prev_omega = omega_sum;
  }
}

TEST(CalibrationRunner, RequiresFp16Master) {
  const ModelSpec spec = tiny();
  std::vector<int> bits(static_cast<std::size_t>(spec.layers), 4);
  const ModelWeights mw = build_random_model(spec, bits, 3);
  const auto calib = run_calibration(mw, prompts(spec, 2, 8, 4));
  EXPECT_THROW(measured_variance_omega(mw, calib), InvalidArgumentError);
}

}  // namespace
}  // namespace llmpq
